#include "client/client.hpp"

#include <array>

#include "crypto/rsa.hpp"
#include "rpc/fault.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"

namespace clarens::client {

ClarensClient::ClarensClient(ClientOptions options)
    : options_(std::move(options)) {}

ClarensClient::~ClarensClient() { close(); }

void ClarensClient::connect() {
  close();
  auto tcp = std::make_unique<net::TcpConnection>(
      net::TcpConnection::connect(options_.host, options_.port));
  if (options_.use_tls) {
    if (!options_.trust) throw Error("TLS client requires a trust store");
    tls::TlsConfig config;
    config.credential = options_.credential;
    config.chain = options_.chain;
    config.trust = options_.trust;
    stream_ = tls::SecureChannel::connect(std::move(tcp), config);
  } else {
    stream_ = std::move(tcp);
  }
  parser_ = http::ResponseParser();
}

void ClarensClient::close() {
  if (stream_) {
    stream_->close();
    stream_.reset();
  }
}

http::Response ClarensClient::roundtrip(const http::Request& request,
                                        bool idempotent) {
  // A reused keep-alive connection may have been closed by the server
  // between calls; a fresh one failing is a real error.
  bool reused = stream_ != nullptr;
  if (!stream_) {
    try {
      connect();
    } catch (const SystemError& e) {
      // Nothing was ever sent: retrying callers may replay freely.
      throw TransportError(e.what(), /*may_have_executed=*/false);
    }
  }
  std::string wire = request.serialize();
  for (int attempt = 0; attempt < 2; ++attempt) {
    bool wrote = false;             // full request handed to the kernel
    bool response_started = false;  // any response bytes arrived
    try {
      stream_->write_all(wire);
      wrote = true;
      std::array<std::uint8_t, 64 * 1024> chunk;
      for (;;) {
        if (auto response = parser_.next()) return std::move(*response);
        std::size_t n = stream_->read(chunk);
        if (n == 0) throw SystemError("server closed connection");
        response_started = true;
        parser_.feed(std::span<const std::uint8_t>(chunk.data(), n));
      }
    } catch (const SystemError& e) {
      // Replay exactly once, and only when it cannot double-execute:
      //  * write never completed -> the server saw at most a partial
      //    HTTP request it will not act on; any method is safe;
      //  * write completed, zero response bytes -> the server may have
      //    executed the call before dying, so only idempotent methods
      //    are safe;
      //  * a partial response arrived -> the call definitely executed;
      //    never replay, even idempotent ones (the caller should see
      //    the failure rather than a silent second execution).
      // Failures surface as TransportError carrying `wrote`, so outer
      // retry layers (RoutedClient) can make the same safety call.
      bool replayable = !wrote || (idempotent && !response_started);
      if (!reused || attempt == 1 || !replayable) {
        throw TransportError(e.what(), /*may_have_executed=*/wrote);
      }
      try {
        connect();
      } catch (const SystemError& reconnect) {
        // The original attempt was replayable; report its write state.
        throw TransportError(reconnect.what(), /*may_have_executed=*/wrote);
      }
    }
  }
  throw SystemError("unreachable");
}

bool is_idempotent_method(const std::string& method) {
  for (const char* module : {"system.", "echo.", "discovery."}) {
    if (method.rfind(module, 0) == 0) return true;
  }
  static const char* kReadOnly[] = {
      "file.read",  "file.ls",     "file.stat", "file.md5",
      "file.size",  "file.find",   "file.locate", "proxy.exists",
  };
  for (const char* name : kReadOnly) {
    if (method == name) return true;
  }
  return false;
}

void ClarensClient::set_header(const std::string& name,
                               const std::string& value) {
  for (auto it = extra_headers_.begin(); it != extra_headers_.end(); ++it) {
    if (it->first == name) {
      if (value.empty()) {
        extra_headers_.erase(it);
      } else {
        it->second = value;
      }
      return;
    }
  }
  if (!value.empty()) extra_headers_.emplace_back(name, value);
}

void ClarensClient::apply_extra_headers(http::Request& request) const {
  for (const auto& [name, value] : extra_headers_) {
    request.headers.set(name, value);
  }
}

rpc::Value ClarensClient::call(const std::string& method,
                               const std::vector<rpc::Value>& params) {
  rpc::Request rpc_request;
  rpc_request.method = method;
  rpc_request.params = params;
  rpc_request.id = rpc::Value(static_cast<std::int64_t>(next_id_++));

  http::Request request;
  request.method = "POST";
  request.target = options_.endpoint;
  request.headers.set("Content-Type", rpc::content_type(options_.protocol));
  request.headers.set("Host", options_.host);
  if (!session_.empty()) {
    request.headers.set("X-Clarens-Session", session_);
  }
  request.body = rpc::serialize_request(options_.protocol, rpc_request);
  apply_extra_headers(request);

  http::Response http_response = roundtrip(request, is_idempotent_method(method));
  if (http_response.status != 200) {
    throw SystemError("HTTP " + std::to_string(http_response.status) + ": " +
                      http_response.body);
  }
  rpc::Response response =
      rpc::parse_response(options_.protocol, http_response.body);
  if (response.is_fault) {
    throw rpc::Fault(response.fault_code, response.fault_message);
  }
  return response.result;
}

std::string ClarensClient::authenticate() {
  if (options_.use_tls && options_.credential) {
    // The channel already proved our identity.
    session_.clear();
    session_ = call("system.auth").as_string();
    return session_;
  }
  if (!options_.credential) {
    throw AuthError("authenticate() requires a client credential");
  }
  session_.clear();
  std::string nonce = call("system.challenge").as_string();
  std::vector<std::uint8_t> signature =
      crypto::rsa_sign(options_.credential->private_key, nonce);
  rpc::Value chain = rpc::Value::array();
  chain.push(options_.credential->certificate.encode());
  for (const auto& cert : options_.chain) chain.push(cert.encode());
  session_ = call("system.auth",
                  {rpc::Value(nonce), chain,
                   rpc::Value(util::base64_encode(signature))})
                 .as_string();
  return session_;
}

std::string ClarensClient::proxy_logon(const std::string& dn,
                                       const std::string& password) {
  session_.clear();
  session_ = call("proxy.logon", {rpc::Value(dn), rpc::Value(password)})
                 .as_string();
  return session_;
}

http::Response ClarensClient::get(const std::string& path, std::int64_t offset,
                                  std::int64_t length) {
  http::Request request;
  request.method = "GET";
  std::string target = path;
  if (offset != 0 || length >= 0) {
    target += "?offset=" + std::to_string(offset);
    if (length >= 0) target += "&length=" + std::to_string(length);
  }
  request.target = target;
  request.headers.set("Host", options_.host);
  if (!session_.empty()) request.headers.set("X-Clarens-Session", session_);
  apply_extra_headers(request);
  return roundtrip(request, /*idempotent=*/true);  // GET never mutates
}

std::vector<std::uint8_t> ClarensClient::file_read(const std::string& path,
                                                   std::int64_t offset,
                                                   std::int64_t length) {
  return call("file.read", {rpc::Value(path), rpc::Value(offset),
                            rpc::Value(length)})
      .as_binary();
}

std::string ClarensClient::file_md5(const std::string& path) {
  return call("file.md5", {rpc::Value(path)}).as_string();
}

std::vector<std::string> ClarensClient::file_ls_names(const std::string& path) {
  std::vector<std::string> out;
  rpc::Value listing = call("file.ls", {rpc::Value(path)});
  for (const auto& entry : listing.as_array()) {
    out.push_back(entry.at("name").as_string());
  }
  return out;
}

}  // namespace clarens::client
