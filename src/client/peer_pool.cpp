#include "client/peer_pool.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace clarens::client {

PeerEndpoint PeerEndpoint::parse(const std::string& url) {
  PeerEndpoint out;
  std::string rest;
  if (util::starts_with(url, "https://")) {
    out.tls = true;
    rest = url.substr(8);
  } else if (util::starts_with(url, "http://")) {
    out.tls = false;
    rest = url.substr(7);
  } else {
    throw ParseError("peer URL must start with http:// or https://: '" + url +
                     "'");
  }
  std::size_t slash = rest.find('/');
  if (slash != std::string::npos) rest.resize(slash);
  std::size_t colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
    throw ParseError("peer URL must include host:port: '" + url + "'");
  }
  out.host = rest.substr(0, colon);
  out.port = static_cast<std::uint16_t>(util::parse_uint(rest.substr(colon + 1)));
  return out;
}

PeerPool::Lease PeerPool::lease(const std::string& url) {
  {
    util::LockGuard lock(mutex_);
    auto it = idle_.find(url);
    if (it != idle_.end() && !it->second.empty()) {
      std::unique_ptr<ClarensClient> client = std::move(it->second.back());
      it->second.pop_back();
      return Lease(this, url, std::move(client));
    }
  }
  PeerEndpoint endpoint = PeerEndpoint::parse(url);
  ClientOptions options = base_;
  options.host = endpoint.host;
  options.port = endpoint.port;
  options.use_tls = endpoint.tls;
  return Lease(this, url, std::make_unique<ClarensClient>(std::move(options)));
}

std::size_t PeerPool::idle_count(const std::string& url) const {
  util::LockGuard lock(mutex_);
  auto it = idle_.find(url);
  return it == idle_.end() ? 0 : it->second.size();
}

void PeerPool::put_back(const std::string& url,
                        std::unique_ptr<ClarensClient> client) {
  util::LockGuard lock(mutex_);
  idle_[url].push_back(std::move(client));
}

}  // namespace clarens::client
