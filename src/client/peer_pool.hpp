// Per-node keep-alive client pool — the peer-to-peer mode of
// clarens::client (ISSUE 8 tentpole).
//
// A federated head proxies small metadata calls to storage nodes, and a
// federation-aware client follows redirects to whichever node owns the
// data. Both want warm connections per peer URL instead of a TCP (+TLS)
// handshake per call. PeerPool keeps a stack of idle ClarensClients per
// endpoint; lease() pops one (or builds a fresh one) and the RAII Lease
// returns it on destruction. A caller whose call failed marks the lease
// discarded so a torn connection is dropped instead of re-pooled.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "client/client.hpp"
#include "util/sync.hpp"

namespace clarens::client {

/// Decomposed http(s)://host:port[/path] URL. Throws clarens::ParseError
/// on anything else.
struct PeerEndpoint {
  std::string host;
  std::uint16_t port = 0;
  bool tls = false;

  static PeerEndpoint parse(const std::string& url);
};

class PeerPool {
 public:
  /// `base` supplies everything but host/port/TLS flag: protocol,
  /// credential + chain, trust store, endpoint path.
  explicit PeerPool(ClientOptions base) : base_(std::move(base)) {}

  class Lease {
   public:
    Lease(PeerPool* pool, std::string url,
          std::unique_ptr<ClarensClient> client)
        : pool_(pool), url_(std::move(url)), client_(std::move(client)) {}
    ~Lease() {
      if (client_ && !discarded_) pool_->put_back(url_, std::move(client_));
    }
    Lease(Lease&&) = default;
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    ClarensClient& operator*() { return *client_; }
    ClarensClient* operator->() { return client_.get(); }

    /// Drop the client on release instead of pooling it — call after a
    /// transport failure so the next lease() dials a fresh connection.
    void discard() { discarded_ = true; }

   private:
    PeerPool* pool_;
    std::string url_;
    std::unique_ptr<ClarensClient> client_;
    bool discarded_ = false;
  };

  /// Lease a client for `url`, reusing an idle keep-alive connection to
  /// the same URL when one exists.
  Lease lease(const std::string& url);

  /// Idle clients currently pooled for `url` (tests).
  std::size_t idle_count(const std::string& url) const;

 private:
  friend class Lease;
  void put_back(const std::string& url,
                std::unique_ptr<ClarensClient> client);

  ClientOptions base_;
  mutable util::Mutex mutex_{util::LockLevel::kClientPeerPool};
  std::map<std::string, std::vector<std::unique_ptr<ClarensClient>>> idle_
      CLARENS_GUARDED_BY(mutex_);
};

}  // namespace clarens::client
