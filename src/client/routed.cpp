#include "client/routed.hpp"

#include <chrono>
#include <thread>

#include "rpc/binding.hpp"
#include "util/error.hpp"

namespace clarens::client {

namespace {

ClientOptions head_options(const std::string& head_url, ClientOptions base) {
  PeerEndpoint endpoint = PeerEndpoint::parse(head_url);
  base.host = endpoint.host;
  base.port = endpoint.port;
  base.use_tls = endpoint.tls;
  return base;
}

}  // namespace

RoutedClient::RoutedClient(const std::string& head_url, ClientOptions base,
                           int max_attempts, int retry_backoff_ms)
    : pool_(base),
      head_(head_options(head_url, std::move(base))),
      max_attempts_(max_attempts),
      retry_backoff_ms_(retry_backoff_ms) {}

rpc::Value RoutedClient::call(const std::string& method,
                              const std::vector<rpc::Value>& params) {
  // Replaying after a transport failure is only safe when it cannot
  // double-execute: the request provably never reached a server, or the
  // method is idempotent. A non-idempotent call that may have executed
  // (file.write fully sent, connection died before the response) must
  // surface the failure — the paper's analysis clients handle "unknown
  // outcome" far better than a silent second execution (a replayed
  // file.rm would fault NotFound despite having succeeded).
  const bool idempotent = is_idempotent_method(method);
  std::string last_error;
  for (int attempt = 0; attempt < max_attempts_; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(retry_backoff_ms_));
    }
    rpc::Value result;
    try {
      result = head_.call(method, params);
    } catch (const TransportError& e) {
      // A federated head answers non-idempotent file.* with a redirect
      // (no side effect), but a head with an empty ring executes the
      // call in place — so the idempotency gate applies here too.
      if (!idempotent && e.may_have_executed()) throw;
      // Otherwise a dead head just means waiting out the backoff.
      last_error = e.what();
      continue;
    }
    if (!rpc::RedirectResult::is_redirect(result)) return result;
    rpc::RedirectResult redirect = rpc::RedirectResult::from_value(result);
    ++redirects_followed_;
    // The ticket is the whole credential on the node side — no session
    // is established there.
    PeerPool::Lease lease = pool_.lease(redirect.url);
    lease->set_header("X-Clarens-Node-Ticket", redirect.ticket);
    try {
      return lease->call(method, params);
    } catch (const TransportError& e) {
      // Torn/stale node connection or a node mid-restart: drop the
      // connection and re-ask the head, which re-routes around the
      // failure. rpc::Fault propagates — the node answered.
      lease.discard();
      if (!idempotent && e.may_have_executed()) throw;
      last_error = e.what();
    }
  }
  throw SystemError("routed call '" + method + "' failed after " +
                    std::to_string(max_attempts_) +
                    " attempts; last error: " + last_error);
}

}  // namespace clarens::client
