#include "client/routed.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "rpc/binding.hpp"
#include "util/error.hpp"

namespace clarens::client {

namespace {

ClientOptions head_options(const std::string& head_url, ClientOptions base) {
  PeerEndpoint endpoint = PeerEndpoint::parse(head_url);
  base.host = endpoint.host;
  base.port = endpoint.port;
  base.use_tls = endpoint.tls;
  return base;
}

}  // namespace

int RetryPolicy::delay_ms(int attempt, std::uint64_t& state) const {
  if (attempt < 1) return 0;
  double delay = static_cast<double>(base_ms);
  for (int i = 1; i < attempt; ++i) {
    delay *= multiplier;
    if (delay >= static_cast<double>(max_ms)) break;
  }
  delay = std::min(delay, static_cast<double>(max_ms));
  // xorshift64 advances even when jitter is 0 so toggling jitter does
  // not shift the rest of the schedule.
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  if (jitter > 0) {
    double unit = static_cast<double>(state % 10000) / 10000.0;  // [0, 1)
    delay *= 1.0 - jitter + 2.0 * jitter * unit;
  }
  return std::max(1, static_cast<int>(delay));
}

RoutedClient::RoutedClient(const std::string& head_url, ClientOptions base,
                           RetryPolicy retry)
    : pool_(base),
      head_(head_options(head_url, std::move(base))),
      retry_(retry),
      jitter_state_(retry.seed) {}

// Legacy knobs: a flat per-retry delay. Mapped onto the policy as
// base == cap (the exponential never grows), so existing callers keep
// their pacing and still gain the jitter spread.
RoutedClient::RoutedClient(const std::string& head_url, ClientOptions base,
                           int max_attempts, int retry_backoff_ms)
    : RoutedClient(head_url, std::move(base),
                   RetryPolicy{.max_attempts = max_attempts,
                               .base_ms = retry_backoff_ms,
                               .max_ms = retry_backoff_ms}) {}

rpc::Value RoutedClient::call(const std::string& method,
                              const std::vector<rpc::Value>& params) {
  // Replaying after a transport failure is only safe when it cannot
  // double-execute: the request provably never reached a server, or the
  // method is idempotent. A non-idempotent call that may have executed
  // (file.write fully sent, connection died before the response) must
  // surface the failure — the paper's analysis clients handle "unknown
  // outcome" far better than a silent second execution (a replayed
  // file.rm would fault NotFound despite having succeeded).
  const bool idempotent = is_idempotent_method(method);
  std::string last_error;
  for (int attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          retry_.delay_ms(attempt, jitter_state_)));
    }
    rpc::Value result;
    try {
      result = head_.call(method, params);
    } catch (const TransportError& e) {
      // A federated head answers non-idempotent file.* with a redirect
      // (no side effect), but a head with an empty ring executes the
      // call in place — so the idempotency gate applies here too.
      if (!idempotent && e.may_have_executed()) throw;
      // Otherwise a dead head just means waiting out the backoff.
      last_error = e.what();
      continue;
    }
    if (!rpc::RedirectResult::is_redirect(result)) return result;
    rpc::RedirectResult redirect = rpc::RedirectResult::from_value(result);
    ++redirects_followed_;
    // The ticket is the whole credential on the node side — no session
    // is established there.
    PeerPool::Lease lease = pool_.lease(redirect.url);
    lease->set_header("X-Clarens-Node-Ticket", redirect.ticket);
    try {
      return lease->call(method, params);
    } catch (const TransportError& e) {
      // Torn/stale node connection or a node mid-restart: drop the
      // connection and re-ask the head, which re-routes around the
      // failure. rpc::Fault propagates — the node answered.
      lease.discard();
      // Tell the head before retrying: it marks the node suspect, so
      // the re-asked call routes to a healthy replica immediately
      // instead of bouncing to the same dead node until discovery
      // notices. Best effort — a head without the replication control
      // plane faults BadMethod, older deployments just retry blind.
      try {
        head_.call("replica.report", {rpc::Value(redirect.url)});
        ++failures_reported_;
      } catch (const std::exception&) {
      }
      if (!idempotent && e.may_have_executed()) throw;
      last_error = e.what();
    }
  }
  throw SystemError("routed call '" + method + "' failed after " +
                    std::to_string(retry_.max_attempts) +
                    " attempts; last error: " + last_error);
}

}  // namespace clarens::client
