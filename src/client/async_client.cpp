#include "client/async_client.hpp"

#include <array>
#include <memory>

#include "http/message.hpp"
#include "http/parser.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace clarens::client {

AsyncCallDriver::AsyncCallDriver(std::string host, std::uint16_t port,
                                 std::string session_token, std::string method,
                                 std::vector<rpc::Value> params,
                                 rpc::Protocol protocol)
    : host_(std::move(host)), port_(port) {
  rpc::Request rpc_request;
  rpc_request.method = std::move(method);
  rpc_request.params = std::move(params);
  rpc_request.id = rpc::Value(std::int64_t{1});

  http::Request request;
  request.method = "POST";
  request.target = "/clarens";
  request.headers.set("Content-Type", rpc::content_type(protocol));
  request.headers.set("Host", host_);
  if (!session_token.empty()) {
    request.headers.set("X-Clarens-Session", session_token);
  }
  request.body = rpc::serialize_request(protocol, rpc_request);
  request_wire_ = request.serialize();
}

namespace {

struct Connection {
  net::TcpConnection tcp;
  http::ResponseParser parser;
  std::size_t write_offset = 0;  // into the request wire
  bool awaiting_response = false;
};

struct FanOutConnection {
  net::TcpConnection tcp;
  http::ResponseParser parser;
  std::string wire;
  std::size_t write_offset = 0;
  bool connecting = true;  // TCP handshake still in flight
  bool done = false;
};

}  // namespace

std::vector<FanOutReply> fan_out(
    const std::vector<FanOutTarget>& targets, const std::string& method,
    const std::vector<rpc::Value>& params,
    const std::vector<std::pair<std::string, std::string>>& headers,
    rpc::Protocol protocol, int timeout_ms) {
  std::vector<FanOutReply> replies(targets.size());
  if (targets.empty()) return replies;

  rpc::Request rpc_request;
  rpc_request.method = method;
  rpc_request.params = params;
  rpc_request.id = rpc::Value(std::int64_t{1});
  std::string body = rpc::serialize_request(protocol, rpc_request);

  net::Reactor reactor;
  std::vector<std::unique_ptr<FanOutConnection>> conns(targets.size());
  std::size_t outstanding = 0;

  auto fail = [&](std::size_t i, const std::string& why) {
    if (conns[i] && !conns[i]->done) {
      conns[i]->done = true;
      --outstanding;
    }
    replies[i].ok = false;
    replies[i].error = why;
  };

  auto finish = [&](std::size_t i, http::Response response) {
    conns[i]->done = true;
    --outstanding;
    if (response.status != 200) {
      replies[i].error = "HTTP " + std::to_string(response.status);
      return;
    }
    try {
      rpc::Response parsed = rpc::parse_response(protocol, response.body);
      if (parsed.is_fault) {
        replies[i].error = parsed.fault_message;
      } else {
        replies[i].ok = true;
        replies[i].result = std::move(parsed.result);
      }
    } catch (const std::exception& e) {  // ParseError or rpc::Fault
      replies[i].error = e.what();
    }
  };

  auto pump = [&](std::size_t i) {
    FanOutConnection& conn = *conns[i];
    if (conn.done) return;
    try {
      if (conn.connecting) {
        // Connection establishment is part of the fan-out, covered by
        // the same deadline as the request itself — a blackholed node
        // times out instead of stalling every sibling behind a blocking
        // connect(2).
        if (!conn.tcp.finish_connect(targets[i].host, targets[i].port)) {
          return;  // handshake still in flight; the reactor will re-arm
        }
        conn.connecting = false;
      }
      while (conn.write_offset < conn.wire.size()) {
        std::size_t n = conn.tcp.write_some(std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(conn.wire.data()) +
                conn.write_offset,
            conn.wire.size() - conn.write_offset));
        if (n == 0) return;  // kernel buffer full
        conn.write_offset += n;
      }
      for (;;) {
        if (auto response = conn.parser.next()) {
          finish(i, std::move(*response));
          return;
        }
        std::array<std::uint8_t, 64 * 1024> chunk;
        auto n = conn.tcp.read_some(chunk);
        if (!n) return;  // EAGAIN
        if (*n == 0) {
          fail(i, "node closed connection");
          return;
        }
        conn.parser.feed(std::span<const std::uint8_t>(chunk.data(), *n));
      }
    } catch (const Error& e) {
      fail(i, e.what());
    }
  };

  for (std::size_t i = 0; i < targets.size(); ++i) {
    auto conn = std::make_unique<FanOutConnection>();
    try {
      conn->tcp = net::TcpConnection::connect_nonblocking(targets[i].host,
                                                          targets[i].port);
    } catch (const Error& e) {
      replies[i].error = e.what();
      continue;  // unreachable node: fan-out degrades, not fails
    }
    http::Request request;
    request.method = "POST";
    request.target = targets[i].endpoint;
    request.headers.set("Content-Type", rpc::content_type(protocol));
    request.headers.set("Host", targets[i].host);
    for (const auto& [name, value] : headers) {
      request.headers.set(name, value);
    }
    request.body = body;
    conn->wire = request.serialize();
    conns[i] = std::move(conn);
    ++outstanding;
    std::size_t index = i;
    reactor.add(conns[i]->tcp.fd(), net::Reactor::kRead | net::Reactor::kWrite,
                [&pump, index](std::uint32_t) { pump(index); });
  }

  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (conns[i]) pump(i);
  }
  util::Stopwatch timer;
  while (outstanding > 0) {
    if (timer.seconds() * 1000 > timeout_ms) {
      for (std::size_t i = 0; i < targets.size(); ++i) {
        if (conns[i] && !conns[i]->done) fail(i, "fan-out timeout");
      }
      break;
    }
    reactor.poll(50);
  }
  return replies;
}

AsyncRunResult AsyncCallDriver::run(std::size_t connections,
                                    std::uint64_t total_calls) {
  if (connections == 0) throw Error("need at least one connection");

  AsyncRunResult result;
  net::Reactor reactor;
  std::vector<std::unique_ptr<Connection>> conns;
  conns.reserve(connections);

  std::uint64_t started = 0;    // calls whose request began writing
  std::uint64_t completed = 0;  // responses fully parsed
  std::uint64_t faults = 0;

  // Connect everything before the timer starts (the paper measures the
  // response time of the calls, not TCP setup).
  for (std::size_t i = 0; i < connections; ++i) {
    auto conn = std::make_unique<Connection>();
    conn->tcp = net::TcpConnection::connect(host_, port_);
    conn->tcp.set_nonblocking(true);
    conns.push_back(std::move(conn));
  }

  util::Stopwatch timer;

  auto pump_connection = [&](Connection& conn) {
    // Write as much of the in-flight request as the socket accepts, then
    // read whatever responses have arrived.
    for (;;) {
      if (!conn.awaiting_response) {
        if (started >= total_calls) return;  // budget exhausted
        ++started;
        conn.awaiting_response = true;
        conn.write_offset = 0;
      }
      // Drain the write side.
      while (conn.write_offset < request_wire_.size()) {
        std::size_t n = conn.tcp.write_some(std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(request_wire_.data()) +
                conn.write_offset,
            request_wire_.size() - conn.write_offset));
        if (n == 0) return;  // kernel buffer full; wait for writability
        conn.write_offset += n;
      }
      // Read until the response completes or the socket would block.
      for (;;) {
        if (auto response = conn.parser.next()) {
          ++completed;
          // RPC faults still come back HTTP 200; spotting the fault
          // marker avoids a full parse in the hot loop.
          if (response->status != 200 ||
              response->body.find("faultCode") != std::string::npos ||
              response->body.find("\"error\":{") != std::string::npos) {
            ++faults;
          }
          conn.awaiting_response = false;
          break;  // issue the next call on this connection
        }
        std::array<std::uint8_t, 64 * 1024> chunk;
        auto n = conn.tcp.read_some(chunk);
        if (!n) return;  // EAGAIN
        if (*n == 0) throw SystemError("server closed benchmark connection");
        conn.parser.feed(std::span<const std::uint8_t>(chunk.data(), *n));
      }
      if (completed >= total_calls) return;
    }
  };

  for (auto& conn : conns) {
    Connection* raw = conn.get();
    reactor.add(raw->tcp.fd(), net::Reactor::kRead | net::Reactor::kWrite,
                [&pump_connection, raw](std::uint32_t) {
                  pump_connection(*raw);
                });
  }

  // Kick every connection once; afterwards the reactor drives progress.
  for (auto& conn : conns) pump_connection(*conn);
  while (completed < total_calls) {
    reactor.poll(100);
  }

  result.calls_completed = completed;
  result.faults = faults;
  result.elapsed_seconds = timer.seconds();
  return result;
}

}  // namespace clarens::client
