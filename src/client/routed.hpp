// Federation-aware client: follows redirect envelopes (ISSUE 8 tentpole).
//
// Against a federated head, file I/O calls come back as HTTP-307-style
// redirect envelopes ("the data lives on node X, here is your ticket").
// RoutedClient hides the hop: it calls the head, and when the result is a
// redirect it replays the same call against the owning node through a
// per-node keep-alive pool, presenting the head-minted node ticket as
// X-Clarens-Node-Ticket.
//
// Failure handling is retry-through-head: when the node call dies on a
// transport error (node restarted, was SIGKILLed, connection stale), the
// client discards the torn connection and asks the head again — the head
// re-routes around membership changes, so a bounded number of retries
// rides out a node restart with zero caller-visible failures for
// idempotent calls. Replay is gated on safety: a non-idempotent call
// (file.write, file.mkdir, file.rm, ...) whose request may have reached a
// server (TransportError::may_have_executed) is NOT replayed — the error
// propagates so the caller can decide, instead of risking a silent
// double-execution (a replayed file.rm would fault NotFound despite
// having succeeded). Calls that provably never reached a server retry
// freely regardless of method.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "client/peer_pool.hpp"
#include "rpc/value.hpp"

namespace clarens::client {

/// Retry pacing for the retry-through-head loop: capped exponential
/// backoff with deterministic jitter. Each retry waits
/// base_ms * multiplier^(attempt-1), saturating at max_ms, then spread
/// by +-jitter so a cluster-wide event (head restart) does not make
/// every client retry in lockstep. The jitter PRNG is seeded, so a
/// given policy produces one exact, testable schedule.
struct RetryPolicy {
  int max_attempts = 8;
  int base_ms = 100;  ///< delay before the second attempt
  int max_ms = 5000;  ///< cap the doubling saturates at
  double multiplier = 2.0;
  double jitter = 0.25;  ///< +- fraction applied to each delay
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;

  /// Delay before retry `attempt` (1 = first retry), advancing the
  /// jitter state (initialize from `seed`). Pure arithmetic.
  int delay_ms(int attempt, std::uint64_t& state) const;
};

class RoutedClient {
 public:
  /// `base` carries protocol, credential/chain, trust and endpoint path;
  /// host/port/TLS are derived from `head_url` (and per redirect target).
  RoutedClient(const std::string& head_url, ClientOptions base,
               RetryPolicy retry);
  RoutedClient(const std::string& head_url, ClientOptions base,
               int max_attempts = 8, int retry_backoff_ms = 100);

  /// The underlying head connection (authenticate() on it, etc.).
  ClarensClient& head() { return head_; }

  std::string authenticate() { return head_.authenticate(); }

  /// Invoke a method, transparently following one redirect hop and
  /// retrying through the head on node transport failures.
  rpc::Value call(const std::string& method,
                  const std::vector<rpc::Value>& params = {});

  /// Redirect hops taken so far (tests: proves calls really bounced).
  std::uint64_t redirects_followed() const { return redirects_followed_; }

  /// Node transport failures reported to the head via replica.report
  /// (tests: proves the suspect feedback loop fired).
  std::uint64_t failures_reported() const { return failures_reported_; }

 private:
  PeerPool pool_;
  ClarensClient head_;
  RetryPolicy retry_;
  std::uint64_t jitter_state_;
  std::uint64_t redirects_followed_ = 0;
  std::uint64_t failures_reported_ = 0;
};

}  // namespace clarens::client
