// Synchronous Clarens client.
//
// Speaks any of the three wire protocols over a keep-alive HTTP
// connection, optionally TLS. Authentication mirrors the server's two
// paths: over TLS the channel's client certificate *is* the identity;
// over plaintext the client proves key possession by signing a
// server-issued nonce (system.challenge / system.auth).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "http/parser.hpp"
#include "net/socket.hpp"
#include "pki/certificate.hpp"
#include "pki/verify.hpp"
#include "rpc/protocol.hpp"
#include "tls/channel.hpp"
#include "util/error.hpp"

namespace clarens::client {

/// Transport failure from ClarensClient with the one fact a retrying
/// caller needs: whether the request may have reached the server.
/// `may_have_executed == false` means the full request was never handed
/// to the kernel — replaying cannot double-execute, whatever the method.
/// `true` means the server may (or may not) have acted on it; only
/// idempotent methods are safe to replay then.
class TransportError : public SystemError {
 public:
  TransportError(std::string message, bool may_have_executed)
      : SystemError(std::move(message)),
        may_have_executed_(may_have_executed) {}

  bool may_have_executed() const { return may_have_executed_; }

 private:
  bool may_have_executed_;
};

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  rpc::Protocol protocol = rpc::Protocol::XmlRpc;

  /// Client credential: enables authenticate() on both transports, and
  /// mutual TLS when `use_tls`.
  std::optional<pki::Credential> credential;
  /// Chain certificates (the user certificate when credential is a proxy).
  std::vector<pki::Certificate> chain;

  bool use_tls = false;
  /// Trust anchors for verifying the server (required for TLS).
  const pki::TrustStore* trust = nullptr;

  /// RPC endpoint path.
  std::string endpoint = "/clarens";
};

class ClarensClient {
 public:
  explicit ClarensClient(ClientOptions options);
  ~ClarensClient();

  ClarensClient(const ClarensClient&) = delete;
  ClarensClient& operator=(const ClarensClient&) = delete;

  /// Establish the connection (and TLS handshake if configured).
  void connect();
  void close();
  bool connected() const { return stream_ != nullptr; }

  /// Obtain a session. Over TLS: system.auth with the channel identity.
  /// Over plaintext: challenge-response with the credential.
  /// Returns the session token (also remembered for subsequent calls).
  std::string authenticate();

  /// Log in with a stored proxy: DN + password only (proxy.logon).
  std::string proxy_logon(const std::string& dn, const std::string& password);

  /// Use an existing session token (e.g. resumed after a server restart).
  void set_session(std::string token) { session_ = std::move(token); }
  const std::string& session() const { return session_; }

  /// Attach a header to every subsequent request (replacing any previous
  /// value for `name`); an empty value removes it. Used for federation
  /// node tickets (X-Clarens-Node-Ticket).
  void set_header(const std::string& name, const std::string& value);

  /// Invoke a method. Throws rpc::Fault on fault responses and
  /// clarens::SystemError on transport failure.
  ///
  /// Retry policy for torn keep-alive connections: a failure on a
  /// *reused* connection is retried exactly once on a fresh connection,
  /// but only when replaying cannot double-execute the call — either the
  /// request never finished writing, or the method is idempotent (see
  /// is_idempotent_method) and no response bytes had arrived. Failures
  /// on a fresh connection, non-idempotent calls that reached the
  /// server, and partially received responses all propagate.
  rpc::Value call(const std::string& method,
                  const std::vector<rpc::Value>& params = {});

  /// HTTP GET (file download). Returns the response; byte ranges via the
  /// server's offset/length query parameters.
  http::Response get(const std::string& path, std::int64_t offset = 0,
                     std::int64_t length = -1);

  // File-service conveniences.
  std::vector<std::uint8_t> file_read(const std::string& path,
                                      std::int64_t offset, std::int64_t length);
  std::string file_md5(const std::string& path);
  std::vector<std::string> file_ls_names(const std::string& path);

  const ClientOptions& options() const { return options_; }

 private:
  http::Response roundtrip(const http::Request& request, bool idempotent);
  void apply_extra_headers(http::Request& request) const;

  ClientOptions options_;
  std::unique_ptr<net::Stream> stream_;
  http::ResponseParser parser_;
  std::string session_;
  std::vector<std::pair<std::string, std::string>> extra_headers_;
  std::uint64_t next_id_ = 1;
};

/// Is `method` safe to replay when a keep-alive connection died after the
/// request may have reached the server? Read-only modules (system.*,
/// echo.*, discovery.*) and the read-side file.* / proxy.* methods are;
/// everything else — writes, job submission, logouts — is not.
bool is_idempotent_method(const std::string& method);

}  // namespace clarens::client
