// Asynchronous multi-connection call driver — the paper's benchmark
// client (§4): "a single process opening connections to the server and
// completing requests asynchronously".
//
// N keep-alive connections are driven from one epoll loop; each
// connection independently pipelines call → response → next call until a
// shared call budget is exhausted. Used by bench_fig4_throughput to
// reproduce Figure 4's throughput-vs-#clients curve.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "rpc/protocol.hpp"

namespace clarens::client {

struct AsyncRunResult {
  std::uint64_t calls_completed = 0;
  std::uint64_t faults = 0;
  double elapsed_seconds = 0;

  double calls_per_second() const {
    return elapsed_seconds > 0 ? static_cast<double>(calls_completed) /
                                     elapsed_seconds
                               : 0;
  }
};

/// One endpoint of a fan_out() call (plaintext HTTP).
struct FanOutTarget {
  std::string host;
  std::uint16_t port = 0;
  std::string endpoint = "/clarens";
};

/// Per-target outcome of a fan_out() call. `ok` is false on transport
/// failure, timeout, or an RPC fault; a down node degrades the merged
/// result instead of failing the whole fan-out.
struct FanOutReply {
  bool ok = false;
  rpc::Value result;
  std::string error;
};

/// Issue the same call against every target concurrently from one epoll
/// loop — the head-side primitive for namespace operations that span
/// storage nodes (a federated `file.ls /` asks every node at once
/// instead of serially). `headers` ride on each request (node tickets);
/// replies slower than `timeout_ms` come back as failed.
std::vector<FanOutReply> fan_out(
    const std::vector<FanOutTarget>& targets, const std::string& method,
    const std::vector<rpc::Value>& params,
    const std::vector<std::pair<std::string, std::string>>& headers = {},
    rpc::Protocol protocol = rpc::Protocol::XmlRpc, int timeout_ms = 5000);

class AsyncCallDriver {
 public:
  /// Every connection issues the same request, authenticated by
  /// `session_token` (obtained once, out of band — matching the paper's
  /// setup where login precedes the measured window).
  AsyncCallDriver(std::string host, std::uint16_t port,
                  std::string session_token, std::string method,
                  std::vector<rpc::Value> params,
                  rpc::Protocol protocol = rpc::Protocol::XmlRpc);

  /// Open `connections` sockets and complete `total_calls` calls spread
  /// across them. Connection setup happens before the timer starts.
  AsyncRunResult run(std::size_t connections, std::uint64_t total_calls);

 private:
  std::string host_;
  std::uint16_t port_;
  std::string request_wire_;  // pre-serialized request (identical per call)
};

}  // namespace clarens::client
