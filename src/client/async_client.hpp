// Asynchronous multi-connection call driver — the paper's benchmark
// client (§4): "a single process opening connections to the server and
// completing requests asynchronously".
//
// N keep-alive connections are driven from one epoll loop; each
// connection independently pipelines call → response → next call until a
// shared call budget is exhausted. Used by bench_fig4_throughput to
// reproduce Figure 4's throughput-vs-#clients curve.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rpc/protocol.hpp"

namespace clarens::client {

struct AsyncRunResult {
  std::uint64_t calls_completed = 0;
  std::uint64_t faults = 0;
  double elapsed_seconds = 0;

  double calls_per_second() const {
    return elapsed_seconds > 0 ? static_cast<double>(calls_completed) /
                                     elapsed_seconds
                               : 0;
  }
};

class AsyncCallDriver {
 public:
  /// Every connection issues the same request, authenticated by
  /// `session_token` (obtained once, out of band — matching the paper's
  /// setup where login precedes the measured window).
  AsyncCallDriver(std::string host, std::uint16_t port,
                  std::string session_token, std::string method,
                  std::vector<rpc::Value> params,
                  rpc::Protocol protocol = rpc::Protocol::XmlRpc);

  /// Open `connections` sockets and complete `total_calls` calls spread
  /// across them. Connection setup happens before the timer starts.
  AsyncRunResult run(std::size_t connections, std::uint64_t total_calls);

 private:
  std::string host_;
  std::uint16_t port_;
  std::string request_wire_;  // pre-serialized request (identical per call)
};

}  // namespace clarens::client
