#include "net/reactor.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace clarens::net {

namespace {

std::uint32_t to_epoll(std::uint32_t interest) {
  std::uint32_t events = 0;
  if (interest & Reactor::kRead) events |= EPOLLIN;
  if (interest & Reactor::kWrite) events |= EPOLLOUT;
  return events;
}

}  // namespace

Reactor::Reactor() {
  int efd = epoll_create1(0);
  if (efd < 0) throw SystemError(std::string("epoll_create1: ") + std::strerror(errno));
  epoll_fd_ = Fd(efd);

  int wfd = eventfd(0, EFD_NONBLOCK);
  if (wfd < 0) throw SystemError(std::string("eventfd: ") + std::strerror(errno));
  wake_fd_ = Fd(wfd);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wfd;
  epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wfd, &ev);
}

Reactor::~Reactor() = default;

void Reactor::add(int fd, std::uint32_t interest, Callback callback) {
  epoll_event ev{};
  ev.events = to_epoll(interest);
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw SystemError(std::string("epoll_ctl(ADD): ") + std::strerror(errno));
  }
  util::LockGuard lock(mutex_);
  callbacks_[fd] = std::move(callback);
}

void Reactor::modify(int fd, std::uint32_t interest) {
  epoll_event ev{};
  ev.events = to_epoll(interest);
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw SystemError(std::string("epoll_ctl(MOD): ") + std::strerror(errno));
  }
}

void Reactor::remove(int fd) {
  epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
  util::LockGuard lock(mutex_);
  callbacks_.erase(fd);
}

bool Reactor::watching(int fd) const {
  util::LockGuard lock(mutex_);
  return callbacks_.count(fd) != 0;
}

std::size_t Reactor::watched() const {
  util::LockGuard lock(mutex_);
  return callbacks_.size();
}

void Reactor::post(std::function<void()> task) {
  {
    util::LockGuard lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  wake();
}

void Reactor::wake() {
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_.get(), &one, sizeof(one));
}

int Reactor::poll(int timeout_ms) {
  std::array<epoll_event, 128> events;
  int n = epoll_wait(epoll_fd_.get(), events.data(),
                     static_cast<int>(events.size()), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throw SystemError(std::string("epoll_wait: ") + std::strerror(errno));
  }
  ++ticks_;
  int handled = 0;
  for (int i = 0; i < n; ++i) {
    int fd = events[i].data.fd;
    if (fd == wake_fd_.get()) {
      std::uint64_t v;
      while (::read(wake_fd_.get(), &v, sizeof(v)) > 0) {
      }
      continue;
    }
    std::uint32_t ready = 0;
    if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) ready |= kRead;
    if (events[i].events & EPOLLOUT) ready |= kWrite;
    // Copy the callback: it may remove itself (or be removed) while
    // running, and the lock is never held across the call.
    Callback cb;
    {
      util::LockGuard lock(mutex_);
      auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) continue;  // removed by an earlier callback
      cb = it->second;
    }
    cb(ready);
    ++handled;
  }
  // Posted tasks run after fd dispatch so they observe a settled table.
  std::vector<std::function<void()>> tasks;
  {
    util::LockGuard lock(mutex_);
    tasks.swap(tasks_);
  }
  for (auto& task : tasks) task();
  return handled;
}

void Reactor::run() {
  // Do not reset stopping_ here: stop() may legitimately arrive before
  // the spawned thread reaches run(), and that request must stick.
  while (!stopping_.load()) poll(100);
}

void Reactor::stop() {
  stopping_.store(true);
  wake();
}

}  // namespace clarens::net
