// epoll reactor: single-threaded readiness dispatch used by the HTTP
// server's accept/IO loop and by the asynchronous benchmark client.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>

#include "net/socket.hpp"

namespace clarens::net {

class Reactor {
 public:
  enum Interest : std::uint32_t {
    kRead = 1,
    kWrite = 2,
  };

  /// Callback receives the ready interest mask.
  using Callback = std::function<void(std::uint32_t ready)>;

  Reactor();
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  void add(int fd, std::uint32_t interest, Callback callback);
  void modify(int fd, std::uint32_t interest);
  void remove(int fd);
  bool watching(int fd) const { return callbacks_.count(fd) != 0; }

  /// Dispatch ready events; waits at most `timeout_ms` (-1 = forever).
  /// Returns number of events handled.
  int poll(int timeout_ms);

  /// Run poll() until stop() is called.
  void run();
  void stop();

  std::size_t watched() const { return callbacks_.size(); }

 private:
  Fd epoll_fd_;
  Fd wake_fd_;  // eventfd to interrupt run()
  std::map<int, Callback> callbacks_;
  // stop() may be called from another thread while run() polls.
  std::atomic<bool> stopping_{false};
};

}  // namespace clarens::net
