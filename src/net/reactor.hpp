// epoll reactor: readiness dispatch used by the HTTP server's accept/IO
// loop and by the asynchronous benchmark client.
//
// The callback table is mutex-guarded so fds may be added/removed from
// other threads (the HTTP worker pool schedules connection teardown onto
// the reactor thread via post()). Callbacks themselves always run on the
// thread calling poll()/run().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/socket.hpp"
#include "util/sync.hpp"

namespace clarens::net {

class Reactor {
 public:
  enum Interest : std::uint32_t {
    kRead = 1,
    kWrite = 2,
  };

  /// Callback receives the ready interest mask.
  using Callback = std::function<void(std::uint32_t ready)>;

  Reactor();
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  void add(int fd, std::uint32_t interest, Callback callback);
  void modify(int fd, std::uint32_t interest);
  void remove(int fd);
  bool watching(int fd) const;

  /// Enqueue a task to run on the polling thread after the current (or
  /// next) dispatch round. Thread-safe; wakes a blocked poll().
  void post(std::function<void()> task);

  /// Dispatch ready events and posted tasks; waits at most `timeout_ms`
  /// (-1 = forever). Returns number of fd events handled.
  int poll(int timeout_ms);

  /// Run poll() until stop() is called.
  void run();
  void stop();

  std::size_t watched() const;

  /// Number of poll() rounds completed so far. Only meaningful on the
  /// polling thread (unsynchronized): callbacks use it to detect "same
  /// epoll tick" for per-tick budgets (e.g. the HTTP server's inline
  /// dispatch budget).
  std::uint64_t ticks() const { return ticks_; }

 private:
  void wake();

  Fd epoll_fd_;
  Fd wake_fd_;  // eventfd to interrupt run()
  // Guards callbacks_ and tasks_; add/remove/post may race with poll()
  // on another thread. Never held while a callback or task executes.
  mutable util::Mutex mutex_{util::LockLevel::kNetReactorTasks};
  std::map<int, Callback> callbacks_ CLARENS_GUARDED_BY(mutex_);
  std::vector<std::function<void()>> tasks_ CLARENS_GUARDED_BY(mutex_);
  // stop() may be called from another thread while run() polls.
  std::atomic<bool> stopping_{false};
  // Polling-thread only; see ticks().
  std::uint64_t ticks_ = 0;
};

}  // namespace clarens::net
