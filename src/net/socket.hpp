// RAII TCP/UDP sockets.
//
// The Clarens architecture (Fig. 1) hands network I/O to the web server;
// this module is the socket substrate that the HTTP server, TLS channel,
// clients, and the UDP-based discovery publishers are built on.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace clarens::net {

/// Owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd();

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release();
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Abstract byte stream so the HTTP layer can run over plain TCP or over
/// the TLS-like secure channel interchangeably.
class Stream {
 public:
  virtual ~Stream() = default;

  /// Blocking read; returns bytes read, 0 on orderly EOF.
  /// Throws clarens::SystemError on socket errors.
  virtual std::size_t read(std::span<std::uint8_t> out) = 0;

  /// Blocking write of the full span.
  virtual void write_all(std::span<const std::uint8_t> data) = 0;

  /// Scatter-gather write of all chunks, in order. The base implementation
  /// loops write_all (TLS streams must encrypt per record anyway); the TCP
  /// stream overrides it with a single writev(2) so a response's header and
  /// body leave in one syscall without being glued into a temporary.
  virtual void write_vec(std::span<const std::string_view> chunks);

  virtual void close() = 0;

  void write_all(std::string_view s) {
    write_all(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }
};

class TcpConnection : public Stream {
 public:
  TcpConnection() = default;
  explicit TcpConnection(Fd fd) : fd_(std::move(fd)) {}

  /// Blocking connect to host:port (IPv4 dotted quad or "localhost").
  static TcpConnection connect(const std::string& host, std::uint16_t port);

  /// Begin a non-blocking connect: the socket is created O_NONBLOCK and
  /// the handshake is initiated but not awaited (EINPROGRESS is the
  /// normal outcome). Poll the fd for writability, then finish_connect().
  /// Immediate failures (bad address, no route) throw right here.
  static TcpConnection connect_nonblocking(const std::string& host,
                                           std::uint16_t port);

  /// Progress check after connect_nonblocking: true once the connection
  /// is established (TCP_NODELAY is applied then), false while the
  /// handshake is still in flight, throws SystemError when the connect
  /// failed (refused, timed out, unreachable).
  bool finish_connect(const std::string& host, std::uint16_t port);

  std::size_t read(std::span<std::uint8_t> out) override;
  void write_all(std::span<const std::uint8_t> data) override;
  using Stream::write_all;
  void write_vec(std::span<const std::string_view> chunks) override;
  void close() override;

  /// Non-blocking variants for the async client/reactor:
  /// read: returns nullopt on EAGAIN, 0 on EOF.
  std::optional<std::size_t> read_some(std::span<std::uint8_t> out);
  /// write: returns bytes accepted (possibly 0 on EAGAIN).
  std::size_t write_some(std::span<const std::uint8_t> data);
  /// Vectored non-blocking write: one writev(2) attempt over up to 8
  /// chunks; returns bytes accepted (possibly 0 on EAGAIN). The reactor's
  /// inline-dispatch path sends header + body with this and parks any
  /// remainder in a per-connection outbox instead of blocking.
  std::size_t writev_some(std::span<const std::string_view> chunks);

  void set_nonblocking(bool on);
  void set_nodelay(bool on);

  /// Block until the socket is writable (or `timeout_ms` elapses;
  /// -1 = forever). Returns true when writable.
  // clarens-lint: allow(reactor-blocking): declaration of the blessed worker-side wait primitive.
  bool wait_writable(int timeout_ms);

  int fd() const { return fd_.get(); }
  bool valid() const { return fd_.valid(); }

  /// Zero-copy transfer from a file descriptor using sendfile(2) — the
  /// syscall the paper credits for low-CPU high-throughput file serving.
  /// Falls back to splice(2) through a pipe, then to a read/write loop,
  /// when the kernel refuses sendfile for this fd pair. Returns bytes
  /// sent. Polls for writability on non-blocking sockets.
  std::size_t sendfile(int file_fd, std::int64_t offset, std::size_t count);

 private:
  std::size_t splice_from(int file_fd, std::int64_t offset, std::size_t count);
  std::size_t copy_from(int file_fd, std::int64_t offset, std::size_t count);

  Fd fd_;
};

class TcpListener {
 public:
  /// Bind and listen. Port 0 picks an ephemeral port; local_port() then
  /// reports the chosen one. `host` defaults to loopback.
  static TcpListener listen(std::uint16_t port, const std::string& host = "127.0.0.1",
                            int backlog = 256);

  /// Blocking accept.
  TcpConnection accept();

  void set_nonblocking(bool on);
  /// Non-blocking accept; nullopt when no pending connection.
  std::optional<TcpConnection> accept_nonblocking();

  std::uint16_t local_port() const { return port_; }
  int fd() const { return fd_.get(); }

  /// Wake any thread blocked in accept() without releasing the fd —
  /// safe to call from another thread (close() is not: it mutates the
  /// descriptor while accept() reads it). Call close() after joining.
  void shutdown();
  void close();

 private:
  Fd fd_;
  std::uint16_t port_ = 0;
};

class UdpSocket {
 public:
  /// Bind to a local port (0 = ephemeral).
  static UdpSocket bind(std::uint16_t port, const std::string& host = "127.0.0.1");

  void send_to(const std::string& host, std::uint16_t port,
               std::span<const std::uint8_t> data);
  void send_to(const std::string& host, std::uint16_t port, std::string_view s) {
    send_to(host, port,
            std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }

  /// Blocking receive with timeout; nullopt on timeout.
  std::optional<std::string> recv(int timeout_ms);

  std::uint16_t local_port() const { return port_; }
  int fd() const { return fd_.get(); }

 private:
  Fd fd_;
  std::uint16_t port_ = 0;
};

}  // namespace clarens::net
