#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/sendfile.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace clarens::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw SystemError(what + ": " + std::strerror(errno));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  std::string h = (host == "localhost") ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, h.c_str(), &addr.sin_addr) != 1) {
    throw SystemError("invalid IPv4 address: " + host);
  }
  return addr;
}

std::uint16_t bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

}  // namespace

Fd::~Fd() {
  if (fd_ >= 0) ::close(fd_);
}

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset(other.fd_);
    other.fd_ = -1;
  }
  return *this;
}

int Fd::release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

TcpConnection TcpConnection::connect(const std::string& host,
                                     std::uint16_t port) {
  // Blackhole fault: pretend the host dropped off the network. Armed per
  // "host:port" detail by the cluster fault tests.
  if (CLARENS_FAULT("net.connect", host + ":" + std::to_string(port))) {
    throw SystemError("injected blackhole: connect to " + host + ":" +
                      std::to_string(port));
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Fd owned(fd);
  sockaddr_in addr = make_addr(host, port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("connect to " + host + ":" + std::to_string(port));
  }
  TcpConnection conn(std::move(owned));
  conn.set_nodelay(true);
  return conn;
}

TcpConnection TcpConnection::connect_nonblocking(const std::string& host,
                                                 std::uint16_t port) {
  if (CLARENS_FAULT("net.connect", host + ":" + std::to_string(port))) {
    throw SystemError("injected blackhole: connect to " + host + ":" +
                      std::to_string(port));
  }
  int raw = ::socket(AF_INET, SOCK_STREAM, 0);
  if (raw < 0) throw_errno("socket");
  TcpConnection conn{Fd(raw)};
  conn.set_nonblocking(true);
  sockaddr_in addr = make_addr(host, port);
  if (::connect(raw, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    throw_errno("connect to " + host + ":" + std::to_string(port));
  }
  return conn;
}

bool TcpConnection::finish_connect(const std::string& host,
                                   std::uint16_t port) {
  // Re-issuing connect() reports the handshake state without needing a
  // prior readiness notification: EALREADY/EINPROGRESS while in flight,
  // EISCONN (or 0) once established, the real error on failure.
  sockaddr_in addr = make_addr(host, port);
  if (::connect(fd_.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) == 0 ||
      errno == EISCONN) {
    set_nodelay(true);
    return true;
  }
  if (errno == EALREADY || errno == EINPROGRESS || errno == EINTR ||
      errno == EAGAIN || errno == EWOULDBLOCK) {
    return false;
  }
  throw_errno("connect to " + host + ":" + std::to_string(port));
}

std::size_t TcpConnection::read(std::span<std::uint8_t> out) {
  for (;;) {
    ssize_t n = ::read(fd_.get(), out.data(), out.size());
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    throw_errno("read");
  }
}

void TcpConnection::write_all(std::span<const std::uint8_t> data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::write(fd_.get(), data.data() + sent, data.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Non-blocking fd with a full socket buffer: wait for drainage so
        // write_all keeps its full-span contract on worker-owned writes.
        // clarens-lint: allow(reactor-blocking): worker-side blocking write; the reactor's inline path uses writev_some + outbox instead.
        wait_writable(-1);
        continue;
      }
      throw_errno("write");
    }
    sent += static_cast<std::size_t>(n);
  }
}

void Stream::write_vec(std::span<const std::string_view> chunks) {
  for (std::string_view chunk : chunks) write_all(chunk);
}

void TcpConnection::write_vec(std::span<const std::string_view> chunks) {
  // One writev(2) in the common case: header + body leave the process in
  // a single syscall without gluing them into a temporary string.
  iovec iov[8];
  std::size_t count = 0;
  std::size_t total = 0;
  for (std::string_view chunk : chunks) {
    if (chunk.empty()) continue;
    if (count == std::size(iov)) {  // overflow: flush what we have
      break;
    }
    iov[count].iov_base = const_cast<char*>(chunk.data());
    iov[count].iov_len = chunk.size();
    total += chunk.size();
    ++count;
  }
  if (count == 0) return;
  std::size_t sent = 0;
  std::size_t first = 0;
  while (sent < total) {
    ssize_t n = ::writev(fd_.get(), iov + first, static_cast<int>(count - first));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // clarens-lint: allow(reactor-blocking): worker-side blocking write; the reactor's inline path uses writev_some + outbox instead.
        wait_writable(-1);
        continue;
      }
      throw_errno("writev");
    }
    sent += static_cast<std::size_t>(n);
    // Skip fully-sent iovecs; trim a partially-sent one.
    std::size_t done = static_cast<std::size_t>(n);
    while (first < count && done >= iov[first].iov_len) {
      done -= iov[first].iov_len;
      ++first;
    }
    if (first < count && done > 0) {
      iov[first].iov_base = static_cast<char*>(iov[first].iov_base) + done;
      iov[first].iov_len -= done;
    }
  }
  // Chunks beyond the iovec window (rare: >8 non-empty chunks) fall back.
  std::size_t consumed = 0;
  for (std::string_view chunk : chunks) {
    if (chunk.empty()) continue;
    if (consumed == std::size(iov)) write_all(chunk);
    else ++consumed;
  }
}

// clarens-lint: allow(reactor-blocking): the blocking-wait primitive itself; callers on the reactor thread are forbidden, workers may block here.
bool TcpConnection::wait_writable(int timeout_ms) {
  pollfd pfd{fd_.get(), POLLOUT, 0};
  for (;;) {
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    return rc > 0;
  }
}

void TcpConnection::close() { fd_.reset(); }

std::optional<std::size_t> TcpConnection::read_some(std::span<std::uint8_t> out) {
  for (;;) {
    ssize_t n = ::read(fd_.get(), out.data(), out.size());
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
    throw_errno("read");
  }
}

std::size_t TcpConnection::write_some(std::span<const std::uint8_t> data) {
  for (;;) {
    ssize_t n = ::write(fd_.get(), data.data(), data.size());
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    throw_errno("write");
  }
}

std::size_t TcpConnection::writev_some(
    std::span<const std::string_view> chunks) {
  iovec iov[8];
  std::size_t count = 0;
  for (std::string_view chunk : chunks) {
    if (chunk.empty() || count == std::size(iov)) continue;
    iov[count].iov_base = const_cast<char*>(chunk.data());
    iov[count].iov_len = chunk.size();
    ++count;
  }
  if (count == 0) return 0;
  for (;;) {
    ssize_t n = ::writev(fd_.get(), iov, static_cast<int>(count));
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    throw_errno("writev");
  }
}

void TcpConnection::set_nonblocking(bool on) {
  int flags = fcntl(fd_.get(), F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  flags = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (fcntl(fd_.get(), F_SETFL, flags) != 0) throw_errno("fcntl(F_SETFL)");
}

void TcpConnection::set_nodelay(bool on) {
  int v = on ? 1 : 0;
  if (setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &v, sizeof(v)) != 0) {
    throw_errno("setsockopt(TCP_NODELAY)");
  }
}

std::size_t TcpConnection::sendfile(int file_fd, std::int64_t offset,
                                    std::size_t count) {
  off_t off = static_cast<off_t>(offset);
  std::size_t total = 0;
  while (total < count) {
    ssize_t n = ::sendfile(fd_.get(), file_fd, &off, count - total);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // clarens-lint: allow(reactor-blocking): file regions are streamed by workers; inline dispatch spills them before reaching here.
        wait_writable(-1);
        continue;
      }
      if ((errno == EINVAL || errno == ENOSYS) && total == 0) {
        // Kernel refuses sendfile for this fd pair (e.g. the source is
        // not mmap-able): degrade to splice through a pipe, still never
        // copying the payload into userspace.
        return splice_from(file_fd, offset, count);
      }
      throw_errno("sendfile");
    }
    if (n == 0) break;  // EOF on source file
    total += static_cast<std::size_t>(n);
  }
  return total;
}

std::size_t TcpConnection::splice_from(int file_fd, std::int64_t offset,
                                       std::size_t count) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return copy_from(file_fd, offset, count);  // no pipes left: plain copy
  }
  Fd pipe_r(pipe_fds[0]);
  Fd pipe_w(pipe_fds[1]);
  loff_t off = static_cast<loff_t>(offset);
  std::size_t total = 0;
  while (total < count) {
    ssize_t in = ::splice(file_fd, &off, pipe_w.get(), nullptr, count - total,
                          SPLICE_F_MOVE);
    if (in < 0) {
      if (errno == EINTR) continue;
      if ((errno == EINVAL || errno == ENOSYS) && total == 0) {
        return copy_from(file_fd, offset, count);
      }
      throw_errno("splice(file->pipe)");
    }
    if (in == 0) break;  // EOF on source file
    std::size_t in_pipe = static_cast<std::size_t>(in);
    while (in_pipe > 0) {
      ssize_t out = ::splice(pipe_r.get(), nullptr, fd_.get(), nullptr,
                             in_pipe, SPLICE_F_MOVE);
      if (out < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          // clarens-lint: allow(reactor-blocking): worker-side streaming path, like sendfile above.
          wait_writable(-1);
          continue;
        }
        throw_errno("splice(pipe->socket)");
      }
      in_pipe -= static_cast<std::size_t>(out);
      total += static_cast<std::size_t>(out);
    }
  }
  return total;
}

std::size_t TcpConnection::copy_from(int file_fd, std::int64_t offset,
                                     std::size_t count) {
  std::size_t total = 0;
  std::array<std::uint8_t, 64 * 1024> buf;
  while (total < count) {
    std::size_t want = std::min(count - total, buf.size());
    ssize_t n = ::pread(file_fd, buf.data(), want,
                        static_cast<off_t>(offset + static_cast<std::int64_t>(total)));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("pread");
    }
    if (n == 0) break;  // EOF on source file
    write_all(std::span<const std::uint8_t>(buf.data(),
                                            static_cast<std::size_t>(n)));
    total += static_cast<std::size_t>(n);
  }
  return total;
}

TcpListener TcpListener::listen(std::uint16_t port, const std::string& host,
                                int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  TcpListener listener;
  listener.fd_ = Fd(fd);
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, backlog) != 0) throw_errno("listen");
  listener.port_ = bound_port(fd);
  return listener;
}

TcpConnection TcpListener::accept() {
  for (;;) {
    int fd = ::accept(fd_.get(), nullptr, nullptr);
    if (fd >= 0) {
      TcpConnection conn{Fd(fd)};
      conn.set_nodelay(true);
      return conn;
    }
    if (errno == EINTR) continue;
    throw_errno("accept");
  }
}

void TcpListener::set_nonblocking(bool on) {
  int flags = fcntl(fd_.get(), F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  flags = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (fcntl(fd_.get(), F_SETFL, flags) != 0) throw_errno("fcntl(F_SETFL)");
}

std::optional<TcpConnection> TcpListener::accept_nonblocking() {
  for (;;) {
    int fd = ::accept(fd_.get(), nullptr, nullptr);
    if (fd >= 0) {
      TcpConnection conn{Fd(fd)};
      conn.set_nodelay(true);
      return conn;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
    throw_errno("accept");
  }
}

void TcpListener::shutdown() {
  // ::shutdown() wakes a blocked accept() (plain close() does not on
  // Linux) and leaves fd_ untouched, so concurrent readers are safe.
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

void TcpListener::close() {
  shutdown();
  fd_.reset();
}

UdpSocket UdpSocket::bind(std::uint16_t port, const std::string& host) {
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) throw_errno("socket(udp)");
  UdpSocket sock;
  sock.fd_ = Fd(fd);
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("bind udp " + host + ":" + std::to_string(port));
  }
  sock.port_ = bound_port(fd);
  return sock;
}

void UdpSocket::send_to(const std::string& host, std::uint16_t port,
                        std::span<const std::uint8_t> data) {
  sockaddr_in addr = make_addr(host, port);
  ssize_t n = ::sendto(fd_.get(), data.data(), data.size(), 0,
                       reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (n < 0) throw_errno("sendto");
}

std::optional<std::string> UdpSocket::recv(int timeout_ms) {
  pollfd pfd{fd_.get(), POLLIN, 0};
  int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc < 0) throw_errno("poll");
  if (rc == 0) return std::nullopt;
  char buf[65536];
  ssize_t n = ::recvfrom(fd_.get(), buf, sizeof(buf), 0, nullptr, nullptr);
  if (n < 0) throw_errno("recvfrom");
  return std::string(buf, static_cast<std::size_t>(n));
}

}  // namespace clarens::net
