#include "pki/dn.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace clarens::pki {

DistinguishedName DistinguishedName::parse(std::string_view text) {
  text = util::trim(text);
  if (text.empty()) return DistinguishedName();
  if (text.front() != '/') {
    throw ParseError("DN must start with '/': '" + std::string(text) + "'");
  }
  std::vector<Attribute> attributes;
  // Components are separated by '/'. A segment without '=' is part of the
  // previous component's *value* — grid DNs legitimately contain slashes,
  // e.g. the paper's server DN ".../CN=host/www.mysite.edu".
  for (const auto& component : util::split(text.substr(1), '/')) {
    std::size_t eq = component.find('=');
    if (eq == std::string::npos && !attributes.empty()) {
      attributes.back().second += "/" + component;
      continue;
    }
    if (eq == std::string::npos || eq == 0) {
      throw ParseError("invalid DN component: '" + component + "'");
    }
    std::string key(util::trim(std::string_view(component).substr(0, eq)));
    std::string value(util::trim(std::string_view(component).substr(eq + 1)));
    if (key.empty() || value.empty()) {
      throw ParseError("empty key or value in DN component: '" + component + "'");
    }
    attributes.emplace_back(std::move(key), std::move(value));
  }
  return DistinguishedName(std::move(attributes));
}

std::string DistinguishedName::str() const {
  std::string out;
  for (const auto& [key, value] : attributes_) {
    out.push_back('/');
    out.append(key);
    out.push_back('=');
    out.append(value);
  }
  return out;
}

std::string DistinguishedName::get(std::string_view key) const {
  for (const auto& [k, v] : attributes_) {
    if (k == key) return v;
  }
  return "";
}

bool DistinguishedName::is_prefix_of(const DistinguishedName& other) const {
  if (attributes_.size() > other.attributes_.size()) return false;
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i] != other.attributes_[i]) return false;
  }
  return true;
}

DistinguishedName DistinguishedName::with(std::string key,
                                          std::string value) const {
  std::vector<Attribute> attributes = attributes_;
  attributes.emplace_back(std::move(key), std::move(value));
  return DistinguishedName(std::move(attributes));
}

}  // namespace clarens::pki
