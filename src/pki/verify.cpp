#include "pki/verify.hpp"

#include "util/error.hpp"

namespace clarens::pki {

void TrustStore::add_authority(const Certificate& ca_cert) {
  if (!ca_cert.is_ca()) {
    throw Error("trust anchor must be an authority certificate");
  }
  if (ca_cert.subject() != ca_cert.issuer() ||
      !ca_cert.check_signature(ca_cert.public_key())) {
    throw Error("trust anchor must be validly self-signed");
  }
  anchors_[ca_cert.subject().str()] = ca_cert;
}

std::optional<Certificate> TrustStore::find_authority(
    const DistinguishedName& dn) const {
  auto it = anchors_.find(dn.str());
  if (it == anchors_.end()) return std::nullopt;
  return it->second;
}

TrustStore::Result TrustStore::verify_against_anchor(const Certificate& cert,
                                                     std::int64_t now) const {
  Result result;
  auto anchor = find_authority(cert.issuer());
  if (!anchor) {
    result.error = "unknown issuer: " + cert.issuer().str();
    return result;
  }
  if (!anchor->valid_at(now)) {
    result.error = "issuing authority certificate expired";
    return result;
  }
  if (!cert.valid_at(now)) {
    result.error = "certificate outside validity window";
    return result;
  }
  if (!cert.check_signature(anchor->public_key())) {
    result.error = "bad certificate signature";
    return result;
  }
  result.ok = true;
  result.identity = cert.subject();
  return result;
}

TrustStore::Result TrustStore::verify(const std::vector<Certificate>& chain,
                                      std::int64_t now) const {
  Result result;
  if (chain.empty()) {
    result.error = "empty certificate chain";
    return result;
  }
  const Certificate& leaf = chain.front();

  if (!leaf.is_proxy()) {
    if (chain.size() != 1) {
      result.error = "non-proxy chain must contain exactly one certificate";
      return result;
    }
    return verify_against_anchor(leaf, now);
  }

  // Proxy chain: [proxy, user].
  if (chain.size() != 2) {
    result.error = "proxy chain must be [proxy, user]";
    return result;
  }
  const Certificate& user = chain[1];
  if (user.is_proxy()) {
    result.error = "proxy chains may not be nested";
    return result;
  }
  if (leaf.issuer() != user.subject()) {
    result.error = "proxy issuer does not match user certificate subject";
    return result;
  }
  if (!user.subject().is_prefix_of(leaf.subject())) {
    result.error = "proxy DN must extend the user DN";
    return result;
  }
  if (!leaf.valid_at(now)) {
    result.error = "proxy certificate outside validity window";
    return result;
  }
  if (!leaf.check_signature(user.public_key())) {
    result.error = "bad proxy signature";
    return result;
  }
  Result user_result = verify_against_anchor(user, now);
  if (!user_result.ok) return user_result;

  // Delegation: the proxy acts as the user.
  result.ok = true;
  result.identity = user.subject();
  result.via_proxy = true;
  return result;
}

}  // namespace clarens::pki
