// Certificate authority: issues user/server certificates, and users issue
// their own proxy certificates (delegation, paper §2.6).
#pragma once

#include <cstdint>
#include <string>

#include "pki/certificate.hpp"

namespace clarens::pki {

class CertificateAuthority {
 public:
  /// Create a fresh self-signed CA. `key_bits` applies to the CA key and
  /// to every key it generates for issued certificates.
  static CertificateAuthority create(const DistinguishedName& dn,
                                     std::size_t key_bits = 512,
                                     std::int64_t lifetime_seconds =
                                         10L * 365 * 24 * 3600);

  /// Reconstruct from a stored credential.
  explicit CertificateAuthority(Credential credential, std::size_t key_bits = 512);

  const Certificate& certificate() const { return credential_.certificate; }
  const Credential& credential() const { return credential_; }

  /// Issue a user (person) credential: fresh key pair + signed cert.
  Credential issue_user(const DistinguishedName& subject,
                        std::int64_t lifetime_seconds = 365L * 24 * 3600) const;

  /// Issue a server (host) credential.
  Credential issue_server(const DistinguishedName& subject,
                          std::int64_t lifetime_seconds = 365L * 24 * 3600) const;

 private:
  Credential issue(CertKind kind, const DistinguishedName& subject,
                   std::int64_t lifetime_seconds) const;

  Credential credential_;
  std::size_t key_bits_;
};

/// Create a proxy credential from a user credential: a short-lived
/// certificate over a fresh key pair, subject = user DN + /CN=proxy,
/// signed by the *user's* key. The proxy's private key is intentionally
/// part of the credential (unencrypted) — that is what enables delegation.
Credential issue_proxy(const Credential& user,
                       std::int64_t lifetime_seconds = 12 * 3600,
                       std::size_t key_bits = 512);

}  // namespace clarens::pki
