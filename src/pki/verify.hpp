// Certificate chain verification against a set of trust anchors.
//
// A Clarens server trusts one or more CAs. A client presents either
//   [user/server cert]                     — one hop to a CA, or
//   [proxy cert, user cert]                — proxy signed by the user,
//                                            user signed by a CA.
// The *effective identity* of a verified proxy chain is the user's DN:
// proxies act on the user's behalf (delegation), so VO and ACL decisions
// are made against the user DN, never the /CN=proxy DN.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pki/certificate.hpp"

namespace clarens::pki {

class TrustStore {
 public:
  /// Register a CA certificate as a trust anchor. Rejects (throws
  /// clarens::Error) certificates that are not self-signed authorities.
  void add_authority(const Certificate& ca_cert);

  /// Look up an anchor by subject DN.
  std::optional<Certificate> find_authority(const DistinguishedName& dn) const;

  std::size_t size() const { return anchors_.size(); }

  struct Result {
    bool ok = false;
    /// DN that VO/ACL decisions should use (user DN for proxy chains).
    DistinguishedName identity;
    /// True when the presented leaf was a proxy certificate.
    bool via_proxy = false;
    std::string error;  // set when !ok
  };

  /// Verify `chain` (leaf first) at time `now`.
  Result verify(const std::vector<Certificate>& chain, std::int64_t now) const;

 private:
  Result verify_against_anchor(const Certificate& cert, std::int64_t now) const;

  std::map<std::string, Certificate> anchors_;  // keyed by subject DN string
};

}  // namespace clarens::pki
