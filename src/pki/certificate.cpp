#include "pki/certificate.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/hex.hpp"
#include "util/strings.hpp"

namespace clarens::pki {

std::string to_string(CertKind kind) {
  switch (kind) {
    case CertKind::Authority: return "authority";
    case CertKind::User: return "user";
    case CertKind::Server: return "server";
    case CertKind::Proxy: return "proxy";
  }
  return "user";
}

CertKind cert_kind_from_string(std::string_view text) {
  if (text == "authority") return CertKind::Authority;
  if (text == "user") return CertKind::User;
  if (text == "server") return CertKind::Server;
  if (text == "proxy") return CertKind::Proxy;
  throw ParseError("unknown certificate kind: '" + std::string(text) + "'");
}

std::string Certificate::to_be_signed() const {
  std::ostringstream out;
  out << "serial:" << serial_ << '\n'
      << "kind:" << to_string(kind_) << '\n'
      << "subject:" << subject_.str() << '\n'
      << "issuer:" << issuer_.str() << '\n'
      << "not-before:" << not_before_ << '\n'
      << "not-after:" << not_after_ << '\n'
      << "public-key:" << public_key_.encode() << '\n';
  return out.str();
}

void Certificate::sign_with(const crypto::RsaPrivateKey& issuer_key) {
  signature_ = crypto::rsa_sign(issuer_key, to_be_signed());
}

bool Certificate::check_signature(const crypto::RsaPublicKey& issuer_pub) const {
  if (signature_.empty()) return false;
  return crypto::rsa_verify(issuer_pub, to_be_signed(), signature_);
}

std::string Certificate::encode() const {
  return to_be_signed() + "signature:" + util::base64_encode(signature_) + "\n";
}

Certificate Certificate::decode(std::string_view text) {
  Certificate cert;
  bool saw_serial = false, saw_key = false;
  for (const auto& line : util::split(text, '\n')) {
    std::string_view trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    std::size_t colon = trimmed.find(':');
    if (colon == std::string_view::npos) {
      throw ParseError("invalid certificate line: '" + std::string(line) + "'");
    }
    std::string_view key = trimmed.substr(0, colon);
    std::string_view value = trimmed.substr(colon + 1);
    if (key == "serial") {
      cert.serial_ = std::string(value);
      saw_serial = true;
    } else if (key == "kind") {
      cert.kind_ = cert_kind_from_string(value);
    } else if (key == "subject") {
      cert.subject_ = DistinguishedName::parse(value);
    } else if (key == "issuer") {
      cert.issuer_ = DistinguishedName::parse(value);
    } else if (key == "not-before") {
      cert.not_before_ = util::parse_int(value);
    } else if (key == "not-after") {
      cert.not_after_ = util::parse_int(value);
    } else if (key == "public-key") {
      cert.public_key_ = crypto::RsaPublicKey::decode(value);
      saw_key = true;
    } else if (key == "signature") {
      cert.signature_ = util::base64_decode(value);
    } else {
      throw ParseError("unknown certificate field: '" + std::string(key) + "'");
    }
  }
  if (!saw_serial || !saw_key) {
    throw ParseError("certificate missing required fields");
  }
  return cert;
}

std::string Credential::encode() const {
  return certificate.encode() + "private-key:" + private_key.encode() + "\n";
}

Credential Credential::decode(std::string_view text) {
  // The private-key line is ours; everything else belongs to the cert.
  std::string cert_text;
  std::string key_text;
  for (const auto& line : util::split(text, '\n')) {
    std::string_view trimmed = util::trim(line);
    if (util::starts_with(trimmed, "private-key:")) {
      key_text = std::string(trimmed.substr(std::string_view("private-key:").size()));
    } else if (!trimmed.empty()) {
      cert_text += std::string(trimmed) + "\n";
    }
  }
  if (key_text.empty()) throw ParseError("credential missing private key");
  return {Certificate::decode(cert_text), crypto::RsaPrivateKey::decode(key_text)};
}

}  // namespace clarens::pki
