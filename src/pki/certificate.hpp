// Certificates: the X.509 analogue of this framework.
//
// A certificate binds a subject DN to an RSA public key, signed by an
// issuer. Proxy certificates (paper §2.6) are short-lived certificates
// whose issuer is a *user* rather than a CA; their DN is the user's DN
// with a trailing /CN=proxy component, and they travel together with an
// unencrypted private key so they can act on the user's behalf
// (delegation).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/rsa.hpp"
#include "pki/dn.hpp"

namespace clarens::pki {

enum class CertKind { Authority, User, Server, Proxy };

std::string to_string(CertKind kind);
CertKind cert_kind_from_string(std::string_view text);

class Certificate {
 public:
  Certificate() = default;
  Certificate(std::string serial, CertKind kind, DistinguishedName subject,
              DistinguishedName issuer, std::int64_t not_before,
              std::int64_t not_after, crypto::RsaPublicKey public_key)
      : serial_(std::move(serial)),
        kind_(kind),
        subject_(std::move(subject)),
        issuer_(std::move(issuer)),
        not_before_(not_before),
        not_after_(not_after),
        public_key_(std::move(public_key)) {}

  const std::string& serial() const { return serial_; }
  CertKind kind() const { return kind_; }
  const DistinguishedName& subject() const { return subject_; }
  const DistinguishedName& issuer() const { return issuer_; }
  std::int64_t not_before() const { return not_before_; }
  std::int64_t not_after() const { return not_after_; }
  const crypto::RsaPublicKey& public_key() const { return public_key_; }
  const std::vector<std::uint8_t>& signature() const { return signature_; }

  bool is_ca() const { return kind_ == CertKind::Authority; }
  bool is_proxy() const { return kind_ == CertKind::Proxy; }

  bool valid_at(std::int64_t unix_time) const {
    return unix_time >= not_before_ && unix_time <= not_after_;
  }

  /// The canonical byte string the signature covers.
  std::string to_be_signed() const;

  /// Attach a signature over to_be_signed() made with `issuer_key`.
  void sign_with(const crypto::RsaPrivateKey& issuer_key);

  /// Check this certificate's signature against the issuer public key.
  bool check_signature(const crypto::RsaPublicKey& issuer_pub) const;

  /// Text serialization (line-based; signature base64).
  std::string encode() const;
  static Certificate decode(std::string_view text);

  bool operator==(const Certificate& o) const {
    return encode() == o.encode();
  }

 private:
  std::string serial_;
  CertKind kind_ = CertKind::User;
  DistinguishedName subject_;
  DistinguishedName issuer_;
  std::int64_t not_before_ = 0;
  std::int64_t not_after_ = 0;
  crypto::RsaPublicKey public_key_;
  std::vector<std::uint8_t> signature_;
};

/// A certificate plus its private key: what a client or server wields.
struct Credential {
  Certificate certificate;
  crypto::RsaPrivateKey private_key;

  const DistinguishedName& dn() const { return certificate.subject(); }

  std::string encode() const;
  static Credential decode(std::string_view text);
};

}  // namespace clarens::pki
