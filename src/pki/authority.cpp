#include "pki/authority.hpp"

#include "crypto/random.hpp"
#include "util/clock.hpp"

namespace clarens::pki {

namespace {

std::string fresh_serial() { return crypto::random_token(8); }

}  // namespace

CertificateAuthority CertificateAuthority::create(
    const DistinguishedName& dn, std::size_t key_bits,
    std::int64_t lifetime_seconds) {
  crypto::RsaKeyPair keys = crypto::rsa_generate(key_bits, crypto::system_drbg());
  std::int64_t now = util::unix_now();
  Certificate cert(fresh_serial(), CertKind::Authority, dn, dn, now - 60,
                   now + lifetime_seconds, keys.pub);
  cert.sign_with(keys.priv);
  return CertificateAuthority(Credential{std::move(cert), keys.priv}, key_bits);
}

CertificateAuthority::CertificateAuthority(Credential credential,
                                           std::size_t key_bits)
    : credential_(std::move(credential)), key_bits_(key_bits) {}

Credential CertificateAuthority::issue(CertKind kind,
                                       const DistinguishedName& subject,
                                       std::int64_t lifetime_seconds) const {
  crypto::RsaKeyPair keys = crypto::rsa_generate(key_bits_, crypto::system_drbg());
  std::int64_t now = util::unix_now();
  Certificate cert(fresh_serial(), kind, subject,
                   credential_.certificate.subject(), now - 60,
                   now + lifetime_seconds, keys.pub);
  cert.sign_with(credential_.private_key);
  return {std::move(cert), keys.priv};
}

Credential CertificateAuthority::issue_user(const DistinguishedName& subject,
                                            std::int64_t lifetime_seconds) const {
  return issue(CertKind::User, subject, lifetime_seconds);
}

Credential CertificateAuthority::issue_server(
    const DistinguishedName& subject, std::int64_t lifetime_seconds) const {
  return issue(CertKind::Server, subject, lifetime_seconds);
}

Credential issue_proxy(const Credential& user, std::int64_t lifetime_seconds,
                       std::size_t key_bits) {
  crypto::RsaKeyPair keys = crypto::rsa_generate(key_bits, crypto::system_drbg());
  std::int64_t now = util::unix_now();
  Certificate cert(fresh_serial(), CertKind::Proxy,
                   user.certificate.subject().with("CN", "proxy"),
                   user.certificate.subject(), now - 60, now + lifetime_seconds,
                   keys.pub);
  cert.sign_with(user.private_key);
  return {std::move(cert), keys.priv};
}

}  // namespace clarens::pki
