// X.509-style Distinguished Names in the slash-separated form grid
// certificate authorities use, e.g.
//
//   /O=doesciencegrid.org/OU=People/CN=John Smith 12345
//
// The paper's VO service exploits DN hierarchy: specifying only the
// initial significant part of a DN ("/O=doesciencegrid.org/OU=People")
// makes every DN with that prefix a member. is_prefix_of implements that
// semantics.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace clarens::pki {

class DistinguishedName {
 public:
  using Attribute = std::pair<std::string, std::string>;  // e.g. {"CN","Jo"}

  DistinguishedName() = default;
  explicit DistinguishedName(std::vector<Attribute> attributes)
      : attributes_(std::move(attributes)) {}

  /// Parse "/C=US/O=Caltech/CN=Frank". Empty components are rejected;
  /// throws clarens::ParseError. An empty string parses to the empty DN.
  static DistinguishedName parse(std::string_view text);

  /// Canonical "/K=V/K=V" form.
  std::string str() const;

  const std::vector<Attribute>& attributes() const { return attributes_; }
  bool empty() const { return attributes_.empty(); }
  std::size_t size() const { return attributes_.size(); }

  /// First value for an attribute key ("CN"), or "" if absent.
  std::string get(std::string_view key) const;

  /// True when this DN's attribute list is an ordered prefix of `other`
  /// (or equal). The empty DN is a prefix of everything.
  bool is_prefix_of(const DistinguishedName& other) const;

  /// Append an attribute (used to derive proxy DNs: subject + /CN=proxy).
  DistinguishedName with(std::string key, std::string value) const;

  bool operator==(const DistinguishedName& o) const {
    return attributes_ == o.attributes_;
  }
  bool operator!=(const DistinguishedName& o) const { return !(*this == o); }
  /// Lexicographic on the canonical string, for ordered containers.
  bool operator<(const DistinguishedName& o) const { return str() < o.str(); }

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace clarens::pki
