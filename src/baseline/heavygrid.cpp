#include "baseline/heavygrid.hpp"

#include <sys/socket.h>

#include <array>
#include <sstream>

#include "http/message.hpp"
#include "http/parser.hpp"
#include "rpc/fault.hpp"
#include "rpc/soap.hpp"
#include "rpc/xml.hpp"
#include "tls/channel.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace clarens::baseline {

namespace {

// A WSDD-like deployment descriptor of realistic size: GT3 containers
// re-processed service deployment metadata when instantiating services.
std::string make_wsdd() {
  std::ostringstream out;
  out << "<?xml version=\"1.0\"?><deployment xmlns=\"urn:heavygrid/wsdd\">";
  for (int i = 0; i < 64; ++i) {
    out << "<service name=\"service" << i << "\" provider=\"ogsa:rpc\">"
        << "<parameter name=\"className\" value=\"org.grid.Service" << i
        << "\"/><parameter name=\"allowedMethods\" value=\"*\"/>"
        << "<parameter name=\"scope\" value=\"PerCall\"/>"
        << "<operation name=\"echo\"><output name=\"result\"/></operation>"
        << "</service>";
  }
  out << "</deployment>";
  return out.str();
}

}  // namespace

HeavyGridServer::HeavyGridServer(HeavyGridOptions options)
    : options_(std::move(options)), wsdd_(make_wsdd()) {}

HeavyGridServer::~HeavyGridServer() { stop(); }

void HeavyGridServer::start() {
  if (running_.exchange(true)) return;
  listener_ = net::TcpListener::listen(options_.port, options_.host);
  port_ = listener_.local_port();
  acceptor_ = util::Thread([this] { accept_loop(); });
}

void HeavyGridServer::stop() {
  if (!running_.exchange(false)) return;
  listener_.shutdown();
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<util::Thread> finished;
  {
    util::UniqueLock lock(mutex_);
    while (!conn_threads_.empty()) all_done_.wait(lock);
    finished = std::move(finished_);
    finished_.clear();
  }
  for (auto& thread : finished) thread.join();
  listener_.close();
}

void HeavyGridServer::accept_loop() {
  while (running_.load()) {
    net::TcpConnection tcp;
    try {
      tcp = listener_.accept();
    } catch (const SystemError&) {
      if (!running_.load()) return;
      continue;
    }
    util::LockGuard lock(mutex_);
    std::uint64_t id = ++conn_seq_;
    // The body blocks on mutex_ until the emplace below completes, so it
    // always finds its own handle in conn_threads_.
    util::Thread thread([this, id, conn = std::move(tcp)]() mutable {
      try {
        serve_one(std::move(conn));
      } catch (...) {
      }
      // This lambda body runs on the spawned connection thread; the
      // accept loop's guard is not held there, so the lexical nesting
      // below is not a real acquisition edge.
      // clarens-lint: allow(lock-order): lambda runs on its own thread
      util::LockGuard lk(mutex_);
      auto it = conn_threads_.find(id);
      if (it != conn_threads_.end()) {
        finished_.push_back(std::move(it->second));
        conn_threads_.erase(it);
      }
      all_done_.notify_all();
    });
    conn_threads_.emplace(id, std::move(thread));
    // Reap handles parked by connections that already finished.
    for (auto& done : finished_) done.join();
    finished_.clear();
  }
}

void HeavyGridServer::serve_one(net::TcpConnection tcp) {
  // Per-call handshake: mutual TLS, no resumption.
  tls::TlsConfig tls;
  tls.credential = options_.credential;
  tls.trust = &options_.trust;
  tls.require_peer_certificate = true;
  std::unique_ptr<net::Stream> stream;
  try {
    stream = tls::SecureChannel::accept(
        std::make_unique<net::TcpConnection>(std::move(tcp)), tls);
  } catch (const Error& e) {
    CLARENS_LOG(Debug) << "heavygrid: handshake failed: " << e.what();
    return;
  }
  auto* secure = static_cast<tls::SecureChannel*>(stream.get());

  // Read exactly one request (GT3 model: no keep-alive).
  http::RequestParser parser;
  std::array<std::uint8_t, 64 * 1024> chunk;
  std::optional<http::Request> request;
  while (!request) {
    std::size_t n = stream->read(chunk);
    if (n == 0) return;
    parser.feed(std::span<const std::uint8_t>(chunk.data(), n));
    request = parser.next();
  }

  rpc::Response rpc_response;
  try {
    // Container startup work per call:
    // (1) re-verify the client chain (the channel already did once — GT3
    //     layered GSI verification above the transport's).
    auto verdict =
        options_.trust.verify(secure->peer_chain(), util::unix_now());
    if (!verdict.ok) throw AuthError("GSI verification failed: " + verdict.error);
    // (2) grid-mapfile scan for authorization.
    std::string identity = verdict.identity.str();
    bool mapped = false;
    for (const auto& [dn, user] : options_.gridmap) {
      if (dn == identity) {
        mapped = true;
        break;
      }
    }
    if (!mapped) throw AccessError("identity not in grid-mapfile");
    // (3) service instantiation: parse the deployment descriptor.
    for (int i = 0; i < options_.container_work_factor; ++i) {
      rpc::XmlNode wsdd = rpc::xml_parse(wsdd_);
      if (wsdd.children.empty()) throw Error("empty deployment descriptor");
    }
    // (4) SOAP processing + dispatch of the trivial method.
    rpc::Request call = rpc::soap::parse_request(request->body);
    if (call.method == "echo") {
      rpc_response = rpc::Response::success(
          call.params.empty() ? rpc::Value() : call.params[0]);
    } else {
      throw rpc::Fault(rpc::kFaultBadMethod, "no such service operation");
    }
    calls_.fetch_add(1);
  } catch (const rpc::Fault& fault) {
    rpc_response = rpc::Response::fault(fault.code(), fault.what());
  } catch (const Error& error) {
    rpc_response = rpc::Response::fault(error.code(), error.what());
  }

  http::Response response = http::Response::make(
      200, rpc::soap::serialize_response(rpc_response), "application/soap+xml");
  response.headers.set("Connection", "close");
  try {
    stream->write_all(response.serialize());
  } catch (const SystemError&) {
  }
}

HeavyGridClient::HeavyGridClient(std::string host, std::uint16_t port,
                                 pki::Credential credential,
                                 const pki::TrustStore& trust)
    : host_(std::move(host)),
      port_(port),
      credential_(std::move(credential)),
      trust_(trust) {}

rpc::Value HeavyGridClient::call(const std::string& method,
                                 const std::vector<rpc::Value>& params) {
  // Connection + mutual handshake per call: the defining GT3 cost.
  auto tcp = std::make_unique<net::TcpConnection>(
      net::TcpConnection::connect(host_, port_));
  tls::TlsConfig tls;
  tls.credential = credential_;
  tls.trust = &trust_;
  auto stream = tls::SecureChannel::connect(std::move(tcp), tls);

  rpc::Request rpc_request;
  rpc_request.method = method;
  rpc_request.params = params;

  http::Request request;
  request.method = "POST";
  request.target = "/ogsa";
  request.headers.set("Host", host_);
  request.headers.set("Content-Type", "application/soap+xml");
  request.headers.set("Connection", "close");
  request.body = rpc::soap::serialize_request(rpc_request);
  stream->write_all(request.serialize());

  http::ResponseParser parser;
  std::array<std::uint8_t, 64 * 1024> chunk;
  for (;;) {
    if (auto response = parser.next()) {
      rpc::Response parsed = rpc::soap::parse_response(response->body);
      if (parsed.is_fault) {
        throw rpc::Fault(parsed.fault_code, parsed.fault_message);
      }
      return parsed.result;
    }
    std::size_t n = stream->read(chunk);
    if (n == 0) throw SystemError("heavygrid server closed early");
    parser.feed(std::span<const std::uint8_t>(chunk.data(), n));
  }
}

}  // namespace clarens::baseline
