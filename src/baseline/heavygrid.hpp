// HeavyGrid: the Globus-Toolkit-3 comparison baseline.
//
// The paper's footnote 4 reports 1-5 calls/second for a trivial method
// under GTK 3.0/3.9.1, versus ~1450 for Clarens. The gap is architectural:
// GT3's OGSA container performed, on *every* call,
//   * a new TCP connection and a full mutually-authenticated TLS
//     handshake (no session reuse across calls),
//   * grid-mapfile authorization scan,
//   * service re-instantiation driven by a WSDD deployment descriptor
//     parsed from XML,
//   * SOAP envelope processing,
// while Clarens amortizes authentication into a session and keeps the
// connection alive. HeavyGrid reproduces each of those per-call costs
// with this repository's own primitives so the *shape* of the comparison
// (orders of magnitude, not absolute 2005 numbers) is reproducible.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/socket.hpp"
#include "util/sync.hpp"
#include "pki/certificate.hpp"
#include "pki/verify.hpp"
#include "rpc/value.hpp"

namespace clarens::baseline {

struct HeavyGridOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  pki::Credential credential;       // server credential
  pki::TrustStore trust;            // anchors for client verification
  /// grid-mapfile: "DN" -> local user; scanned linearly per call.
  std::vector<std::pair<std::string, std::string>> gridmap;
  /// Extra rounds of deployment-descriptor parsing per call, modelling
  /// container/service instantiation cost (1 = parse the WSDD once).
  int container_work_factor = 1;
};

class HeavyGridServer {
 public:
  explicit HeavyGridServer(HeavyGridOptions options);
  ~HeavyGridServer();

  HeavyGridServer(const HeavyGridServer&) = delete;
  HeavyGridServer& operator=(const HeavyGridServer&) = delete;

  void start();
  void stop();
  std::uint16_t port() const { return port_; }

  std::uint64_t calls_served() const { return calls_.load(); }

 private:
  void accept_loop();
  void serve_one(net::TcpConnection tcp);

  HeavyGridOptions options_;
  std::string wsdd_;  // generated deployment descriptor
  net::TcpListener listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> calls_{0};
  util::Thread acceptor_;
  /// Leaf lock guarding the per-connection thread table. Connection
  /// threads park their own handles in `finished_` when done; the
  /// acceptor and stop() join the parked handles.
  util::Mutex mutex_{util::LockLevel::kBaselineHeavygrid};
  util::CondVar all_done_;
  std::map<std::uint64_t, util::Thread> conn_threads_
      CLARENS_GUARDED_BY(mutex_);
  std::vector<util::Thread> finished_ CLARENS_GUARDED_BY(mutex_);
  std::uint64_t conn_seq_ CLARENS_GUARDED_BY(mutex_) = 0;
};

class HeavyGridClient {
 public:
  /// `credential` is mandatory: GT3-style mutual authentication.
  HeavyGridClient(std::string host, std::uint16_t port,
                  pki::Credential credential, const pki::TrustStore& trust);

  /// One call = one connection + one full handshake (the GT3 model).
  rpc::Value call(const std::string& method,
                  const std::vector<rpc::Value>& params);

 private:
  std::string host_;
  std::uint16_t port_;
  pki::Credential credential_;
  const pki::TrustStore& trust_;
};

}  // namespace clarens::baseline
