// Publisher: the "UDP-based application" (paper §2.4) with which a
// Clarens server pushes its service information to a station server.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "discovery/glue.hpp"
#include "net/socket.hpp"
#include "util/sync.hpp"

namespace clarens::discovery {

class Publisher {
 public:
  Publisher(std::string station_host, std::uint16_t station_port);
  ~Publisher();

  Publisher(const Publisher&) = delete;
  Publisher& operator=(const Publisher&) = delete;

  /// Replace the advertised record set.
  void set_records(std::vector<ServiceRecord> records);

  /// Send one publish datagram now (heartbeats are stamped fresh).
  void publish_once();

  /// Re-publish every `interval_ms` until stopped (heartbeat keep-alive).
  void start_periodic(int interval_ms);
  void stop();

 private:
  std::string station_host_;
  std::uint16_t station_port_;
  net::UdpSocket socket_;
  util::Mutex mutex_{util::LockLevel::kDiscoveryPublisher};
  std::vector<ServiceRecord> records_ CLARENS_GUARDED_BY(mutex_);
  std::atomic<bool> running_{false};
  util::Thread ticker_;
};

}  // namespace clarens::discovery
