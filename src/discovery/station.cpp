#include "discovery/station.hpp"

#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace clarens::discovery {

StationServer::StationServer(std::uint16_t port, std::int64_t record_ttl)
    : socket_(net::UdpSocket::bind(port)),
      port_(socket_.local_port()),
      record_ttl_(record_ttl) {
  receiver_ = util::Thread([this] { receive_loop(); });
}

StationServer::~StationServer() { stop(); }

void StationServer::stop() {
  if (!running_.exchange(false)) return;
  // Nudge the blocking recv with a self-addressed datagram.
  try {
    net::UdpSocket poke = net::UdpSocket::bind(0);
    poke.send_to("127.0.0.1", port_, std::string("{}"));
  } catch (const Error&) {
  }
  if (receiver_.joinable()) receiver_.join();
}

void StationServer::add_subscriber(const std::string& host, std::uint16_t port) {
  util::LockGuard lock(mutex_);
  subscribers_.emplace_back(host, port);
}

std::vector<ServiceRecord> StationServer::records() const {
  util::LockGuard lock(mutex_);
  std::vector<ServiceRecord> out;
  std::int64_t now = util::unix_now();
  for (const auto& [_, record] : records_) {
    if (now - record.heartbeat <= record_ttl_) out.push_back(record);
  }
  return out;
}

void StationServer::receive_loop() {
  while (running_.load()) {
    auto wire = socket_.recv(250);
    if (!wire) continue;
    if (!running_.load()) return;
    try {
      handle(Datagram::decode(*wire));
    } catch (const Error& e) {
      CLARENS_LOG(Debug) << "station: dropping bad datagram: " << e.what();
    }
  }
}

void StationServer::handle(const Datagram& datagram) {
  switch (datagram.type) {
    case Datagram::Type::Publish: {
      std::vector<std::pair<std::string, std::uint16_t>> subscribers;
      {
        util::LockGuard lock(mutex_);
        std::int64_t now = util::unix_now();
        for (const auto& record : datagram.records) {
          records_[record.key()] = record;
        }
        expire_locked(now);
        subscribers = subscribers_;
      }
      publishes_.fetch_add(1);
      // Republish to the network (Fig. 3 arrows SS -> DS).
      Datagram out;
      out.type = Datagram::Type::Records;
      out.records = datagram.records;
      std::string wire = out.encode();
      net::UdpSocket sender = net::UdpSocket::bind(0);
      for (const auto& [host, port] : subscribers) {
        try {
          sender.send_to(host, port, wire);
        } catch (const Error&) {
          // Unreachable subscriber: discovery is best-effort by design.
        }
      }
      break;
    }
    case Datagram::Type::Subscribe: {
      add_subscriber(datagram.reply_host, datagram.reply_port);
      // Bootstrap the new subscriber with the current table.
      Datagram out;
      out.type = Datagram::Type::Records;
      out.records = records();
      try {
        net::UdpSocket sender = net::UdpSocket::bind(0);
        sender.send_to(datagram.reply_host, datagram.reply_port, out.encode());
      } catch (const Error&) {
      }
      break;
    }
    case Datagram::Type::Query: {
      Datagram out;
      out.type = Datagram::Type::Records;
      for (const auto& record : records()) {
        if (datagram.query.empty() ||
            record.service.find(datagram.query) != std::string::npos) {
          out.records.push_back(record);
        }
      }
      try {
        net::UdpSocket sender = net::UdpSocket::bind(0);
        sender.send_to(datagram.reply_host, datagram.reply_port, out.encode());
      } catch (const Error&) {
      }
      break;
    }
    case Datagram::Type::Records:
      // Stations accept peer republications like publishes, minus the fanout
      // (no re-republish, avoiding loops in station meshes).
      {
        util::LockGuard lock(mutex_);
        for (const auto& record : datagram.records) {
          records_[record.key()] = record;
        }
      }
      break;
  }
}

void StationServer::expire_locked(std::int64_t now) {
  for (auto it = records_.begin(); it != records_.end();) {
    if (now - it->second.heartbeat > record_ttl_) {
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace clarens::discovery
