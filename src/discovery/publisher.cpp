#include "discovery/publisher.hpp"

#include <chrono>

#include "util/clock.hpp"

namespace clarens::discovery {

Publisher::Publisher(std::string station_host, std::uint16_t station_port)
    : station_host_(std::move(station_host)),
      station_port_(station_port),
      socket_(net::UdpSocket::bind(0)) {}

Publisher::~Publisher() { stop(); }

void Publisher::set_records(std::vector<ServiceRecord> records) {
  util::LockGuard lock(mutex_);
  records_ = std::move(records);
}

void Publisher::publish_once() {
  Datagram datagram;
  datagram.type = Datagram::Type::Publish;
  {
    util::LockGuard lock(mutex_);
    datagram.records = records_;
  }
  std::int64_t now = util::unix_now();
  for (auto& record : datagram.records) record.heartbeat = now;
  socket_.send_to(station_host_, station_port_, datagram.encode());
}

void Publisher::start_periodic(int interval_ms) {
  if (running_.exchange(true)) return;
  ticker_ = util::Thread([this, interval_ms] {
    while (running_.load()) {
      publish_once();
      for (int waited = 0; waited < interval_ms && running_.load(); waited += 50) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
  });
}

void Publisher::stop() {
  if (!running_.exchange(false)) return;
  if (ticker_.joinable()) ticker_.join();
}

}  // namespace clarens::discovery
