// Discovery server: the JClarens JINI-client analogue of Figure 3.
//
// Subscribes to station servers, aggregates every republished record into
// a local database table, and answers service searches from that local
// copy — "consequently able to respond to service searches far more
// rapidly" (paper §2.4) than walking the network. A direct-query slow
// path is kept for the ablation benchmark.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "db/store.hpp"
#include "discovery/glue.hpp"
#include "net/socket.hpp"
#include "util/sync.hpp"

namespace clarens::discovery {

class DiscoveryServer {
 public:
  /// `store` backs the local aggregation table; pass an in-memory Store
  /// or the server's persistent one.
  explicit DiscoveryServer(db::Store& store, std::int64_t record_ttl = 60);
  ~DiscoveryServer();

  DiscoveryServer(const DiscoveryServer&) = delete;
  DiscoveryServer& operator=(const DiscoveryServer&) = delete;

  /// Subscribe to a station server; its current table is bootstrapped and
  /// all future publishes stream in.
  void subscribe(const std::string& station_host, std::uint16_t station_port);

  // --- fast path: local database -------------------------------------
  /// Services whose name contains `query` ("" = all), live only.
  std::vector<ServiceRecord> find_services(const std::string& query) const;
  /// Distinct node URLs currently known.
  std::vector<std::string> find_servers() const;
  /// Resolve a service name to an endpoint URL (first live match) — the
  /// location-independent binding step.
  std::optional<std::string> locate(const std::string& service) const;

  // --- slow path: walk the stations (ablation baseline) ---------------
  std::vector<ServiceRecord> query_stations(const std::string& query,
                                            int timeout_ms = 500) const;

  /// Records currently held (live + not-yet-reaped stale). The receive
  /// loop reaps entries whose heartbeat lapsed past the TTL, so this
  /// converges to the live count ~1 s after a publisher goes silent.
  std::size_t record_count() const;

  /// Drop every record whose heartbeat is older than the TTL from the
  /// cache and the backing store. Returns the number reaped. Called
  /// periodically by the receive loop; public for tests.
  std::size_t reap_stale();

  void stop();

 private:
  void receive_loop();
  void ingest(const std::vector<ServiceRecord>& records);

  db::Store& store_;
  std::int64_t record_ttl_;
  net::UdpSocket socket_;
  std::uint16_t port_;
  std::atomic<bool> running_{true};
  util::Thread receiver_;
  std::vector<std::pair<std::string, std::uint16_t>> stations_;
  /// Decoded in-memory copy of the aggregation table. The DB row is the
  /// persistent form (survives restarts); queries answer from here —
  /// this is what makes the local path "far more rapid" than walking
  /// the station network (§2.4).
  mutable util::Mutex cache_mutex_{util::LockLevel::kDiscoveryServerCache};
  std::map<std::string, ServiceRecord> cache_ CLARENS_GUARDED_BY(cache_mutex_);
};

}  // namespace clarens::discovery
