#include "discovery/discovery_server.hpp"

#include <set>

#include "rpc/jsonrpc.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace clarens::discovery {

namespace {
constexpr const char* kTable = "discovery_records";
}

DiscoveryServer::DiscoveryServer(db::Store& store, std::int64_t record_ttl)
    : store_(store),
      record_ttl_(record_ttl),
      socket_(net::UdpSocket::bind(0)),
      port_(socket_.local_port()) {
  // Warm the in-memory cache from any persisted aggregation (restart).
  // Rows whose heartbeat already lapsed past the TTL are reaped here
  // rather than resurrected: they would never be served again, only
  // occupy the table.
  std::int64_t now = util::unix_now();
  for (const auto& key : store_.keys(kTable)) {
    if (auto text = store_.get(kTable, key)) {
      try {
        ServiceRecord record =
            ServiceRecord::from_value(rpc::jsonrpc::parse_value(*text));
        if (now - record.heartbeat > record_ttl_) {
          store_.erase(kTable, key);  // stale across the restart
        } else {
          cache_[key] = std::move(record);
        }
      } catch (const Error&) {
        store_.erase(kTable, key);  // drop unreadable rows
      }
    }
  }
  receiver_ = util::Thread([this] { receive_loop(); });
}

DiscoveryServer::~DiscoveryServer() { stop(); }

void DiscoveryServer::stop() {
  if (!running_.exchange(false)) return;
  try {
    net::UdpSocket poke = net::UdpSocket::bind(0);
    poke.send_to("127.0.0.1", port_, std::string("{}"));
  } catch (const Error&) {
  }
  if (receiver_.joinable()) receiver_.join();
}

void DiscoveryServer::subscribe(const std::string& station_host,
                                std::uint16_t station_port) {
  stations_.emplace_back(station_host, station_port);
  Datagram datagram;
  datagram.type = Datagram::Type::Subscribe;
  datagram.reply_host = "127.0.0.1";
  datagram.reply_port = port_;
  socket_.send_to(station_host, station_port, datagram.encode());
}

void DiscoveryServer::receive_loop() {
  std::int64_t last_reap = util::unix_now();
  while (running_.load()) {
    auto wire = socket_.recv(250);
    if (!running_.load()) return;
    // Lazy reap: queries filter stale records out, but without this the
    // table itself (cache + store rows) grows without bound and
    // record_count() keeps counting servers that stopped heartbeating.
    std::int64_t now = util::unix_now();
    if (now - last_reap >= 1) {
      last_reap = now;
      reap_stale();
    }
    if (!wire) continue;
    try {
      Datagram datagram = Datagram::decode(*wire);
      if (datagram.type == Datagram::Type::Records) {
        ingest(datagram.records);
      }
    } catch (const Error& e) {
      CLARENS_LOG(Debug) << "discovery: dropping bad datagram: " << e.what();
    }
  }
}

std::size_t DiscoveryServer::reap_stale() {
  std::int64_t now = util::unix_now();
  std::vector<std::string> stale;
  {
    util::LockGuard lock(cache_mutex_);
    for (auto it = cache_.begin(); it != cache_.end();) {
      if (now - it->second.heartbeat > record_ttl_) {
        stale.push_back(it->first);
        it = cache_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Store rows are erased outside the cache lock (the store takes its own
  // shard locks); a concurrent re-publish of the same key re-inserts both
  // sides through ingest(), so the worst case is one extra reap cycle.
  for (const auto& key : stale) store_.erase(kTable, key);
  return stale.size();
}

void DiscoveryServer::ingest(const std::vector<ServiceRecord>& records) {
  for (const auto& record : records) {
    store_.put(kTable, record.key(),
               rpc::jsonrpc::serialize_value(record.to_value()));
    util::LockGuard lock(cache_mutex_);
    cache_[record.key()] = record;
  }
}

std::vector<ServiceRecord> DiscoveryServer::find_services(
    const std::string& query) const {
  std::vector<ServiceRecord> out;
  std::int64_t now = util::unix_now();
  util::LockGuard lock(cache_mutex_);
  for (const auto& [_, record] : cache_) {
    if (now - record.heartbeat > record_ttl_) continue;
    if (query.empty() || record.service.find(query) != std::string::npos) {
      out.push_back(record);
    }
  }
  return out;
}

std::vector<std::string> DiscoveryServer::find_servers() const {
  std::set<std::string> urls;
  for (const auto& record : find_services("")) urls.insert(record.url);
  return {urls.begin(), urls.end()};
}

std::optional<std::string> DiscoveryServer::locate(
    const std::string& service) const {
  for (const auto& record : find_services("")) {
    if (record.service == service) return record.url;
  }
  return std::nullopt;
}

std::vector<ServiceRecord> DiscoveryServer::query_stations(
    const std::string& query, int timeout_ms) const {
  // Walk every station with a round-trip each — the pre-aggregation
  // architecture the local DB replaced.
  std::vector<ServiceRecord> out;
  std::set<std::string> seen;
  for (const auto& [host, port] : stations_) {
    net::UdpSocket reply = net::UdpSocket::bind(0);
    Datagram request;
    request.type = Datagram::Type::Query;
    request.query = query;
    request.reply_host = "127.0.0.1";
    request.reply_port = reply.local_port();
    try {
      reply.send_to(host, port, request.encode());
      auto wire = reply.recv(timeout_ms);
      if (!wire) continue;
      Datagram response = Datagram::decode(*wire);
      for (auto& record : response.records) {
        if (seen.insert(record.key()).second) out.push_back(std::move(record));
      }
    } catch (const Error&) {
      // A down station is skipped; discovery degrades, not fails.
    }
  }
  return out;
}

std::size_t DiscoveryServer::record_count() const {
  util::LockGuard lock(cache_mutex_);
  return cache_.size();
}

}  // namespace clarens::discovery
