#include "discovery/glue.hpp"

#include "rpc/jsonrpc.hpp"
#include "util/error.hpp"

namespace clarens::discovery {

rpc::Value ServiceRecord::to_value() const {
  rpc::Value v = rpc::Value::struct_();
  v.set("farm", farm);
  v.set("node", node);
  v.set("service", service);
  v.set("url", url);
  v.set("protocol", protocol);
  v.set("version", version);
  v.set("heartbeat", heartbeat);
  v.set("role", role);
  rpc::Value p = rpc::Value::array();
  for (const auto& prefix : prefixes) p.push(prefix);
  v.set("prefixes", p);
  rpc::Value m = rpc::Value::struct_();
  for (const auto& [key, value] : metrics) m.set(key, value);
  v.set("metrics", m);
  return v;
}

ServiceRecord ServiceRecord::from_value(const rpc::Value& v) {
  ServiceRecord r;
  r.farm = v.at("farm").as_string();
  r.node = v.at("node").as_string();
  r.service = v.at("service").as_string();
  r.url = v.at("url").as_string();
  r.protocol = v.at("protocol").as_string();
  r.version = v.at("version").as_string();
  r.heartbeat = v.at("heartbeat").as_int();
  // role / prefixes are absent on records published by pre-federation
  // servers; tolerate that (the fields default to empty).
  if (const rpc::Value* role = v.find("role")) r.role = role->as_string();
  if (const rpc::Value* p = v.find("prefixes")) {
    for (const auto& prefix : p->as_array()) {
      r.prefixes.push_back(prefix.as_string());
    }
  }
  if (const rpc::Value* m = v.find("metrics")) {
    for (const auto& [key, value] : m->members()) {
      r.metrics[key] = value.as_double();
    }
  }
  return r;
}

bool ServiceRecord::operator==(const ServiceRecord& o) const {
  return farm == o.farm && node == o.node && service == o.service &&
         url == o.url && protocol == o.protocol && version == o.version &&
         heartbeat == o.heartbeat && role == o.role &&
         prefixes == o.prefixes && metrics == o.metrics;
}

namespace {

const char* type_name(Datagram::Type type) {
  switch (type) {
    case Datagram::Type::Publish: return "publish";
    case Datagram::Type::Subscribe: return "subscribe";
    case Datagram::Type::Query: return "query";
    case Datagram::Type::Records: return "records";
  }
  return "?";
}

Datagram::Type type_from(const std::string& name) {
  if (name == "publish") return Datagram::Type::Publish;
  if (name == "subscribe") return Datagram::Type::Subscribe;
  if (name == "query") return Datagram::Type::Query;
  if (name == "records") return Datagram::Type::Records;
  throw ParseError("unknown datagram type: '" + name + "'");
}

}  // namespace

std::string Datagram::encode() const {
  rpc::Value v = rpc::Value::struct_();
  v.set("type", std::string(type_name(type)));
  rpc::Value recs = rpc::Value::array();
  for (const auto& r : records) recs.push(r.to_value());
  v.set("records", recs);
  v.set("reply_host", reply_host);
  v.set("reply_port", static_cast<std::int64_t>(reply_port));
  v.set("query", query);
  return rpc::jsonrpc::serialize_value(v);
}

Datagram Datagram::decode(std::string_view wire) {
  rpc::Value v = rpc::jsonrpc::parse_value(wire);
  Datagram d;
  d.type = type_from(v.at("type").as_string());
  for (const auto& r : v.at("records").as_array()) {
    d.records.push_back(ServiceRecord::from_value(r));
  }
  d.reply_host = v.at("reply_host").as_string();
  d.reply_port = static_cast<std::uint16_t>(v.at("reply_port").as_int());
  d.query = v.at("query").as_string();
  return d;
}

}  // namespace clarens::discovery
