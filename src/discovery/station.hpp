// Station server: the MonALISA ingest node of Figure 3.
//
// Clarens servers publish service information over UDP to a station
// server, which keeps the current registrations (with TTL expiry) and
// republishes every update to its subscribers — the discovery servers
// (JINI-client analogues) and, in larger deployments, other stations.
// Stations also answer direct UDP queries; walking stations per-query is
// the slow path that the discovery server's local aggregation replaces
// (bench_discovery_query measures the difference).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "discovery/glue.hpp"
#include "net/socket.hpp"
#include "util/sync.hpp"

namespace clarens::discovery {

class StationServer {
 public:
  /// Binds a UDP socket on loopback (port 0 = ephemeral) and starts the
  /// receive thread. `record_ttl` seconds without a refresh expires a
  /// registration.
  explicit StationServer(std::uint16_t port = 0, std::int64_t record_ttl = 60);
  ~StationServer();

  StationServer(const StationServer&) = delete;
  StationServer& operator=(const StationServer&) = delete;

  std::uint16_t port() const { return port_; }

  /// Add a subscriber (discovery server / peer station) that receives a
  /// Records datagram for every accepted publish.
  void add_subscriber(const std::string& host, std::uint16_t port);

  /// Current live (unexpired) records.
  std::vector<ServiceRecord> records() const;

  std::size_t publish_count() const { return publishes_.load(); }

  void stop();

 private:
  void receive_loop();
  void handle(const Datagram& datagram);
  void expire_locked(std::int64_t now) CLARENS_REQUIRES(mutex_);

  net::UdpSocket socket_;
  std::uint16_t port_;
  std::int64_t record_ttl_;
  std::atomic<bool> running_{true};
  std::atomic<std::size_t> publishes_{0};
  util::Thread receiver_;

  /// Leaf lock: held only around the record/subscriber tables, never
  /// across socket sends.
  mutable util::Mutex mutex_{util::LockLevel::kDiscoveryStation};
  std::map<std::string, ServiceRecord> records_
      CLARENS_GUARDED_BY(mutex_);  // keyed by record.key()
  std::vector<std::pair<std::string, std::uint16_t>> subscribers_
      CLARENS_GUARDED_BY(mutex_);
};

}  // namespace clarens::discovery
