// GLUE-like service description records (paper §2.4).
//
// MonALISA arranges monitoring data roughly per the GLUE schema — a
// hierarchy of servers, farms, nodes and key/value pairs. The paper notes
// the schema "is not ideal for organizing service description data", but
// the publish/subscribe network carries it anyway; service descriptions
// ride in the key/value leaves. This module models that record shape and
// its wire encoding.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rpc/value.hpp"

namespace clarens::discovery {

struct ServiceRecord {
  std::string farm;      // GLUE farm (site) name, e.g. "caltech-tier2"
  std::string node;      // node within the farm, e.g. "clarens01"
  std::string service;   // service (method module) name, e.g. "file"
  std::string url;       // invocation endpoint, e.g. "http://host:port/"
  std::string protocol;  // "xmlrpc", "soap", ...
  std::string version;
  std::int64_t heartbeat = 0;  // unix seconds of last publish
  /// Federation role of the publishing server: "standalone", "head" or
  /// "storage" ("" on records from pre-federation publishers).
  std::string role;
  /// Virtual namespace prefixes this server exports ("/data", "/sandbox",
  /// ...). Storage nodes advertise them so a head node's placement ring
  /// knows which parts of the namespace the node can own.
  std::vector<std::string> prefixes;
  /// GLUE-style key/numerical-value pairs (load, capacity, ...). The
  /// placement ring reads "capacity" as the node's ring weight.
  std::map<std::string, double> metrics;

  /// Unique key within the discovery network.
  std::string key() const { return farm + "/" + node + "/" + service; }

  rpc::Value to_value() const;
  static ServiceRecord from_value(const rpc::Value& v);

  bool operator==(const ServiceRecord& o) const;
};

/// Datagram envelope used on the UDP fabric between publishers, station
/// servers and discovery servers.
struct Datagram {
  enum class Type { Publish, Subscribe, Query, Records };
  Type type = Type::Publish;
  std::vector<ServiceRecord> records;  // Publish / Records
  std::string reply_host;              // Subscribe / Query
  std::uint16_t reply_port = 0;        // Subscribe / Query
  std::string query;                   // Query: service-name substring

  std::string encode() const;
  static Datagram decode(std::string_view wire);
};

}  // namespace clarens::discovery
