// JSON-RPC (1.0-style, per the metaparadigm json-rpc the paper cites):
//   request  {"method": "m", "params": [...], "id": 1}
//   response {"result": ..., "error": null, "id": 1}
//   error    {"result": null, "error": {"code": c, "message": "..."}, "id": 1}
//
// JSON has no native binary or datetime, so those Value types round-trip
// through tagged one-member objects: {"$base64": "..."} and
// {"$datetime": "yyyyMMddTHH:mm:ss"} — the convention several 2000s-era
// bridges used.
#pragma once

#include <string>

#include "rpc/xmlrpc.hpp"  // Request/Response structs
#include "util/buffer.hpp"

namespace clarens::rpc::jsonrpc {

/// Append the wire form to `out` (no intermediate strings).
void serialize_request(const Request& request, util::Buffer& out);
void serialize_response(const Response& response, util::Buffer& out);

std::string serialize_request(const Request& request);
Request parse_request(std::string_view body);

std::string serialize_response(const Response& response);
Response parse_response(std::string_view body);

/// Bare JSON value codec (exposed for tests and the discovery wire format).
std::string serialize_value(const Value& value);
void serialize_value(const Value& value, util::Buffer& out);
Value parse_value(std::string_view json);

}  // namespace clarens::rpc::jsonrpc
