// The protocol-independent RPC value model.
//
// Clarens speaks several wire protocols (XML-RPC, SOAP, JSON-RPC); all of
// them serialize the same value algebra, which is XML-RPC's: nil, boolean,
// integer, double, string, base64 binary, datetime, array, struct.
// Handlers operate on Value and never see the wire encoding.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace clarens::rpc {

class Value;

/// Distinct wrapper so DateTime is not confused with Int in the variant.
struct DateTime {
  std::int64_t unix_seconds = 0;
  bool operator==(const DateTime&) const = default;
};

using Array = std::vector<Value>;
/// Order-preserving string→Value map (small; linear lookup).
using StructMembers = std::vector<std::pair<std::string, Value>>;

class Value {
 public:
  enum class Type { Nil, Bool, Int, Double, String, Binary, DateTime, Array, Struct };

  Value() : data_(std::monostate{}) {}
  Value(bool v) : data_(v) {}                        // NOLINT
  Value(int v) : data_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Value(std::int64_t v) : data_(v) {}                // NOLINT
  Value(double v) : data_(v) {}                      // NOLINT
  Value(const char* v) : data_(std::string(v)) {}    // NOLINT
  Value(std::string v) : data_(std::move(v)) {}      // NOLINT
  Value(std::vector<std::uint8_t> v) : data_(std::move(v)) {}  // NOLINT
  Value(DateTime v) : data_(v) {}                    // NOLINT
  Value(Array v) : data_(std::move(v)) {}            // NOLINT

  static Value nil() { return Value(); }
  static Value struct_() {
    Value v;
    v.data_ = StructMembers{};
    return v;
  }
  static Value array() { return Value(Array{}); }

  Type type() const;
  const char* type_name() const;

  bool is_nil() const { return type() == Type::Nil; }

  /// Typed accessors; throw clarens::rpc::Fault (type error) on mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;  // accepts Int too
  const std::string& as_string() const;
  const std::vector<std::uint8_t>& as_binary() const;
  DateTime as_datetime() const;
  const Array& as_array() const;
  Array& as_array();

  /// Struct operations.
  bool is_struct() const { return type() == Type::Struct; }
  const StructMembers& members() const;
  Value& set(const std::string& key, Value value);  // returns *this member
  const Value* find(const std::string& key) const;  // nullptr if absent
  const Value& at(const std::string& key) const;    // throws if absent
  bool has(const std::string& key) const { return find(key) != nullptr; }

  /// Array convenience.
  void push(Value v);
  std::size_t size() const;  // array length or struct member count

  bool operator==(const Value& o) const { return data_ == o.data_; }

  /// Debug rendering (not a wire format).
  std::string debug_string() const;

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string,
               std::vector<std::uint8_t>, DateTime, Array, StructMembers>
      data_;
};

}  // namespace clarens::rpc
