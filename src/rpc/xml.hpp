// Minimal XML reader/writer covering the subset XML-RPC and SOAP 1.1
// payloads use: prolog, comments, elements with attributes, character
// data with the five predefined entities, CDATA sections. No DTDs,
// processing instructions beyond the prolog, or namespaces resolution
// (namespace prefixes are kept verbatim in tag names; helpers strip them).
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace clarens::rpc {

struct XmlNode {
  std::string tag;  // as written, possibly with "ns:" prefix
  std::vector<std::pair<std::string, std::string>> attributes;
  std::string text;  // concatenated character data directly inside
  std::vector<XmlNode> children;

  /// Tag with any namespace prefix removed.
  std::string local_name() const;

  /// First child with the given local name; nullptr if absent.
  const XmlNode* child(std::string_view local) const;

  /// All children with the given local name.
  std::vector<const XmlNode*> children_named(std::string_view local) const;

  std::string attribute(std::string_view name) const;
};

/// Parse a document; returns the root element. Throws clarens::ParseError.
XmlNode xml_parse(std::string_view text);

/// Escape character data for element content.
std::string xml_escape(std::string_view text);

/// Incremental writer for the serializers.
class XmlWriter {
 public:
  void open(std::string_view tag);
  void open(std::string_view tag,
            std::initializer_list<std::pair<std::string_view, std::string_view>>
                attributes);
  void close(std::string_view tag);
  void text(std::string_view content);  // escaped
  void raw(std::string_view content);   // verbatim
  /// <tag>text</tag>
  void element(std::string_view tag, std::string_view content);

  std::string take() { return std::move(out_); }
  const std::string& str() const { return out_; }

 private:
  std::string out_;
};

}  // namespace clarens::rpc
