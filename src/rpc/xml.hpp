// Minimal XML reader/writer covering the subset XML-RPC and SOAP 1.1
// payloads use: prolog, comments, elements with attributes, character
// data with the five predefined entities, CDATA sections. No DTDs,
// processing instructions beyond the prolog, or namespaces resolution
// (namespace prefixes are kept verbatim in tag names; helpers strip them).
//
// Two parsing front ends share one tokenizer:
//   * XmlPullParser — streaming events over the input string_view, zero
//     allocation per token; the XML-RPC codec builds rpc::Value directly
//     from it without materializing a tree.
//   * xml_parse_slices — an XmlSlice tree whose tags/attributes/text are
//     string_views into the caller's buffer (which must outlive the
//     tree); entity decoding is deferred until text()/attribute() ask
//     for it. xml_parse keeps the legacy owned-string XmlNode tree.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/buffer.hpp"

namespace clarens::rpc {

struct XmlNode {
  std::string tag;  // as written, possibly with "ns:" prefix
  std::vector<std::pair<std::string, std::string>> attributes;
  std::string text;  // concatenated character data directly inside
  std::vector<XmlNode> children;

  /// Tag with any namespace prefix removed.
  std::string local_name() const;

  /// First child with the given local name; nullptr if absent.
  const XmlNode* child(std::string_view local) const;

  /// All children with the given local name.
  std::vector<const XmlNode*> children_named(std::string_view local) const;

  std::string attribute(std::string_view name) const;
};

/// Parse a document; returns the root element. Throws clarens::ParseError.
XmlNode xml_parse(std::string_view text);

/// Slice-based node: every string_view points into the parsed input,
/// which must outlive the tree. Entities stay encoded until asked for.
struct XmlSlice {
  std::string_view tag;
  /// Attribute values are raw (entities undecoded); use attribute().
  std::vector<std::pair<std::string_view, std::string_view>> attributes;
  struct TextSeg {
    std::string_view raw;
    bool escaped;  // may contain entity references (false for CDATA)
  };
  std::vector<TextSeg> text_segments;  // character data in document order
  std::vector<XmlSlice> children;

  std::string_view local_name() const;
  const XmlSlice* child(std::string_view local) const;

  /// True when the character data is a single entity-free run, i.e.
  /// text_view() is valid and no decode copy is needed.
  bool text_is_view() const;
  std::string_view text_view() const;  // only valid when text_is_view()
  /// Decoded character data; copies only when entities/CDATA force it.
  std::string text() const;
  std::string attribute(std::string_view name) const;  // decoded
};

/// Parse a document into slices backed by `text`. Throws ParseError.
XmlSlice xml_parse_slices(std::string_view text);

/// Streaming pull parser. Usage:
///   XmlPullParser p(body);
///   for (auto ev = p.next(); ev != Event::Eof; ev = p.next()) ...
/// A self-closing element yields StartTag followed by EndTag. Comments
/// and the prolog are skipped. Well-formedness (tag matching, single
/// root, no trailing content) is enforced; errors throw ParseError.
class XmlPullParser {
 public:
  enum class Event { StartTag, EndTag, Text, Eof };

  /// Maximum open-element depth; deeper documents throw ParseError. The
  /// consumers build trees with one stack frame per level, so this bound
  /// is what keeps a nesting bomb from overflowing the stack.
  static constexpr std::size_t kMaxDepth = 128;

  explicit XmlPullParser(std::string_view text) : text_(text) {}

  Event next();

  /// Tag name of the current Start/End event, as written.
  std::string_view name() const { return name_; }
  std::string_view local_name() const;
  /// Raw character data of a Text event (CDATA content is raw too).
  std::string_view text_raw() const { return chardata_; }
  /// Whether the Text event may contain entity references to decode.
  bool text_needs_unescape() const { return chardata_escaped_; }
  std::string text() const;  // decoded
  /// Append the decoded text of a Text event to `out` (no temporary).
  void text_append(std::string& out) const;
  /// Attributes of the current StartTag (raw values).
  const std::vector<std::pair<std::string_view, std::string_view>>&
  attributes() const {
    return attributes_;
  }

  /// Byte offset of the parse cursor (for error messages).
  std::size_t offset() const { return pos_; }

 private:
  [[noreturn]] void fail(const std::string& what) const;
  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  bool consume(std::string_view s);
  void expect(std::string_view s);
  void skip_space();
  void skip_misc();
  std::string_view parse_name();
  Event parse_start_tag();

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string_view name_;
  std::string_view chardata_;
  bool chardata_escaped_ = false;
  std::vector<std::pair<std::string_view, std::string_view>> attributes_;
  std::vector<std::string_view> open_tags_;
  bool pending_end_ = false;  // self-closing: EndTag already due
  bool root_seen_ = false;
};

/// Escape character data for element content. The no-escape common case
/// costs one scan and one allocation for the returned copy; use the
/// two-argument overload or xml_escape_append to avoid even that.
std::string xml_escape(std::string_view text);

/// Allocation-free variant: returns `text` itself when nothing needs
/// escaping, else fills `scratch` and returns a view of it.
std::string_view xml_escape(std::string_view text, std::string& scratch);

/// Append the escaped form of `text` to `out`.
void xml_escape_append(util::Buffer& out, std::string_view text);

/// Decode the five predefined entities and numeric character references.
/// Throws ParseError on malformed or unknown references.
std::string xml_unescape(std::string_view raw);

/// Incremental writer for the serializers; writes into a caller-owned
/// util::Buffer so responses build directly in the connection arena.
class XmlWriter {
 public:
  explicit XmlWriter(util::Buffer& out) : out_(out) {}

  void open(std::string_view tag);
  void open(std::string_view tag,
            std::initializer_list<std::pair<std::string_view, std::string_view>>
                attributes);
  void close(std::string_view tag);
  void text(std::string_view content);  // escaped
  void raw(std::string_view content);   // verbatim
  /// <tag>text</tag>
  void element(std::string_view tag, std::string_view content);
  /// <tag>N</tag> formatted in place with std::to_chars.
  void element_int(std::string_view tag, std::int64_t v);
  void element_double(std::string_view tag, double v);

  util::Buffer& buffer() { return out_; }

 private:
  util::Buffer& out_;
};

}  // namespace clarens::rpc
