// Typed method binding: value-conversion traits over rpc::Value and the
// variadic Registry::bind() implementation.
//
// A bound handler is an ordinary C++ callable:
//
//   registry.bind("file.read",
//       [&](const CallContext& ctx, const std::string& path,
//           std::int64_t offset, std::int64_t length) {
//         return files.read(path, offset, length, dn_of(ctx));
//       },
//       {.help = "Read a byte range of a remote file",
//        .params = {"path", "offset", "length"}});
//
// The binding layer
//   * unmarshals each wire parameter into the declared C++ type and
//     reports mismatches / missing parameters as kFaultType faults with
//     the 1-based parameter index;
//   * derives the wire signature string ("base64 (string path, int
//     offset, int length)") from the C++ signature, so introspection can
//     never drift from the code;
//   * marshals the typed return value back into a Value.
//
// Supported parameter types (by decayed type):
//   bool, std::int64_t, double, std::string (bound by const& — no copy),
//   std::vector<std::uint8_t> (base64), DateTime, Value (any),
//   Array (= std::vector<Value>), std::vector<std::string> (array of
//   strings), Blob (base64-or-string payload, zero-copy view), StructArg
//   (requires a struct), and std::optional<T> of any of these for
//   trailing optional parameters.
// Supported return types: the same scalars/containers, plus StructResult
// (a struct-typed Value that derives "struct" instead of "any").
//
// An optional leading `const CallContext&` parameter receives the call
// context; handlers that ignore it may simply omit it.
#pragma once

#include "rpc/registry.hpp"

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "rpc/fault.hpp"

namespace clarens::rpc {

/// Parameter wrapper: a binary payload clients may send as either base64
/// or string (the wire protocols differ in what their ecosystems favor).
/// Holds a view into the parameter — no copy is made.
struct Blob {
  std::span<const std::uint8_t> bytes;
  std::string_view view() const {
    return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
  }
};

/// Parameter wrapper: requires a struct-typed value ("struct" in the
/// derived signature, where a plain Value parameter would derive "any").
struct StructArg {
  const Value* ptr = nullptr;
  const Value& value() const { return *ptr; }
  const Value& at(const std::string& key) const { return ptr->at(key); }
};

/// Return wrapper: a struct-typed Value ("struct" in the derived
/// signature, where returning Value directly would derive "any").
struct StructResult {
  Value value;
};

/// Return wrapper: an HTTP-307-style redirect envelope. A federated head
/// node answers file I/O calls with "the data lives over there": the
/// client re-issues the same call against `url`, presenting `ticket`
/// (a head-minted node ticket) as its credential. The envelope is an
/// ordinary struct result — NOT a fault — so it round-trips identically
/// through all four wire protocols; the reserved "clarens.redirect"
/// member (the 307 status marker) is what distinguishes it from user
/// struct data.
struct RedirectResult {
  std::string url;     // RPC endpoint of the owning node
  std::string ticket;  // node ticket authorizing the caller there ("" = none)
  std::string scope;   // namespace prefix the redirect covers

  static constexpr const char* kMarker = "clarens.redirect";

  Value to_value() const {
    Value v = Value::struct_();
    v.set(kMarker, std::int64_t{307});
    v.set("url", url);
    v.set("ticket", ticket);
    v.set("scope", scope);
    return v;
  }

  /// Is this result value a redirect envelope?
  static bool is_redirect(const Value& v) {
    if (!v.is_struct()) return false;
    const Value* marker = v.find(kMarker);
    return marker && marker->type() == Value::Type::Int &&
           marker->as_int() == 307;
  }

  /// Decode an envelope previously produced by to_value(). Throws
  /// Fault(kFaultType) when `v` is not a redirect envelope.
  static RedirectResult from_value(const Value& v) {
    if (!is_redirect(v)) {
      throw Fault(kFaultType, "value is not a redirect envelope");
    }
    RedirectResult r;
    r.url = v.at("url").as_string();
    if (const Value* t = v.find("ticket")) r.ticket = t->as_string();
    if (const Value* s = v.find("scope")) r.scope = s->as_string();
    return r;
  }
};

namespace binding_detail {

[[noreturn]] inline void bad_param(std::size_t index, const char* want,
                                   const Value& got) {
  throw Fault(kFaultType, "parameter " + std::to_string(index + 1) +
                              ": expected " + want + ", got " +
                              got.type_name());
}

template <typename T>
struct ParamTraits;  // undefined primary: unsupported parameter type

template <>
struct ParamTraits<bool> {
  static constexpr const char* kName = "boolean";
  static bool get(const Value& v, std::size_t i) {
    if (v.type() != Value::Type::Bool) bad_param(i, kName, v);
    return v.as_bool();
  }
};

template <>
struct ParamTraits<std::int64_t> {
  static constexpr const char* kName = "int";
  static std::int64_t get(const Value& v, std::size_t i) {
    if (v.type() != Value::Type::Int) bad_param(i, kName, v);
    return v.as_int();
  }
};

template <>
struct ParamTraits<double> {
  static constexpr const char* kName = "double";
  static double get(const Value& v, std::size_t i) {
    // Mirror Value::as_double: an int parameter satisfies a double slot.
    if (v.type() != Value::Type::Double && v.type() != Value::Type::Int) {
      bad_param(i, kName, v);
    }
    return v.as_double();
  }
};

template <>
struct ParamTraits<std::string> {
  static constexpr const char* kName = "string";
  static const std::string& get(const Value& v, std::size_t i) {
    if (v.type() != Value::Type::String) bad_param(i, kName, v);
    return v.as_string();
  }
};

template <>
struct ParamTraits<std::vector<std::uint8_t>> {
  static constexpr const char* kName = "base64";
  static const std::vector<std::uint8_t>& get(const Value& v, std::size_t i) {
    if (v.type() != Value::Type::Binary) bad_param(i, kName, v);
    return v.as_binary();
  }
};

template <>
struct ParamTraits<DateTime> {
  static constexpr const char* kName = "dateTime";
  static DateTime get(const Value& v, std::size_t i) {
    if (v.type() != Value::Type::DateTime) bad_param(i, kName, v);
    return v.as_datetime();
  }
};

template <>
struct ParamTraits<Value> {
  static constexpr const char* kName = "any";
  static const Value& get(const Value& v, std::size_t) { return v; }
};

template <>
struct ParamTraits<Array> {
  static constexpr const char* kName = "array";
  static const Array& get(const Value& v, std::size_t i) {
    if (v.type() != Value::Type::Array) bad_param(i, kName, v);
    return v.as_array();
  }
};

template <>
struct ParamTraits<std::vector<std::string>> {
  static constexpr const char* kName = "array";
  static std::vector<std::string> get(const Value& v, std::size_t i) {
    if (v.type() != Value::Type::Array) bad_param(i, kName, v);
    std::vector<std::string> out;
    out.reserve(v.as_array().size());
    for (const Value& e : v.as_array()) {
      if (e.type() != Value::Type::String) bad_param(i, "array of strings", v);
      out.push_back(e.as_string());
    }
    return out;
  }
};

template <>
struct ParamTraits<Blob> {
  static constexpr const char* kName = "base64|string";
  static Blob get(const Value& v, std::size_t i) {
    if (v.type() == Value::Type::Binary) {
      return Blob{std::span<const std::uint8_t>(v.as_binary())};
    }
    if (v.type() == Value::Type::String) {
      const std::string& s = v.as_string();
      return Blob{std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(s.data()), s.size())};
    }
    bad_param(i, kName, v);
  }
};

template <>
struct ParamTraits<StructArg> {
  static constexpr const char* kName = "struct";
  static StructArg get(const Value& v, std::size_t i) {
    if (!v.is_struct()) bad_param(i, kName, v);
    return StructArg{&v};
  }
};

template <typename T>
struct is_optional : std::false_type {};
template <typename T>
struct is_optional<std::optional<T>> : std::true_type {};

/// Wire type name of a (possibly optional) parameter type.
template <typename T>
constexpr const char* param_wire_name() {
  if constexpr (is_optional<T>::value) {
    return ParamTraits<typename T::value_type>::kName;
  } else {
    return ParamTraits<T>::kName;
  }
}

/// Extract parameter `i` as decayed type T. Optionals tolerate a missing
/// or nil parameter; everything else assumes i < params.size() (the
/// invoker checked the required count).
template <typename T>
decltype(auto) extract(const std::vector<Value>& params, std::size_t i) {
  if constexpr (is_optional<T>::value) {
    using U = typename T::value_type;
    if (i >= params.size() || params[i].is_nil()) return T{};
    return T{ParamTraits<U>::get(params[i], i)};
  } else {
    return ParamTraits<T>::get(params[i], i);
  }
}

template <typename T>
struct ResultTraits;  // undefined primary: unsupported return type

template <>
struct ResultTraits<bool> {
  static constexpr const char* kName = "boolean";
  static Value to_value(bool v) { return Value(v); }
};
template <>
struct ResultTraits<std::int64_t> {
  static constexpr const char* kName = "int";
  static Value to_value(std::int64_t v) { return Value(v); }
};
template <>
struct ResultTraits<int> {
  static constexpr const char* kName = "int";
  static Value to_value(int v) { return Value(static_cast<std::int64_t>(v)); }
};
template <>
struct ResultTraits<double> {
  static constexpr const char* kName = "double";
  static Value to_value(double v) { return Value(v); }
};
template <>
struct ResultTraits<std::string> {
  static constexpr const char* kName = "string";
  static Value to_value(std::string v) { return Value(std::move(v)); }
};
template <>
struct ResultTraits<std::vector<std::uint8_t>> {
  static constexpr const char* kName = "base64";
  static Value to_value(std::vector<std::uint8_t> v) {
    return Value(std::move(v));
  }
};
template <>
struct ResultTraits<DateTime> {
  static constexpr const char* kName = "dateTime";
  static Value to_value(DateTime v) { return Value(v); }
};
template <>
struct ResultTraits<Array> {
  static constexpr const char* kName = "array";
  static Value to_value(Array v) { return Value(std::move(v)); }
};
template <>
struct ResultTraits<std::vector<std::string>> {
  static constexpr const char* kName = "array";
  static Value to_value(const std::vector<std::string>& list) {
    Value out = Value::array();
    for (const auto& s : list) out.push(s);
    return out;
  }
};
template <>
struct ResultTraits<Value> {
  static constexpr const char* kName = "any";
  static Value to_value(Value v) { return v; }
};
template <>
struct ResultTraits<StructResult> {
  static constexpr const char* kName = "struct";
  static Value to_value(StructResult v) { return std::move(v.value); }
};
template <>
struct ResultTraits<RedirectResult> {
  static constexpr const char* kName = "redirect";
  static Value to_value(const RedirectResult& v) { return v.to_value(); }
};

/// Optionals must form a suffix of the parameter list: a required
/// parameter after an optional one could never be addressed on the wire.
template <typename... Ts>
constexpr bool optionals_trailing() {
  bool seen_optional = false;
  bool ok = true;
  ((ok = ok && (!seen_optional || is_optional<Ts>::value),
    seen_optional = seen_optional || is_optional<Ts>::value),
   ...);
  return ok;
}

// --- callable introspection --------------------------------------------

template <typename F>
struct CallableTraits : CallableTraits<decltype(&F::operator())> {};

template <typename R, typename... A>
struct CallableTraits<R (*)(A...)> {
  using Ret = R;
  using Args = std::tuple<A...>;
};
template <typename R, typename... A>
struct CallableTraits<R (*)(A...) noexcept> : CallableTraits<R (*)(A...)> {};
template <typename C, typename R, typename... A>
struct CallableTraits<R (C::*)(A...)> : CallableTraits<R (*)(A...)> {};
template <typename C, typename R, typename... A>
struct CallableTraits<R (C::*)(A...) const> : CallableTraits<R (*)(A...)> {};
template <typename C, typename R, typename... A>
struct CallableTraits<R (C::*)(A...) noexcept> : CallableTraits<R (*)(A...)> {};
template <typename C, typename R, typename... A>
struct CallableTraits<R (C::*)(A...) const noexcept>
    : CallableTraits<R (*)(A...)> {};

/// Strip a leading `const CallContext&` from the argument tuple.
template <typename Tuple>
struct StripContext {
  using Params = Tuple;
  static constexpr bool kTakesContext = false;
};
template <typename T0, typename... Ts>
struct StripContext<std::tuple<T0, Ts...>> {
  static constexpr bool kTakesContext =
      std::is_same_v<std::decay_t<T0>, CallContext>;
  using Params = std::conditional_t<kTakesContext, std::tuple<Ts...>,
                                    std::tuple<T0, Ts...>>;
};

// --- signature derivation + invocation ---------------------------------

template <typename Ret, typename ParamsTuple>
struct Signature;

template <typename Ret, typename... Ps>
struct Signature<Ret, std::tuple<Ps...>> {
  static std::string derive(const std::vector<std::string>& names) {
    std::string sig = ResultTraits<std::decay_t<Ret>>::kName;
    sig += " (";
    std::size_t j = 0;
    // [[maybe_unused]]: the fold below is empty for nullary methods.
    [[maybe_unused]] auto append = [&](const char* type_name, bool optional) {
      if (j) sig += ", ";
      sig += type_name;
      if (j < names.size() && !names[j].empty()) {
        sig += ' ';
        sig += names[j];
      }
      if (optional) sig += '?';
      ++j;
    };
    (append(param_wire_name<std::decay_t<Ps>>(),
            is_optional<std::decay_t<Ps>>::value),
     ...);
    sig += ')';
    return sig;
  }
};

template <typename F, typename Ret, bool TakesContext, typename ParamsTuple>
struct Invoker;

template <typename F, typename Ret, bool TakesContext, typename... Ps>
struct Invoker<F, Ret, TakesContext, std::tuple<Ps...>> {
  static_assert(!std::is_void_v<Ret>,
                "bound handlers must return a value (e.g. bool for "
                "acknowledge-only methods)");
  static_assert(optionals_trailing<std::decay_t<Ps>...>(),
                "optional parameters must be trailing");

  static constexpr std::size_t kRequired =
      ((is_optional<std::decay_t<Ps>>::value ? 0u : 1u) + ... + 0u);

  static Value invoke(const F& fn, const std::string& name,
                      const CallContext& context,
                      const std::vector<Value>& params) {
    if (params.size() < kRequired) {
      throw Fault(kFaultType,
                  name + " expects at least " + std::to_string(kRequired) +
                      " parameter(s), got " + std::to_string(params.size()));
    }
    // Extra parameters are tolerated (ignored), matching the lenient
    // behavior of the hand-written unpackers this layer replaced.
    return apply(fn, context, params, std::index_sequence_for<Ps...>{});
  }

 private:
  template <std::size_t... I>
  static Value apply(const F& fn, const CallContext& context,
                     const std::vector<Value>& params,
                     std::index_sequence<I...>) {
    if constexpr (TakesContext) {
      return ResultTraits<std::decay_t<Ret>>::to_value(
          fn(context, extract<std::decay_t<Ps>>(params, I)...));
    } else {
      (void)context;
      return ResultTraits<std::decay_t<Ret>>::to_value(
          fn(extract<std::decay_t<Ps>>(params, I)...));
    }
  }
};

}  // namespace binding_detail

template <typename F>
void Registry::bind(const std::string& name, F fn, BindSpec spec) {
  using Traits = binding_detail::CallableTraits<std::remove_reference_t<F>>;
  using Strip = binding_detail::StripContext<typename Traits::Args>;
  using Params = typename Strip::Params;
  using Ret = typename Traits::Ret;
  using Invoker =
      binding_detail::Invoker<std::decay_t<F>, Ret, Strip::kTakesContext,
                              Params>;

  MethodInfo info;
  info.name = name;
  info.help = std::move(spec.help);
  info.signature = binding_detail::Signature<Ret, Params>::derive(spec.params);
  info.is_public = spec.is_public;
  info.acl_path = std::move(spec.acl_path);

  add(name,
      [fn = std::move(fn), name](const CallContext& context,
                                 const std::vector<Value>& params) {
        return Invoker::invoke(fn, name, context, params);
      },
      std::move(info));
}

}  // namespace clarens::rpc
