// Protocol selection: Clarens servers accept XML-RPC, SOAP and JSON-RPC
// POSTs on the same endpoint, keyed by Content-Type with a body sniff as
// fallback (2005-era clients were sloppy about Content-Type).
#pragma once

#include <string>

#include "rpc/xmlrpc.hpp"

namespace clarens::rpc {

enum class Protocol { XmlRpc, JsonRpc, Soap, Binary };

const char* to_string(Protocol protocol);
/// MIME type for HTTP Content-Type.
const char* content_type(Protocol protocol);

/// Choose the protocol from a Content-Type header value and the body.
Protocol detect(std::string_view content_type_header, std::string_view body);

/// Cheap, never-throwing method-name extraction from an unparsed request
/// body — the HTTP server's inline-dispatch policy keys its per-method
/// cost table on this at parse time, before deciding which thread runs
/// the full parse + handler. Returns "" when the method cannot be found
/// (the request then always takes the worker path, where the real parser
/// reports the error).
std::string peek_method(Protocol protocol, std::string_view body);

std::string serialize_request(Protocol protocol, const Request& request);
Request parse_request(Protocol protocol, std::string_view body);
std::string serialize_response(Protocol protocol, const Response& response);
Response parse_response(Protocol protocol, std::string_view body);

/// Arena variants: append the wire form to `out` with no intermediate
/// strings (the server hot path serializes into a reusable per-worker
/// buffer and sends it with a vectored write).
void serialize_request(Protocol protocol, const Request& request,
                       util::Buffer& out);
void serialize_response(Protocol protocol, const Response& response,
                        util::Buffer& out);

}  // namespace clarens::rpc
