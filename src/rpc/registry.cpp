#include "rpc/registry.hpp"

#include "rpc/fault.hpp"
#include "util/strings.hpp"

namespace clarens::rpc {

void Registry::add(const std::string& name, Handler handler, std::string help,
                   std::string signature) {
  MethodInfo info;
  info.name = name;
  info.help = std::move(help);
  info.signature = std::move(signature);
  add(name, std::move(handler), std::move(info));
}

void Registry::add(const std::string& name, Handler handler, MethodInfo info) {
  auto method =
      std::make_shared<const Method>(Method{std::move(handler), std::move(info)});
  util::WriteLock lock(mutex_);
  methods_[name] = std::move(method);
}

void Registry::remove(const std::string& name) {
  util::WriteLock lock(mutex_);
  methods_.erase(name);
}

bool Registry::has(const std::string& name) const {
  util::ReadLock lock(mutex_);
  return methods_.count(name) != 0;
}

std::vector<std::string> Registry::list() const {
  util::ReadLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(methods_.size());
  for (const auto& [name, _] : methods_) out.push_back(name);
  return out;
}

std::vector<std::string> Registry::list_module(const std::string& module) const {
  util::ReadLock lock(mutex_);
  std::vector<std::string> out;
  std::string prefix = module + ".";
  for (const auto& [name, _] : methods_) {
    if (util::starts_with(name, prefix)) out.push_back(name);
  }
  return out;
}

MethodInfo Registry::info(const std::string& name) const {
  std::shared_ptr<const Method> method = find(name);
  if (!method) throw Fault(kFaultBadMethod, "no such method: " + name);
  return method->info;
}

std::shared_ptr<const Method> Registry::find(const std::string& name) const {
  util::ReadLock lock(mutex_);
  auto it = methods_.find(name);
  return it == methods_.end() ? nullptr : it->second;
}

Value Registry::dispatch(const std::string& name, const CallContext& context,
                         const std::vector<Value>& params) const {
  std::shared_ptr<const Method> method = find(name);
  if (!method) throw Fault(kFaultBadMethod, "no such method: " + name);
  return method->handler(context, params);
}

std::size_t Registry::size() const {
  util::ReadLock lock(mutex_);
  return methods_.size();
}

}  // namespace clarens::rpc
