#include "rpc/soap.hpp"

#include "rpc/fault.hpp"
#include "rpc/xml.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace clarens::rpc::soap {

namespace {

constexpr std::string_view kEnvelopeOpen =
    "<?xml version=\"1.0\"?>"
    "<SOAP-ENV:Envelope "
    "xmlns:SOAP-ENV=\"http://schemas.xmlsoap.org/soap/envelope/\" "
    "xmlns:m=\"urn:clarens\">"
    "<SOAP-ENV:Body>";
constexpr std::string_view kEnvelopeClose =
    "</SOAP-ENV:Body></SOAP-ENV:Envelope>";

// Method names contain dots (file.read); XML element names may contain
// dots too, so they pass through unmodified.

const XmlSlice* find_body(const XmlSlice& root) {
  if (root.local_name() != "Envelope") {
    throw ParseError("SOAP document root must be Envelope");
  }
  const XmlSlice* body = root.child("Body");
  if (!body) throw ParseError("SOAP Envelope missing Body");
  return body;
}

}  // namespace

void serialize_request(const Request& request, util::Buffer& out) {
  out.write(kEnvelopeOpen);
  out.write("<m:");
  out.write(request.method);
  out.write(">");
  for (const auto& param : request.params) {
    out.write("<param>");
    xmlrpc::serialize_value(param, out);
    out.write("</param>");
  }
  out.write("</m:");
  out.write(request.method);
  out.write(">");
  out.write(kEnvelopeClose);
}

std::string serialize_request(const Request& request) {
  util::Buffer out;
  serialize_request(request, out);
  return std::string(out.peek_view());
}

Request parse_request(std::string_view body_text) {
  XmlSlice root = xml_parse_slices(body_text);
  const XmlSlice* body = find_body(root);
  if (body->children.empty()) throw ParseError("SOAP Body is empty");
  const XmlSlice& call = body->children.front();
  Request request;
  request.method = std::string(call.local_name());
  for (const auto& param : call.children) {
    if (param.local_name() != "param") continue;
    const XmlSlice* value = param.child("value");
    if (!value) throw ParseError("SOAP <param> missing <value>");
    request.params.push_back(xmlrpc::parse_value_xml(*value));
  }
  return request;
}

void serialize_response(const Response& response, util::Buffer& out) {
  out.write(kEnvelopeOpen);
  if (response.is_fault) {
    out.write("<SOAP-ENV:Fault><faultcode>");
    util::append_int(out, response.fault_code);
    out.write("</faultcode><faultstring>");
    xml_escape_append(out, response.fault_message);
    out.write("</faultstring></SOAP-ENV:Fault>");
  } else {
    out.write("<m:Response><param>");
    xmlrpc::serialize_value(response.result, out);
    out.write("</param></m:Response>");
  }
  out.write(kEnvelopeClose);
}

std::string serialize_response(const Response& response) {
  util::Buffer out;
  serialize_response(response, out);
  return std::string(out.peek_view());
}

Response parse_response(std::string_view body_text) {
  XmlSlice root = xml_parse_slices(body_text);
  const XmlSlice* body = find_body(root);
  if (body->children.empty()) throw ParseError("SOAP Body is empty");
  const XmlSlice& payload = body->children.front();
  if (payload.local_name() == "Fault") {
    const XmlSlice* code = payload.child("faultcode");
    const XmlSlice* message = payload.child("faultstring");
    if (!code || !message) throw ParseError("SOAP Fault missing fields");
    Response response;
    response.is_fault = true;
    std::string code_text = code->text();
    response.fault_code =
        static_cast<int>(util::parse_int(util::trim(code_text)));
    response.fault_message = message->text();
    return response;
  }
  const XmlSlice* param = payload.child("param");
  if (!param) throw ParseError("SOAP response missing <param>");
  const XmlSlice* value = param->child("value");
  if (!value) throw ParseError("SOAP response <param> missing <value>");
  return Response::success(xmlrpc::parse_value_xml(*value));
}

}  // namespace clarens::rpc::soap
