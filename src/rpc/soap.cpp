#include "rpc/soap.hpp"

#include "rpc/fault.hpp"
#include "rpc/xml.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace clarens::rpc::soap {

namespace {

constexpr const char* kEnvelopeOpen =
    "<?xml version=\"1.0\"?>"
    "<SOAP-ENV:Envelope "
    "xmlns:SOAP-ENV=\"http://schemas.xmlsoap.org/soap/envelope/\" "
    "xmlns:m=\"urn:clarens\">"
    "<SOAP-ENV:Body>";
constexpr const char* kEnvelopeClose = "</SOAP-ENV:Body></SOAP-ENV:Envelope>";

// Method names contain dots (file.read); XML element names may contain
// dots too, so they pass through unmodified.

const XmlNode* find_body(const XmlNode& root) {
  if (root.local_name() != "Envelope") {
    throw ParseError("SOAP document root must be Envelope");
  }
  const XmlNode* body = root.child("Body");
  if (!body) throw ParseError("SOAP Envelope missing Body");
  return body;
}

}  // namespace

std::string serialize_request(const Request& request) {
  std::string out = kEnvelopeOpen;
  out += "<m:" + request.method + ">";
  for (const auto& param : request.params) {
    out += "<param>";
    out += xmlrpc::serialize_value(param);
    out += "</param>";
  }
  out += "</m:" + request.method + ">";
  out += kEnvelopeClose;
  return out;
}

Request parse_request(std::string_view body_text) {
  XmlNode root = xml_parse(body_text);
  const XmlNode* body = find_body(root);
  if (body->children.empty()) throw ParseError("SOAP Body is empty");
  const XmlNode& call = body->children.front();
  Request request;
  request.method = call.local_name();
  for (const auto& param : call.children) {
    if (param.local_name() != "param") continue;
    const XmlNode* value = param.child("value");
    if (!value) throw ParseError("SOAP <param> missing <value>");
    request.params.push_back(xmlrpc::parse_value_xml(*value));
  }
  return request;
}

std::string serialize_response(const Response& response) {
  std::string out = kEnvelopeOpen;
  if (response.is_fault) {
    out += "<SOAP-ENV:Fault><faultcode>";
    out += std::to_string(response.fault_code);
    out += "</faultcode><faultstring>";
    out += xml_escape(response.fault_message);
    out += "</faultstring></SOAP-ENV:Fault>";
  } else {
    out += "<m:Response><param>";
    out += xmlrpc::serialize_value(response.result);
    out += "</param></m:Response>";
  }
  out += kEnvelopeClose;
  return out;
}

Response parse_response(std::string_view body_text) {
  XmlNode root = xml_parse(body_text);
  const XmlNode* body = find_body(root);
  if (body->children.empty()) throw ParseError("SOAP Body is empty");
  const XmlNode& payload = body->children.front();
  if (payload.local_name() == "Fault") {
    const XmlNode* code = payload.child("faultcode");
    const XmlNode* message = payload.child("faultstring");
    if (!code || !message) throw ParseError("SOAP Fault missing fields");
    Response response;
    response.is_fault = true;
    response.fault_code =
        static_cast<int>(util::parse_int(util::trim(code->text)));
    response.fault_message = message->text;
    return response;
  }
  const XmlNode* param = payload.child("param");
  if (!param) throw ParseError("SOAP response missing <param>");
  const XmlNode* value = param->child("value");
  if (!value) throw ParseError("SOAP response <param> missing <value>");
  return Response::success(xmlrpc::parse_value_xml(*value));
}

}  // namespace clarens::rpc::soap
