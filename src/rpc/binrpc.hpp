// Binary RPC — the analogue of JClarens' Java-RMI transport (§2 lists
// "Java RMI (only for JClarens)" among the supported protocols).
//
// RMI's advantage over the XML protocols was a compact binary encoding
// with no text parsing; this codec provides that property on the same
// HTTP endpoint. Wire format (all integers big-endian):
//
//   frame:   'C' 'R' 'P' 'C' | u8 version(1) | u8 kind (1 req / 2 resp)
//   request: value(method string) | value(params array) | value(id)
//   response:u8 is_fault | fault? (i32 code | value(message))
//                        : value(result) | value(id)
//   value:   u8 tag | payload
//     0 nil | 1 bool(u8) | 2 int(i64) | 3 double(8B IEEE) |
//     4 string(u32 len + bytes) | 5 binary(u32 len + bytes) |
//     6 datetime(i64) | 7 array(u32 n + values) |
//     8 struct(u32 n + (string name, value)*n)
//
// Parsing reads straight off the request string_view (no staging copy);
// serialization appends into a caller-owned util::Buffer.
#pragma once

#include <string>

#include "rpc/xmlrpc.hpp"  // Request/Response structs
#include "util/buffer.hpp"

namespace clarens::rpc::binrpc {

/// Magic prefix used for transport sniffing.
inline constexpr char kMagic[4] = {'C', 'R', 'P', 'C'};

/// Append the wire form to `out` (no intermediate strings).
void serialize_request(const Request& request, util::Buffer& out);
void serialize_response(const Response& response, util::Buffer& out);

std::string serialize_request(const Request& request);
Request parse_request(std::string_view body);

std::string serialize_response(const Response& response);
Response parse_response(std::string_view body);

/// Split framing for zero-copy binary-result responses: `head` is the
/// frame header + success byte + binary tag + u32 `length`; the `length`
/// raw payload bytes follow on the wire but are supplied by the transport
/// (sendfile(2) from the source file), then `tail` carries the id value.
/// head + payload + tail is byte-identical to serialize_response() of a
/// Response whose result is Value(binary payload).
void serialize_blob_response_head(std::uint32_t length, util::Buffer& out);
void serialize_blob_response_tail(const Value& id, util::Buffer& out);

/// Bare value codec (exposed for tests).
std::string serialize_value(const Value& value);
Value parse_value(std::string_view bytes);

}  // namespace clarens::rpc::binrpc
