// Method registry and dispatcher.
//
// Methods have hierarchical dotted names (module.method or
// module.submodule.method, paper §2.2); the registry stores handlers
// under those names and exposes the listing that system.list_methods —
// the method the paper's Figure-4 benchmark calls — returns.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "rpc/value.hpp"

namespace clarens::rpc {

/// Per-call context threaded to every handler.
struct CallContext {
  /// Authenticated identity DN string; empty when unauthenticated.
  std::string identity;
  /// Session identifier; empty when no session established.
  std::string session_id;
  /// True when the identity was established via a proxy certificate.
  bool via_proxy = false;
  /// Wire protocol name ("xmlrpc", "jsonrpc", "soap") for diagnostics.
  std::string protocol;
};

using Handler = std::function<Value(const CallContext&, const std::vector<Value>&)>;

struct MethodInfo {
  std::string name;
  std::string help;       // one-line description
  std::string signature;  // e.g. "string (string path, int offset, int len)"
};

class Registry {
 public:
  /// Register a handler; replaces any existing registration of `name`.
  void add(const std::string& name, Handler handler, std::string help = "",
           std::string signature = "");

  void remove(const std::string& name);

  bool has(const std::string& name) const;

  /// Sorted method names. This is the >30-string array the paper's
  /// benchmark serializes on every call.
  std::vector<std::string> list() const;

  /// Sorted names under a module prefix (e.g. "file").
  std::vector<std::string> list_module(const std::string& module) const;

  MethodInfo info(const std::string& name) const;  // throws NotFound fault

  /// Look up and invoke. Throws Fault(kFaultBadMethod) for unknown names;
  /// handler exceptions propagate.
  Value dispatch(const std::string& name, const CallContext& context,
                 const std::vector<Value>& params) const;

  std::size_t size() const;

 private:
  struct Entry {
    Handler handler;
    MethodInfo info;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> methods_;
};

}  // namespace clarens::rpc
