// Method registry and dispatcher.
//
// Methods have hierarchical dotted names (module.method or
// module.submodule.method, paper §2.2); the registry stores handlers
// under those names and exposes the listing that system.list_methods —
// the method the paper's Figure-4 benchmark calls — returns.
//
// Two registration paths exist:
//   * add()  — raw: a Handler working on untyped Value vectors, with
//     hand-written help/signature strings (tests, ad-hoc embedding);
//   * bind() — typed: a C++ callable whose parameters are unmarshalled
//     from the wire values by the binding layer (rpc/binding.hpp). The
//     signature string is *derived* from the C++ parameter types so
//     system.method_signature can never drift from the code, and type
//     mismatches surface uniformly as kFaultType faults.
//
// Every entry carries per-method metadata (MethodInfo) that drives the
// server's pre-dispatch checks: is_public marks methods callable without
// a session (they create the session, or are pure liveness probes), and
// acl_path overrides the path used for the method-ACL walk.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rpc/value.hpp"
#include "util/sync.hpp"

namespace clarens::rpc {

/// Per-call context threaded to every handler.
struct CallContext {
  /// Authenticated identity DN string; empty when unauthenticated.
  std::string identity;
  /// Session identifier; empty when no session established.
  std::string session_id;
  /// True when the identity was established via a proxy certificate.
  bool via_proxy = false;
  /// Serial of a delegated stored proxy riding with the call ("" = none);
  /// forwarded across federation hops inside node tickets.
  std::string proxy_serial;
  /// Wire protocol name ("xmlrpc", "jsonrpc", "soap") for diagnostics.
  std::string protocol;

  /// Federation: set when the caller was authorized by a head-minted
  /// node ticket instead of a session. The dispatcher verified signature
  /// and expiry; handlers must enforce the ticket's namespace scope and
  /// write bit against the path they touch (the ticket is a capability
  /// for one prefix, not a blanket identity).
  bool via_ticket = false;
  std::string ticket_scope;
  bool ticket_write = false;
  /// True when a ticketed call was issued by a head's repair engine
  /// (X-Clarens-Replication header). Replica copies must not fire the
  /// commit-notification hook: the head already holds the layout truth,
  /// and with single-worker servers a synchronous notify-back would
  /// deadlock the head<->storage pair. Advisory only — a writer spoofing
  /// the header merely skips commit tracking, which fsck reconciles.
  bool replication = false;

  /// A resolved on-disk byte range a handler may hand back instead of a
  /// materialized result, letting the transport stream it zero-copy
  /// (sendfile(2)) inside the RPC framing.
  struct FileRegionResult {
    std::string path;
    std::int64_t offset = 0;
    std::int64_t length = 0;
  };
  /// Set by the dispatcher when the transport can stream a file region
  /// (binary protocol + plaintext-capable response path). Handlers that
  /// don't opt in just ignore it.
  bool offer_file_region = false;
  /// Filled by a handler (with a Nil return value) to claim the offer;
  /// mutable because handlers receive the context by const reference.
  mutable std::optional<FileRegionResult> file_region;
};

using Handler = std::function<Value(const CallContext&, const std::vector<Value>&)>;

/// Per-method metadata. For bound methods the signature is derived from
/// the handler's C++ types; is_public / acl_path drive the server's
/// pre-dispatch session and ACL checks.
struct MethodInfo {
  std::string name;
  std::string help;       // one-line description
  std::string signature;  // e.g. "string (string path, int offset, int len)"
  bool is_public = false;  // callable without a session (auth bootstrap)
  std::string acl_path;    // ACL walk path; empty = the method name itself
};

/// Registration options for Registry::bind().
struct BindSpec {
  std::string help;
  /// Display names for the derived signature, positionally. Types come
  /// from the C++ handler; only the names are supplied here.
  std::vector<std::string> params;
  bool is_public = false;
  std::string acl_path;
};

/// An immutable registered method: what Registry::find() hands the
/// dispatch loop (one lookup covers metadata checks and the call).
struct Method {
  Handler handler;
  MethodInfo info;
};

class Registry {
 public:
  /// Register a raw handler; replaces any existing registration of `name`.
  void add(const std::string& name, Handler handler, std::string help = "",
           std::string signature = "");

  /// Register a raw handler with full metadata.
  void add(const std::string& name, Handler handler, MethodInfo info);

  /// Register a typed callable. Parameters are unmarshalled from the wire
  /// values (mismatch => kFaultType fault), the signature string is
  /// derived from the C++ types, and `spec` supplies help text, display
  /// parameter names and the pre-dispatch metadata. Defined in
  /// rpc/binding.hpp.
  template <typename F>
  void bind(const std::string& name, F fn, BindSpec spec = {});

  void remove(const std::string& name);

  bool has(const std::string& name) const;

  /// Sorted method names. This is the >30-string array the paper's
  /// benchmark serializes on every call.
  std::vector<std::string> list() const;

  /// Sorted names under a module prefix (e.g. "file").
  std::vector<std::string> list_module(const std::string& module) const;

  MethodInfo info(const std::string& name) const;  // throws NotFound fault

  /// Single-lookup access to handler + metadata (the RPC hot path does
  /// this once per request). Returns nullptr for unknown names.
  std::shared_ptr<const Method> find(const std::string& name) const;

  /// Look up and invoke. Throws Fault(kFaultBadMethod) for unknown names;
  /// handler exceptions propagate.
  Value dispatch(const std::string& name, const CallContext& context,
                 const std::vector<Value>& params) const;

  std::size_t size() const;

 private:
  // Reader/writer split: every RPC does a find() (shared), while add()/
  // bind()/remove() are registration-time or administrative (exclusive).
  // Entries are immutable shared_ptr<const Method>, so a looked-up method
  // stays valid across a concurrent rebind of the same name.
  mutable util::SharedMutex mutex_{util::LockLevel::kRpcRegistry};
  std::map<std::string, std::shared_ptr<const Method>> methods_
      CLARENS_GUARDED_BY(mutex_);
};

}  // namespace clarens::rpc

// Defines Registry::bind (traits + invoker live there; the include is at
// the bottom so the binding layer sees the full Registry declaration).
#include "rpc/binding.hpp"
