// SOAP 1.1 subset: an Envelope/Body wrapping, rpc-style method element,
// XML-RPC-compatible <value> parameter payloads, and SOAP Faults.
//
// Clarens exposed SOAP alongside XML-RPC so AXIS/Java clients could call
// the same services; this codec preserves that duality — the registry and
// handlers are identical, only the envelope differs.
#pragma once

#include <string>

#include "rpc/xmlrpc.hpp"  // Request/Response structs
#include "util/buffer.hpp"

namespace clarens::rpc::soap {

/// Append the wire form to `out` (no intermediate strings).
void serialize_request(const Request& request, util::Buffer& out);
void serialize_response(const Response& response, util::Buffer& out);

std::string serialize_request(const Request& request);
Request parse_request(std::string_view body);

std::string serialize_response(const Response& response);
Response parse_response(std::string_view body);

}  // namespace clarens::rpc::soap
