#include "rpc/jsonrpc.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>

#include "rpc/fault.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"

namespace clarens::rpc::jsonrpc {

namespace {

void write_json(util::Buffer& out, const Value& value);

constexpr std::array<bool, 256> make_escape_table() {
  std::array<bool, 256> t{};
  for (int c = 0; c < 0x20; ++c) t[static_cast<std::size_t>(c)] = true;
  t['"'] = true;
  t['\\'] = true;
  return t;
}
constexpr std::array<bool, 256> kNeedsEscape = make_escape_table();

void write_json_string(util::Buffer& out, std::string_view s) {
  out.write_u8('"');
  // Emit maximal clean runs in one memcpy; escape the rare byte between.
  std::size_t start = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    if (!kNeedsEscape[c]) continue;
    out.write(s.data() + start, i - start);
    switch (c) {
      case '"': out.write("\\\""); break;
      case '\\': out.write("\\\\"); break;
      case '\b': out.write("\\b"); break;
      case '\f': out.write("\\f"); break;
      case '\n': out.write("\\n"); break;
      case '\r': out.write("\\r"); break;
      case '\t': out.write("\\t"); break;
      default: {
        constexpr char kHex[] = "0123456789abcdef";
        char buf[6] = {'\\', 'u', '0', '0', kHex[(c >> 4) & 0xf],
                       kHex[c & 0xf]};
        out.write(buf, sizeof(buf));
      }
    }
    start = i + 1;
  }
  out.write(s.data() + start, s.size() - start);
  out.write_u8('"');
}

void write_json(util::Buffer& out, const Value& value) {
  switch (value.type()) {
    case Value::Type::Nil: out.write("null"); break;
    case Value::Type::Bool:
      out.write(value.as_bool() ? std::string_view("true")
                                : std::string_view("false"));
      break;
    case Value::Type::Int: util::append_int(out, value.as_int()); break;
    case Value::Type::Double: {
      double d = value.as_double();
      if (!std::isfinite(d)) {
        // JSON cannot express NaN/Inf; null is the conventional fallback.
        out.write("null");
        break;
      }
      util::append_double(out, d);
      break;
    }
    case Value::Type::String: write_json_string(out, value.as_string()); break;
    case Value::Type::Binary: {
      out.write("{\"$base64\":\"");
      util::base64_encode_append(out, value.as_binary());
      out.write("\"}");
      break;
    }
    case Value::Type::DateTime:
      out.write("{\"$datetime\":");
      write_json_string(out, util::iso8601(value.as_datetime().unix_seconds));
      out.write_u8('}');
      break;
    case Value::Type::Array: {
      out.write_u8('[');
      bool first = true;
      for (const auto& element : value.as_array()) {
        if (!first) out.write_u8(',');
        write_json(out, element);
        first = false;
      }
      out.write_u8(']');
      break;
    }
    case Value::Type::Struct: {
      out.write_u8('{');
      bool first = true;
      for (const auto& [name, member] : value.members()) {
        if (!first) out.write_u8(',');
        write_json_string(out, name);
        out.write_u8(':');
        write_json(out, member);
        first = false;
      }
      out.write_u8('}');
      break;
    }
  }
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_space();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

  Value parse_value() {
    skip_space();
    if (eof()) fail("unexpected end of input");
    char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value(parse_string());
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') {
      expect("null");
      return Value::nil();
    }
    return parse_number();
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw ParseError("JSON parse error at offset " + std::to_string(pos_) +
                     ": " + what);
  }
  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  void skip_space() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }
  void expect(std::string_view s) {
    if (text_.substr(pos_, s.size()) != s) {
      fail("expected '" + std::string(s) + "'");
    }
    pos_ += s.size();
  }

  Value parse_bool() {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return Value(true);
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return Value(false);
    }
    fail("invalid literal");
  }

  std::string parse_string() {
    expect("\"");
    // Fast path: most strings have no escapes — one find, one copy.
    std::size_t end = text_.find_first_of("\"\\", pos_);
    if (end == std::string_view::npos) fail("unterminated string");
    if (text_[end] == '"') {
      std::string out(text_.substr(pos_, end - pos_));
      pos_ = end + 1;
      return out;
    }
    std::string out(text_.substr(pos_, end - pos_));
    pos_ = end;
    for (;;) {
      if (eof()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // UTF-8 encode (basic multilingual plane; surrogate pairs are
          // passed through as-is, adequate for this framework's use).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  Value parse_number() {
    std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    bool is_double = false;
    while (!eof()) {
      char c = peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("invalid number");
    if (!is_double) {
      std::int64_t v = 0;
      auto [p, ec] = std::from_chars(token.data(), token.data() + token.size(), v);
      if (ec == std::errc() && p == token.data() + token.size()) return Value(v);
    }
    double d = 0;
    auto [p, ec] = std::from_chars(token.data(), token.data() + token.size(), d);
    if (ec != std::errc() || p != token.data() + token.size()) {
      fail("invalid number '" + std::string(token) + "'");
    }
    return Value(d);
  }

  Value parse_array() {
    expect("[");
    // parse_value recurses through containers; cap attacker-controlled
    // depth before it becomes stack depth.
    if (++depth_ > kMaxDepth) fail("value nesting too deep");
    Value out = Value::array();
    skip_space();
    if (!eof() && peek() == ']') {
      ++pos_;
      --depth_;
      return out;
    }
    for (;;) {
      out.push(parse_value());
      skip_space();
      if (eof()) fail("unterminated array");
      char c = text_[pos_++];
      if (c == ']') {
        --depth_;
        return out;
      }
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Value parse_object() {
    expect("{");
    if (++depth_ > kMaxDepth) fail("value nesting too deep");
    Value out = Value::struct_();
    skip_space();
    if (!eof() && peek() == '}') {
      ++pos_;
      --depth_;
      return detag(std::move(out));
    }
    for (;;) {
      skip_space();
      std::string key = parse_string();
      skip_space();
      expect(":");
      out.set(key, parse_value());
      skip_space();
      if (eof()) fail("unterminated object");
      char c = text_[pos_++];
      if (c == '}') {
        --depth_;
        return detag(std::move(out));
      }
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  // Recognize the {"$base64": ...} / {"$datetime": ...} tagging convention.
  static Value detag(Value object) {
    if (object.size() == 1) {
      if (const Value* b = object.find("$base64")) {
        return Value(util::base64_decode(b->as_string()));
      }
      if (const Value* d = object.find("$datetime")) {
        return Value(DateTime{util::parse_iso8601(d->as_string())});
      }
    }
    return object;
  }

  static constexpr int kMaxDepth = 128;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

void serialize_value(const Value& value, util::Buffer& out) {
  write_json(out, value);
}

std::string serialize_value(const Value& value) {
  util::Buffer out;
  write_json(out, value);
  return std::string(out.peek_view());
}

Value parse_value(std::string_view json) {
  JsonParser parser(json);
  return parser.parse_document();
}

void serialize_request(const Request& request, util::Buffer& out) {
  out.write("{\"method\":");
  write_json_string(out, request.method);
  out.write(",\"params\":[");
  bool first = true;
  for (const auto& p : request.params) {
    if (!first) out.write_u8(',');
    write_json(out, p);
    first = false;
  }
  out.write("],\"id\":");
  write_json(out, request.id);
  out.write_u8('}');
}

std::string serialize_request(const Request& request) {
  util::Buffer out;
  serialize_request(request, out);
  return std::string(out.peek_view());
}

Request parse_request(std::string_view body) {
  Value v = parse_value(body);
  if (!v.is_struct()) throw ParseError("JSON-RPC request must be an object");
  Request request;
  request.method = v.at("method").as_string();
  if (const Value* params = v.find("params")) {
    if (params->type() == Value::Type::Array) {
      request.params = params->as_array();
    } else if (!params->is_nil()) {
      throw ParseError("JSON-RPC params must be an array");
    }
  }
  if (const Value* id = v.find("id")) request.id = *id;
  return request;
}

void serialize_response(const Response& response, util::Buffer& out) {
  out.write("{\"result\":");
  if (response.is_fault) {
    out.write("null,\"error\":{\"code\":");
    util::append_int(out, response.fault_code);
    out.write(",\"message\":");
    write_json_string(out, response.fault_message);
    out.write_u8('}');
  } else {
    write_json(out, response.result);
    out.write(",\"error\":null");
  }
  out.write(",\"id\":");
  write_json(out, response.id);
  out.write_u8('}');
}

std::string serialize_response(const Response& response) {
  util::Buffer out;
  serialize_response(response, out);
  return std::string(out.peek_view());
}

Response parse_response(std::string_view body) {
  Value v = parse_value(body);
  if (!v.is_struct()) throw ParseError("JSON-RPC response must be an object");
  Response response;
  const Value* error = v.find("error");
  if (error && !error->is_nil()) {
    response.is_fault = true;
    response.fault_code = static_cast<int>(error->at("code").as_int());
    response.fault_message = error->at("message").as_string();
  } else {
    const Value* result = v.find("result");
    if (!result) throw ParseError("JSON-RPC response missing result");
    response.result = *result;
  }
  if (const Value* id = v.find("id")) response.id = *id;
  return response;
}

}  // namespace clarens::rpc::jsonrpc
