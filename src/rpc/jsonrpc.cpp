#include "rpc/jsonrpc.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "rpc/fault.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"

namespace clarens::rpc::jsonrpc {

namespace {

void write_json(std::string& out, const Value& value);

void write_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

void write_json(std::string& out, const Value& value) {
  switch (value.type()) {
    case Value::Type::Nil: out += "null"; break;
    case Value::Type::Bool: out += value.as_bool() ? "true" : "false"; break;
    case Value::Type::Int: out += std::to_string(value.as_int()); break;
    case Value::Type::Double: {
      double d = value.as_double();
      if (!std::isfinite(d)) {
        // JSON cannot express NaN/Inf; null is the conventional fallback.
        out += "null";
        break;
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      out += buf;
      break;
    }
    case Value::Type::String: write_json_string(out, value.as_string()); break;
    case Value::Type::Binary:
      out += "{\"$base64\":";
      write_json_string(out, util::base64_encode(value.as_binary()));
      out.push_back('}');
      break;
    case Value::Type::DateTime:
      out += "{\"$datetime\":";
      write_json_string(out, util::iso8601(value.as_datetime().unix_seconds));
      out.push_back('}');
      break;
    case Value::Type::Array: {
      out.push_back('[');
      bool first = true;
      for (const auto& element : value.as_array()) {
        if (!first) out.push_back(',');
        write_json(out, element);
        first = false;
      }
      out.push_back(']');
      break;
    }
    case Value::Type::Struct: {
      out.push_back('{');
      bool first = true;
      for (const auto& [name, member] : value.members()) {
        if (!first) out.push_back(',');
        write_json_string(out, name);
        out.push_back(':');
        write_json(out, member);
        first = false;
      }
      out.push_back('}');
      break;
    }
  }
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_space();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

  Value parse_value() {
    skip_space();
    if (eof()) fail("unexpected end of input");
    char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value(parse_string());
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') {
      expect("null");
      return Value::nil();
    }
    return parse_number();
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw ParseError("JSON parse error at offset " + std::to_string(pos_) +
                     ": " + what);
  }
  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  void skip_space() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }
  void expect(std::string_view s) {
    if (text_.substr(pos_, s.size()) != s) {
      fail("expected '" + std::string(s) + "'");
    }
    pos_ += s.size();
  }

  Value parse_bool() {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return Value(true);
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return Value(false);
    }
    fail("invalid literal");
  }

  std::string parse_string() {
    expect("\"");
    std::string out;
    for (;;) {
      if (eof()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // UTF-8 encode (basic multilingual plane; surrogate pairs are
          // passed through as-is, adequate for this framework's use).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  Value parse_number() {
    std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    bool is_double = false;
    while (!eof()) {
      char c = peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("invalid number");
    if (!is_double) {
      std::int64_t v = 0;
      auto [p, ec] = std::from_chars(token.data(), token.data() + token.size(), v);
      if (ec == std::errc() && p == token.data() + token.size()) return Value(v);
    }
    try {
      return Value(std::stod(std::string(token)));
    } catch (const std::exception&) {
      fail("invalid number '" + std::string(token) + "'");
    }
  }

  Value parse_array() {
    expect("[");
    Value out = Value::array();
    skip_space();
    if (!eof() && peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.push(parse_value());
      skip_space();
      if (eof()) fail("unterminated array");
      char c = text_[pos_++];
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Value parse_object() {
    expect("{");
    Value out = Value::struct_();
    skip_space();
    if (!eof() && peek() == '}') {
      ++pos_;
      return detag(std::move(out));
    }
    for (;;) {
      skip_space();
      std::string key = parse_string();
      skip_space();
      expect(":");
      out.set(key, parse_value());
      skip_space();
      if (eof()) fail("unterminated object");
      char c = text_[pos_++];
      if (c == '}') return detag(std::move(out));
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  // Recognize the {"$base64": ...} / {"$datetime": ...} tagging convention.
  static Value detag(Value object) {
    if (object.size() == 1) {
      if (const Value* b = object.find("$base64")) {
        return Value(util::base64_decode(b->as_string()));
      }
      if (const Value* d = object.find("$datetime")) {
        return Value(DateTime{util::parse_iso8601(d->as_string())});
      }
    }
    return object;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string serialize_value(const Value& value) {
  std::string out;
  write_json(out, value);
  return out;
}

Value parse_value(std::string_view json) {
  JsonParser parser(json);
  return parser.parse_document();
}

std::string serialize_request(const Request& request) {
  std::string out = "{\"method\":";
  write_json_string(out, request.method);
  out += ",\"params\":";
  Value params = Value::array();
  for (const auto& p : request.params) params.push(p);
  write_json(out, params);
  out += ",\"id\":";
  write_json(out, request.id);
  out.push_back('}');
  return out;
}

Request parse_request(std::string_view body) {
  Value v = parse_value(body);
  if (!v.is_struct()) throw ParseError("JSON-RPC request must be an object");
  Request request;
  request.method = v.at("method").as_string();
  if (const Value* params = v.find("params")) {
    if (params->type() == Value::Type::Array) {
      request.params = params->as_array();
    } else if (!params->is_nil()) {
      throw ParseError("JSON-RPC params must be an array");
    }
  }
  if (const Value* id = v.find("id")) request.id = *id;
  return request;
}

std::string serialize_response(const Response& response) {
  std::string out = "{\"result\":";
  if (response.is_fault) {
    out += "null,\"error\":{\"code\":";
    out += std::to_string(response.fault_code);
    out += ",\"message\":";
    write_json_string(out, response.fault_message);
    out += "}";
  } else {
    write_json(out, response.result);
    out += ",\"error\":null";
  }
  out += ",\"id\":";
  write_json(out, response.id);
  out.push_back('}');
  return out;
}

Response parse_response(std::string_view body) {
  Value v = parse_value(body);
  if (!v.is_struct()) throw ParseError("JSON-RPC response must be an object");
  Response response;
  const Value* error = v.find("error");
  if (error && !error->is_nil()) {
    response.is_fault = true;
    response.fault_code = static_cast<int>(error->at("code").as_int());
    response.fault_message = error->at("message").as_string();
  } else {
    const Value* result = v.find("result");
    if (!result) throw ParseError("JSON-RPC response missing result");
    response.result = *result;
  }
  if (const Value* id = v.find("id")) response.id = *id;
  return response;
}

}  // namespace clarens::rpc::jsonrpc
