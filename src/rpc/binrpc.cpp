#include "rpc/binrpc.hpp"

#include <cstring>

#include "rpc/fault.hpp"
#include "util/error.hpp"

namespace clarens::rpc::binrpc {

namespace {

constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kKindRequest = 1;
constexpr std::uint8_t kKindResponse = 2;
constexpr std::uint32_t kMaxLength = 1u << 28;

enum Tag : std::uint8_t {
  kNil = 0,
  kBool = 1,
  kInt = 2,
  kDouble = 3,
  kString = 4,
  kBinary = 5,
  kDateTime = 6,
  kArray = 7,
  kStruct = 8,
};

/// Cursor over the request bytes; no staging copy of the body.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool empty() const { return pos_ >= data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  const char* require(std::size_t n) {
    if (remaining() < n) throw ParseError("binrpc: truncated frame");
    const char* p = data_.data() + pos_;
    pos_ += n;
    return p;
  }

  std::uint8_t read_u8() {
    return static_cast<std::uint8_t>(*require(1));
  }
  std::uint32_t read_u32() {
    const unsigned char* p =
        reinterpret_cast<const unsigned char*>(require(4));
    return (static_cast<std::uint32_t>(p[0]) << 24) |
           (static_cast<std::uint32_t>(p[1]) << 16) |
           (static_cast<std::uint32_t>(p[2]) << 8) |
           static_cast<std::uint32_t>(p[3]);
  }
  std::uint64_t read_u64() {
    const unsigned char* p =
        reinterpret_cast<const unsigned char*>(require(8));
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
    return v;
  }
  std::string_view read_view(std::size_t n) {
    const char* p = require(n);
    return {p, n};
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

void write_value(util::Buffer& out, const Value& value);

void write_string(util::Buffer& out, std::string_view s) {
  out.write_u32(static_cast<std::uint32_t>(s.size()));
  out.write(s);
}

void write_value(util::Buffer& out, const Value& value) {
  switch (value.type()) {
    case Value::Type::Nil:
      out.write_u8(kNil);
      break;
    case Value::Type::Bool:
      out.write_u8(kBool);
      out.write_u8(value.as_bool() ? 1 : 0);
      break;
    case Value::Type::Int:
      out.write_u8(kInt);
      out.write_u64(static_cast<std::uint64_t>(value.as_int()));
      break;
    case Value::Type::Double: {
      out.write_u8(kDouble);
      double d = value.as_double();
      std::uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      out.write_u64(bits);
      break;
    }
    case Value::Type::String:
      out.write_u8(kString);
      write_string(out, value.as_string());
      break;
    case Value::Type::Binary: {
      out.write_u8(kBinary);
      const auto& blob = value.as_binary();
      out.write_u32(static_cast<std::uint32_t>(blob.size()));
      out.write(blob);
      break;
    }
    case Value::Type::DateTime:
      out.write_u8(kDateTime);
      out.write_u64(static_cast<std::uint64_t>(value.as_datetime().unix_seconds));
      break;
    case Value::Type::Array: {
      out.write_u8(kArray);
      const auto& array = value.as_array();
      out.write_u32(static_cast<std::uint32_t>(array.size()));
      for (const auto& element : array) write_value(out, element);
      break;
    }
    case Value::Type::Struct: {
      out.write_u8(kStruct);
      const auto& members = value.members();
      out.write_u32(static_cast<std::uint32_t>(members.size()));
      for (const auto& [name, member] : members) {
        write_string(out, name);
        write_value(out, member);
      }
      break;
    }
  }
}

std::string_view read_string_view(Reader& in) {
  std::uint32_t length = in.read_u32();
  if (length > kMaxLength) throw ParseError("binrpc string too long");
  return in.read_view(length);
}

Value read_value(Reader& in, int depth = 0) {
  if (depth > 64) throw ParseError("binrpc value nesting too deep");
  std::uint8_t tag = in.read_u8();
  switch (tag) {
    case kNil: return Value();
    case kBool: return Value(in.read_u8() != 0);
    case kInt: return Value(static_cast<std::int64_t>(in.read_u64()));
    case kDouble: {
      std::uint64_t bits = in.read_u64();
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return Value(d);
    }
    case kString: return Value(std::string(read_string_view(in)));
    case kBinary: {
      std::uint32_t length = in.read_u32();
      if (length > kMaxLength) throw ParseError("binrpc blob too long");
      std::string_view bytes = in.read_view(length);
      const auto* p = reinterpret_cast<const std::uint8_t*>(bytes.data());
      return Value(std::vector<std::uint8_t>(p, p + bytes.size()));
    }
    case kDateTime:
      return Value(DateTime{static_cast<std::int64_t>(in.read_u64())});
    case kArray: {
      std::uint32_t count = in.read_u32();
      if (count > kMaxLength) throw ParseError("binrpc array too long");
      Value out = Value::array();
      for (std::uint32_t i = 0; i < count; ++i) {
        out.push(read_value(in, depth + 1));
      }
      return out;
    }
    case kStruct: {
      std::uint32_t count = in.read_u32();
      if (count > kMaxLength) throw ParseError("binrpc struct too long");
      Value out = Value::struct_();
      for (std::uint32_t i = 0; i < count; ++i) {
        std::string name(read_string_view(in));
        out.set(name, read_value(in, depth + 1));
      }
      return out;
    }
    default:
      throw ParseError("binrpc: unknown value tag " + std::to_string(tag));
  }
}

void write_frame_header(util::Buffer& out, std::uint8_t kind) {
  out.write(std::string_view(kMagic, 4));
  out.write_u8(kVersion);
  out.write_u8(kind);
}

Reader open_frame(std::string_view body, std::uint8_t expected_kind) {
  if (body.size() < 6) throw ParseError("binrpc frame too short");
  Reader in(body);
  std::string_view magic = in.read_view(4);
  if (std::memcmp(magic.data(), kMagic, 4) != 0) {
    throw ParseError("binrpc: bad magic");
  }
  std::uint8_t version = in.read_u8();
  if (version != kVersion) {
    throw ParseError("binrpc: unsupported version " + std::to_string(version));
  }
  std::uint8_t kind = in.read_u8();
  if (kind != expected_kind) throw ParseError("binrpc: wrong frame kind");
  return in;
}

}  // namespace

std::string serialize_value(const Value& value) {
  util::Buffer out;
  write_value(out, value);
  return std::string(out.peek_view());
}

Value parse_value(std::string_view bytes) {
  Reader in(bytes);
  Value v = read_value(in);
  if (!in.empty()) throw ParseError("binrpc: trailing bytes after value");
  return v;
}

void serialize_request(const Request& request, util::Buffer& out) {
  write_frame_header(out, kKindRequest);
  out.write_u8(kString);
  write_string(out, request.method);
  out.write_u8(kArray);
  out.write_u32(static_cast<std::uint32_t>(request.params.size()));
  for (const auto& p : request.params) write_value(out, p);
  write_value(out, request.id);
}

std::string serialize_request(const Request& request) {
  util::Buffer out;
  serialize_request(request, out);
  return std::string(out.peek_view());
}

Request parse_request(std::string_view body) {
  Reader in = open_frame(body, kKindRequest);
  Request request;
  request.method = read_value(in).as_string();
  if (request.method.empty()) throw ParseError("binrpc: empty method");
  Value params = read_value(in);
  request.params = params.as_array();
  request.id = read_value(in);
  return request;
}

void serialize_response(const Response& response, util::Buffer& out) {
  write_frame_header(out, kKindResponse);
  out.write_u8(response.is_fault ? 1 : 0);
  if (response.is_fault) {
    out.write_u32(static_cast<std::uint32_t>(response.fault_code));
    write_value(out, Value(response.fault_message));
  } else {
    write_value(out, response.result);
    write_value(out, response.id);
  }
}

std::string serialize_response(const Response& response) {
  util::Buffer out;
  serialize_response(response, out);
  return std::string(out.peek_view());
}

void serialize_blob_response_head(std::uint32_t length, util::Buffer& out) {
  write_frame_header(out, kKindResponse);
  out.write_u8(0);  // not a fault
  out.write_u8(kBinary);
  out.write_u32(length);
  // The `length` payload bytes follow on the wire, written by the
  // transport straight from the source file.
}

void serialize_blob_response_tail(const Value& id, util::Buffer& out) {
  write_value(out, id);
}

Response parse_response(std::string_view body) {
  Reader in = open_frame(body, kKindResponse);
  Response response;
  response.is_fault = in.read_u8() != 0;
  if (response.is_fault) {
    response.fault_code = static_cast<int>(in.read_u32());
    response.fault_message = read_value(in).as_string();
  } else {
    response.result = read_value(in);
    response.id = read_value(in);
  }
  return response;
}

}  // namespace clarens::rpc::binrpc
