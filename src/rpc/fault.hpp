// RPC faults: the error half of every protocol's response encoding.
#pragma once

#include <stdexcept>
#include <string>

namespace clarens::rpc {

/// Fault codes shared across protocols. Mirrors clarens::Error codes so
/// server-side exceptions translate 1:1.
enum FaultCode : int {
  kFaultGeneric = 1,
  kFaultParse = 2,
  kFaultAuth = 3,
  kFaultAccess = 4,
  kFaultNotFound = 5,
  kFaultSystem = 6,
  kFaultType = 7,       // wrong parameter type
  kFaultBadMethod = 8,  // no such method
};

class Fault : public std::runtime_error {
 public:
  Fault(int code, std::string message)
      : std::runtime_error(std::move(message)), code_(code) {}

  int code() const noexcept { return code_; }

 private:
  int code_;
};

}  // namespace clarens::rpc
