#include "rpc/value.hpp"

#include <sstream>

#include "rpc/fault.hpp"
#include "util/hex.hpp"

namespace clarens::rpc {

Value::Type Value::type() const {
  return static_cast<Type>(data_.index());
}

const char* Value::type_name() const {
  switch (type()) {
    case Type::Nil: return "nil";
    case Type::Bool: return "boolean";
    case Type::Int: return "int";
    case Type::Double: return "double";
    case Type::String: return "string";
    case Type::Binary: return "base64";
    case Type::DateTime: return "dateTime";
    case Type::Array: return "array";
    case Type::Struct: return "struct";
  }
  return "?";
}

namespace {

[[noreturn]] void type_fault(const char* want, const char* got) {
  throw Fault(kFaultType, std::string("expected ") + want + ", got " + got);
}

}  // namespace

bool Value::as_bool() const {
  if (auto* v = std::get_if<bool>(&data_)) return *v;
  type_fault("boolean", type_name());
}

std::int64_t Value::as_int() const {
  if (auto* v = std::get_if<std::int64_t>(&data_)) return *v;
  type_fault("int", type_name());
}

double Value::as_double() const {
  if (auto* v = std::get_if<double>(&data_)) return *v;
  if (auto* v = std::get_if<std::int64_t>(&data_)) return static_cast<double>(*v);
  type_fault("double", type_name());
}

const std::string& Value::as_string() const {
  if (auto* v = std::get_if<std::string>(&data_)) return *v;
  type_fault("string", type_name());
}

const std::vector<std::uint8_t>& Value::as_binary() const {
  if (auto* v = std::get_if<std::vector<std::uint8_t>>(&data_)) return *v;
  type_fault("base64", type_name());
}

DateTime Value::as_datetime() const {
  if (auto* v = std::get_if<DateTime>(&data_)) return *v;
  type_fault("dateTime", type_name());
}

const Array& Value::as_array() const {
  if (auto* v = std::get_if<Array>(&data_)) return *v;
  type_fault("array", type_name());
}

Array& Value::as_array() {
  if (auto* v = std::get_if<Array>(&data_)) return *v;
  type_fault("array", type_name());
}

const StructMembers& Value::members() const {
  if (auto* v = std::get_if<StructMembers>(&data_)) return *v;
  type_fault("struct", type_name());
}

Value& Value::set(const std::string& key, Value value) {
  if (type() == Type::Nil) data_ = StructMembers{};
  auto* m = std::get_if<StructMembers>(&data_);
  if (!m) type_fault("struct", type_name());
  for (auto& [k, v] : *m) {
    if (k == key) {
      v = std::move(value);
      return v;
    }
  }
  m->emplace_back(key, std::move(value));
  return m->back().second;
}

const Value* Value::find(const std::string& key) const {
  auto* m = std::get_if<StructMembers>(&data_);
  if (!m) return nullptr;
  for (const auto& [k, v] : *m) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  if (!v) throw Fault(kFaultType, "missing struct member '" + key + "'");
  return *v;
}

void Value::push(Value v) {
  if (type() == Type::Nil) data_ = Array{};
  as_array().push_back(std::move(v));
}

std::size_t Value::size() const {
  if (auto* a = std::get_if<Array>(&data_)) return a->size();
  if (auto* m = std::get_if<StructMembers>(&data_)) return m->size();
  return 0;
}

std::string Value::debug_string() const {
  std::ostringstream out;
  switch (type()) {
    case Type::Nil: out << "nil"; break;
    case Type::Bool: out << (as_bool() ? "true" : "false"); break;
    case Type::Int: out << as_int(); break;
    case Type::Double: out << as_double(); break;
    case Type::String: out << '"' << as_string() << '"'; break;
    case Type::Binary:
      out << "b64(" << util::hex_encode(as_binary()) << ')';
      break;
    case Type::DateTime: out << "dt(" << as_datetime().unix_seconds << ')'; break;
    case Type::Array: {
      out << '[';
      bool first = true;
      for (const auto& v : as_array()) {
        if (!first) out << ", ";
        out << v.debug_string();
        first = false;
      }
      out << ']';
      break;
    }
    case Type::Struct: {
      out << '{';
      bool first = true;
      for (const auto& [k, v] : members()) {
        if (!first) out << ", ";
        out << k << ": " << v.debug_string();
        first = false;
      }
      out << '}';
      break;
    }
  }
  return out.str();
}

}  // namespace clarens::rpc
