#include "rpc/xmlrpc.hpp"

#include <charconv>
#include <optional>

#include "rpc/fault.hpp"
#include "rpc/xml.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"
#include "util/strings.hpp"

namespace clarens::rpc::xmlrpc {

namespace {

using Event = XmlPullParser::Event;

// Adjacent constant markup is fused into single literals: a scalar value
// costs two buffer appends plus its payload, not one per tag.
void write_value(XmlWriter& w, const Value& value) {
  util::Buffer& out = w.buffer();
  switch (value.type()) {
    case Value::Type::Nil:
      // <nil/> is the common XML-RPC extension.
      out.write("<value><nil/></value>");
      break;
    case Value::Type::Bool:
      out.write(value.as_bool() ? "<value><boolean>1</boolean></value>"
                                : "<value><boolean>0</boolean></value>");
      break;
    case Value::Type::Int:
      out.write("<value><int>");
      util::append_int(out, value.as_int());
      out.write("</int></value>");
      break;
    case Value::Type::Double:
      out.write("<value><double>");
      util::append_double(out, value.as_double());
      out.write("</double></value>");
      break;
    case Value::Type::String:
      out.write("<value><string>");
      xml_escape_append(out, value.as_string());
      out.write("</string></value>");
      break;
    case Value::Type::Binary:
      out.write("<value><base64>");
      util::base64_encode_append(out, value.as_binary());
      out.write("</base64></value>");
      break;
    case Value::Type::DateTime:
      out.write("<value><dateTime.iso8601>");
      out.write(util::iso8601(value.as_datetime().unix_seconds));
      out.write("</dateTime.iso8601></value>");
      break;
    case Value::Type::Array: {
      out.write("<value><array><data>");
      for (const auto& element : value.as_array()) write_value(w, element);
      out.write("</data></array></value>");
      break;
    }
    case Value::Type::Struct: {
      out.write("<value><struct>");
      for (const auto& [name, member] : value.members()) {
        out.write("<member><name>");
        xml_escape_append(out, name);
        out.write("</name>");
        write_value(w, member);
        out.write("</member>");
      }
      out.write("</struct></value>");
      break;
    }
  }
}

double parse_double(std::string_view text) {
  double v = 0;
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc() || p != text.data() + text.size() || text.empty()) {
    throw ParseError("invalid XML-RPC double: '" + std::string(text) + "'");
  }
  return v;
}

/// Consume events until the EndTag matching the StartTag just read.
void skip_subtree(XmlPullParser& p) {
  int depth = 1;
  while (depth > 0) {
    switch (p.next()) {
      case Event::StartTag: ++depth; break;
      case Event::EndTag: --depth; break;
      default: break;
    }
  }
}

/// Character data of the current element (decoded), up to its EndTag.
std::string collect_text(XmlPullParser& p) {
  std::string out;
  for (;;) {
    switch (p.next()) {
      case Event::Text:
        p.text_append(out);
        break;
      case Event::EndTag:
        return out;
      case Event::StartTag:
        throw ParseError("unexpected element <" + std::string(p.name()) +
                         "> inside scalar XML-RPC value");
      case Event::Eof:
        throw ParseError("unexpected end of document");
    }
  }
}

void parse_value_into(XmlPullParser& p, Value& out);

Value parse_array_pull(XmlPullParser& p) {
  Value out = Value::array();
  bool have_data = false;
  for (;;) {
    switch (p.next()) {
      case Event::Text:
        break;
      case Event::EndTag:
        if (!have_data) throw ParseError("XML-RPC array missing <data>");
        return out;
      case Event::StartTag:
        if (!have_data && p.local_name() == "data") {
          have_data = true;
          for (bool in_data = true; in_data;) {
            switch (p.next()) {
              case Event::Text:
                break;
              case Event::EndTag:
                in_data = false;
                break;
              case Event::StartTag: {
                if (p.local_name() != "value") {
                  throw ParseError("XML-RPC array <data> may only contain <value>");
                }
                Array& items = out.as_array();
                items.emplace_back();
                parse_value_into(p, items.back());
                break;
              }
              case Event::Eof:
                throw ParseError("unexpected end of document");
            }
          }
        } else {
          skip_subtree(p);
        }
        break;
      case Event::Eof:
        throw ParseError("unexpected end of document");
    }
  }
}

void parse_member_pull(XmlPullParser& p, Value& out) {
  std::optional<std::string> name;
  std::optional<Value> value;
  for (;;) {
    switch (p.next()) {
      case Event::Text:
        break;
      case Event::EndTag:
        if (!name || !value) {
          throw ParseError("XML-RPC struct member missing name or value");
        }
        out.set(*name, std::move(*value));
        return;
      case Event::StartTag:
        if (!name && p.local_name() == "name") {
          name = collect_text(p);
        } else if (!value && p.local_name() == "value") {
          value = parse_value_pull(p);
        } else {
          skip_subtree(p);
        }
        break;
      case Event::Eof:
        throw ParseError("unexpected end of document");
    }
  }
}

Value parse_struct_pull(XmlPullParser& p) {
  Value out = Value::struct_();
  for (;;) {
    switch (p.next()) {
      case Event::Text:
        break;
      case Event::EndTag:
        return out;
      case Event::StartTag:
        if (p.local_name() == "member") {
          parse_member_pull(p, out);
        } else {
          skip_subtree(p);
        }
        break;
      case Event::Eof:
        throw ParseError("unexpected end of document");
    }
  }
}

/// Typed element inside <value>; positioned just past its StartTag.
/// Dispatches on the first tag character so the common scalars cost one
/// or two name compares, not a walk of the whole chain.
Value parse_typed_pull(XmlPullParser& p, std::string_view tag) {
  switch (tag.empty() ? '\0' : tag.front()) {
    case 's':
      if (tag == "string") return Value(collect_text(p));
      if (tag == "struct") return parse_struct_pull(p);
      break;
    case 'i':
      if (tag == "int" || tag == "i4" || tag == "i8") {
        std::string text = collect_text(p);
        return Value(util::parse_int(util::trim(text)));
      }
      break;
    case 'a':
      if (tag == "array") return parse_array_pull(p);
      break;
    case 'b':
      if (tag == "boolean") {
        std::string text = collect_text(p);
        std::string_view t = util::trim(text);
        if (t == "1" || t == "true") return Value(true);
        if (t == "0" || t == "false") return Value(false);
        throw ParseError("invalid XML-RPC boolean: '" + text + "'");
      }
      if (tag == "base64") {
        std::string text = collect_text(p);
        return Value(util::base64_decode(text));
      }
      break;
    case 'd':
      if (tag == "double") {
        std::string text = collect_text(p);
        return Value(parse_double(util::trim(text)));
      }
      if (tag == "dateTime.iso8601") {
        std::string text = collect_text(p);
        return Value(DateTime{util::parse_iso8601(std::string(util::trim(text)))});
      }
      break;
    case 'n':
      if (tag == "nil") {
        collect_text(p);
        return Value::nil();
      }
      break;
    default:
      break;
  }
  throw ParseError("unknown XML-RPC value type: <" + std::string(tag) + ">");
}

/// First <value> child of the current element, if any; consumes through
/// the element's EndTag.
std::optional<Value> parse_param_value(XmlPullParser& p) {
  std::optional<Value> value;
  for (;;) {
    switch (p.next()) {
      case Event::Text:
        break;
      case Event::EndTag:
        return value;
      case Event::StartTag:
        if (!value && p.local_name() == "value") {
          value = parse_value_pull(p);
        } else {
          skip_subtree(p);
        }
        break;
      case Event::Eof:
        throw ParseError("unexpected end of document");
    }
  }
}

void parse_params_pull(XmlPullParser& p, std::vector<Value>& out) {
  for (;;) {
    switch (p.next()) {
      case Event::Text:
        break;
      case Event::EndTag:
        return;
      case Event::StartTag:
        if (p.local_name() == "param") {
          std::optional<Value> value = parse_param_value(p);
          if (!value) throw ParseError("<param> missing <value>");
          out.push_back(std::move(*value));
        } else {
          skip_subtree(p);
        }
        break;
      case Event::Eof:
        throw ParseError("unexpected end of document");
    }
  }
}

Response parse_fault_pull(XmlPullParser& p) {
  std::optional<Value> fault_value = parse_param_value(p);
  if (!fault_value) throw ParseError("<fault> missing <value>");
  Response response;
  response.is_fault = true;
  response.fault_code = static_cast<int>(fault_value->at("faultCode").as_int());
  response.fault_message = fault_value->at("faultString").as_string();
  return response;
}

Response parse_response_params_pull(XmlPullParser& p) {
  bool have_param = false;
  std::optional<Value> value;
  for (;;) {
    switch (p.next()) {
      case Event::Text:
        break;
      case Event::EndTag:
        if (!have_param) throw ParseError("methodResponse missing <params>");
        if (!value) throw ParseError("response <param> missing <value>");
        return Response::success(std::move(*value));
      case Event::StartTag:
        if (!have_param) {
          have_param = true;
          value = parse_param_value(p);
        } else {
          skip_subtree(p);
        }
        break;
      case Event::Eof:
        throw ParseError("unexpected end of document");
    }
  }
}

}  // namespace

namespace {

// In-place variant of parse_value_pull: assigns into `out` so array and
// struct parsing build elements directly in their containers instead of
// moving a Value through several return slots.
void parse_value_into(XmlPullParser& p, Value& out) {
  // Positioned inside <value>: bare character data means string; a child
  // element carries the typed encoding.
  std::string bare;
  bool typed = false;
  for (;;) {
    switch (p.next()) {
      case Event::Text:
        if (!typed) p.text_append(bare);
        break;
      case Event::StartTag:
        if (!typed) {
          typed = true;
          out = parse_typed_pull(p, p.local_name());
        } else {
          skip_subtree(p);
        }
        break;
      case Event::EndTag:
        if (!typed) out = Value(std::move(bare));
        return;
      case Event::Eof:
        throw ParseError("unexpected end of document");
    }
  }
}

}  // namespace

Value parse_value_pull(XmlPullParser& p) {
  Value result;
  parse_value_into(p, result);
  return result;
}

Value parse_value_xml(const XmlSlice& value_node) {
  // A bare <value>text</value> is a string per the XML-RPC spec.
  if (value_node.children.empty()) {
    return Value(value_node.text());
  }
  const XmlSlice& typed = value_node.children.front();
  std::string_view tag = typed.local_name();
  if (tag == "nil") return Value::nil();
  if (tag == "boolean") {
    std::string text = typed.text();
    std::string_view t = util::trim(text);
    if (t == "1" || t == "true") return Value(true);
    if (t == "0" || t == "false") return Value(false);
    throw ParseError("invalid XML-RPC boolean: '" + text + "'");
  }
  if (tag == "int" || tag == "i4" || tag == "i8") {
    std::string text = typed.text();
    return Value(util::parse_int(util::trim(text)));
  }
  if (tag == "double") {
    std::string text = typed.text();
    return Value(parse_double(util::trim(text)));
  }
  if (tag == "string") return Value(typed.text());
  if (tag == "base64") {
    if (typed.text_is_view()) return Value(util::base64_decode(typed.text_view()));
    return Value(util::base64_decode(typed.text()));
  }
  if (tag == "dateTime.iso8601") {
    std::string text = typed.text();
    return Value(DateTime{util::parse_iso8601(std::string(util::trim(text)))});
  }
  if (tag == "array") {
    const XmlSlice* data = typed.child("data");
    if (!data) throw ParseError("XML-RPC array missing <data>");
    Value out = Value::array();
    for (const auto& child : data->children) {
      if (child.local_name() != "value") {
        throw ParseError("XML-RPC array <data> may only contain <value>");
      }
      out.push(parse_value_xml(child));
    }
    return out;
  }
  if (tag == "struct") {
    Value out = Value::struct_();
    for (const auto& member : typed.children) {
      if (member.local_name() != "member") continue;
      const XmlSlice* name = member.child("name");
      const XmlSlice* value = member.child("value");
      if (!name || !value) {
        throw ParseError("XML-RPC struct member missing name or value");
      }
      out.set(name->text(), parse_value_xml(*value));
    }
    return out;
  }
  throw ParseError("unknown XML-RPC value type: <" + std::string(tag) + ">");
}

void serialize_value(const Value& value, util::Buffer& out) {
  XmlWriter w(out);
  write_value(w, value);
}

std::string serialize_value(const Value& value) {
  util::Buffer out;
  serialize_value(value, out);
  return std::string(out.peek_view());
}

void serialize_request(const Request& request, util::Buffer& out) {
  XmlWriter w(out);
  out.write("<?xml version=\"1.0\"?><methodCall><methodName>");
  xml_escape_append(out, request.method);
  out.write("</methodName><params>");
  for (const auto& param : request.params) {
    out.write("<param>");
    write_value(w, param);
    out.write("</param>");
  }
  out.write("</params></methodCall>");
}

std::string serialize_request(const Request& request) {
  util::Buffer out;
  serialize_request(request, out);
  return std::string(out.peek_view());
}

Request parse_request(std::string_view body) {
  XmlPullParser p(body);
  p.next();  // root StartTag, or throws
  if (p.local_name() != "methodCall") {
    throw ParseError("expected <methodCall>, got <" + std::string(p.name()) + ">");
  }
  Request request;
  bool saw_method = false;
  bool saw_params = false;
  for (bool done = false; !done;) {
    switch (p.next()) {
      case Event::Text:
        break;
      case Event::EndTag:
        done = true;
        break;
      case Event::StartTag:
        if (!saw_method && p.local_name() == "methodName") {
          saw_method = true;
          std::string text = collect_text(p);
          request.method = std::string(util::trim(text));
        } else if (!saw_params && p.local_name() == "params") {
          saw_params = true;
          parse_params_pull(p, request.params);
        } else {
          skip_subtree(p);
        }
        break;
      case Event::Eof:
        throw ParseError("unexpected end of document");
    }
  }
  p.next();  // enforce no trailing content
  if (!saw_method) throw ParseError("methodCall missing <methodName>");
  if (request.method.empty()) throw ParseError("empty methodName");
  return request;
}

void serialize_response(const Response& response, util::Buffer& out) {
  XmlWriter w(out);
  out.write("<?xml version=\"1.0\"?><methodResponse>");
  if (response.is_fault) {
    Value fault = Value::struct_();
    fault.set("faultCode", Value(static_cast<std::int64_t>(response.fault_code)));
    fault.set("faultString", Value(response.fault_message));
    out.write("<fault>");
    write_value(w, fault);
    out.write("</fault>");
  } else {
    out.write("<params><param>");
    write_value(w, response.result);
    out.write("</param></params>");
  }
  out.write("</methodResponse>");
}

std::string serialize_response(const Response& response) {
  util::Buffer out;
  serialize_response(response, out);
  return std::string(out.peek_view());
}

Response parse_response(std::string_view body) {
  XmlPullParser p(body);
  p.next();
  if (p.local_name() != "methodResponse") {
    throw ParseError("expected <methodResponse>, got <" + std::string(p.name()) +
                     ">");
  }
  std::optional<Response> response;
  for (bool done = false; !done;) {
    switch (p.next()) {
      case Event::Text:
        break;
      case Event::EndTag:
        done = true;
        break;
      case Event::StartTag:
        if (!response && p.local_name() == "fault") {
          response = parse_fault_pull(p);
        } else if (!response && p.local_name() == "params") {
          response = parse_response_params_pull(p);
        } else {
          skip_subtree(p);
        }
        break;
      case Event::Eof:
        throw ParseError("unexpected end of document");
    }
  }
  p.next();
  if (!response) throw ParseError("methodResponse missing <params>");
  return std::move(*response);
}

}  // namespace clarens::rpc::xmlrpc
