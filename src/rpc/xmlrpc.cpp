#include "rpc/xmlrpc.hpp"

#include <charconv>
#include <cstdio>

#include "rpc/fault.hpp"
#include "rpc/xml.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"
#include "util/strings.hpp"

namespace clarens::rpc::xmlrpc {

namespace {

constexpr const char* kProlog = "<?xml version=\"1.0\"?>";

void write_value(XmlWriter& w, const Value& value) {
  w.open("value");
  switch (value.type()) {
    case Value::Type::Nil:
      // <nil/> is the common XML-RPC extension.
      w.raw("<nil/>");
      break;
    case Value::Type::Bool:
      w.element("boolean", value.as_bool() ? "1" : "0");
      break;
    case Value::Type::Int:
      w.element("int", std::to_string(value.as_int()));
      break;
    case Value::Type::Double: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", value.as_double());
      w.element("double", buf);
      break;
    }
    case Value::Type::String:
      w.element("string", value.as_string());
      break;
    case Value::Type::Binary:
      w.element("base64", util::base64_encode(value.as_binary()));
      break;
    case Value::Type::DateTime:
      w.element("dateTime.iso8601",
                util::iso8601(value.as_datetime().unix_seconds));
      break;
    case Value::Type::Array: {
      w.open("array");
      w.open("data");
      for (const auto& element : value.as_array()) write_value(w, element);
      w.close("data");
      w.close("array");
      break;
    }
    case Value::Type::Struct: {
      w.open("struct");
      for (const auto& [name, member] : value.members()) {
        w.open("member");
        w.element("name", name);
        write_value(w, member);
        w.close("member");
      }
      w.close("struct");
      break;
    }
  }
  w.close("value");
}

double parse_double(const std::string& text) {
  try {
    std::size_t used = 0;
    double v = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw ParseError("invalid XML-RPC double: '" + text + "'");
  }
}

}  // namespace

Value parse_value_xml(const XmlNode& value_node) {
  // A bare <value>text</value> is a string per the XML-RPC spec.
  if (value_node.children.empty()) {
    return Value(value_node.text);
  }
  const XmlNode& typed = value_node.children.front();
  const std::string tag = typed.local_name();
  if (tag == "nil") return Value::nil();
  if (tag == "boolean") {
    std::string t(util::trim(typed.text));
    if (t == "1" || t == "true") return Value(true);
    if (t == "0" || t == "false") return Value(false);
    throw ParseError("invalid XML-RPC boolean: '" + typed.text + "'");
  }
  if (tag == "int" || tag == "i4" || tag == "i8") {
    return Value(util::parse_int(util::trim(typed.text)));
  }
  if (tag == "double") {
    return Value(parse_double(std::string(util::trim(typed.text))));
  }
  if (tag == "string") return Value(typed.text);
  if (tag == "base64") return Value(util::base64_decode(typed.text));
  if (tag == "dateTime.iso8601") {
    return Value(DateTime{util::parse_iso8601(std::string(util::trim(typed.text)))});
  }
  if (tag == "array") {
    const XmlNode* data = typed.child("data");
    if (!data) throw ParseError("XML-RPC array missing <data>");
    Value out = Value::array();
    for (const auto& child : data->children) {
      if (child.local_name() != "value") {
        throw ParseError("XML-RPC array <data> may only contain <value>");
      }
      out.push(parse_value_xml(child));
    }
    return out;
  }
  if (tag == "struct") {
    Value out = Value::struct_();
    for (const auto& member : typed.children) {
      if (member.local_name() != "member") continue;
      const XmlNode* name = member.child("name");
      const XmlNode* value = member.child("value");
      if (!name || !value) {
        throw ParseError("XML-RPC struct member missing name or value");
      }
      out.set(name->text, parse_value_xml(*value));
    }
    return out;
  }
  throw ParseError("unknown XML-RPC value type: <" + tag + ">");
}

std::string serialize_value(const Value& value) {
  XmlWriter w;
  write_value(w, value);
  return w.take();
}

std::string serialize_request(const Request& request) {
  XmlWriter w;
  w.raw(kProlog);
  w.open("methodCall");
  w.element("methodName", request.method);
  w.open("params");
  for (const auto& param : request.params) {
    w.open("param");
    write_value(w, param);
    w.close("param");
  }
  w.close("params");
  w.close("methodCall");
  return w.take();
}

Request parse_request(std::string_view body) {
  XmlNode root = xml_parse(body);
  if (root.local_name() != "methodCall") {
    throw ParseError("expected <methodCall>, got <" + root.tag + ">");
  }
  const XmlNode* name = root.child("methodName");
  if (!name) throw ParseError("methodCall missing <methodName>");
  Request request;
  request.method = std::string(util::trim(name->text));
  if (request.method.empty()) throw ParseError("empty methodName");
  if (const XmlNode* params = root.child("params")) {
    for (const auto& param : params->children) {
      if (param.local_name() != "param") continue;
      const XmlNode* value = param.child("value");
      if (!value) throw ParseError("<param> missing <value>");
      request.params.push_back(parse_value_xml(*value));
    }
  }
  return request;
}

std::string serialize_response(const Response& response) {
  XmlWriter w;
  w.raw(kProlog);
  w.open("methodResponse");
  if (response.is_fault) {
    Value fault = Value::struct_();
    fault.set("faultCode", Value(static_cast<std::int64_t>(response.fault_code)));
    fault.set("faultString", Value(response.fault_message));
    w.open("fault");
    write_value(w, fault);
    w.close("fault");
  } else {
    w.open("params");
    w.open("param");
    write_value(w, response.result);
    w.close("param");
    w.close("params");
  }
  w.close("methodResponse");
  return w.take();
}

Response parse_response(std::string_view body) {
  XmlNode root = xml_parse(body);
  if (root.local_name() != "methodResponse") {
    throw ParseError("expected <methodResponse>, got <" + root.tag + ">");
  }
  if (const XmlNode* fault = root.child("fault")) {
    const XmlNode* value = fault->child("value");
    if (!value) throw ParseError("<fault> missing <value>");
    Value fv = parse_value_xml(*value);
    Response response;
    response.is_fault = true;
    response.fault_code = static_cast<int>(fv.at("faultCode").as_int());
    response.fault_message = fv.at("faultString").as_string();
    return response;
  }
  const XmlNode* params = root.child("params");
  if (!params || params->children.empty()) {
    throw ParseError("methodResponse missing <params>");
  }
  const XmlNode* value = params->children.front().child("value");
  if (!value) throw ParseError("response <param> missing <value>");
  return Response::success(parse_value_xml(*value));
}

}  // namespace clarens::rpc::xmlrpc
