#include "rpc/xml.hpp"

#include <cctype>

#include "util/error.hpp"

namespace clarens::rpc {

std::string XmlNode::local_name() const {
  std::size_t colon = tag.find(':');
  return colon == std::string::npos ? tag : tag.substr(colon + 1);
}

const XmlNode* XmlNode::child(std::string_view local) const {
  for (const auto& c : children) {
    if (c.local_name() == local) return &c;
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::children_named(std::string_view local) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children) {
    if (c.local_name() == local) out.push_back(&c);
  }
  return out;
}

std::string XmlNode::attribute(std::string_view name) const {
  for (const auto& [k, v] : attributes) {
    if (k == name) return v;
  }
  return "";
}

std::string xml_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  XmlNode parse_document() {
    skip_misc();
    XmlNode root = parse_element();
    skip_misc();
    if (pos_ != text_.size()) fail("trailing content after root element");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw ParseError("XML parse error at offset " + std::to_string(pos_) +
                     ": " + what);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  char get() {
    if (eof()) const_cast<Parser*>(this)->fail("unexpected end of input");
    return text_[pos_++];
  }
  bool consume(std::string_view s) {
    if (text_.substr(pos_, s.size()) == s) {
      pos_ += s.size();
      return true;
    }
    return false;
  }
  void expect(std::string_view s) {
    if (!consume(s)) fail("expected '" + std::string(s) + "'");
  }
  void skip_space() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  // Prolog, comments, whitespace between top-level constructs.
  void skip_misc() {
    for (;;) {
      skip_space();
      if (consume("<?")) {
        std::size_t end = text_.find("?>", pos_);
        if (end == std::string_view::npos) fail("unterminated processing instruction");
        pos_ = end + 2;
      } else if (consume("<!--")) {
        std::size_t end = text_.find("-->", pos_);
        if (end == std::string_view::npos) fail("unterminated comment");
        pos_ = end + 3;
      } else {
        return;
      }
    }
  }

  std::string parse_name() {
    std::size_t start = pos_;
    while (!eof()) {
      char c = peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
          c == '.' || c == ':') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected name");
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string decode_entities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    std::size_t i = 0;
    while (i < raw.size()) {
      if (raw[i] != '&') {
        out.push_back(raw[i++]);
        continue;
      }
      std::size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) fail("unterminated entity");
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "lt") out.push_back('<');
      else if (ent == "gt") out.push_back('>');
      else if (ent == "amp") out.push_back('&');
      else if (ent == "quot") out.push_back('"');
      else if (ent == "apos") out.push_back('\'');
      else if (!ent.empty() && ent[0] == '#') {
        long code = 0;
        if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
          code = std::strtol(std::string(ent.substr(2)).c_str(), nullptr, 16);
        } else {
          code = std::strtol(std::string(ent.substr(1)).c_str(), nullptr, 10);
        }
        // UTF-8 encode the code point.
        if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out.push_back(static_cast<char>(0xc0 | (code >> 6)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
        } else {
          out.push_back(static_cast<char>(0xe0 | (code >> 12)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
        }
      } else {
        fail("unknown entity '&" + std::string(ent) + ";'");
      }
      i = semi + 1;
    }
    return out;
  }

  XmlNode parse_element() {
    expect("<");
    XmlNode node;
    node.tag = parse_name();
    // Attributes.
    for (;;) {
      skip_space();
      if (eof()) fail("unterminated start tag");
      if (consume("/>")) return node;  // empty element
      if (consume(">")) break;
      std::string name = parse_name();
      skip_space();
      expect("=");
      skip_space();
      char quote = get();
      if (quote != '"' && quote != '\'') fail("attribute value must be quoted");
      std::size_t start = pos_;
      while (!eof() && peek() != quote) ++pos_;
      if (eof()) fail("unterminated attribute value");
      std::string value = decode_entities(text_.substr(start, pos_ - start));
      ++pos_;  // closing quote
      node.attributes.emplace_back(std::move(name), std::move(value));
    }
    // Content.
    for (;;) {
      if (eof()) fail("unterminated element <" + node.tag + ">");
      if (consume("<!--")) {
        std::size_t end = text_.find("-->", pos_);
        if (end == std::string_view::npos) fail("unterminated comment");
        pos_ = end + 3;
        continue;
      }
      if (consume("<![CDATA[")) {
        std::size_t end = text_.find("]]>", pos_);
        if (end == std::string_view::npos) fail("unterminated CDATA");
        node.text.append(text_.substr(pos_, end - pos_));
        pos_ = end + 3;
        continue;
      }
      if (text_.substr(pos_, 2) == "</") {
        pos_ += 2;
        std::string closing = parse_name();
        if (closing != node.tag) {
          fail("mismatched closing tag: <" + node.tag + "> vs </" + closing + ">");
        }
        skip_space();
        expect(">");
        return node;
      }
      if (peek() == '<') {
        node.children.push_back(parse_element());
        continue;
      }
      // Character data up to the next '<'.
      std::size_t start = pos_;
      while (!eof() && peek() != '<') ++pos_;
      node.text.append(decode_entities(text_.substr(start, pos_ - start)));
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

XmlNode xml_parse(std::string_view text) {
  Parser parser(text);
  return parser.parse_document();
}

void XmlWriter::open(std::string_view tag) {
  out_.push_back('<');
  out_.append(tag);
  out_.push_back('>');
}

void XmlWriter::open(
    std::string_view tag,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        attributes) {
  out_.push_back('<');
  out_.append(tag);
  for (const auto& [name, value] : attributes) {
    out_.push_back(' ');
    out_.append(name);
    out_.append("=\"");
    out_.append(xml_escape(value));
    out_.push_back('"');
  }
  out_.push_back('>');
}

void XmlWriter::close(std::string_view tag) {
  out_.append("</");
  out_.append(tag);
  out_.push_back('>');
}

void XmlWriter::text(std::string_view content) { out_.append(xml_escape(content)); }

void XmlWriter::raw(std::string_view content) { out_.append(content); }

void XmlWriter::element(std::string_view tag, std::string_view content) {
  open(tag);
  text(content);
  close(tag);
}

}  // namespace clarens::rpc
