#include "rpc/xml.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cstring>

#include "util/error.hpp"

namespace clarens::rpc {

namespace {

constexpr std::string_view kXmlSpecial = "<>&\"'";

std::string_view entity_for(char c) {
  switch (c) {
    case '<': return "&lt;";
    case '>': return "&gt;";
    case '&': return "&amp;";
    case '"': return "&quot;";
    case '\'': return "&apos;";
  }
  return {};
}

void escape_into(std::string& out, std::string_view text, std::size_t first) {
  std::size_t i = 0;
  std::size_t pos = first;
  for (;;) {
    out.append(text.substr(i, pos - i));
    out.append(entity_for(text[pos]));
    i = pos + 1;
    pos = text.find_first_of(kXmlSpecial, i);
    if (pos == std::string_view::npos) {
      out.append(text.substr(i));
      return;
    }
  }
}

void utf8_append(std::string& out, long code) {
  if (code < 0x80) {
    out.push_back(static_cast<char>(code));
  } else if (code < 0x800) {
    out.push_back(static_cast<char>(0xc0 | (code >> 6)));
    out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
  } else {
    out.push_back(static_cast<char>(0xe0 | (code >> 12)));
    out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
  }
}

void unescape_append(std::string& out, std::string_view raw) {
  std::size_t i = 0;
  for (;;) {
    std::size_t amp = raw.find('&', i);
    if (amp == std::string_view::npos) {
      out.append(raw.substr(i));
      return;
    }
    out.append(raw.substr(i, amp - i));
    std::size_t semi = raw.find(';', amp);
    if (semi == std::string_view::npos) {
      throw ParseError("XML parse error: unterminated entity");
    }
    std::string_view ent = raw.substr(amp + 1, semi - amp - 1);
    if (ent == "lt") {
      out.push_back('<');
    } else if (ent == "gt") {
      out.push_back('>');
    } else if (ent == "amp") {
      out.push_back('&');
    } else if (ent == "quot") {
      out.push_back('"');
    } else if (ent == "apos") {
      out.push_back('\'');
    } else if (!ent.empty() && ent[0] == '#') {
      std::string_view digits = ent.substr(1);
      int base = 10;
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits.remove_prefix(1);
      }
      long code = 0;
      auto [p, ec] =
          std::from_chars(digits.data(), digits.data() + digits.size(), code, base);
      if (ec != std::errc() || p != digits.data() + digits.size() ||
          digits.empty() || code < 0) {
        throw ParseError("XML parse error: invalid character reference '&" +
                         std::string(ent) + ";'");
      }
      utf8_append(out, code);
    } else {
      throw ParseError("XML parse error: unknown entity '&" + std::string(ent) +
                       ";'");
    }
    i = semi + 1;
  }
}

/// Decode only when an ampersand is actually present.
void maybe_unescape_append(std::string& out, std::string_view raw) {
  if (raw.find('&') == std::string_view::npos) {
    out.append(raw);
  } else {
    unescape_append(out, raw);
  }
}

std::string_view strip_prefix(std::string_view tag) {
  std::size_t colon = tag.find(':');
  return colon == std::string_view::npos ? tag : tag.substr(colon + 1);
}

}  // namespace

std::string XmlNode::local_name() const {
  return std::string(strip_prefix(tag));
}

const XmlNode* XmlNode::child(std::string_view local) const {
  for (const auto& c : children) {
    if (strip_prefix(c.tag) == local) return &c;
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::children_named(std::string_view local) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children) {
    if (strip_prefix(c.tag) == local) out.push_back(&c);
  }
  return out;
}

std::string XmlNode::attribute(std::string_view name) const {
  for (const auto& [k, v] : attributes) {
    if (k == name) return v;
  }
  return "";
}

std::string xml_escape(std::string_view text) {
  std::size_t first = text.find_first_of(kXmlSpecial);
  if (first == std::string_view::npos) return std::string(text);
  std::string out;
  out.reserve(text.size() + 8);
  escape_into(out, text, first);
  return out;
}

std::string_view xml_escape(std::string_view text, std::string& scratch) {
  std::size_t first = text.find_first_of(kXmlSpecial);
  if (first == std::string_view::npos) return text;
  scratch.clear();
  scratch.reserve(text.size() + 8);
  escape_into(scratch, text, first);
  return scratch;
}

void xml_escape_append(util::Buffer& out, std::string_view text) {
  std::size_t i = 0;
  for (;;) {
    std::size_t pos = text.find_first_of(kXmlSpecial, i);
    if (pos == std::string_view::npos) {
      out.write(text.substr(i));
      return;
    }
    out.write(text.substr(i, pos - i));
    out.write(entity_for(text[pos]));
    i = pos + 1;
  }
}

std::string xml_unescape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  unescape_append(out, raw);
  return out;
}

// ---------- pull parser ----------

namespace {

inline bool is_xml_ws(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

// Characters allowed in a (simplified) XML name: alnum plus _ - . :
constexpr std::array<bool, 256> make_name_table() {
  std::array<bool, 256> t{};
  for (int c = '0'; c <= '9'; ++c) t[static_cast<std::size_t>(c)] = true;
  for (int c = 'a'; c <= 'z'; ++c) t[static_cast<std::size_t>(c)] = true;
  for (int c = 'A'; c <= 'Z'; ++c) t[static_cast<std::size_t>(c)] = true;
  t[static_cast<std::size_t>('_')] = true;
  t[static_cast<std::size_t>('-')] = true;
  t[static_cast<std::size_t>('.')] = true;
  t[static_cast<std::size_t>(':')] = true;
  return t;
}
constexpr std::array<bool, 256> kNameChar = make_name_table();

}  // namespace

void XmlPullParser::fail(const std::string& what) const {
  throw ParseError("XML parse error at offset " + std::to_string(pos_) + ": " +
                   what);
}

bool XmlPullParser::consume(std::string_view s) {
  if (text_.substr(pos_, s.size()) == s) {
    pos_ += s.size();
    return true;
  }
  return false;
}

void XmlPullParser::expect(std::string_view s) {
  if (!consume(s)) fail("expected '" + std::string(s) + "'");
}

void XmlPullParser::skip_space() {
  while (!eof() && is_xml_ws(peek())) ++pos_;
}

// Prolog, comments, whitespace between top-level constructs.
void XmlPullParser::skip_misc() {
  for (;;) {
    skip_space();
    if (consume("<?")) {
      std::size_t end = text_.find("?>", pos_);
      if (end == std::string_view::npos) fail("unterminated processing instruction");
      pos_ = end + 2;
    } else if (consume("<!--")) {
      std::size_t end = text_.find("-->", pos_);
      if (end == std::string_view::npos) fail("unterminated comment");
      pos_ = end + 3;
    } else {
      return;
    }
  }
}

std::string_view XmlPullParser::parse_name() {
  std::size_t start = pos_;
  while (!eof() && kNameChar[static_cast<unsigned char>(peek())]) ++pos_;
  if (pos_ == start) fail("expected name");
  return text_.substr(start, pos_ - start);
}

XmlPullParser::Event XmlPullParser::parse_start_tag() {
  ++pos_;  // the '<' both call sites already matched
  name_ = parse_name();
  // The tree builders (fill_node, parse_value_into, ...) recurse once per
  // open element, so unbounded depth is a stack-overflow vector for
  // attacker-supplied documents. RPC payloads nest values, not documents:
  // 128 is far beyond anything a legitimate envelope produces.
  if (open_tags_.size() >= kMaxDepth) fail("element nesting too deep");
  // Fast path: attribute-free tag (every tag XML-RPC emits).
  if (!eof() && peek() == '>') {
    ++pos_;
    if (!attributes_.empty()) attributes_.clear();
    open_tags_.push_back(name_);
    return Event::StartTag;
  }
  attributes_.clear();
  for (;;) {
    skip_space();
    if (eof()) fail("unterminated start tag");
    if (consume("/>")) {
      open_tags_.push_back(name_);
      pending_end_ = true;  // next() will emit the matching EndTag
      return Event::StartTag;
    }
    if (consume(">")) {
      open_tags_.push_back(name_);
      return Event::StartTag;
    }
    std::string_view attr_name = parse_name();
    skip_space();
    expect("=");
    skip_space();
    if (eof()) fail("unterminated start tag");
    char quote = text_[pos_++];
    if (quote != '"' && quote != '\'') fail("attribute value must be quoted");
    std::size_t start = pos_;
    while (!eof() && peek() != quote) ++pos_;
    if (eof()) fail("unterminated attribute value");
    attributes_.emplace_back(attr_name, text_.substr(start, pos_ - start));
    ++pos_;  // closing quote
  }
}

XmlPullParser::Event XmlPullParser::next() {
  if (pending_end_) {
    pending_end_ = false;
    name_ = open_tags_.back();
    open_tags_.pop_back();
    if (open_tags_.empty()) root_seen_ = true;
    return Event::EndTag;
  }
  for (;;) {
    if (open_tags_.empty()) {
      // Document level: before the root element or after it closed.
      skip_misc();
      if (root_seen_) {
        if (pos_ != text_.size()) fail("trailing content after root element");
        return Event::Eof;
      }
      if (eof()) fail("unexpected end of input");
      if (peek() != '<') fail("expected '<'");
      return parse_start_tag();
    }
    if (eof()) {
      fail("unterminated element <" + std::string(open_tags_.back()) + ">");
    }
    if (peek() != '<') {
      // Character data up to the next '<'; remember whether any entity
      // reference appeared so decoding can be skipped for clean runs.
      std::size_t end = text_.find('<', pos_);
      if (end == std::string_view::npos) end = text_.size();
      chardata_ = text_.substr(pos_, end - pos_);
      chardata_escaped_ =
          std::memchr(chardata_.data(), '&', chardata_.size()) != nullptr;
      pos_ = end;
      return Event::Text;
    }
    // Dispatch on the character after '<': '/' end tag, '!' comment or
    // CDATA, anything else a start tag.
    char kind = pos_ + 1 < text_.size() ? text_[pos_ + 1] : '\0';
    if (kind == '/') {
      pos_ += 2;
      std::string_view closing = parse_name();
      if (closing != open_tags_.back()) {
        fail("mismatched closing tag: <" + std::string(open_tags_.back()) +
             "> vs </" + std::string(closing) + ">");
      }
      if (!eof() && peek() == '>') {
        ++pos_;
      } else {
        skip_space();
        expect(">");
      }
      name_ = closing;
      open_tags_.pop_back();
      if (open_tags_.empty()) root_seen_ = true;
      return Event::EndTag;
    }
    if (kind == '!') {
      if (consume("<!--")) {
        std::size_t end = text_.find("-->", pos_);
        if (end == std::string_view::npos) fail("unterminated comment");
        pos_ = end + 3;
        continue;
      }
      if (consume("<![CDATA[")) {
        std::size_t end = text_.find("]]>", pos_);
        if (end == std::string_view::npos) fail("unterminated CDATA");
        chardata_ = text_.substr(pos_, end - pos_);
        chardata_escaped_ = false;
        pos_ = end + 3;
        return Event::Text;
      }
      fail("unsupported markup");
    }
    return parse_start_tag();
  }
}

std::string_view XmlPullParser::local_name() const { return strip_prefix(name_); }

std::string XmlPullParser::text() const {
  std::string out;
  out.reserve(chardata_.size());
  text_append(out);
  return out;
}

void XmlPullParser::text_append(std::string& out) const {
  if (chardata_escaped_) {
    unescape_append(out, chardata_);
  } else {
    out.append(chardata_);
  }
}

// ---------- slice tree ----------

std::string_view XmlSlice::local_name() const { return strip_prefix(tag); }

const XmlSlice* XmlSlice::child(std::string_view local) const {
  for (const auto& c : children) {
    if (c.local_name() == local) return &c;
  }
  return nullptr;
}

bool XmlSlice::text_is_view() const {
  return text_segments.empty() ||
         (text_segments.size() == 1 && !text_segments[0].escaped);
}

std::string_view XmlSlice::text_view() const {
  return text_segments.empty() ? std::string_view() : text_segments[0].raw;
}

std::string XmlSlice::text() const {
  std::string out;
  for (const TextSeg& seg : text_segments) {
    if (seg.escaped) {
      unescape_append(out, seg.raw);
    } else {
      out.append(seg.raw);
    }
  }
  return out;
}

std::string XmlSlice::attribute(std::string_view name) const {
  for (const auto& [k, v] : attributes) {
    if (k == name) {
      std::string out;
      maybe_unescape_append(out, v);
      return out;
    }
  }
  return "";
}

namespace {

void fill_slice(XmlSlice& node, XmlPullParser& parser) {
  node.tag = parser.name();
  node.attributes = parser.attributes();
  for (;;) {
    switch (parser.next()) {
      case XmlPullParser::Event::StartTag:
        fill_slice(node.children.emplace_back(), parser);
        break;
      case XmlPullParser::Event::Text:
        node.text_segments.push_back(
            {parser.text_raw(), parser.text_needs_unescape()});
        break;
      case XmlPullParser::Event::EndTag:
        return;
      case XmlPullParser::Event::Eof:
        return;  // unreachable: the parser throws on unterminated elements
    }
  }
}

void fill_node(XmlNode& node, XmlPullParser& parser) {
  node.tag = std::string(parser.name());
  for (const auto& [k, v] : parser.attributes()) {
    std::string value;
    maybe_unescape_append(value, v);
    node.attributes.emplace_back(std::string(k), std::move(value));
  }
  for (;;) {
    switch (parser.next()) {
      case XmlPullParser::Event::StartTag:
        fill_node(node.children.emplace_back(), parser);
        break;
      case XmlPullParser::Event::Text:
        if (parser.text_needs_unescape()) {
          unescape_append(node.text, parser.text_raw());
        } else {
          node.text.append(parser.text_raw());
        }
        break;
      case XmlPullParser::Event::EndTag:
        return;
      case XmlPullParser::Event::Eof:
        return;  // unreachable
    }
  }
}

}  // namespace

XmlSlice xml_parse_slices(std::string_view text) {
  XmlPullParser parser(text);
  parser.next();  // StartTag of the root, or throws
  XmlSlice root;
  fill_slice(root, parser);
  parser.next();  // enforces no trailing content
  return root;
}

XmlNode xml_parse(std::string_view text) {
  XmlPullParser parser(text);
  parser.next();
  XmlNode root;
  fill_node(root, parser);
  parser.next();
  return root;
}

// ---------- writer ----------

void XmlWriter::open(std::string_view tag) {
  out_.write_u8('<');
  out_.write(tag);
  out_.write_u8('>');
}

void XmlWriter::open(
    std::string_view tag,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        attributes) {
  out_.write_u8('<');
  out_.write(tag);
  for (const auto& [name, value] : attributes) {
    out_.write_u8(' ');
    out_.write(name);
    out_.write("=\"");
    xml_escape_append(out_, value);
    out_.write_u8('"');
  }
  out_.write_u8('>');
}

void XmlWriter::close(std::string_view tag) {
  out_.write("</");
  out_.write(tag);
  out_.write_u8('>');
}

void XmlWriter::text(std::string_view content) {
  xml_escape_append(out_, content);
}

void XmlWriter::raw(std::string_view content) { out_.write(content); }

void XmlWriter::element(std::string_view tag, std::string_view content) {
  open(tag);
  text(content);
  close(tag);
}

void XmlWriter::element_int(std::string_view tag, std::int64_t v) {
  open(tag);
  util::append_int(out_, v);
  close(tag);
}

void XmlWriter::element_double(std::string_view tag, double v) {
  open(tag);
  util::append_double(out_, v);
  close(tag);
}

}  // namespace clarens::rpc
