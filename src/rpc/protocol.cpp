#include "rpc/protocol.hpp"

#include "rpc/binrpc.hpp"
#include "rpc/jsonrpc.hpp"
#include "rpc/soap.hpp"
#include "util/strings.hpp"

namespace clarens::rpc {

const char* to_string(Protocol protocol) {
  switch (protocol) {
    case Protocol::XmlRpc: return "xmlrpc";
    case Protocol::JsonRpc: return "jsonrpc";
    case Protocol::Soap: return "soap";
    case Protocol::Binary: return "binrpc";
  }
  return "?";
}

const char* content_type(Protocol protocol) {
  switch (protocol) {
    case Protocol::XmlRpc: return "text/xml";
    case Protocol::JsonRpc: return "application/json";
    case Protocol::Soap: return "application/soap+xml";
    case Protocol::Binary: return "application/x-clarens-binary";
  }
  return "application/octet-stream";
}

Protocol detect(std::string_view content_type_header, std::string_view body) {
  // The binary frame is unambiguous: match its magic before anything else.
  if (body.size() >= 4 && body.substr(0, 4) == std::string_view(binrpc::kMagic, 4)) {
    return Protocol::Binary;
  }
  std::string_view ct = util::trim(content_type_header);
  if (util::icontains(ct, "x-clarens-binary")) return Protocol::Binary;
  if (util::icontains(ct, "json")) return Protocol::JsonRpc;
  if (util::icontains(ct, "soap")) return Protocol::Soap;
  if (util::icontains(ct, "xml")) {
    // Both XML-RPC and SOAP arrive as text/xml from old clients; sniff.
    if (body.find("Envelope") != std::string_view::npos) return Protocol::Soap;
    return Protocol::XmlRpc;
  }
  // Content-Type missing or generic: sniff the body.
  std::string_view trimmed = util::trim(body);
  if (!trimmed.empty() && (trimmed.front() == '{' || trimmed.front() == '[')) {
    return Protocol::JsonRpc;
  }
  if (trimmed.find("Envelope") != std::string_view::npos) return Protocol::Soap;
  return Protocol::XmlRpc;
}

std::string peek_method(Protocol protocol, std::string_view body) {
  switch (protocol) {
    case Protocol::Binary: {
      // frame header (6) | u8 string tag | u32 len | method bytes.
      if (body.size() < 11 || body[6] != 4) return {};
      std::uint32_t len = (static_cast<std::uint32_t>(
                               static_cast<unsigned char>(body[7]))
                           << 24) |
                          (static_cast<std::uint32_t>(
                               static_cast<unsigned char>(body[8]))
                           << 16) |
                          (static_cast<std::uint32_t>(
                               static_cast<unsigned char>(body[9]))
                           << 8) |
                          static_cast<std::uint32_t>(
                              static_cast<unsigned char>(body[10]));
      if (len == 0 || len > 256 || body.size() < 11 + len) return {};
      return std::string(body.substr(11, len));
    }
    case Protocol::XmlRpc:
    case Protocol::Soap: {
      std::size_t open = body.find("<methodName>");
      if (open == std::string_view::npos) return {};
      open += std::string_view("<methodName>").size();
      std::size_t close = body.find("</methodName>", open);
      if (close == std::string_view::npos || close - open > 256) return {};
      return std::string(util::trim(body.substr(open, close - open)));
    }
    case Protocol::JsonRpc: {
      // Depth-aware scan: only a "method" key of the top-level object
      // counts, so a nested {"params":{"method":...}} cannot spoof the
      // dispatch cost key and buy an optimistic inline first run. The
      // parser's Value::set overwrites duplicate keys (last wins), so on
      // duplicates keep the last candidate for the same reason.
      constexpr std::string_view kWs = " \t\r\n";
      std::size_t i = body.find_first_not_of(kWs);
      if (i == std::string_view::npos || body[i] != '{') return {};
      int depth = 0;
      bool method_key = false;  // next string is a top-level method value
      std::string found;
      bool have = false;
      for (; i < body.size(); ++i) {
        char c = body[i];
        if (c == '"') {
          std::size_t start = i + 1;
          bool escaped = false;
          std::size_t j = start;
          for (; j < body.size(); ++j) {
            if (body[j] == '\\') {
              escaped = true;
              ++j;  // skip the escaped character
              continue;
            }
            if (body[j] == '"') break;
          }
          if (j >= body.size()) return {};  // unterminated string
          std::string_view str = body.substr(start, j - start);
          if (method_key) {
            method_key = false;
            // Escapes in a method name are outlandish; punt to the parser.
            if (escaped || str.size() > 256) return {};
            found.assign(str);
            have = true;
          } else if (depth == 1 && !escaped && str == "method") {
            // A key only if followed by ':' and a string value.
            std::size_t k = body.find_first_not_of(kWs, j + 1);
            if (k != std::string_view::npos && body[k] == ':') {
              std::size_t v = body.find_first_not_of(kWs, k + 1);
              if (v == std::string_view::npos || body[v] != '"') return {};
              method_key = true;
              i = v - 1;  // loop increment lands on the value's open quote
              continue;
            }
          }
          i = j;  // resume after the closing quote
        } else if (c == '{' || c == '[') {
          ++depth;
        } else if (c == '}' || c == ']') {
          if (--depth == 0) break;  // top-level object closed
        }
      }
      return have ? found : std::string{};
    }
  }
  return {};
}

std::string serialize_request(Protocol protocol, const Request& request) {
  switch (protocol) {
    case Protocol::XmlRpc: return xmlrpc::serialize_request(request);
    case Protocol::JsonRpc: return jsonrpc::serialize_request(request);
    case Protocol::Binary: return binrpc::serialize_request(request);
    case Protocol::Soap: return soap::serialize_request(request);
  }
  return {};
}

Request parse_request(Protocol protocol, std::string_view body) {
  switch (protocol) {
    case Protocol::XmlRpc: return xmlrpc::parse_request(body);
    case Protocol::JsonRpc: return jsonrpc::parse_request(body);
    case Protocol::Binary: return binrpc::parse_request(body);
    case Protocol::Soap: return soap::parse_request(body);
  }
  return {};
}

std::string serialize_response(Protocol protocol, const Response& response) {
  switch (protocol) {
    case Protocol::XmlRpc: return xmlrpc::serialize_response(response);
    case Protocol::JsonRpc: return jsonrpc::serialize_response(response);
    case Protocol::Binary: return binrpc::serialize_response(response);
    case Protocol::Soap: return soap::serialize_response(response);
  }
  return {};
}

void serialize_request(Protocol protocol, const Request& request,
                       util::Buffer& out) {
  switch (protocol) {
    case Protocol::XmlRpc: xmlrpc::serialize_request(request, out); return;
    case Protocol::JsonRpc: jsonrpc::serialize_request(request, out); return;
    case Protocol::Binary: binrpc::serialize_request(request, out); return;
    case Protocol::Soap: soap::serialize_request(request, out); return;
  }
}

void serialize_response(Protocol protocol, const Response& response,
                        util::Buffer& out) {
  switch (protocol) {
    case Protocol::XmlRpc: xmlrpc::serialize_response(response, out); return;
    case Protocol::JsonRpc: jsonrpc::serialize_response(response, out); return;
    case Protocol::Binary: binrpc::serialize_response(response, out); return;
    case Protocol::Soap: soap::serialize_response(response, out); return;
  }
}

Response parse_response(Protocol protocol, std::string_view body) {
  switch (protocol) {
    case Protocol::XmlRpc: return xmlrpc::parse_response(body);
    case Protocol::JsonRpc: return jsonrpc::parse_response(body);
    case Protocol::Binary: return binrpc::parse_response(body);
    case Protocol::Soap: return soap::parse_response(body);
  }
  return {};
}

}  // namespace clarens::rpc
