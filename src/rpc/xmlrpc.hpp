// XML-RPC (http://www.xmlrpc.com) — the primary Clarens wire protocol and
// the one the paper's Figure-4 benchmark exercises.
//
// The codec is built for the server hot path: parsing streams rpc::Value
// straight out of the request buffer with XmlPullParser (no intermediate
// XML tree), and serialization appends into a caller-owned util::Buffer
// (typically the connection's reusable response arena).
#pragma once

#include <string>
#include <vector>

#include "rpc/value.hpp"
#include "util/buffer.hpp"

namespace clarens::rpc {

struct XmlSlice;
class XmlPullParser;

struct Request {
  std::string method;
  std::vector<Value> params;
  /// JSON-RPC correlates responses by id; XML-RPC/SOAP ignore it.
  Value id;
};

struct Response {
  bool is_fault = false;
  Value result;       // when !is_fault
  int fault_code = 0; // when is_fault
  std::string fault_message;
  Value id;

  static Response success(Value result) {
    Response r;
    r.result = std::move(result);
    return r;
  }
  static Response fault(int code, std::string message) {
    Response r;
    r.is_fault = true;
    r.fault_code = code;
    r.fault_message = std::move(message);
    return r;
  }
};

namespace xmlrpc {

/// Append the wire form to `out` (no intermediate strings).
void serialize_request(const Request& request, util::Buffer& out);
void serialize_response(const Response& response, util::Buffer& out);

std::string serialize_request(const Request& request);
Request parse_request(std::string_view body);

std::string serialize_response(const Response& response);
Response parse_response(std::string_view body);

/// Single <value> element encoding/decoding (shared with SOAP's
/// XML-RPC-compatible value payloads).
std::string serialize_value(const Value& value);
void serialize_value(const Value& value, util::Buffer& out);

/// Decode a <value> slice node (SOAP rides on these).
Value parse_value_xml(const XmlSlice& value_node);

/// Decode a <value> from a pull parser positioned just past the
/// StartTag("value") event; consumes through the matching EndTag.
Value parse_value_pull(XmlPullParser& parser);

}  // namespace xmlrpc
}  // namespace clarens::rpc
