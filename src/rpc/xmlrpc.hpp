// XML-RPC (http://www.xmlrpc.com) — the primary Clarens wire protocol and
// the one the paper's Figure-4 benchmark exercises.
#pragma once

#include <string>
#include <vector>

#include "rpc/value.hpp"

namespace clarens::rpc {

struct XmlNode;

struct Request {
  std::string method;
  std::vector<Value> params;
  /// JSON-RPC correlates responses by id; XML-RPC/SOAP ignore it.
  Value id;
};

struct Response {
  bool is_fault = false;
  Value result;       // when !is_fault
  int fault_code = 0; // when is_fault
  std::string fault_message;
  Value id;

  static Response success(Value result) {
    Response r;
    r.result = std::move(result);
    return r;
  }
  static Response fault(int code, std::string message) {
    Response r;
    r.is_fault = true;
    r.fault_code = code;
    r.fault_message = std::move(message);
    return r;
  }
};

namespace xmlrpc {

std::string serialize_request(const Request& request);
Request parse_request(std::string_view body);

std::string serialize_response(const Response& response);
Response parse_response(std::string_view body);

/// Single <value> element encoding/decoding (shared with SOAP's
/// XML-RPC-compatible value payloads and exposed for tests).
std::string serialize_value(const Value& value);
Value parse_value_xml(const XmlNode& value_node);

}  // namespace xmlrpc
}  // namespace clarens::rpc
