#include "util/hex.hpp"

#include <array>
#include <cctype>

#include "util/error.hpp"

namespace clarens::util {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

constexpr char kB64Digits[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// -1: invalid, -2: padding, -3: whitespace (skip)
int b64_value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  if (c == '=') return -2;
  if (std::isspace(static_cast<unsigned char>(c))) return -3;
  return -1;
}

}  // namespace

std::string hex_encode(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t byte : data) {
    out.push_back(kHexDigits[byte >> 4]);
    out.push_back(kHexDigits[byte & 0x0f]);
  }
  return out;
}

std::vector<std::uint8_t> hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) throw ParseError("hex string has odd length");
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_value(hex[i]);
    int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) throw ParseError("invalid hex digit");
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string base64_encode(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                      (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                      data[i + 2];
    out.push_back(kB64Digits[(v >> 18) & 63]);
    out.push_back(kB64Digits[(v >> 12) & 63]);
    out.push_back(kB64Digits[(v >> 6) & 63]);
    out.push_back(kB64Digits[v & 63]);
    i += 3;
  }
  std::size_t rest = data.size() - i;
  if (rest == 1) {
    std::uint32_t v = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kB64Digits[(v >> 18) & 63]);
    out.push_back(kB64Digits[(v >> 12) & 63]);
    out.append("==");
  } else if (rest == 2) {
    std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                      (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(kB64Digits[(v >> 18) & 63]);
    out.push_back(kB64Digits[(v >> 12) & 63]);
    out.push_back(kB64Digits[(v >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

void base64_encode_append(Buffer& out, std::span<const std::uint8_t> data) {
  std::size_t encoded = (data.size() + 2) / 3 * 4;
  std::span<char> dst = out.write_reserve(encoded);
  char* p = dst.data();
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                      (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                      data[i + 2];
    *p++ = kB64Digits[(v >> 18) & 63];
    *p++ = kB64Digits[(v >> 12) & 63];
    *p++ = kB64Digits[(v >> 6) & 63];
    *p++ = kB64Digits[v & 63];
    i += 3;
  }
  std::size_t rest = data.size() - i;
  if (rest == 1) {
    std::uint32_t v = static_cast<std::uint32_t>(data[i]) << 16;
    *p++ = kB64Digits[(v >> 18) & 63];
    *p++ = kB64Digits[(v >> 12) & 63];
    *p++ = '=';
    *p++ = '=';
  } else if (rest == 2) {
    std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                      (static_cast<std::uint32_t>(data[i + 1]) << 8);
    *p++ = kB64Digits[(v >> 18) & 63];
    *p++ = kB64Digits[(v >> 12) & 63];
    *p++ = kB64Digits[(v >> 6) & 63];
    *p++ = '=';
  }
  out.commit(static_cast<std::size_t>(p - dst.data()));
}

std::vector<std::uint8_t> base64_decode(std::string_view b64) {
  std::vector<std::uint8_t> out;
  out.reserve(b64.size() / 4 * 3);
  std::uint32_t acc = 0;
  int bits = 0;
  bool seen_pad = false;
  for (char c : b64) {
    int v = b64_value(c);
    if (v == -3) continue;  // whitespace
    if (v == -2) {          // padding: only valid at the end
      seen_pad = true;
      continue;
    }
    if (v == -1) throw ParseError("invalid base64 character");
    if (seen_pad) throw ParseError("base64 data after padding");
    acc = (acc << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((acc >> bits) & 0xff));
    }
  }
  // Any leftover bits must be zero padding bits from an encoder.
  if (bits > 0 && (acc & ((1u << bits) - 1)) != 0) {
    throw ParseError("invalid base64 trailing bits");
  }
  return out;
}

}  // namespace clarens::util
