#include "util/buffer.hpp"

#include <charconv>

#include "util/error.hpp"

namespace clarens::util {

std::span<char> Buffer::write_reserve(std::size_t n) {
  std::size_t old = data_.size();
  data_.resize(old + n);
  reserve_base_ = old;
  return {data_.data() + old, n};
}

void Buffer::commit(std::size_t n) {
  if (n > data_.size() - reserve_base_) {
    throw ParseError("buffer commit beyond reserved region");
  }
  data_.resize(reserve_base_ + n);
}

void Buffer::write_u16(std::uint16_t v) {
  write_u8(static_cast<std::uint8_t>(v >> 8));
  write_u8(static_cast<std::uint8_t>(v));
}

void Buffer::write_u32(std::uint32_t v) {
  write_u16(static_cast<std::uint16_t>(v >> 16));
  write_u16(static_cast<std::uint16_t>(v));
}

void Buffer::write_u64(std::uint64_t v) {
  write_u32(static_cast<std::uint32_t>(v >> 32));
  write_u32(static_cast<std::uint32_t>(v));
}

void Buffer::require(std::size_t len) const {
  if (readable() < len) {
    throw ParseError("buffer underrun: need " + std::to_string(len) +
                     " bytes, have " + std::to_string(readable()));
  }
}

void Buffer::consume(std::size_t len) {
  require(len);
  read_pos_ += len;
  if (read_pos_ == data_.size()) {
    data_.clear();
    read_pos_ = 0;
  }
}

std::vector<std::uint8_t> Buffer::read(std::size_t len) {
  require(len);
  const auto* base =
      reinterpret_cast<const std::uint8_t*>(data_.data()) + read_pos_;
  std::vector<std::uint8_t> out(base, base + len);
  consume(len);
  return out;
}

std::string Buffer::read_string(std::size_t len) {
  require(len);
  std::string out(data_.data() + read_pos_, len);
  consume(len);
  return out;
}

std::uint8_t Buffer::read_u8() {
  require(1);
  auto v = static_cast<std::uint8_t>(data_[read_pos_]);
  consume(1);
  return v;
}

std::uint16_t Buffer::read_u16() {
  std::uint16_t hi = read_u8();
  return static_cast<std::uint16_t>((hi << 8) | read_u8());
}

std::uint32_t Buffer::read_u32() {
  std::uint32_t hi = read_u16();
  return (hi << 16) | read_u16();
}

std::uint64_t Buffer::read_u64() {
  std::uint64_t hi = read_u32();
  return (hi << 32) | read_u32();
}

void Buffer::compact() {
  if (read_pos_ != 0) {
    data_.erase(0, read_pos_);
    read_pos_ = 0;
  }
  // A 64 KiB floor keeps steady-state connections from bouncing their
  // allocation; beyond it, capacity more than 4x the live data is a
  // leftover spike worth returning to the allocator.
  constexpr std::size_t kShrinkFloor = 64 * 1024;
  if (data_.capacity() > kShrinkFloor && data_.capacity() / 4 > data_.size()) {
    data_.shrink_to_fit();
  }
}

void append_int(Buffer& out, std::int64_t v) {
  std::span<char> span = out.write_reserve(24);
  auto [p, ec] = std::to_chars(span.data(), span.data() + span.size(), v);
  out.commit(static_cast<std::size_t>(p - span.data()));
}

void append_uint(Buffer& out, std::uint64_t v) {
  std::span<char> span = out.write_reserve(24);
  auto [p, ec] = std::to_chars(span.data(), span.data() + span.size(), v);
  out.commit(static_cast<std::size_t>(p - span.data()));
}

void append_double(Buffer& out, double v) {
  // Shortest representation that round-trips; 32 bytes covers every
  // double (max ~24 chars incl. sign, 17 digits, exponent).
  std::span<char> span = out.write_reserve(32);
  auto [p, ec] = std::to_chars(span.data(), span.data() + span.size(), v);
  out.commit(static_cast<std::size_t>(p - span.data()));
}

}  // namespace clarens::util
