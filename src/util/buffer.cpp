#include "util/buffer.hpp"

#include "util/error.hpp"

namespace clarens::util {

void Buffer::write(const void* data, std::size_t len) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  data_.insert(data_.end(), bytes, bytes + len);
}

void Buffer::write_u16(std::uint16_t v) {
  write_u8(static_cast<std::uint8_t>(v >> 8));
  write_u8(static_cast<std::uint8_t>(v));
}

void Buffer::write_u32(std::uint32_t v) {
  write_u16(static_cast<std::uint16_t>(v >> 16));
  write_u16(static_cast<std::uint16_t>(v));
}

void Buffer::write_u64(std::uint64_t v) {
  write_u32(static_cast<std::uint32_t>(v >> 32));
  write_u32(static_cast<std::uint32_t>(v));
}

void Buffer::require(std::size_t len) const {
  if (readable() < len) {
    throw ParseError("buffer underrun: need " + std::to_string(len) +
                     " bytes, have " + std::to_string(readable()));
  }
}

void Buffer::consume(std::size_t len) {
  require(len);
  read_pos_ += len;
  if (read_pos_ == data_.size()) {
    data_.clear();
    read_pos_ = 0;
  }
}

std::vector<std::uint8_t> Buffer::read(std::size_t len) {
  require(len);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(read_pos_),
                                data_.begin() + static_cast<long>(read_pos_ + len));
  consume(len);
  return out;
}

std::string Buffer::read_string(std::size_t len) {
  require(len);
  std::string out(reinterpret_cast<const char*>(data_.data()) + read_pos_, len);
  consume(len);
  return out;
}

std::uint8_t Buffer::read_u8() {
  require(1);
  std::uint8_t v = data_[read_pos_];
  consume(1);
  return v;
}

std::uint16_t Buffer::read_u16() {
  std::uint16_t hi = read_u8();
  return static_cast<std::uint16_t>((hi << 8) | read_u8());
}

std::uint32_t Buffer::read_u32() {
  std::uint32_t hi = read_u16();
  return (hi << 16) | read_u16();
}

std::uint64_t Buffer::read_u64() {
  std::uint64_t hi = read_u32();
  return (hi << 32) | read_u32();
}

void Buffer::compact() {
  if (read_pos_ == 0) return;
  data_.erase(data_.begin(), data_.begin() + static_cast<long>(read_pos_));
  read_pos_ = 0;
}

}  // namespace clarens::util
