// Annotated synchronization layer — the ONLY place raw std:: sync
// primitives may appear (clarens_lint rule raw-sync).
//
// Every lock in the tree is one of the wrappers below, so that under
// clang (-DCLARENS_THREAD_SAFETY=ON, the build-tidy preset) the whole
// server compiles with -Wthread-safety -Werror=thread-safety: guarded
// fields are declared with CLARENS_GUARDED_BY, private *_locked helpers
// carry CLARENS_REQUIRES, and a forgotten lock is a compile error rather
// than a TSan report on whichever path the tests happened to exercise.
// Under GCC all annotations expand to nothing and the wrappers are
// zero-cost forwarding shims.
//
// The lock *hierarchy* (which mutex may be acquired while holding which)
// has one source of truth — src/util/lock_levels.hpp. Every mutex names
// its level at construction; three layers then enforce the discipline:
//
//   * clarens_lint checks `// lock-order:` comments, nested guard scopes
//     and the merged global lock graph against the table (lock-order,
//     lock-cycle, undeclared-mutex rules);
//   * under CLARENS_LOCK_RANK_CHECK (on in the asan/tsan/lockrank legs,
//     compiled out in release) every acquisition is validated at runtime
//     against a thread-local held-lock stack and an upward or sideways
//     acquisition aborts with both lock names and a backtrace;
//   * the generated table in docs/CONCURRENCY.md is drift-checked.
//
// Same-rank nesting (e.g. core.vo.write -> core.vo.root_cache) is only
// legal with an explicit SameRankToken at the call site.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <utility>

#include "util/lock_levels.hpp"

// ---------------------------------------------------------------------------
// Clang thread-safety attribute macros. GCC defines none of these, so the
// whole vocabulary expands to nothing there; clang performs the full
// capability analysis (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
#if defined(__clang__)
#define CLARENS_TS_ATTR__(x) __attribute__((x))
#else
#define CLARENS_TS_ATTR__(x)
#endif

/// Declares a type to be a lockable capability ("mutex").
#define CLARENS_CAPABILITY(x) CLARENS_TS_ATTR__(capability(x))
/// Declares an RAII type that acquires in its constructor, releases in
/// its destructor.
#define CLARENS_SCOPED_CAPABILITY CLARENS_TS_ATTR__(scoped_lockable)
/// Field may only be read/written while holding the given mutex.
#define CLARENS_GUARDED_BY(x) CLARENS_TS_ATTR__(guarded_by(x))
/// Pointee (not the pointer itself) is guarded by the given mutex.
#define CLARENS_PT_GUARDED_BY(x) CLARENS_TS_ATTR__(pt_guarded_by(x))
/// Function requires the mutex(es) to be held on entry (does not
/// acquire or release) — the annotation for *_locked helpers.
#define CLARENS_REQUIRES(...) \
  CLARENS_TS_ATTR__(requires_capability(__VA_ARGS__))
#define CLARENS_REQUIRES_SHARED(...) \
  CLARENS_TS_ATTR__(requires_shared_capability(__VA_ARGS__))
/// Function acquires the mutex(es) and holds them on return.
#define CLARENS_ACQUIRE(...) CLARENS_TS_ATTR__(acquire_capability(__VA_ARGS__))
#define CLARENS_ACQUIRE_SHARED(...) \
  CLARENS_TS_ATTR__(acquire_shared_capability(__VA_ARGS__))
/// Function releases the mutex(es) held on entry.
#define CLARENS_RELEASE(...) CLARENS_TS_ATTR__(release_capability(__VA_ARGS__))
#define CLARENS_RELEASE_SHARED(...) \
  CLARENS_TS_ATTR__(release_shared_capability(__VA_ARGS__))
/// Function acquires the mutex iff it returns the given value.
#define CLARENS_TRY_ACQUIRE(...) \
  CLARENS_TS_ATTR__(try_acquire_capability(__VA_ARGS__))
/// Caller must NOT hold the mutex(es) — deadlock/lock-order documentation
/// the analysis enforces.
#define CLARENS_EXCLUDES(...) CLARENS_TS_ATTR__(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the given capability.
#define CLARENS_RETURN_CAPABILITY(x) CLARENS_TS_ATTR__(lock_returned(x))
/// Opt a function out of the analysis (init/teardown special cases; every
/// use needs a comment saying why).
#define CLARENS_NO_THREAD_SAFETY_ANALYSIS \
  CLARENS_TS_ATTR__(no_thread_safety_analysis)

namespace clarens::util {

class CondVar;

/// Explicit opt-in for acquiring a lock at the SAME rank as one already
/// held (e.g. core.vo.write -> core.vo.root_cache, both rank 20). The
/// reason string documents why the pair cannot deadlock (a global
/// acquisition order between the two levels, or sharding by disjoint
/// keys). Without a token, a same-rank acquisition aborts under
/// CLARENS_LOCK_RANK_CHECK exactly like an upward one.
struct SameRankToken {
  const char* why;
};

#if defined(CLARENS_LOCK_RANK_CHECK) && CLARENS_LOCK_RANK_CHECK
namespace rank_check {
/// Validates `level` against this thread's held-lock stack and pushes it.
/// Aborts (after printing both lock names, the full held stack and a
/// backtrace) when the acquisition goes upward or sideways without a
/// token, or re-acquires a mutex this thread already holds.
void note_acquire(const void* mutex, LockLevel level, bool same_rank_ok);
/// Pops `mutex` from this thread's held-lock stack.
void note_release(const void* mutex);
/// Locks currently held by this thread (test hook).
int held_count();
}  // namespace rank_check
#define CLARENS_RANK_ACQUIRE__(mutex, level, same_rank_ok) \
  ::clarens::util::rank_check::note_acquire(mutex, level, same_rank_ok)
#define CLARENS_RANK_RELEASE__(mutex) \
  ::clarens::util::rank_check::note_release(mutex)
#else
#define CLARENS_RANK_ACQUIRE__(mutex, level, same_rank_ok) ((void)0)
#define CLARENS_RANK_RELEASE__(mutex) ((void)0)
#endif

/// std::mutex with the capability attribute and a mandatory hierarchy
/// level. Prefer LockGuard/UniqueLock over calling lock()/unlock()
/// directly.
class CLARENS_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockLevel level) noexcept : level_(level) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CLARENS_ACQUIRE() {
    CLARENS_RANK_ACQUIRE__(this, level_, false);
    m_.lock();
  }
  void lock(SameRankToken) CLARENS_ACQUIRE() {
    CLARENS_RANK_ACQUIRE__(this, level_, true);
    m_.lock();
  }
  void unlock() CLARENS_RELEASE() {
    m_.unlock();
    CLARENS_RANK_RELEASE__(this);
  }
  bool try_lock() CLARENS_TRY_ACQUIRE(true) {
    // try_lock never blocks, so it cannot complete a deadlock cycle by
    // itself — but anything acquired while the try-lock is held is
    // checked against it, so it still joins the stack.
    if (!m_.try_lock()) return false;
    CLARENS_RANK_ACQUIRE__(this, level_, true);
    return true;
  }

  LockLevel level() const noexcept { return level_; }

 private:
  friend class UniqueLock;
  std::mutex m_;
  LockLevel level_;
};

/// std::shared_mutex with the capability attribute and a mandatory
/// hierarchy level: exclusive writers, concurrent readers. Use
/// WriteLock / ReadLock. Shared and exclusive acquisitions rank
/// identically — a reader can deadlock a writer just as well.
class CLARENS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockLevel level) noexcept : level_(level) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() CLARENS_ACQUIRE() {
    CLARENS_RANK_ACQUIRE__(this, level_, false);
    m_.lock();
  }
  void lock(SameRankToken) CLARENS_ACQUIRE() {
    CLARENS_RANK_ACQUIRE__(this, level_, true);
    m_.lock();
  }
  void unlock() CLARENS_RELEASE() {
    m_.unlock();
    CLARENS_RANK_RELEASE__(this);
  }
  void lock_shared() CLARENS_ACQUIRE_SHARED() {
    CLARENS_RANK_ACQUIRE__(this, level_, false);
    m_.lock_shared();
  }
  void lock_shared(SameRankToken) CLARENS_ACQUIRE_SHARED() {
    CLARENS_RANK_ACQUIRE__(this, level_, true);
    m_.lock_shared();
  }
  void unlock_shared() CLARENS_RELEASE_SHARED() {
    m_.unlock_shared();
    CLARENS_RANK_RELEASE__(this);
  }

  LockLevel level() const noexcept { return level_; }

 private:
  std::shared_mutex m_;
  LockLevel level_;
};

/// RAII exclusive lock over Mutex (std::lock_guard analogue).
class CLARENS_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) CLARENS_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  LockGuard(Mutex& mutex, SameRankToken token) CLARENS_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock(token);
  }
  ~LockGuard() CLARENS_RELEASE() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// RAII exclusive lock usable with CondVar::wait (std::unique_lock
/// analogue). Always holds the mutex from construction to destruction
/// from the analysis' point of view — condition-variable waits release
/// and reacquire internally, which both the static analysis and the
/// rank checker (correctly, for the code before/after the wait) treat
/// as continuously held.
class CLARENS_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) CLARENS_ACQUIRE(mutex)
      : lock_(mutex.m_, std::defer_lock) {
#if defined(CLARENS_LOCK_RANK_CHECK) && CLARENS_LOCK_RANK_CHECK
    mutex_ = &mutex;
#endif
    // Validate before blocking, so a violating acquisition aborts even
    // when the deadlock it would cause is real.
    CLARENS_RANK_ACQUIRE__(&mutex, mutex.level_, false);
    lock_.lock();
  }
  UniqueLock(Mutex& mutex, SameRankToken) CLARENS_ACQUIRE(mutex)
      : lock_(mutex.m_, std::defer_lock) {
#if defined(CLARENS_LOCK_RANK_CHECK) && CLARENS_LOCK_RANK_CHECK
    mutex_ = &mutex;
#endif
    CLARENS_RANK_ACQUIRE__(&mutex, mutex.level_, true);
    lock_.lock();
  }
  ~UniqueLock() CLARENS_RELEASE() {
#if defined(CLARENS_LOCK_RANK_CHECK) && CLARENS_LOCK_RANK_CHECK
    CLARENS_RANK_RELEASE__(mutex_);
#endif
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
#if defined(CLARENS_LOCK_RANK_CHECK) && CLARENS_LOCK_RANK_CHECK
  Mutex* mutex_ = nullptr;
#endif
};

/// RAII exclusive lock over SharedMutex.
class CLARENS_SCOPED_CAPABILITY WriteLock {
 public:
  explicit WriteLock(SharedMutex& mutex) CLARENS_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock();
  }
  WriteLock(SharedMutex& mutex, SameRankToken token) CLARENS_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock(token);
  }
  ~WriteLock() CLARENS_RELEASE() { mutex_.unlock(); }

  WriteLock(const WriteLock&) = delete;
  WriteLock& operator=(const WriteLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// RAII shared (reader) lock over SharedMutex.
class CLARENS_SCOPED_CAPABILITY ReadLock {
 public:
  explicit ReadLock(SharedMutex& mutex) CLARENS_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ReadLock(SharedMutex& mutex, SameRankToken token) CLARENS_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared(token);
  }
  // Destructor releases generically (the analysis knows a scoped lock
  // releases whatever it acquired).
  ~ReadLock() CLARENS_RELEASE() { mutex_.unlock_shared(); }

  ReadLock(const ReadLock&) = delete;
  ReadLock& operator=(const ReadLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Condition variable for UniqueLock. Predicate overloads are deliberately
/// absent: a predicate lambda is a separate function to the thread-safety
/// analysis and its guarded-field reads would escape checking. Write the
/// `while (!cond) cv.wait(lock);` loop in the annotated caller instead.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(UniqueLock& lock) { cv_.wait(lock.lock_); }

  template <class Rep, class Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& dur) {
    return cv_.wait_for(lock.lock_, dur);
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      UniqueLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

 private:
  std::condition_variable cv_;
};

/// Joinable thread handle. Deliberately narrower than std::thread: there
/// is no detach() — every Clarens thread is joined by an owner
/// (clarens_lint's detach rule backs this up textually). Destruction
/// while joinable terminates, exactly like std::thread, so ownership
/// bugs fail loudly instead of leaking runaway threads.
class Thread {
 public:
  Thread() noexcept = default;
  template <typename Fn>
  explicit Thread(Fn&& fn) : t_(std::forward<Fn>(fn)) {}

  Thread(Thread&&) noexcept = default;
  Thread& operator=(Thread&& other) noexcept = default;
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;
  ~Thread() = default;

  bool joinable() const noexcept { return t_.joinable(); }
  void join() { t_.join(); }
  std::thread::id get_id() const noexcept { return t_.get_id(); }

  static unsigned hardware_concurrency() noexcept {
    return std::thread::hardware_concurrency();
  }

 private:
  std::thread t_;
};

}  // namespace clarens::util
