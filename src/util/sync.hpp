// Annotated synchronization layer — the ONLY place raw std:: sync
// primitives may appear (clarens_lint rule raw-sync; util/thread_pool.hpp
// holds a legacy exemption).
//
// Every lock in the tree is one of the wrappers below, so that under
// clang (-DCLARENS_THREAD_SAFETY=ON, the build-tidy preset) the whole
// server compiles with -Wthread-safety -Werror=thread-safety: guarded
// fields are declared with CLARENS_GUARDED_BY, private *_locked helpers
// carry CLARENS_REQUIRES, and a forgotten lock is a compile error rather
// than a TSan report on whichever path the tests happened to exercise.
// Under GCC all annotations expand to nothing and the wrappers are
// zero-cost forwarding shims.
//
// The lock *hierarchy* (which mutex may be acquired while holding which)
// is documented in docs/CONCURRENCY.md and enforced structurally by
// clarens_lint's lock-order rule against `// lock-order:` comments at
// every nested-acquisition site.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <utility>

// ---------------------------------------------------------------------------
// Clang thread-safety attribute macros. GCC defines none of these, so the
// whole vocabulary expands to nothing there; clang performs the full
// capability analysis (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
#if defined(__clang__)
#define CLARENS_TS_ATTR__(x) __attribute__((x))
#else
#define CLARENS_TS_ATTR__(x)
#endif

/// Declares a type to be a lockable capability ("mutex").
#define CLARENS_CAPABILITY(x) CLARENS_TS_ATTR__(capability(x))
/// Declares an RAII type that acquires in its constructor, releases in
/// its destructor.
#define CLARENS_SCOPED_CAPABILITY CLARENS_TS_ATTR__(scoped_lockable)
/// Field may only be read/written while holding the given mutex.
#define CLARENS_GUARDED_BY(x) CLARENS_TS_ATTR__(guarded_by(x))
/// Pointee (not the pointer itself) is guarded by the given mutex.
#define CLARENS_PT_GUARDED_BY(x) CLARENS_TS_ATTR__(pt_guarded_by(x))
/// Function requires the mutex(es) to be held on entry (does not
/// acquire or release) — the annotation for *_locked helpers.
#define CLARENS_REQUIRES(...) \
  CLARENS_TS_ATTR__(requires_capability(__VA_ARGS__))
#define CLARENS_REQUIRES_SHARED(...) \
  CLARENS_TS_ATTR__(requires_shared_capability(__VA_ARGS__))
/// Function acquires the mutex(es) and holds them on return.
#define CLARENS_ACQUIRE(...) CLARENS_TS_ATTR__(acquire_capability(__VA_ARGS__))
#define CLARENS_ACQUIRE_SHARED(...) \
  CLARENS_TS_ATTR__(acquire_shared_capability(__VA_ARGS__))
/// Function releases the mutex(es) held on entry.
#define CLARENS_RELEASE(...) CLARENS_TS_ATTR__(release_capability(__VA_ARGS__))
#define CLARENS_RELEASE_SHARED(...) \
  CLARENS_TS_ATTR__(release_shared_capability(__VA_ARGS__))
/// Function acquires the mutex iff it returns the given value.
#define CLARENS_TRY_ACQUIRE(...) \
  CLARENS_TS_ATTR__(try_acquire_capability(__VA_ARGS__))
/// Caller must NOT hold the mutex(es) — deadlock/lock-order documentation
/// the analysis enforces.
#define CLARENS_EXCLUDES(...) CLARENS_TS_ATTR__(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the given capability.
#define CLARENS_RETURN_CAPABILITY(x) CLARENS_TS_ATTR__(lock_returned(x))
/// Opt a function out of the analysis (init/teardown special cases; every
/// use needs a comment saying why).
#define CLARENS_NO_THREAD_SAFETY_ANALYSIS \
  CLARENS_TS_ATTR__(no_thread_safety_analysis)

namespace clarens::util {

class CondVar;

/// std::mutex with the capability attribute. Prefer LockGuard/UniqueLock
/// over calling lock()/unlock() directly.
class CLARENS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CLARENS_ACQUIRE() { m_.lock(); }
  void unlock() CLARENS_RELEASE() { m_.unlock(); }
  bool try_lock() CLARENS_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class UniqueLock;
  std::mutex m_;
};

/// std::shared_mutex with the capability attribute: exclusive writers,
/// concurrent readers. Use WriteLock / ReadLock.
class CLARENS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() CLARENS_ACQUIRE() { m_.lock(); }
  void unlock() CLARENS_RELEASE() { m_.unlock(); }
  void lock_shared() CLARENS_ACQUIRE_SHARED() { m_.lock_shared(); }
  void unlock_shared() CLARENS_RELEASE_SHARED() { m_.unlock_shared(); }

 private:
  std::shared_mutex m_;
};

/// RAII exclusive lock over Mutex (std::lock_guard analogue).
class CLARENS_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) CLARENS_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~LockGuard() CLARENS_RELEASE() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// RAII exclusive lock usable with CondVar::wait (std::unique_lock
/// analogue). Always holds the mutex from construction to destruction
/// from the analysis' point of view — condition-variable waits release
/// and reacquire internally, which the static analysis (correctly, for
/// the code before/after the wait) treats as continuously held.
class CLARENS_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) CLARENS_ACQUIRE(mutex) : lock_(mutex.m_) {}
  ~UniqueLock() CLARENS_RELEASE() {}

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// RAII exclusive lock over SharedMutex.
class CLARENS_SCOPED_CAPABILITY WriteLock {
 public:
  explicit WriteLock(SharedMutex& mutex) CLARENS_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock();
  }
  ~WriteLock() CLARENS_RELEASE() { mutex_.unlock(); }

  WriteLock(const WriteLock&) = delete;
  WriteLock& operator=(const WriteLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// RAII shared (reader) lock over SharedMutex.
class CLARENS_SCOPED_CAPABILITY ReadLock {
 public:
  explicit ReadLock(SharedMutex& mutex) CLARENS_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  // Destructor releases generically (the analysis knows a scoped lock
  // releases whatever it acquired).
  ~ReadLock() CLARENS_RELEASE() { mutex_.unlock_shared(); }

  ReadLock(const ReadLock&) = delete;
  ReadLock& operator=(const ReadLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Condition variable for UniqueLock. Predicate overloads are deliberately
/// absent: a predicate lambda is a separate function to the thread-safety
/// analysis and its guarded-field reads would escape checking. Write the
/// `while (!cond) cv.wait(lock);` loop in the annotated caller instead.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(UniqueLock& lock) { cv_.wait(lock.lock_); }

  template <class Rep, class Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& dur) {
    return cv_.wait_for(lock.lock_, dur);
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      UniqueLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

 private:
  std::condition_variable cv_;
};

/// Joinable thread handle. Deliberately narrower than std::thread: there
/// is no detach() — every Clarens thread is joined by an owner
/// (clarens_lint's detach rule backs this up textually). Destruction
/// while joinable terminates, exactly like std::thread, so ownership
/// bugs fail loudly instead of leaking runaway threads.
class Thread {
 public:
  Thread() noexcept = default;
  template <typename Fn>
  explicit Thread(Fn&& fn) : t_(std::forward<Fn>(fn)) {}

  Thread(Thread&&) noexcept = default;
  Thread& operator=(Thread&& other) noexcept = default;
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;
  ~Thread() = default;

  bool joinable() const noexcept { return t_.joinable(); }
  void join() { t_.join(); }
  std::thread::id get_id() const noexcept { return t_.get_id(); }

  static unsigned hardware_concurrency() noexcept {
    return std::thread::hardware_concurrency();
  }

 private:
  std::thread t_;
};

}  // namespace clarens::util
