// Error types shared across the Clarens libraries.
//
// Recoverable, caller-visible failures (bad input, missing file, denied
// access) are reported with exceptions derived from clarens::Error so a
// server dispatch loop can translate them into RPC faults uniformly.
#pragma once

#include <stdexcept>
#include <string>

namespace clarens {

/// Root of the Clarens exception hierarchy. Carries a numeric code that
/// maps onto an RPC fault code when the error crosses the wire.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message, int code = 1)
      : std::runtime_error(std::move(message)), code_(code) {}

  /// Fault code reported to RPC clients.
  int code() const noexcept { return code_; }

 private:
  int code_;
};

/// Malformed input: unparsable request, bad config line, invalid DN, ...
class ParseError : public Error {
 public:
  explicit ParseError(std::string message) : Error(std::move(message), 2) {}
};

/// Authentication failed or no valid session.
class AuthError : public Error {
 public:
  explicit AuthError(std::string message) : Error(std::move(message), 3) {}
};

/// Authenticated but not authorized (ACL denied).
class AccessError : public Error {
 public:
  explicit AccessError(std::string message) : Error(std::move(message), 4) {}
};

/// Requested entity (method, file, group, service) does not exist.
class NotFoundError : public Error {
 public:
  explicit NotFoundError(std::string message) : Error(std::move(message), 5) {}
};

/// Operating-system level failure (socket, file I/O).
class SystemError : public Error {
 public:
  explicit SystemError(std::string message) : Error(std::move(message), 6) {}
};

}  // namespace clarens
