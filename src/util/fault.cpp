#include "util/fault.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

namespace clarens::util {

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::FaultInjector() {
  if (const char* spec = std::getenv("CLARENS_FAULTS")) {
    arm_from_spec(spec);
  }
}

void FaultInjector::arm(const std::string& point, int times,
                        const std::string& detail_substring) {
  LockGuard lock(mutex_);
  for (Armed& entry : armed_) {
    if (entry.point == point && entry.detail == detail_substring) {
      entry.remaining = times;
      any_armed_.store(true, std::memory_order_relaxed);
      return;
    }
  }
  armed_.push_back({point, detail_substring, times, 0});
  any_armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::disarm(const std::string& point) {
  LockGuard lock(mutex_);
  for (Armed& entry : armed_) {
    if (entry.point == point) entry.remaining = 0;
  }
}

void FaultInjector::reset() {
  LockGuard lock(mutex_);
  armed_.clear();
  any_armed_.store(false, std::memory_order_relaxed);
}

std::uint64_t FaultInjector::fired(const std::string& point) const {
  LockGuard lock(mutex_);
  std::uint64_t total = 0;
  for (const Armed& entry : armed_) {
    if (entry.point == point) total += entry.fired;
  }
  return total;
}

bool FaultInjector::fire(const std::string& point, const std::string& detail) {
  FaultInjector& self = instance();
  if (!self.any_armed_.load(std::memory_order_relaxed)) return false;
  return self.should_fire(point, detail);
}

bool FaultInjector::should_fire(const std::string& point,
                                const std::string& detail) {
  LockGuard lock(mutex_);
  for (Armed& entry : armed_) {
    if (entry.point != point) continue;
    if (entry.remaining == 0) continue;
    if (!entry.detail.empty() && detail.find(entry.detail) == std::string::npos)
      continue;
    if (entry.remaining > 0) --entry.remaining;
    ++entry.fired;
    return true;
  }
  return false;
}

bool FaultInjector::bit_flip(const std::string& path, std::uint64_t offset,
                             std::uint8_t mask) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::file_time_type mtime = fs::last_write_time(path, ec);
  if (ec) return false;
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (!f) return false;
  bool ok = false;
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0) {
    int byte = std::fgetc(f);
    if (byte != EOF && std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0) {
      std::fputc(byte ^ mask, f);
      ok = true;
    }
  }
  std::fclose(f);
  if (ok) fs::last_write_time(path, mtime, ec);  // corruption leaves no trace
  return ok;
}

void FaultInjector::arm_from_spec(const std::string& spec) {
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(';', start);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    int times = -1;
    if (std::size_t eq = entry.find('='); eq != std::string::npos) {
      times = std::atoi(entry.c_str() + eq + 1);
      entry.resize(eq);
    }
    std::string detail;
    if (std::size_t at = entry.find('@'); at != std::string::npos) {
      detail = entry.substr(at + 1);
      entry.resize(at);
    }
    if (!entry.empty()) arm(entry, times, detail);
  }
}

}  // namespace clarens::util
