// Small string utilities used throughout the framework.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace clarens::util {

/// Split `s` on the single character `sep`. Empty fields are kept, so
/// split("a,,b", ',') yields {"a", "", "b"}. An empty input yields {""}.
std::vector<std::string> split(std::string_view s, char sep);

/// Split `s` on `sep`, dropping empty fields and trimming whitespace from
/// each field. Convenient for config-file lists such as "a, b , c".
std::vector<std::string> split_trimmed(std::string_view s, char sep);

/// Strip leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Join `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Case-insensitive equality for ASCII strings (HTTP header names).
bool iequals(std::string_view a, std::string_view b);

/// Case-insensitive substring search; npos when absent. No allocation.
std::size_t ifind(std::string_view haystack, std::string_view needle);
bool icontains(std::string_view haystack, std::string_view needle);

/// Lowercase an ASCII string.
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Replace every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to);

/// Parse a decimal signed integer; throws clarens::ParseError on trailing
/// garbage, empty input, or overflow.
std::int64_t parse_int(std::string_view s);

/// Parse a decimal unsigned integer; throws clarens::ParseError.
std::uint64_t parse_uint(std::string_view s);

}  // namespace clarens::util
