#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>

#include "util/sync.hpp"

namespace clarens::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
Mutex g_output_mutex{LockLevel::kUtilLogging};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    default: return "?";
  }
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

LogRecord::LogRecord(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    // Keep the prefix short: level, basename:line.
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << level_name(level_) << ' ' << base << ':' << line << "] ";
  }
}

LogRecord::~LogRecord() {
  if (!enabled_) return;
  stream_ << '\n';
  LockGuard lock(g_output_mutex);
  std::cerr << stream_.str();
}

}  // namespace clarens::util
