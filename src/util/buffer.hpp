// Growable byte buffer with separate read and write cursors, the working
// unit for protocol parsing (HTTP, TLS records, RPC payloads).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace clarens::util {

class Buffer {
 public:
  Buffer() = default;

  /// Bytes available to read.
  std::size_t readable() const { return data_.size() - read_pos_; }
  bool empty() const { return readable() == 0; }

  /// Append raw bytes at the write end.
  void write(const void* data, std::size_t len);
  void write(std::string_view s) { write(s.data(), s.size()); }
  void write(std::span<const std::uint8_t> s) { write(s.data(), s.size()); }
  void write_u8(std::uint8_t v) { write(&v, 1); }
  void write_u16(std::uint16_t v);  // big-endian
  void write_u32(std::uint32_t v);  // big-endian
  void write_u64(std::uint64_t v);  // big-endian

  /// View of the unread region; invalidated by any write or consume.
  std::span<const std::uint8_t> peek() const {
    return {data_.data() + read_pos_, readable()};
  }
  std::string_view peek_view() const {
    return {reinterpret_cast<const char*>(data_.data()) + read_pos_,
            readable()};
  }

  /// Advance the read cursor by `len` (<= readable()).
  void consume(std::size_t len);

  /// Copy-and-consume `len` bytes. Throws clarens::ParseError if fewer
  /// bytes are available.
  std::vector<std::uint8_t> read(std::size_t len);
  std::string read_string(std::size_t len);
  std::uint8_t read_u8();
  std::uint16_t read_u16();
  std::uint32_t read_u32();
  std::uint64_t read_u64();

  /// Drop consumed prefix to reclaim memory. Called periodically by
  /// long-lived connections.
  void compact();

  void clear() {
    data_.clear();
    read_pos_ = 0;
  }

 private:
  void require(std::size_t len) const;

  std::vector<std::uint8_t> data_;
  std::size_t read_pos_ = 0;
};

}  // namespace clarens::util
