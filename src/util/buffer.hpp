// Growable byte buffer with separate read and write cursors, the working
// unit for protocol parsing (HTTP, TLS records, RPC payloads).
//
// Appends are inline on std::string storage: the common small append
// (a tag name, a formatted integer) must not pay an out-of-line call —
// serializers issue dozens of them per response.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace clarens::util {

class Buffer {
 public:
  Buffer() = default;

  /// Bytes available to read.
  std::size_t readable() const { return data_.size() - read_pos_; }
  bool empty() const { return readable() == 0; }

  /// Append raw bytes at the write end.
  void write(const void* data, std::size_t len) {
    data_.append(static_cast<const char*>(data), len);
  }
  void write(std::string_view s) { data_.append(s.data(), s.size()); }
  void write(std::span<const std::uint8_t> s) {
    data_.append(reinterpret_cast<const char*>(s.data()), s.size());
  }
  void write_u8(std::uint8_t v) { data_.push_back(static_cast<char>(v)); }

  /// Span-based append: reserve `n` writable bytes at the write end and
  /// return them so callers (serializers, std::to_chars) can format in
  /// place, then commit(m <= n) to make the first m bytes visible. The
  /// span is invalidated by any other Buffer call. Reserved-but-uncommitted
  /// bytes are discarded by the next operation that grows the buffer.
  std::span<char> write_reserve(std::size_t n);
  void commit(std::size_t n);
  void write_u16(std::uint16_t v);  // big-endian
  void write_u32(std::uint32_t v);  // big-endian
  void write_u64(std::uint64_t v);  // big-endian

  /// View of the unread region; invalidated by any write or consume.
  std::span<const std::uint8_t> peek() const {
    return {reinterpret_cast<const std::uint8_t*>(data_.data()) + read_pos_,
            readable()};
  }
  std::string_view peek_view() const {
    return {data_.data() + read_pos_, readable()};
  }

  /// Advance the read cursor by `len` (<= readable()).
  void consume(std::size_t len);

  /// Copy-and-consume `len` bytes. Throws clarens::ParseError if fewer
  /// bytes are available.
  std::vector<std::uint8_t> read(std::size_t len);
  std::string read_string(std::size_t len);
  std::uint8_t read_u8();
  std::uint16_t read_u16();
  std::uint32_t read_u32();
  std::uint64_t read_u64();

  /// Drop consumed prefix to reclaim memory, and release pathologically
  /// over-grown capacity (a one-off huge payload must not pin its
  /// allocation for the life of the connection). Called periodically by
  /// long-lived connections.
  void compact();

  void clear() {
    data_.clear();
    read_pos_ = 0;
  }

  std::size_t capacity() const { return data_.capacity(); }

 private:
  void require(std::size_t len) const;

  std::string data_;
  std::size_t read_pos_ = 0;
  std::size_t reserve_base_ = 0;  // write end before the last write_reserve
};

/// Append a decimal integer / shortest round-trip double, formatted in
/// place with std::to_chars (no temporary strings).
void append_int(Buffer& out, std::int64_t v);
void append_uint(Buffer& out, std::uint64_t v);
void append_double(Buffer& out, double v);

}  // namespace clarens::util
