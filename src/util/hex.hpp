// Hex and base64 codecs. Base64 is needed for XML-RPC <base64> values and
// for storing binary certificate material in text stores; hex is the wire
// format for digests (file.md5) and identifiers (session keys).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/buffer.hpp"

namespace clarens::util {

/// Lowercase hex encoding of a byte span.
std::string hex_encode(std::span<const std::uint8_t> data);

/// Decode hex (upper or lower case). Throws clarens::ParseError on odd
/// length or non-hex characters.
std::vector<std::uint8_t> hex_decode(std::string_view hex);

/// Standard base64 with padding.
std::string base64_encode(std::span<const std::uint8_t> data);

/// Append the base64 encoding of `data` to `out`, formatted in place in
/// the buffer (no temporary string) — the file.read hot path.
void base64_encode_append(Buffer& out, std::span<const std::uint8_t> data);

/// Decode base64; whitespace is ignored (XML-RPC senders wrap lines).
/// Throws clarens::ParseError on invalid input.
std::vector<std::uint8_t> base64_decode(std::string_view b64);

}  // namespace clarens::util
