#include "util/thread_pool.hpp"

namespace clarens::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mutex_);
    stopping_ = true;
    queue_.clear();
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    LockGuard lock(mutex_);
    if (stopping_) return;
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  UniqueLock lock(mutex_);
  while (!(queue_.empty() && active_ == 0)) all_idle_.wait(lock);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      UniqueLock lock(mutex_);
      while (!stopping_ && queue_.empty()) work_available_.wait(lock);
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      LockGuard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace clarens::util
