// Time helpers: wall-clock seconds for certificate validity and session
// expiry, and a steady stopwatch for benchmarks.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace clarens::util {

/// Seconds since the Unix epoch.
inline std::int64_t unix_now() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// ISO-8601 compact form used by XML-RPC <dateTime.iso8601>.
std::string iso8601(std::int64_t unix_seconds);

/// Parse XML-RPC ISO-8601 (yyyyMMddTHH:mm:ss). Throws clarens::ParseError.
std::int64_t parse_iso8601(const std::string& text);

/// Monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace clarens::util
