#include "util/config.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace clarens::util {

Config Config::parse(std::string_view text) {
  Config config;
  std::size_t line_no = 0;
  for (const auto& raw_line : split(text, '\n')) {
    ++line_no;
    std::string_view line = trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    std::size_t sep = line.find_first_of(" \t");
    if (sep == std::string_view::npos) {
      throw ParseError("config line " + std::to_string(line_no) +
                       ": missing value for key '" + std::string(line) + "'");
    }
    std::string key(line.substr(0, sep));
    std::string value(trim(line.substr(sep + 1)));
    config.add(key, std::move(value));
  }
  return config;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SystemError("cannot open config file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

std::optional<std::string> Config::get(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return std::nullopt;
  return it->second.front();
}

std::string Config::get_or(const std::string& key, std::string fallback) const {
  auto v = get(key);
  return v ? *v : std::move(fallback);
}

std::int64_t Config::get_int_or(const std::string& key,
                                std::int64_t fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  return parse_int(*v);
}

bool Config::get_bool_or(const std::string& key, bool fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  std::string s = to_lower(*v);
  if (s == "true" || s == "yes" || s == "on" || s == "1") return true;
  if (s == "false" || s == "no" || s == "off" || s == "0") return false;
  throw ParseError("config key '" + key + "': invalid boolean '" + *v + "'");
}

std::vector<std::string> Config::get_all(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return {};
  return it->second;
}

void Config::add(const std::string& key, std::string value) {
  values_[key].push_back(std::move(value));
}

void Config::set(const std::string& key, std::string value) {
  values_[key] = {std::move(value)};
}

bool Config::contains(const std::string& key) const {
  return values_.count(key) != 0;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, _] : values_) out.push_back(key);
  return out;
}

}  // namespace clarens::util
