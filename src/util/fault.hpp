// Fault injection for robustness tests (ISSUE 10 tentpole).
//
// The self-healing replication layer is only believable if its failure
// modes are exercised on purpose: a storage node whose writes fail with
// EIO, a node that drops off the network, a replica whose bytes rot on
// disk. This module is the single switchboard for those faults:
//
//   * Fault *points* are string-named hook sites compiled into the code
//     under test (e.g. "file.write.eio" in FileService::write,
//     "net.connect" in TcpConnection::connect). A hook calls
//     CLARENS_FAULT(point, detail) and fails itself when the point is
//     armed and the armed detail substring matches.
//   * Arming is programmatic (tests in the same process) or via the
//     CLARENS_FAULTS environment variable:
//         CLARENS_FAULTS="file.write.eio@/fst2=3;net.connect@127.0.0.1:9001"
//     entries are ';'-separated `point[@detail-substring][=count]`
//     (count omitted = until disarmed).
//   * Hook sites are compiled out of release hot paths: CLARENS_FAULT()
//     expands to `false` unless the build sets CLARENS_FAULT_INJECTION
//     (the asan/tsan/lockrank presets do; plain release does not). The
//     injector class itself always exists, so helpers like bit_flip()
//     — which mutate state *outside* the server, not in a hot path —
//     work in every build, and the release cluster leg can still run
//     the kill + corruption scenarios.
//
// Concurrency: the arm table lives behind a rank-80 mutex (util.fault);
// hooks first consult a relaxed atomic "anything armed?" flag, so an
// unarmed build-with-hooks pays one atomic load per hook site.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/sync.hpp"

namespace clarens::util {

class FaultInjector {
 public:
  /// Process-wide instance (fault points are global by nature: tests
  /// arm faults against servers living in the same process).
  static FaultInjector& instance();

  /// Arm `point`: the next `times` matching fire() calls fail
  /// (-1 = until disarmed). `detail_substring` restricts the fault to
  /// fire() calls whose detail contains it ("" matches every call) —
  /// e.g. a storage node's data directory, or a host:port.
  void arm(const std::string& point, int times = -1,
           const std::string& detail_substring = "");

  void disarm(const std::string& point);

  /// Disarm everything (test teardown).
  void reset();

  /// Number of times `point` actually fired (armed + matched).
  std::uint64_t fired(const std::string& point) const;

  /// Hook-site entry: true when `point` is armed, its detail matches,
  /// and its budget is not exhausted (each hit consumes one). Prefer the
  /// CLARENS_FAULT macro, which compiles the call out of release builds.
  static bool fire(const std::string& point, const std::string& detail = "");

  /// Flip one bit of the byte at `offset` in the file at `path`,
  /// preserving the file's mtime — the on-disk corruption model (a rotted
  /// sector does not update timestamps). Returns false when the file
  /// cannot be opened or is shorter than `offset`. Available in every
  /// build: it acts on the filesystem from the outside, not via a hook.
  static bool bit_flip(const std::string& path, std::uint64_t offset,
                       std::uint8_t mask = 0x01);

  /// Parse and arm a CLARENS_FAULTS-style spec (also called once
  /// implicitly with the environment variable on first use).
  void arm_from_spec(const std::string& spec);

 private:
  FaultInjector();

  struct Armed {
    std::string point;
    std::string detail;  // substring match; empty = any
    int remaining = -1;  // -1 = unlimited
    std::uint64_t fired = 0;
  };

  bool should_fire(const std::string& point, const std::string& detail);

  mutable Mutex mutex_{LockLevel::kUtilFault};
  std::vector<Armed> armed_ CLARENS_GUARDED_BY(mutex_);
  std::atomic<bool> any_armed_{false};
};

}  // namespace clarens::util

// Hook-site macro: evaluates to false (and compiles the strings away)
// unless the build opts into fault injection.
#if defined(CLARENS_FAULT_INJECTION)
#define CLARENS_FAULT(point, detail) \
  (::clarens::util::FaultInjector::fire((point), (detail)))
#else
#define CLARENS_FAULT(point, detail) false
#endif
