#include "util/clock.hpp"

#include <cstdio>
#include <ctime>

#include "util/error.hpp"

namespace clarens::util {

std::string iso8601(std::int64_t unix_seconds) {
  std::time_t t = static_cast<std::time_t>(unix_seconds);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[64];
  // XML-RPC's dateTime.iso8601 uses the compact yyyyMMddTHH:mm:ss form.
  std::snprintf(buf, sizeof(buf), "%04d%02d%02dT%02d:%02d:%02d",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec);
  return buf;
}

std::int64_t parse_iso8601(const std::string& text) {
  std::tm tm{};
  int year = 0, mon = 0, day = 0, hour = 0, min = 0, sec = 0;
  if (std::sscanf(text.c_str(), "%4d%2d%2dT%2d:%2d:%2d", &year, &mon, &day,
                  &hour, &min, &sec) != 6) {
    throw ParseError("invalid ISO-8601 datetime: '" + text + "'");
  }
  if (mon < 1 || mon > 12 || day < 1 || day > 31 || hour > 23 || min > 59 ||
      sec > 60) {
    throw ParseError("out-of-range ISO-8601 datetime: '" + text + "'");
  }
  tm.tm_year = year - 1900;
  tm.tm_mon = mon - 1;
  tm.tm_mday = day;
  tm.tm_hour = hour;
  tm.tm_min = min;
  tm.tm_sec = sec;
  return static_cast<std::int64_t>(timegm(&tm));
}

}  // namespace clarens::util
