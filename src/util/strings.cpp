#include "util/strings.hpp"

#include <cctype>
#include <charconv>

#include "util/error.hpp"

namespace clarens::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_trimmed(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (const auto& field : split(s, sep)) {
    std::string_view t = trim(field);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::size_t ifind(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return 0;
  if (needle.size() > haystack.size()) return std::string_view::npos;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (iequals(haystack.substr(i, needle.size()), needle)) return i;
  }
  return std::string_view::npos;
}

bool icontains(std::string_view haystack, std::string_view needle) {
  return ifind(haystack, needle) != std::string_view::npos;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  std::string out;
  out.reserve(s.size());
  std::size_t start = 0;
  while (start < s.size()) {
    std::size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) break;
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  out.append(s.substr(start));
  return out;
}

std::int64_t parse_int(std::string_view s) {
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size() || s.empty()) {
    throw ParseError("invalid integer: '" + std::string(s) + "'");
  }
  return value;
}

std::uint64_t parse_uint(std::string_view s) {
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size() || s.empty()) {
    throw ParseError("invalid unsigned integer: '" + std::string(s) + "'");
  }
  return value;
}

}  // namespace clarens::util
