// The lock hierarchy — SINGLE SOURCE OF TRUTH.
//
// Every util::Mutex / util::SharedMutex in the tree names one of these
// levels at construction. A thread holding a lock at rank N may only
// acquire locks of rank strictly greater than N ("outer locks have lower
// ranks; acquisition only goes downward"); same-rank acquisition requires
// an explicit util::SameRankToken at the call site. Three consumers read
// this table, so it can never drift:
//
//   * src/util/sync.hpp — the runtime deadlock detector
//     (CLARENS_LOCK_RANK_CHECK) aborts on upward/sideways acquisition;
//   * tools/lint/lint.cpp — lock-order / lock-cycle / undeclared-mutex
//     rules validate declared edges and the global lock graph;
//   * docs/CONCURRENCY.md — the human-readable table between the
//     CLARENS_LOCK_TABLE markers is generated from this list
//     (`clarens_lint --lock-table`) and drift-checked by the
//     `lock_doc_drift` ctest.
//
// To add a level: pick the rank from the nesting it needs (what will be
// held when it is acquired? what does it acquire while held?), add an
// X() row below, and run `clarens_lint --print-lock-doc` to refresh the
// docs table (the drift test tells you when you forget).
#pragma once

// X(enumerator, level-name, rank, what-it-guards)
// Keep the list sorted by rank, then by name, so the generated doc table
// reads top-down from outermost to innermost.
#define CLARENS_LOCK_LEVEL_LIST(X)                                            \
  X(kCoreServerReaper, "core.server.reaper", 10,                              \
    "session-reaper wakeup flag")                                             \
  X(kRpcRegistry, "rpc.registry", 15,                                         \
    "method-binding table (read for lookup, released before the handler "    \
    "runs)")                                                                  \
  X(kBaselineHeavygrid, "baseline.heavygrid", 20,                             \
    "HeavyGrid per-connection thread table")                                  \
  X(kCoreAclShard, "core.acl.shard", 20, "compiled method-ACL cache shard")   \
  X(kCoreJob, "core.job", 20, "job table + queue")                            \
  X(kCoreMessage, "core.message", 20, "mailbox table")                        \
  X(kCoreShell, "core.shell", 20, "shell session table")                      \
  X(kCoreSrm, "core.srm", 20, "SRM request table")                            \
  X(kCoreTransfer, "core.transfer", 20, "transfer table + queue")             \
  X(kCoreVoRootCache, "core.vo.root_cache", 20,                               \
    "compiled root-admins cache (nests under core.vo.write via "             \
    "SameRankToken)")                                                         \
  X(kCoreVoWrite, "core.vo.write", 20,                                        \
    "VO group read-modify-write serialization")                               \
  X(kFederationReplicator, "federation.replicator", 20,                       \
    "repair queue, node liveness and suspect tables (released before any "    \
    "peer call)")                                                             \
  X(kFederationRouter, "federation.router", 20,                               \
    "placement ring + refresh stopwatch")                                     \
  X(kFederationLayout, "federation.layout", 22,                               \
    "layout-table read-modify-write serialization (nests over db.store)")     \
  X(kDiscoveryPublisher, "discovery.publisher", 25,                           \
    "published service-record list")                                          \
  X(kDiscoveryServerCache, "discovery.server.cache", 25,                      \
    "aggregated discovery query cache")                                       \
  X(kDiscoveryStation, "discovery.station", 25,                               \
    "station record + subscriber tables")                                     \
  X(kClientPeerPool, "client.peer_pool", 30,                                  \
    "per-node idle-client map (leaf; no calls held)")                         \
  X(kCoreSessionShard, "core.session.shard", 30, "one session-cache shard")   \
  X(kDbStoreShard, "db.store.shard", 40,                                      \
    "one store memtable shard (SharedMutex)")                                 \
  X(kStorageMass, "storage.mass", 40, "disk-cache bookkeeping (leaf)")        \
  X(kDbStoreJournal, "db.store.journal", 50,                                  \
    "store commit queue + group-commit seqs (innermost db lock)")             \
  X(kHttpServerConns, "http.server.conns", 60, "HTTP connection table")       \
  X(kHttpConn, "http.conn", 61,                                               \
    "per-connection ready queue, busy token and outbox")                      \
  X(kHttpServerCosts, "http.server.costs", 62,                                \
    "per-method inline-dispatch EWMA cost map")                               \
  X(kNetReactorTasks, "net.reactor.tasks", 70,                                \
    "reactor callback/task registry (queue flips only)")                      \
  X(kUtilThreadPool, "util.thread_pool", 75,                                  \
    "worker-pool task queue (submit may run under http.conn)")                \
  X(kUtilFault, "util.fault", 80,                                             \
    "fault-injection arm table (hooks fire under arbitrary outer locks)")     \
  X(kUtilLogging, "util.logging", 90,                                         \
    "log output serialization (innermost: loggable under any lock)")

namespace clarens::util {

/// One enumerator per level. Enumerator values are ordinals (not ranks):
/// several levels share a rank, and the detector needs to name each one
/// distinctly in its abort report.
enum class LockLevel : int {
#define CLARENS_LOCK_LEVEL_ENUM__(name, str, rank, doc) name,
  CLARENS_LOCK_LEVEL_LIST(CLARENS_LOCK_LEVEL_ENUM__)
#undef CLARENS_LOCK_LEVEL_ENUM__
      kCount
};

struct LockLevelInfo {
  LockLevel level;
  const char* name;  ///< dotted level name, e.g. "db.store.shard"
  int rank;          ///< outer < inner; equal ranks never nest untokened
  const char* doc;   ///< one-line "guards" column for the doc table
};

inline constexpr LockLevelInfo kLockLevels[] = {
#define CLARENS_LOCK_LEVEL_INFO__(name, str, rank, doc) \
  {LockLevel::name, str, rank, doc},
    CLARENS_LOCK_LEVEL_LIST(CLARENS_LOCK_LEVEL_INFO__)
#undef CLARENS_LOCK_LEVEL_INFO__
};

inline constexpr int lock_level_rank(LockLevel level) {
  return kLockLevels[static_cast<int>(level)].rank;
}

inline constexpr const char* lock_level_name(LockLevel level) {
  return kLockLevels[static_cast<int>(level)].name;
}

}  // namespace clarens::util
