// Fixed-size worker pool used by the HTTP server to execute request
// handlers off the reactor thread (the analogue of Apache's worker
// processes in the paper's architecture).
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "util/sync.hpp"

namespace clarens::util {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains nothing: pending tasks that have not started are discarded;
  /// running tasks complete before the destructor returns.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Safe from any thread, including workers.
  void submit(std::function<void()> task) CLARENS_EXCLUDES(mutex_);

  /// Block until the queue is empty and all workers are idle.
  void wait_idle() CLARENS_EXCLUDES(mutex_);

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop() CLARENS_EXCLUDES(mutex_);

  Mutex mutex_{LockLevel::kUtilThreadPool};
  CondVar work_available_;
  CondVar all_idle_;
  std::deque<std::function<void()>> queue_ CLARENS_GUARDED_BY(mutex_);
  std::size_t active_ CLARENS_GUARDED_BY(mutex_) = 0;
  bool stopping_ CLARENS_GUARDED_BY(mutex_) = false;
  std::vector<Thread> workers_;  // written once in the constructor
};

}  // namespace clarens::util
