// Fixed-size worker pool used by the HTTP server to execute request
// handlers off the reactor thread (the analogue of Apache's worker
// processes in the paper's architecture).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace clarens::util {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains nothing: pending tasks that have not started are discarded;
  /// running tasks complete before the destructor returns.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Safe from any thread, including workers.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and all workers are idle.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace clarens::util
