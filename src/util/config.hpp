// Apache-style configuration files.
//
// The Clarens paper configures the server (admin DNs, virtual file roots,
// ports) through the web-server configuration file. We use a simple
// line-oriented format:
//
//   # comment
//   key value with spaces
//   section.key value
//
// Repeated keys accumulate (multi-valued keys such as admin DNs).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace clarens::util {

class Config {
 public:
  Config() = default;

  /// Parse from file contents. Throws clarens::ParseError on malformed
  /// lines (a non-comment line without a key).
  static Config parse(std::string_view text);

  /// Load from a file path. Throws clarens::SystemError if unreadable.
  static Config load(const std::string& path);

  /// First value for key, if present.
  std::optional<std::string> get(const std::string& key) const;

  /// First value or `fallback`.
  std::string get_or(const std::string& key, std::string fallback) const;

  /// Integer value or `fallback`; throws ParseError if present but invalid.
  std::int64_t get_int_or(const std::string& key, std::int64_t fallback) const;

  /// Boolean value ("true/false/yes/no/on/off/1/0") or `fallback`.
  bool get_bool_or(const std::string& key, bool fallback) const;

  /// All values for a repeated key, in file order.
  std::vector<std::string> get_all(const std::string& key) const;

  /// Set/append programmatically (used by tests and embedded servers).
  void add(const std::string& key, std::string value);

  /// Replace all values of key with a single value.
  void set(const std::string& key, std::string value);

  bool contains(const std::string& key) const;

  /// All keys present, sorted.
  std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::vector<std::string>> values_;
};

}  // namespace clarens::util
