// Runtime lock-rank deadlock detector (CLARENS_LOCK_RANK_CHECK builds
// only; in release builds this translation unit is empty and the hooks
// in sync.hpp compile to nothing).
//
// Each thread keeps a stack of the locks it currently holds. Acquiring a
// lock whose rank is not strictly greater than every held rank — or
// equal without a SameRankToken at the call site — is a hierarchy
// violation: some interleaving of threads doing the same can deadlock,
// whether or not this run would have. The process aborts immediately
// with both lock names, the full held stack and a backtrace, which turns
// a latent deadlock TSan may never schedule into a deterministic test
// failure on the first violating acquisition.
#include "util/sync.hpp"

#if defined(CLARENS_LOCK_RANK_CHECK) && CLARENS_LOCK_RANK_CHECK

#include <cstdio>
#include <cstdlib>

#if defined(__GLIBC__)
#include <execinfo.h>
#endif

namespace clarens::util::rank_check {

namespace {

struct Held {
  const void* mutex;
  LockLevel level;
};

// Fixed-capacity per-thread stack: no allocation on the lock path, and
// deeper nesting than this is a hierarchy bug in its own right.
constexpr int kMaxHeld = 16;

struct HeldStack {
  Held entries[kMaxHeld];
  int size = 0;
};

thread_local HeldStack t_held;

[[noreturn]] void die(const char* what, LockLevel level) {
  std::fprintf(stderr,
               "clarens: lock-rank violation: %s '%s' (rank %d)\n", what,
               lock_level_name(level), lock_level_rank(level));
  std::fprintf(stderr, "  held locks (outermost first):\n");
  for (int i = 0; i < t_held.size; ++i) {
    std::fprintf(stderr, "    %s (rank %d)\n",
                 lock_level_name(t_held.entries[i].level),
                 lock_level_rank(t_held.entries[i].level));
  }
  std::fprintf(stderr,
               "  the hierarchy lives in src/util/lock_levels.hpp; "
               "same-rank nesting requires util::SameRankToken\n");
#if defined(__GLIBC__)
  void* frames[32];
  int depth = ::backtrace(frames, 32);
  std::fprintf(stderr, "  acquisition backtrace:\n");
  ::backtrace_symbols_fd(frames, depth, 2);
#endif
  std::abort();
}

}  // namespace

void note_acquire(const void* mutex, LockLevel level, bool same_rank_ok) {
  HeldStack& held = t_held;
  int rank = lock_level_rank(level);
  for (int i = 0; i < held.size; ++i) {
    if (held.entries[i].mutex == mutex) {
      die("re-acquiring already-held lock", level);
    }
  }
  if (held.size > 0) {
    const Held& top = held.entries[held.size - 1];
    int top_rank = lock_level_rank(top.level);
    if (rank < top_rank || (rank == top_rank && !same_rank_ok)) {
      std::fprintf(stderr,
                   "clarens: lock-rank violation: acquiring '%s' (rank %d) "
                   "while holding '%s' (rank %d)\n",
                   lock_level_name(level), rank, lock_level_name(top.level),
                   top_rank);
      die("acquisition of", level);
    }
  }
  if (held.size == kMaxHeld) die("held-lock stack overflow acquiring", level);
  held.entries[held.size++] = {mutex, level};
}

void note_release(const void* mutex) {
  HeldStack& held = t_held;
  // Unlock order may legitimately differ from lock order (e.g. a guard
  // declared before another but destroyed after): erase wherever it is.
  for (int i = held.size - 1; i >= 0; --i) {
    if (held.entries[i].mutex != mutex) continue;
    for (int j = i; j + 1 < held.size; ++j) {
      held.entries[j] = held.entries[j + 1];
    }
    --held.size;
    return;
  }
  // Releasing a lock we never saw acquired: possible only if lock() and
  // unlock() crossed a CLARENS_LOCK_RANK_CHECK boundary, which the
  // global compile definition rules out. Treat as corruption.
  std::fprintf(stderr,
               "clarens: lock-rank violation: releasing a lock this thread "
               "does not hold\n");
  std::abort();
}

int held_count() { return t_held.size; }

}  // namespace clarens::util::rank_check

#endif  // CLARENS_LOCK_RANK_CHECK
