// Minimal thread-safe leveled logger.
//
// Servers log to stderr by default; tests silence logging by raising the
// level. Formatting is plain printf-into-ostringstream via operator<<
// composition at the call site:
//
//   CLARENS_LOG(Info) << "accepted connection from " << peer;
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace clarens::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Sink for one log record; flushes on destruction.
class LogRecord {
 public:
  LogRecord(LogLevel level, const char* file, int line);
  ~LogRecord();

  LogRecord(const LogRecord&) = delete;
  LogRecord& operator=(const LogRecord&) = delete;

  template <typename T>
  LogRecord& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace clarens::util

#define CLARENS_LOG(severity)                                    \
  ::clarens::util::LogRecord(::clarens::util::LogLevel::severity, \
                             __FILE__, __LINE__)
