#include "storage/srm.hpp"

#include <chrono>

#include "crypto/random.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace clarens::storage {

const char* to_string(SrmState state) {
  switch (state) {
    case SrmState::Queued: return "QUEUED";
    case SrmState::Staging: return "STAGING";
    case SrmState::Ready: return "READY";
    case SrmState::Failed: return "FAILED";
    case SrmState::Released: return "RELEASED";
  }
  return "?";
}

SrmService::SrmService(MassStorage& storage, int workers) : storage_(storage) {
  if (workers < 1) workers = 1;
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SrmService::~SrmService() {
  {
    util::LockGuard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::string SrmService::prepare_to_get(const std::string& logical_path) {
  SrmRequest request;
  request.token = crypto::random_token(12);
  request.logical_path = logical_path;
  request.created = util::unix_now();
  {
    util::LockGuard lock(mutex_);
    requests_[request.token] = request;
    queue_.push_back(request.token);
  }
  work_available_.notify_one();
  return request.token;
}

void SrmService::worker_loop() {
  for (;;) {
    std::string token;
    {
      util::UniqueLock lock(mutex_);
      while (!stopping_ && queue_.empty()) work_available_.wait(lock);
      if (stopping_) return;
      token = queue_.front();
      queue_.pop_front();
      auto it = requests_.find(token);
      if (it == requests_.end()) continue;
      it->second.state = SrmState::Staging;
    }
    state_changed_.notify_all();

    // The staging copy (and its simulated tape latency) runs unlocked.
    std::string logical_path;
    {
      util::LockGuard lock(mutex_);
      logical_path = requests_[token].logical_path;
    }
    std::string cache_file;
    std::string error;
    try {
      cache_file = storage_.stage_and_pin(logical_path);
    } catch (const Error& e) {
      error = e.what();
    }

    {
      util::LockGuard lock(mutex_);
      auto it = requests_.find(token);
      if (it != requests_.end()) {
        if (error.empty()) {
          it->second.state = SrmState::Ready;
          it->second.cache_file = cache_file;
        } else {
          it->second.state = SrmState::Failed;
          it->second.error = error;
        }
      }
    }
    state_changed_.notify_all();
  }
}

SrmRequest SrmService::status(const std::string& token) const {
  util::LockGuard lock(mutex_);
  auto it = requests_.find(token);
  if (it == requests_.end()) throw NotFoundError("unknown SRM token");
  return it->second;
}

SrmRequest SrmService::wait(const std::string& token, int timeout_ms) {
  util::UniqueLock lock(mutex_);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  for (;;) {
    auto it = requests_.find(token);
    if (it == requests_.end()) throw NotFoundError("unknown SRM token");
    if (it->second.state != SrmState::Queued &&
        it->second.state != SrmState::Staging) {
      return it->second;
    }
    if (state_changed_.wait_until(lock, deadline) == std::cv_status::timeout) {
      it = requests_.find(token);
      if (it != requests_.end() && it->second.state != SrmState::Queued &&
          it->second.state != SrmState::Staging) {
        return it->second;
      }
      throw SystemError("SRM request did not complete in time");
    }
  }
}

void SrmService::release(const std::string& token) {
  std::string logical_path;
  {
    util::LockGuard lock(mutex_);
    auto it = requests_.find(token);
    if (it == requests_.end()) throw NotFoundError("unknown SRM token");
    if (it->second.state == SrmState::Released) return;
    if (it->second.state != SrmState::Ready) {
      throw Error("cannot release a request in state " +
                  std::string(to_string(it->second.state)));
    }
    it->second.state = SrmState::Released;
    logical_path = it->second.logical_path;
  }
  storage_.unpin(logical_path);
  state_changed_.notify_all();
}

void SrmService::put(const std::string& logical_path, std::string_view data) {
  storage_.put(logical_path, data);
}

std::vector<std::string> SrmService::ls(const std::string& logical_dir) const {
  return storage_.list(logical_dir);
}

bool SrmService::exists(const std::string& logical_path) const {
  return storage_.exists(logical_path);
}

std::int64_t SrmService::size(const std::string& logical_path) const {
  return storage_.size(logical_path);
}

}  // namespace clarens::storage
