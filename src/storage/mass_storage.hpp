// Mass-storage simulation — the dCache analogue behind the SRM interface
// (paper §6: "Work is under way to provide an SRM service interface to
// dCache such that Clarens can support robust file transfer between
// different mass storage facilities").
//
// Model: a *tape* namespace (slow, always complete) and a bounded *disk
// cache* (fast, partial). Reads must be staged tape→cache first; staging
// costs simulated latency proportional to file size (configurable;
// tests use an instant rate). Cached copies can be pinned while in use;
// unpinned copies are evicted LRU when the cache fills. Writes go
// through the cache and are flushed to tape.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/sync.hpp"

namespace clarens::storage {

struct CacheEntry {
  std::string tape_path;   // logical path, e.g. "/run2005A/muons.evt"
  std::string cache_file;  // real file inside the cache directory
  std::int64_t size = 0;
  int pins = 0;
  std::int64_t last_used = 0;  // unix seconds (LRU key)
};

class MassStorage {
 public:
  /// `tape_dir`/`cache_dir` are created if absent. `cache_capacity` in
  /// bytes. `stage_bytes_per_second` simulates tape latency (0 = instant,
  /// for tests; SC-era tape drives did ~30 MB/s).
  MassStorage(std::string tape_dir, std::string cache_dir,
              std::int64_t cache_capacity,
              std::int64_t stage_bytes_per_second = 0);

  // --- tape namespace --------------------------------------------------
  /// Write a file to tape (via the cache). Overwrites.
  void put(const std::string& logical_path, std::string_view data);
  bool exists(const std::string& logical_path) const;
  std::int64_t size(const std::string& logical_path) const;  // throws NotFound
  std::vector<std::string> list(const std::string& logical_dir) const;
  void remove(const std::string& logical_path);

  // --- staging ----------------------------------------------------------
  /// Ensure the file is on disk cache; blocks for the simulated staging
  /// time on a miss; a hit is free. Returns the real cache-file path and
  /// pins the entry (caller must unpin()).
  std::string stage_and_pin(const std::string& logical_path);

  void unpin(const std::string& logical_path);

  bool is_cached(const std::string& logical_path) const;

  // --- cache accounting --------------------------------------------------
  std::int64_t cache_used() const;
  std::int64_t cache_capacity() const { return cache_capacity_; }
  std::size_t cache_entries() const;
  std::uint64_t stage_count() const { return stages_; }
  std::uint64_t hit_count() const { return hits_; }
  std::uint64_t eviction_count() const { return evictions_; }

  const std::string& cache_dir() const { return cache_dir_; }

 private:
  std::string tape_file(const std::string& logical_path) const;
  /// Evict LRU unpinned entries until `needed` bytes fit. Throws
  /// clarens::SystemError when pinned entries block the eviction.
  void make_room_locked(std::int64_t needed) CLARENS_REQUIRES(mutex_);

  std::string tape_dir_;
  std::string cache_dir_;
  std::int64_t cache_capacity_;
  std::int64_t stage_rate_;

  /// Hierarchy level `storage.mass` (leaf; staging I/O and the simulated
  /// tape latency run with the lock dropped).
  mutable util::Mutex mutex_{util::LockLevel::kStorageMass};
  std::map<std::string, CacheEntry> cache_
      CLARENS_GUARDED_BY(mutex_);  // by logical path
  std::int64_t used_ CLARENS_GUARDED_BY(mutex_) = 0;
  std::uint64_t stages_ CLARENS_GUARDED_BY(mutex_) = 0;
  std::uint64_t hits_ CLARENS_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ CLARENS_GUARDED_BY(mutex_) = 0;
};

}  // namespace clarens::storage
