#include "storage/mass_storage.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "crypto/sha256.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"
#include "util/strings.hpp"

namespace fs = std::filesystem;

namespace clarens::storage {

namespace {

void validate_logical(const std::string& path) {
  if (path.empty() || path.front() != '/') {
    throw ParseError("logical storage paths must be absolute: '" + path + "'");
  }
  if (path.find("..") != std::string::npos) {
    throw AccessError("'..' not allowed in storage paths: '" + path + "'");
  }
}

}  // namespace

MassStorage::MassStorage(std::string tape_dir, std::string cache_dir,
                         std::int64_t cache_capacity,
                         std::int64_t stage_bytes_per_second)
    : tape_dir_(std::move(tape_dir)),
      cache_dir_(std::move(cache_dir)),
      cache_capacity_(cache_capacity),
      stage_rate_(stage_bytes_per_second) {
  fs::create_directories(tape_dir_);
  fs::create_directories(cache_dir_);
}

std::string MassStorage::tape_file(const std::string& logical_path) const {
  validate_logical(logical_path);
  return (fs::path(tape_dir_) / fs::path(logical_path).relative_path()).string();
}

void MassStorage::put(const std::string& logical_path, std::string_view data) {
  std::string real = tape_file(logical_path);
  fs::create_directories(fs::path(real).parent_path());
  std::ofstream out(real, std::ios::binary | std::ios::trunc);
  if (!out) throw SystemError("cannot write to tape: " + logical_path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));

  // Invalidate any stale cached copy.
  util::LockGuard lock(mutex_);
  auto it = cache_.find(logical_path);
  if (it != cache_.end()) {
    if (it->second.pins > 0) {
      throw SystemError("cannot overwrite pinned cached file: " + logical_path);
    }
    fs::remove(it->second.cache_file);
    used_ -= it->second.size;
    cache_.erase(it);
  }
}

bool MassStorage::exists(const std::string& logical_path) const {
  return fs::exists(tape_file(logical_path));
}

std::int64_t MassStorage::size(const std::string& logical_path) const {
  std::string real = tape_file(logical_path);
  std::error_code ec;
  auto s = fs::file_size(real, ec);
  if (ec) throw NotFoundError("no such tape file: " + logical_path);
  return static_cast<std::int64_t>(s);
}

std::vector<std::string> MassStorage::list(const std::string& logical_dir) const {
  validate_logical(logical_dir);
  fs::path base = fs::path(tape_dir_) / fs::path(logical_dir).relative_path();
  std::error_code ec;
  std::vector<std::string> out;
  for (auto it = fs::recursive_directory_iterator(base, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec)) continue;
    fs::path rel = it->path().lexically_relative(tape_dir_);
    out.push_back("/" + rel.string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void MassStorage::remove(const std::string& logical_path) {
  std::string real = tape_file(logical_path);
  {
    util::LockGuard lock(mutex_);
    auto it = cache_.find(logical_path);
    if (it != cache_.end()) {
      if (it->second.pins > 0) {
        throw SystemError("cannot remove pinned file: " + logical_path);
      }
      fs::remove(it->second.cache_file);
      used_ -= it->second.size;
      cache_.erase(it);
    }
  }
  if (!fs::remove(real)) {
    throw NotFoundError("no such tape file: " + logical_path);
  }
}

void MassStorage::make_room_locked(std::int64_t needed) {
  if (needed > cache_capacity_) {
    throw SystemError("file larger than the entire disk cache");
  }
  while (used_ + needed > cache_capacity_) {
    // LRU among unpinned entries.
    auto victim = cache_.end();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (it->second.pins > 0) continue;
      if (victim == cache_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == cache_.end()) {
      throw SystemError("disk cache exhausted by pinned files");
    }
    fs::remove(victim->second.cache_file);
    used_ -= victim->second.size;
    cache_.erase(victim);
    ++evictions_;
  }
}

std::string MassStorage::stage_and_pin(const std::string& logical_path) {
  std::string real = tape_file(logical_path);
  {
    util::LockGuard lock(mutex_);
    auto it = cache_.find(logical_path);
    if (it != cache_.end()) {
      ++it->second.pins;
      it->second.last_used = util::unix_now();
      ++hits_;
      return it->second.cache_file;
    }
  }

  std::error_code ec;
  auto file_size = fs::file_size(real, ec);
  if (ec) throw NotFoundError("no such tape file: " + logical_path);

  // Simulated tape latency, outside the lock: other requests proceed.
  if (stage_rate_ > 0) {
    auto millis = static_cast<std::int64_t>(file_size) * 1000 / stage_rate_;
    std::this_thread::sleep_for(std::chrono::milliseconds(millis));
  }

  // Cache filename derived from the logical path (stable, collision-free).
  std::string name = util::hex_encode(crypto::Sha256::hash(logical_path));
  std::string cache_file = (fs::path(cache_dir_) / name).string();

  util::LockGuard lock(mutex_);
  // Another thread may have staged it while we slept.
  auto it = cache_.find(logical_path);
  if (it != cache_.end()) {
    ++it->second.pins;
    ++hits_;
    return it->second.cache_file;
  }
  make_room_locked(static_cast<std::int64_t>(file_size));
  fs::copy_file(real, cache_file, fs::copy_options::overwrite_existing, ec);
  if (ec) throw SystemError("staging copy failed: " + ec.message());

  CacheEntry entry;
  entry.tape_path = logical_path;
  entry.cache_file = cache_file;
  entry.size = static_cast<std::int64_t>(file_size);
  entry.pins = 1;
  entry.last_used = util::unix_now();
  used_ += entry.size;
  cache_[logical_path] = std::move(entry);
  ++stages_;
  return cache_file;
}

void MassStorage::unpin(const std::string& logical_path) {
  util::LockGuard lock(mutex_);
  auto it = cache_.find(logical_path);
  if (it == cache_.end()) {
    throw NotFoundError("not cached: " + logical_path);
  }
  if (it->second.pins > 0) --it->second.pins;
}

bool MassStorage::is_cached(const std::string& logical_path) const {
  util::LockGuard lock(mutex_);
  return cache_.count(logical_path) != 0;
}

std::int64_t MassStorage::cache_used() const {
  util::LockGuard lock(mutex_);
  return used_;
}

std::size_t MassStorage::cache_entries() const {
  util::LockGuard lock(mutex_);
  return cache_.size();
}

}  // namespace clarens::storage
