// SRM-like storage resource manager (paper §6 / ref [27]).
//
// The Storage Resource Manager protocol mediates access to mass storage:
// a client *requests* a file, the SRM stages it from tape asynchronously,
// the client polls the request until it is READY, uses the staged copy
// (here: through the Clarens file service, whose cache root maps to the
// SRM's disk cache), and finally *releases* it so the pin is dropped.
//
// This module implements that request lifecycle on top of MassStorage:
//   prepare_to_get -> token          (queued; a worker stages it)
//   status(token)  -> QUEUED | STAGING | READY(cache file) | FAILED(why)
//   release(token) -> unpin
// plus write-through put and namespace listing.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "storage/mass_storage.hpp"
#include "util/sync.hpp"

namespace clarens::storage {

enum class SrmState { Queued, Staging, Ready, Failed, Released };

const char* to_string(SrmState state);

struct SrmRequest {
  std::string token;
  std::string logical_path;
  SrmState state = SrmState::Queued;
  std::string cache_file;  // set when Ready
  std::string error;       // set when Failed
  std::int64_t created = 0;
};

class SrmService {
 public:
  /// `workers`: concurrent staging streams (tape drives).
  explicit SrmService(MassStorage& storage, int workers = 2);
  ~SrmService();

  SrmService(const SrmService&) = delete;
  SrmService& operator=(const SrmService&) = delete;

  /// Enqueue a staging request; returns the request token immediately.
  std::string prepare_to_get(const std::string& logical_path);

  /// Current request state; throws NotFoundError for unknown tokens.
  SrmRequest status(const std::string& token) const;

  /// Block until the request leaves the queue/staging states (test and
  /// synchronous-client convenience). Returns the final request.
  SrmRequest wait(const std::string& token, int timeout_ms = 10000);

  /// Drop the pin of a Ready request. Idempotent on released requests.
  void release(const std::string& token);

  // Write-through and namespace operations (synchronous).
  void put(const std::string& logical_path, std::string_view data);
  std::vector<std::string> ls(const std::string& logical_dir) const;
  bool exists(const std::string& logical_path) const;
  std::int64_t size(const std::string& logical_path) const;

  MassStorage& storage() { return storage_; }

 private:
  void worker_loop();

  MassStorage& storage_;
  /// Request-table lock; never held across staging (`storage.mass`
  /// locking is independent — workers stage unlocked).
  mutable util::Mutex mutex_{util::LockLevel::kCoreSrm};
  util::CondVar work_available_;
  util::CondVar state_changed_;
  std::map<std::string, SrmRequest> requests_ CLARENS_GUARDED_BY(mutex_);
  std::deque<std::string> queue_ CLARENS_GUARDED_BY(mutex_);
  bool stopping_ CLARENS_GUARDED_BY(mutex_) = false;
  std::vector<util::Thread> workers_;  // written once in the constructor
};

}  // namespace clarens::storage
