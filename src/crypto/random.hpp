// Cryptographic randomness: a ChaCha20-based DRBG seeded from the
// operating system, with a thread-local instance for lock-free use.
// Session tokens, RSA key generation, TLS nonces and proxy-certificate
// serials all draw from here.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace clarens::crypto {

class Drbg {
 public:
  /// Seeded from the OS (/dev/urandom; falls back to clock entropy mixing
  /// only if the device is unavailable).
  Drbg();

  /// Deterministic DRBG for reproducible tests.
  explicit Drbg(std::span<const std::uint8_t> seed);

  void fill(std::span<std::uint8_t> out);

  std::vector<std::uint8_t> bytes(std::size_t n);

  std::uint64_t next_u64();

  /// Uniform in [0, bound); bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Random lowercase-hex token of `bytes` entropy bytes.
  std::string token(std::size_t bytes = 16);

 private:
  void reseed_block();

  std::array<std::uint8_t, 32> key_;
  std::uint64_t counter_ = 0;
};

/// Thread-local process-wide DRBG.
Drbg& system_drbg();

/// Convenience wrappers over system_drbg().
std::vector<std::uint8_t> random_bytes(std::size_t n);
std::string random_token(std::size_t bytes = 16);

}  // namespace clarens::crypto
