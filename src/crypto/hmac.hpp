// HMAC-SHA256 (RFC 2104) and HKDF-style key derivation used by the TLS-like
// record layer and session-token minting.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/sha256.hpp"

namespace clarens::crypto {

/// HMAC-SHA256 over `data` keyed by `key`.
Sha256::Digest hmac_sha256(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> data);

Sha256::Digest hmac_sha256(std::string_view key, std::string_view data);

/// Derive `length` bytes from input keying material with a label, an
/// HKDF-expand-like construction: T(i) = HMAC(ikm, T(i-1) | label | i).
std::vector<std::uint8_t> derive_key(std::span<const std::uint8_t> ikm,
                                     std::string_view label,
                                     std::size_t length);

/// Constant-time comparison for MACs and password digests.
bool constant_time_equal(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b);

}  // namespace clarens::crypto
