#include "crypto/md5.hpp"

#include <cstdio>
#include <cstring>
#include <vector>

#include "util/hex.hpp"

namespace clarens::crypto {

namespace {

// Per-round shift amounts (RFC 1321 section 3.4).
constexpr std::uint32_t kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * abs(sin(i + 1))).
constexpr std::uint32_t kSine[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

std::uint32_t rotl(std::uint32_t x, std::uint32_t n) {
  return (x << n) | (x >> (32 - n));
}

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

Md5::Md5() { reset(); }

void Md5::reset() {
  state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u};
  block_len_ = 0;
  total_len_ = 0;
}

void Md5::update(std::span<const std::uint8_t> data) {
  total_len_ += data.size();
  std::size_t offset = 0;
  if (block_len_ > 0) {
    std::size_t take = std::min(data.size(), block_.size() - block_len_);
    std::memcpy(block_.data() + block_len_, data.data(), take);
    block_len_ += take;
    offset = take;
    if (block_len_ == block_.size()) {
      process_block(block_.data());
      block_len_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(block_.data(), data.data() + offset, data.size() - offset);
    block_len_ = data.size() - offset;
  }
}

Md5::Digest Md5::finish() {
  std::uint64_t bit_len = total_len_ * 8;
  // Padding: 0x80 then zeros until 8 bytes remain in the block.
  std::uint8_t pad = 0x80;
  update(std::span<const std::uint8_t>(&pad, 1));
  std::uint8_t zero = 0;
  while (block_len_ != 56) update(std::span<const std::uint8_t>(&zero, 1));
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (8 * i));
  }
  // Bypass total_len_ accounting for the length block itself.
  std::memcpy(block_.data() + 56, len_bytes, 8);
  process_block(block_.data());
  block_len_ = 0;

  Digest digest;
  for (int i = 0; i < 4; ++i) store_le32(digest.data() + 4 * i, state_[i]);
  return digest;
}

void Md5::process_block(const std::uint8_t* block) {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) m[i] = load_le32(block + 4 * i);

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  for (int i = 0; i < 64; ++i) {
    std::uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    std::uint32_t tmp = d;
    d = c;
    c = b;
    b = b + rotl(a + f + kSine[i] + m[g], kShift[i]);
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

Md5::Digest Md5::hash(std::string_view data) {
  Md5 md5;
  md5.update(data);
  return md5.finish();
}

std::string Md5::hex(std::string_view data) {
  Digest d = hash(data);
  return util::hex_encode(d);
}

std::optional<std::string> Md5::file_hex(const std::string& path,
                                         std::int64_t* size_out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return std::nullopt;
  Md5 md5;
  std::int64_t total = 0;
  std::vector<std::uint8_t> buf(256 * 1024);
  std::size_t n;
  while ((n = std::fread(buf.data(), 1, buf.size(), f)) > 0) {
    md5.update(std::span<const std::uint8_t>(buf.data(), n));
    total += static_cast<std::int64_t>(n);
  }
  std::fclose(f);
  if (size_out) *size_out = total;
  return util::hex_encode(md5.finish());
}

}  // namespace clarens::crypto
