// RSA over clarens::crypto::BigInt: key generation, PKCS#1-v1.5-style
// signatures (SHA-256) and encryption. This is the asymmetric primitive
// behind certificates, proxy delegation and the TLS-like key exchange.
//
// Key sizes: 512-bit keys are the test/benchmark default (fast keygen with
// a from-scratch bignum); 1024+ work identically, only slower. None of the
// performance claims reproduced from the paper depend on absolute RSA
// speed — the Globus-baseline comparison is about *how often* the
// handshake runs, not how fast one handshake is.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "crypto/bigint.hpp"

namespace clarens::crypto {

class Drbg;

struct RsaPublicKey {
  BigInt n;  // modulus
  BigInt e;  // public exponent

  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }

  /// Text serialization "hex(n):hex(e)" used inside certificates.
  std::string encode() const;
  static RsaPublicKey decode(std::string_view text);

  bool operator==(const RsaPublicKey& o) const { return n == o.n && e == o.e; }
};

struct RsaPrivateKey {
  BigInt n;
  BigInt e;
  BigInt d;  // private exponent
  BigInt p;
  BigInt q;

  RsaPublicKey public_key() const { return {n, e}; }

  std::string encode() const;
  static RsaPrivateKey decode(std::string_view text);
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;
};

/// Generate a fresh key pair with an n of `bits` bits and e = 65537.
RsaKeyPair rsa_generate(std::size_t bits, Drbg& rng);

/// Sign SHA-256(message) with v1.5-style padding. Returns modulus-sized
/// big-endian signature bytes.
std::vector<std::uint8_t> rsa_sign(const RsaPrivateKey& key,
                                   std::span<const std::uint8_t> message);
std::vector<std::uint8_t> rsa_sign(const RsaPrivateKey& key,
                                   std::string_view message);

/// Verify a signature produced by rsa_sign.
bool rsa_verify(const RsaPublicKey& key, std::span<const std::uint8_t> message,
                std::span<const std::uint8_t> signature);
bool rsa_verify(const RsaPublicKey& key, std::string_view message,
                std::span<const std::uint8_t> signature);

/// PKCS#1-v1.5 type-2 encryption of a short message (e.g. a session key).
/// Message must be at most modulus_bytes() - 11 bytes.
std::vector<std::uint8_t> rsa_encrypt(const RsaPublicKey& key,
                                      std::span<const std::uint8_t> message,
                                      Drbg& rng);

/// Decrypt; returns nullopt if the padding is invalid.
std::optional<std::vector<std::uint8_t>> rsa_decrypt(
    const RsaPrivateKey& key, std::span<const std::uint8_t> ciphertext);

}  // namespace clarens::crypto
