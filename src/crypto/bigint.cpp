#include "crypto/bigint.hpp"

#include <algorithm>

#include "crypto/random.hpp"
#include "util/error.hpp"

namespace clarens::crypto {

namespace {

// Small primes for fast trial division before Miller-Rabin.
constexpr std::uint32_t kSmallPrimes[] = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

BigInt::BigInt(std::uint64_t value) {
  if (value != 0) limbs_.push_back(static_cast<std::uint32_t>(value));
  if (value >> 32) limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::from_bytes(std::span<const std::uint8_t> be_bytes) {
  BigInt out;
  out.limbs_.assign((be_bytes.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < be_bytes.size(); ++i) {
    // Byte i from the end of the buffer is byte i of the integer.
    std::size_t bi = be_bytes.size() - 1 - i;
    out.limbs_[i / 4] |= static_cast<std::uint32_t>(be_bytes[bi]) << (8 * (i % 4));
  }
  out.trim();
  return out;
}

std::vector<std::uint8_t> BigInt::to_bytes() const {
  if (is_zero()) return {};
  std::size_t bytes = (bit_length() + 7) / 8;
  std::vector<std::uint8_t> out(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    std::uint32_t limb = limbs_[i / 4];
    out[bytes - 1 - i] = static_cast<std::uint8_t>(limb >> (8 * (i % 4)));
  }
  return out;
}

BigInt BigInt::from_hex(std::string_view hex) {
  BigInt out;
  for (char c : hex) {
    int d = hex_digit(c);
    if (d < 0) throw ParseError("invalid hex digit in bigint");
    out = (out << 4) + BigInt(static_cast<std::uint64_t>(d));
  }
  return out;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  static const char* digits = "0123456789abcdef";
  std::string out;
  bool started = false;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      int d = (limbs_[i] >> shift) & 0xf;
      if (!started && d == 0) continue;
      started = true;
      out.push_back(digits[d]);
    }
  }
  return out;
}

BigInt BigInt::random_bits(std::size_t bits, Drbg& rng) {
  if (bits == 0) return BigInt();
  std::size_t bytes = (bits + 7) / 8;
  std::vector<std::uint8_t> buf = rng.bytes(bytes);
  // Clear excess leading bits, then force the top bit so the result has
  // exactly `bits` bits.
  std::size_t excess = bytes * 8 - bits;
  buf[0] &= static_cast<std::uint8_t>(0xff >> excess);
  buf[0] |= static_cast<std::uint8_t>(0x80 >> excess);
  return from_bytes(buf);
}

BigInt BigInt::random_below(const BigInt& bound, Drbg& rng) {
  if (bound.is_zero()) throw Error("random_below: zero bound");
  std::size_t bits = bound.bit_length();
  std::size_t bytes = (bits + 7) / 8;
  std::size_t excess = bytes * 8 - bits;
  for (;;) {
    std::vector<std::uint8_t> buf = rng.bytes(bytes);
    buf[0] &= static_cast<std::uint8_t>(0xff >> excess);
    BigInt candidate = from_bytes(buf);
    if (candidate < bound) return candidate;
  }
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::bit(std::size_t i) const {
  std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

int BigInt::compare(const BigInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigInt BigInt::operator+(const BigInt& o) const {
  BigInt out;
  std::size_t n = std::max(limbs_.size(), o.limbs_.size());
  out.limbs_.reserve(n + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < o.limbs_.size()) sum += o.limbs_[i];
    out.limbs_.push_back(static_cast<std::uint32_t>(sum));
    carry = sum >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

BigInt BigInt::operator-(const BigInt& o) const {
  if (*this < o) throw Error("BigInt subtraction underflow");
  BigInt out;
  out.limbs_.reserve(limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < o.limbs_.size()) diff -= o.limbs_[i];
    if (diff < 0) {
      diff += (std::int64_t(1) << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_.push_back(static_cast<std::uint32_t>(diff));
  }
  out.trim();
  return out;
}

BigInt BigInt::operator*(const BigInt& o) const {
  if (is_zero() || o.is_zero()) return BigInt();
  BigInt out;
  out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    std::uint64_t ai = limbs_[i];
    for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
      std::uint64_t cur = out.limbs_[i + j] + ai * o.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + o.limbs_.size();
    while (carry) {
      std::uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
  return out;
}

BigInt BigInt::shift_limbs(const BigInt& x, std::size_t limbs) {
  if (x.is_zero()) return BigInt();
  BigInt out;
  out.limbs_.assign(limbs, 0);
  out.limbs_.insert(out.limbs_.end(), x.limbs_.begin(), x.limbs_.end());
  return out;
}

BigInt BigInt::operator<<(std::size_t bits) const {
  if (is_zero()) return BigInt();
  BigInt out = shift_limbs(*this, bits / 32);
  std::size_t rem = bits % 32;
  if (rem == 0) return out;
  std::uint32_t carry = 0;
  for (auto& limb : out.limbs_) {
    std::uint32_t next_carry = limb >> (32 - rem);
    limb = (limb << rem) | carry;
    carry = next_carry;
  }
  if (carry) out.limbs_.push_back(carry);
  return out;
}

BigInt BigInt::operator>>(std::size_t bits) const {
  std::size_t drop = bits / 32;
  if (drop >= limbs_.size()) return BigInt();
  BigInt out;
  out.limbs_.assign(limbs_.begin() + static_cast<long>(drop), limbs_.end());
  std::size_t rem = bits % 32;
  if (rem) {
    for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
      out.limbs_[i] >>= rem;
      if (i + 1 < out.limbs_.size()) {
        out.limbs_[i] |= out.limbs_[i + 1] << (32 - rem);
      }
    }
  }
  out.trim();
  return out;
}

BigIntDivMod BigInt::divmod(const BigInt& divisor) const {
  if (divisor.is_zero()) throw Error("BigInt division by zero");
  if (*this < divisor) return {BigInt(), *this};

  // Binary long division: O(bit_length) shift/compare/subtract passes.
  // Not the hot path (modexp uses Montgomery), so simplicity wins.
  std::size_t shift = bit_length() - divisor.bit_length();
  BigInt remainder = *this;
  BigInt quotient;
  quotient.limbs_.assign((shift + 32) / 32, 0);
  BigInt shifted = divisor << shift;
  for (std::size_t i = shift + 1; i-- > 0;) {
    if (remainder >= shifted) {
      remainder = remainder - shifted;
      quotient.limbs_[i / 32] |= (std::uint32_t(1) << (i % 32));
    }
    shifted = shifted >> 1;
  }
  quotient.trim();
  return {quotient, remainder};
}

BigInt BigInt::operator/(const BigInt& o) const { return divmod(o).quotient; }
BigInt BigInt::operator%(const BigInt& o) const { return divmod(o).remainder; }

namespace {

// Montgomery context for an odd modulus n with R = 2^(32*k).
class Montgomery {
 public:
  explicit Montgomery(const std::vector<std::uint32_t>& n) : n_(n) {
    // n0inv = -n^{-1} mod 2^32 via Newton iteration.
    std::uint32_t n0 = n_[0];
    std::uint32_t inv = n0;  // correct to 3 bits since n0 is odd
    for (int i = 0; i < 5; ++i) inv *= 2 - n0 * inv;
    n0inv_ = ~inv + 1;  // negate mod 2^32
  }

  std::size_t size() const { return n_.size(); }

  // out = a * b * R^{-1} mod n (CIOS). a, b, out are k-limb vectors.
  void mul(const std::vector<std::uint32_t>& a,
           const std::vector<std::uint32_t>& b,
           std::vector<std::uint32_t>& out) const {
    const std::size_t k = n_.size();
    std::vector<std::uint64_t> t(k + 2, 0);
    for (std::size_t i = 0; i < k; ++i) {
      // t += a[i] * b
      std::uint64_t carry = 0;
      std::uint64_t ai = a[i];
      for (std::size_t j = 0; j < k; ++j) {
        std::uint64_t cur = t[j] + ai * b[j] + carry;
        t[j] = cur & 0xffffffffu;
        carry = cur >> 32;
      }
      std::uint64_t cur = t[k] + carry;
      t[k] = cur & 0xffffffffu;
      t[k + 1] += cur >> 32;

      // m = t[0] * n0inv mod 2^32 ; t += m * n ; t >>= 32
      std::uint32_t m = static_cast<std::uint32_t>(t[0]) * n0inv_;
      carry = 0;
      std::uint64_t m64 = m;
      for (std::size_t j = 0; j < k; ++j) {
        std::uint64_t cur2 = t[j] + m64 * n_[j] + carry;
        t[j] = cur2 & 0xffffffffu;
        carry = cur2 >> 32;
      }
      cur = t[k] + carry;
      t[k] = cur & 0xffffffffu;
      t[k + 1] += cur >> 32;
      // shift down one limb
      for (std::size_t j = 0; j < k + 1; ++j) t[j] = t[j + 1];
      t[k + 1] = 0;
    }

    out.assign(k, 0);
    for (std::size_t j = 0; j < k; ++j) out[j] = static_cast<std::uint32_t>(t[j]);
    // Conditional subtract if out >= n (t[k] holds a possible overflow bit).
    bool ge = t[k] != 0;
    if (!ge) {
      ge = true;
      for (std::size_t j = k; j-- > 0;) {
        if (out[j] != n_[j]) {
          ge = out[j] > n_[j];
          break;
        }
      }
    }
    if (ge) {
      std::int64_t borrow = 0;
      for (std::size_t j = 0; j < k; ++j) {
        std::int64_t diff = static_cast<std::int64_t>(out[j]) - n_[j] - borrow;
        if (diff < 0) {
          diff += (std::int64_t(1) << 32);
          borrow = 1;
        } else {
          borrow = 0;
        }
        out[j] = static_cast<std::uint32_t>(diff);
      }
    }
  }

 private:
  std::vector<std::uint32_t> n_;
  std::uint32_t n0inv_;
};

}  // namespace

BigInt BigInt::modexp(const BigInt& exponent, const BigInt& modulus) const {
  if (modulus.is_zero() || modulus == BigInt(1)) {
    throw Error("modexp: modulus must be > 1");
  }
  BigInt base = *this % modulus;
  if (exponent.is_zero()) return BigInt(1);

  if (modulus.is_odd()) {
    // Montgomery ladder (left-to-right square-and-multiply).
    const std::size_t k = modulus.limbs_.size();
    std::vector<std::uint32_t> n = modulus.limbs_;
    Montgomery mont(n);

    auto to_limbs = [k](const BigInt& x) {
      std::vector<std::uint32_t> v = x.limbs_;
      v.resize(k, 0);
      return v;
    };

    // R mod n and R^2 mod n via shifting.
    BigInt r = BigInt(1) << (32 * k);
    BigInt r_mod = r % modulus;
    BigInt r2_mod = (r_mod * r_mod) % modulus;

    std::vector<std::uint32_t> base_m;
    mont.mul(to_limbs(base), to_limbs(r2_mod), base_m);  // base * R mod n
    std::vector<std::uint32_t> acc = to_limbs(r_mod);    // 1 * R mod n

    std::vector<std::uint32_t> tmp;
    for (std::size_t i = exponent.bit_length(); i-- > 0;) {
      mont.mul(acc, acc, tmp);
      acc.swap(tmp);
      if (exponent.bit(i)) {
        mont.mul(acc, base_m, tmp);
        acc.swap(tmp);
      }
    }
    // Convert out of Montgomery form: acc * 1 * R^{-1}.
    std::vector<std::uint32_t> one(k, 0);
    one[0] = 1;
    mont.mul(acc, one, tmp);
    BigInt out;
    out.limbs_ = tmp;
    out.trim();
    return out;
  }

  // Generic path for even moduli (not used by RSA, kept for completeness).
  BigInt result(1);
  for (std::size_t i = exponent.bit_length(); i-- > 0;) {
    result = (result * result) % modulus;
    if (exponent.bit(i)) result = (result * base) % modulus;
  }
  return result;
}

BigInt BigInt::modinv(const BigInt& modulus) const {
  // Extended Euclid on (a, m) tracking only the coefficient of a, with
  // signs managed explicitly since BigInt is unsigned.
  if (modulus.is_zero()) throw Error("modinv: zero modulus");
  BigInt a = *this % modulus;
  if (a.is_zero()) throw Error("modinv: not invertible");

  BigInt r0 = modulus, r1 = a;
  BigInt s0 = BigInt(0), s1 = BigInt(1);
  bool s0_neg = false, s1_neg = false;

  while (!r1.is_zero()) {
    BigIntDivMod qr = r0.divmod(r1);
    BigInt r2 = qr.remainder;

    // s2 = s0 - q * s1 with sign tracking.
    BigInt qs1 = qr.quotient * s1;
    BigInt s2;
    bool s2_neg;
    if (s0_neg == s1_neg) {
      // s0 and q*s1 have the same sign: result sign depends on magnitude.
      if (s0 >= qs1) {
        s2 = s0 - qs1;
        s2_neg = s0_neg;
      } else {
        s2 = qs1 - s0;
        s2_neg = !s0_neg;
      }
    } else {
      s2 = s0 + qs1;
      s2_neg = s0_neg;
    }

    r0 = r1;
    r1 = r2;
    s0 = s1;
    s0_neg = s1_neg;
    s1 = s2;
    s1_neg = s2_neg;
  }

  if (r0 != BigInt(1)) throw Error("modinv: not invertible");
  if (s0_neg) return modulus - (s0 % modulus);
  return s0 % modulus;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = b;
    b = r;
  }
  return a;
}

bool BigInt::is_probable_prime(int rounds, Drbg& rng) const {
  if (*this < BigInt(2)) return false;
  for (std::uint32_t p : kSmallPrimes) {
    BigInt bp(p);
    if (*this == bp) return true;
    if ((*this % bp).is_zero()) return false;
  }

  // Write n-1 = d * 2^r with d odd.
  BigInt n_minus_1 = *this - BigInt(1);
  BigInt d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }

  for (int round = 0; round < rounds; ++round) {
    // Base in [2, n-2].
    BigInt a = BigInt(2) + random_below(*this - BigInt(3), rng);
    BigInt x = a.modexp(d, *this);
    if (x == BigInt(1) || x == n_minus_1) continue;
    bool composite = true;
    for (std::size_t i = 0; i + 1 < r; ++i) {
      x = x.modexp(BigInt(2), *this);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigInt BigInt::generate_prime(std::size_t bits, Drbg& rng) {
  if (bits < 8) throw Error("generate_prime: need at least 8 bits");
  for (;;) {
    BigInt candidate = random_bits(bits, rng);
    // Force odd.
    if (!candidate.is_odd()) candidate = candidate + BigInt(1);
    if (candidate.bit_length() != bits) continue;
    if (candidate.is_probable_prime(24, rng)) return candidate;
  }
}

std::uint64_t BigInt::to_u64() const {
  if (limbs_.size() > 2) throw Error("BigInt too large for u64");
  std::uint64_t v = 0;
  if (limbs_.size() > 1) v = static_cast<std::uint64_t>(limbs_[1]) << 32;
  if (!limbs_.empty()) v |= limbs_[0];
  return v;
}

}  // namespace clarens::crypto
