#include "crypto/rsa.hpp"

#include "crypto/random.hpp"
#include "crypto/sha256.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace clarens::crypto {

namespace {

// DigestInfo-like prefix marking the hash algorithm inside the padding.
constexpr std::uint8_t kSha256Marker[] = {'S', 'H', 'A', '2', '5', '6', ':'};

// EMSA-PKCS1-v1_5-style encoding: 00 01 FF..FF 00 marker digest
std::vector<std::uint8_t> emsa_encode(std::span<const std::uint8_t> message,
                                      std::size_t em_len) {
  Sha256::Digest digest = Sha256::hash(message);
  std::size_t t_len = sizeof(kSha256Marker) + digest.size();
  if (em_len < t_len + 11) throw Error("RSA modulus too small for signature");
  std::vector<std::uint8_t> em(em_len);
  em[0] = 0x00;
  em[1] = 0x01;
  std::size_t ps_len = em_len - t_len - 3;
  for (std::size_t i = 0; i < ps_len; ++i) em[2 + i] = 0xff;
  em[2 + ps_len] = 0x00;
  std::copy(std::begin(kSha256Marker), std::end(kSha256Marker),
            em.begin() + static_cast<long>(3 + ps_len));
  std::copy(digest.begin(), digest.end(),
            em.begin() + static_cast<long>(3 + ps_len + sizeof(kSha256Marker)));
  return em;
}

std::vector<std::uint8_t> left_pad(std::vector<std::uint8_t> bytes,
                                   std::size_t size) {
  if (bytes.size() >= size) return bytes;
  std::vector<std::uint8_t> out(size - bytes.size(), 0);
  out.insert(out.end(), bytes.begin(), bytes.end());
  return out;
}

std::span<const std::uint8_t> as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

}  // namespace

std::string RsaPublicKey::encode() const {
  return n.to_hex() + ":" + e.to_hex();
}

RsaPublicKey RsaPublicKey::decode(std::string_view text) {
  auto parts = util::split(text, ':');
  if (parts.size() != 2) throw ParseError("invalid RSA public key encoding");
  return {BigInt::from_hex(parts[0]), BigInt::from_hex(parts[1])};
}

std::string RsaPrivateKey::encode() const {
  return n.to_hex() + ":" + e.to_hex() + ":" + d.to_hex() + ":" + p.to_hex() +
         ":" + q.to_hex();
}

RsaPrivateKey RsaPrivateKey::decode(std::string_view text) {
  auto parts = util::split(text, ':');
  if (parts.size() != 5) throw ParseError("invalid RSA private key encoding");
  return {BigInt::from_hex(parts[0]), BigInt::from_hex(parts[1]),
          BigInt::from_hex(parts[2]), BigInt::from_hex(parts[3]),
          BigInt::from_hex(parts[4])};
}

RsaKeyPair rsa_generate(std::size_t bits, Drbg& rng) {
  if (bits < 256) throw Error("RSA key too small (min 256 bits)");
  const BigInt e(65537);
  for (;;) {
    BigInt p = BigInt::generate_prime(bits / 2, rng);
    BigInt q = BigInt::generate_prime(bits - bits / 2, rng);
    if (p == q) continue;
    BigInt n = p * q;
    if (n.bit_length() != bits) continue;
    BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
    if (BigInt::gcd(e, phi) != BigInt(1)) continue;
    BigInt d = e.modinv(phi);
    RsaPrivateKey priv{n, e, d, p, q};
    return {priv.public_key(), priv};
  }
}

std::vector<std::uint8_t> rsa_sign(const RsaPrivateKey& key,
                                   std::span<const std::uint8_t> message) {
  std::size_t k = (key.n.bit_length() + 7) / 8;
  std::vector<std::uint8_t> em = emsa_encode(message, k);
  BigInt m = BigInt::from_bytes(em);
  BigInt s = m.modexp(key.d, key.n);
  return left_pad(s.to_bytes(), k);
}

std::vector<std::uint8_t> rsa_sign(const RsaPrivateKey& key,
                                   std::string_view message) {
  return rsa_sign(key, as_bytes(message));
}

bool rsa_verify(const RsaPublicKey& key, std::span<const std::uint8_t> message,
                std::span<const std::uint8_t> signature) {
  std::size_t k = (key.n.bit_length() + 7) / 8;
  if (signature.size() != k) return false;
  BigInt s = BigInt::from_bytes(signature);
  if (s >= key.n) return false;
  BigInt m = s.modexp(key.e, key.n);
  std::vector<std::uint8_t> em = left_pad(m.to_bytes(), k);
  std::vector<std::uint8_t> expected;
  try {
    expected = emsa_encode(message, k);
  } catch (const Error&) {
    return false;
  }
  return em == expected;
}

bool rsa_verify(const RsaPublicKey& key, std::string_view message,
                std::span<const std::uint8_t> signature) {
  return rsa_verify(key, as_bytes(message), signature);
}

std::vector<std::uint8_t> rsa_encrypt(const RsaPublicKey& key,
                                      std::span<const std::uint8_t> message,
                                      Drbg& rng) {
  std::size_t k = key.modulus_bytes();
  if (message.size() + 11 > k) throw Error("RSA plaintext too long");
  // 00 02 <nonzero random PS> 00 <message>
  std::vector<std::uint8_t> em(k);
  em[0] = 0x00;
  em[1] = 0x02;
  std::size_t ps_len = k - message.size() - 3;
  for (std::size_t i = 0; i < ps_len; ++i) {
    std::uint8_t b;
    do {
      b = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
    } while (b == 0);
    em[2 + i] = b;
  }
  em[2 + ps_len] = 0x00;
  std::copy(message.begin(), message.end(),
            em.begin() + static_cast<long>(3 + ps_len));
  BigInt m = BigInt::from_bytes(em);
  BigInt c = m.modexp(key.e, key.n);
  return left_pad(c.to_bytes(), k);
}

std::optional<std::vector<std::uint8_t>> rsa_decrypt(
    const RsaPrivateKey& key, std::span<const std::uint8_t> ciphertext) {
  std::size_t k = (key.n.bit_length() + 7) / 8;
  if (ciphertext.size() != k) return std::nullopt;
  BigInt c = BigInt::from_bytes(ciphertext);
  if (c >= key.n) return std::nullopt;
  BigInt m = c.modexp(key.d, key.n);
  std::vector<std::uint8_t> em = left_pad(m.to_bytes(), k);
  if (em.size() < 11 || em[0] != 0x00 || em[1] != 0x02) return std::nullopt;
  // Find the 00 separator after at least 8 padding bytes.
  std::size_t sep = 2;
  while (sep < em.size() && em[sep] != 0x00) ++sep;
  if (sep == em.size() || sep < 10) return std::nullopt;
  return std::vector<std::uint8_t>(em.begin() + static_cast<long>(sep + 1),
                                   em.end());
}

}  // namespace clarens::crypto
