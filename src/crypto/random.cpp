#include "crypto/random.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"
#include "util/hex.hpp"

namespace clarens::crypto {

namespace {

std::array<std::uint8_t, 32> os_seed() {
  std::array<std::uint8_t, 32> seed{};
  if (std::FILE* f = std::fopen("/dev/urandom", "rb")) {
    std::size_t got = std::fread(seed.data(), 1, seed.size(), f);
    std::fclose(f);
    if (got == seed.size()) return seed;
  }
  // Last-resort entropy: hash clocks and addresses. Not suitable for real
  // deployments, but keeps tests running on exotic sandboxes.
  Sha256 sha;
  auto now = std::chrono::high_resolution_clock::now().time_since_epoch().count();
  auto tid = std::hash<std::thread::id>{}(std::this_thread::get_id());
  sha.update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(&now), sizeof(now)));
  sha.update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(&tid), sizeof(tid)));
  Sha256::Digest d = sha.finish();
  std::memcpy(seed.data(), d.data(), d.size());
  return seed;
}

}  // namespace

Drbg::Drbg() : key_(os_seed()) {}

Drbg::Drbg(std::span<const std::uint8_t> seed) {
  Sha256::Digest d = Sha256::hash(seed);
  std::memcpy(key_.data(), d.data(), d.size());
}

void Drbg::fill(std::span<std::uint8_t> out) {
  // Each request uses a fresh nonce derived from a counter; the key is
  // ratcheted afterwards so earlier output cannot be reconstructed from a
  // captured state (forward secrecy for the generator).
  std::array<std::uint8_t, 12> nonce{};
  std::memcpy(nonce.data(), &counter_, sizeof(counter_));
  ++counter_;
  ChaCha20 cipher(key_, nonce);
  cipher.keystream(out);

  std::array<std::uint8_t, 32> next_key;
  cipher.keystream(next_key);
  key_ = next_key;
}

std::vector<std::uint8_t> Drbg::bytes(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  fill(out);
  return out;
}

std::uint64_t Drbg::next_u64() {
  std::array<std::uint8_t, 8> buf;
  fill(buf);
  std::uint64_t v;
  std::memcpy(&v, buf.data(), sizeof(v));
  return v;
}

std::uint64_t Drbg::uniform(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

std::string Drbg::token(std::size_t n) {
  return util::hex_encode(bytes(n));
}

Drbg& system_drbg() {
  thread_local Drbg drbg;
  return drbg;
}

std::vector<std::uint8_t> random_bytes(std::size_t n) {
  return system_drbg().bytes(n);
}

std::string random_token(std::size_t bytes) {
  return system_drbg().token(bytes);
}

}  // namespace clarens::crypto
