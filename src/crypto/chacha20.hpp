// ChaCha20 stream cipher (RFC 8439 core), the symmetric cipher of the
// TLS-like record layer and the engine behind the DRBG.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace clarens::crypto {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;

  ChaCha20(std::span<const std::uint8_t> key,
           std::span<const std::uint8_t> nonce, std::uint32_t counter = 0);

  /// XOR the keystream into `data` in place (encrypt == decrypt).
  void crypt(std::span<std::uint8_t> data);

  /// Convenience: out-of-place transform.
  std::vector<std::uint8_t> crypt_copy(std::span<const std::uint8_t> data);

  /// Produce raw keystream bytes (used by the DRBG).
  void keystream(std::span<std::uint8_t> out);

 private:
  void refill();

  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, 64> block_;
  std::size_t block_pos_ = 64;  // exhausted
};

}  // namespace clarens::crypto
