// Arbitrary-precision unsigned integers, sized for RSA (512-2048 bit).
//
// Representation: little-endian vector of 32-bit limbs with no trailing
// zero limbs (zero is an empty vector). Multiplication is schoolbook;
// modular exponentiation uses Montgomery multiplication (CIOS) for odd
// moduli, which covers every RSA and Miller-Rabin use.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace clarens::crypto {

class Drbg;
class BigInt;

/// Quotient and remainder of BigInt::divmod.
struct BigIntDivMod;

class BigInt {
 public:
  BigInt() = default;
  BigInt(std::uint64_t value);  // NOLINT(google-explicit-constructor)

  /// Big-endian byte import/export (the certificate wire format).
  static BigInt from_bytes(std::span<const std::uint8_t> be_bytes);
  std::vector<std::uint8_t> to_bytes() const;

  /// Hex (most-significant first, lowercase, no prefix; "0" for zero).
  static BigInt from_hex(std::string_view hex);
  std::string to_hex() const;

  /// Uniform random integer with exactly `bits` bits (MSB set) — for
  /// prime candidates — drawn from `rng`.
  static BigInt random_bits(std::size_t bits, Drbg& rng);
  /// Uniform random integer in [0, bound).
  static BigInt random_below(const BigInt& bound, Drbg& rng);

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;

  int compare(const BigInt& other) const;
  bool operator==(const BigInt& o) const { return compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return compare(o) != 0; }
  bool operator<(const BigInt& o) const { return compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return compare(o) >= 0; }

  BigInt operator+(const BigInt& o) const;
  /// Requires *this >= o; throws clarens::Error otherwise.
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  /// Quotient and remainder; throws clarens::Error on division by zero.
  BigIntDivMod divmod(const BigInt& divisor) const;
  BigInt operator/(const BigInt& o) const;
  BigInt operator%(const BigInt& o) const;

  /// (this ^ exponent) mod modulus. Montgomery path for odd moduli,
  /// generic square-and-multiply otherwise. modulus must be > 1.
  BigInt modexp(const BigInt& exponent, const BigInt& modulus) const;

  /// Modular inverse via extended Euclid; throws if gcd(this, m) != 1.
  BigInt modinv(const BigInt& modulus) const;

  static BigInt gcd(BigInt a, BigInt b);

  /// Miller-Rabin with `rounds` random bases.
  bool is_probable_prime(int rounds, Drbg& rng) const;

  /// Generate a random prime with exactly `bits` bits.
  static BigInt generate_prime(std::size_t bits, Drbg& rng);

  std::uint64_t to_u64() const;  // throws if it does not fit

 private:
  void trim();
  static BigInt shift_limbs(const BigInt& x, std::size_t limbs);

  std::vector<std::uint32_t> limbs_;
};

struct BigIntDivMod {
  BigInt quotient;
  BigInt remainder;
};

}  // namespace clarens::crypto
