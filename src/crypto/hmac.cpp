#include "crypto/hmac.hpp"

#include <cstring>

namespace clarens::crypto {

Sha256::Digest hmac_sha256(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> data) {
  constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> k{};
  if (key.size() > kBlock) {
    Sha256::Digest d = Sha256::hash(key);
    std::memcpy(k.data(), d.data(), d.size());
  } else {
    std::memcpy(k.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, kBlock> ipad, opad;
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(std::span<const std::uint8_t>(ipad.data(), ipad.size()));
  inner.update(data);
  Sha256::Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(std::span<const std::uint8_t>(opad.data(), opad.size()));
  outer.update(std::span<const std::uint8_t>(inner_digest.data(),
                                             inner_digest.size()));
  return outer.finish();
}

Sha256::Digest hmac_sha256(std::string_view key, std::string_view data) {
  return hmac_sha256(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(key.data()), key.size()),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

std::vector<std::uint8_t> derive_key(std::span<const std::uint8_t> ikm,
                                     std::string_view label,
                                     std::size_t length) {
  std::vector<std::uint8_t> out;
  out.reserve(length);
  Sha256::Digest t{};
  std::uint8_t counter = 1;
  bool first = true;
  while (out.size() < length) {
    std::vector<std::uint8_t> msg;
    if (!first) msg.insert(msg.end(), t.begin(), t.end());
    msg.insert(msg.end(), label.begin(), label.end());
    msg.push_back(counter);
    t = hmac_sha256(ikm, msg);
    std::size_t take = std::min(t.size(), length - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<long>(take));
    ++counter;
    first = false;
  }
  return out;
}

bool constant_time_equal(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace clarens::crypto
