// SHA-256 (FIPS 180-4), the workhorse digest for certificate signatures,
// HMAC record authentication, session-key derivation and the DRBG.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace clarens::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data) {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
  }

  Digest finish();

  void reset();

  static Digest hash(std::string_view data);
  static Digest hash(std::span<const std::uint8_t> data);
  static std::string hex(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> block_;
  std::size_t block_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace clarens::crypto
