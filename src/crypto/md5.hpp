// MD5 message digest (RFC 1321).
//
// The Clarens file service exposes file.md5() for integrity checking of
// remotely served files; this is a from-scratch implementation with a
// streaming interface so large files hash in bounded memory.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace clarens::crypto {

class Md5 {
 public:
  static constexpr std::size_t kDigestSize = 16;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Md5();

  /// Absorb more input.
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data) {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
  }

  /// Finish and return the digest. The object may be reused after reset().
  Digest finish();

  void reset();

  /// One-shot convenience.
  static Digest hash(std::string_view data);
  /// Lowercase hex digest, the format file.md5() returns.
  static std::string hex(std::string_view data);

  /// Streaming digest of a file's bytes in fixed 256 KiB chunks —
  /// bounded memory however large the file is (the shared checksum path
  /// behind file.md5 / file.checksum / the fsck scrubber / mass-storage
  /// verification). Returns lowercase hex, or nullopt when the file
  /// cannot be opened. `size_out`, when non-null, receives the byte
  /// count hashed.
  static std::optional<std::string> file_hex(
      const std::string& path, std::int64_t* size_out = nullptr);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_;
  std::array<std::uint8_t, 64> block_;
  std::size_t block_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace clarens::crypto
