#include "federation/router.hpp"

#include <map>

#include "util/error.hpp"

namespace clarens::federation {

namespace {

client::ClientOptions pool_base() {
  // Peer traffic inside the cluster is plaintext JSON-RPC: the trust
  // boundary is the node ticket, not the transport, and heads/storage
  // nodes share a network segment in the deployments the paper
  // describes. TLS peers still work (PeerEndpoint::parse flips use_tls).
  client::ClientOptions base;
  base.protocol = rpc::Protocol::JsonRpc;
  return base;
}

}  // namespace

Router::Router(const discovery::DiscoveryServer& discovery,
               RouterOptions options)
    : discovery_(discovery), options_(std::move(options)), pool_(pool_base()) {}

std::string Router::prefix_of(const std::string& path) const {
  return Placement::prefix_of(path, options_.prefix_depth);
}

void Router::refresh_if_stale() {
  {
    util::LockGuard lock(mutex_);
    if (ring_valid_ &&
        refresh_age_.seconds() * 1000 < options_.refresh_ms) {
      return;
    }
  }
  // Gather records outside the lock — find_services takes the discovery
  // cache lock, and holding two unrelated locks across modules is how
  // hierarchies rot.
  std::map<std::string, NodeInfo> by_id;
  for (const auto& record : discovery_.find_services("")) {
    if (record.role != "storage") continue;
    if (!options_.self_url.empty() && record.url == options_.self_url) {
      continue;
    }
    NodeInfo& node = by_id[record.farm + "/" + record.node];
    node.id = record.farm + "/" + record.node;
    node.url = record.url;
    auto capacity = record.metrics.find("capacity");
    node.capacity = capacity != record.metrics.end() ? capacity->second : 1.0;
    for (const auto& prefix : record.prefixes) {
      bool known = false;
      for (const auto& have : node.prefixes) known = known || have == prefix;
      if (!known) node.prefixes.push_back(prefix);
    }
  }
  std::vector<NodeInfo> nodes;
  nodes.reserve(by_id.size());
  for (auto& [_, node] : by_id) nodes.push_back(std::move(node));

  util::LockGuard lock(mutex_);
  placement_.set_nodes(std::move(nodes));
  ring_valid_ = true;
  refresh_age_.reset();
}

std::optional<NodeInfo> Router::route(const std::string& path) {
  refresh_if_stale();
  util::LockGuard lock(mutex_);
  return placement_.owner(prefix_of(path));
}

std::vector<NodeInfo> Router::route_replicas(const std::string& path) {
  refresh_if_stale();
  util::LockGuard lock(mutex_);
  return placement_.owners(prefix_of(path), options_.replicas);
}

std::vector<NodeInfo> Router::route_owners(const std::string& path,
                                           int replicas) {
  refresh_if_stale();
  util::LockGuard lock(mutex_);
  return placement_.owners(prefix_of(path), replicas);
}

std::vector<NodeInfo> Router::storage_nodes() {
  refresh_if_stale();
  util::LockGuard lock(mutex_);
  return placement_.nodes();
}

void Router::invalidate() {
  util::LockGuard lock(mutex_);
  ring_valid_ = false;
}

std::string Router::mint_ticket(const std::string& dn, bool via_proxy,
                                const std::string& proxy_serial,
                                const std::string& scope, bool write) const {
  NodeTicket ticket;
  ticket.dn = dn;
  ticket.via_proxy = via_proxy;
  ticket.proxy_serial = proxy_serial;
  ticket.scope = scope;
  ticket.write = write;
  ticket.expires = util::unix_now() + options_.ticket_ttl_s;
  return ticket.mint(options_.secret);
}

rpc::Value Router::call_on(const NodeInfo& node, const std::string& method,
                           const std::vector<rpc::Value>& params,
                           const std::string& ticket, bool replication) {
  client::PeerPool::Lease lease = pool_.lease(node.url);
  lease->set_header("X-Clarens-Node-Ticket", ticket);
  // Pooled connections keep their headers across leases, so the
  // replication mark must be set (or erased: empty value) on every call.
  lease->set_header("X-Clarens-Replication", replication ? "1" : "");
  try {
    return lease->call(method, params);
  } catch (const SystemError&) {
    lease.discard();
    invalidate();  // membership may have changed under us
    throw;
  }
}

std::vector<client::FanOutReply> Router::fan_out(
    const std::vector<NodeInfo>& nodes, const std::string& method,
    const std::vector<rpc::Value>& params, const std::string& ticket) {
  std::vector<client::FanOutReply> replies(nodes.size());
  std::vector<client::FanOutTarget> plain_targets;
  std::vector<std::size_t> plain_index;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    client::PeerEndpoint endpoint = client::PeerEndpoint::parse(nodes[i].url);
    if (endpoint.tls) {
      // TLS peers can't ride the plaintext epoll loop; pooled sequential
      // call instead.
      try {
        replies[i].result = call_on(nodes[i], method, params, ticket);
        replies[i].ok = true;
      } catch (const std::exception& e) {
        replies[i].error = e.what();
      }
      continue;
    }
    plain_targets.push_back({endpoint.host, endpoint.port, "/clarens"});
    plain_index.push_back(i);
  }
  if (!plain_targets.empty()) {
    std::vector<client::FanOutReply> fanned = client::fan_out(
        plain_targets, method, params,
        {{"X-Clarens-Node-Ticket", ticket}}, rpc::Protocol::JsonRpc);
    for (std::size_t j = 0; j < fanned.size(); ++j) {
      replies[plain_index[j]] = std::move(fanned[j]);
    }
  }
  return replies;
}

}  // namespace clarens::federation
