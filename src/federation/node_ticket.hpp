// Head-minted node tickets (ISSUE 8 tentpole, credential forwarding).
//
// In a federated deployment only the head node runs the full
// authentication stack (sessions, VO membership, ACLs). When it redirects
// a client to a storage node it mints a short-lived capability token —
// "this DN may touch this namespace prefix until <expiry>" — signed with
// the shared cluster secret. The storage node verifies the HMAC and
// trusts the embedded identity instead of re-running authentication;
// proxy_service delegated credentials ride the hop via `via_proxy` and
// `proxy_serial`.
//
// Wire format (header- and URL-safe by construction — both halves are
// lowercase hex):
//
//   cnt1.<hex(json payload)>.<hex(HMAC-SHA256(secret, "cnt1.<hex>"))>
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace clarens::federation {

struct NodeTicket {
  std::string dn;            // authenticated caller identity
  bool via_proxy = false;    // identity came from a stored proxy logon
  std::string proxy_serial;  // serial of the delegated proxy ("" = none)
  std::string scope;         // namespace prefix the ticket covers
  bool write = false;        // authorizes mutations (write/mkdir/rm)
  std::int64_t expires = 0;  // unix seconds; invalid after this instant

  /// Serialize + sign with the shared cluster secret.
  std::string mint(std::string_view secret) const;

  /// Verify signature and expiry (`now` in unix seconds). Returns the
  /// decoded ticket, or nullopt on any mismatch — malformed token, wrong
  /// secret, tampered payload, or expiry in the past. Never throws.
  static std::optional<NodeTicket> verify(std::string_view secret,
                                          std::string_view token,
                                          std::int64_t now);

  /// Does the ticket's scope cover `path`? Scope "/data/run1" covers
  /// "/data/run1" and anything below it; scope "" or "/" covers all.
  bool covers(const std::string& path) const {
    return scope_covers(scope, path);
  }

  /// The component-boundary subtree check behind covers(), usable on a
  /// bare scope string (the dispatcher hands handlers the scope, not the
  /// ticket).
  static bool scope_covers(const std::string& scope, const std::string& path);
};

}  // namespace clarens::federation
