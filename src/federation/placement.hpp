// Consistent-hash placement ring (the EOS mgm/fst idiom adapted to
// Clarens, ISSUE 8 tentpole).
//
// A federated head node owns the *namespace*; the file bytes live on
// storage nodes. This class answers "which storage node owns this part
// of the namespace?" deterministically from the current membership, so
// that every head (and every client that asks one) computes the same
// answer without coordination:
//
//   * Namespace granularity is a *prefix* — the first `depth` path
//     components ("/data/run1/evt.bin" -> "/data/run1"), so files that
//     belong together land together.
//   * Each node is hashed onto a ring many times (virtual nodes,
//     weighted by its advertised capacity); a prefix is owned by the
//     first node clockwise from the prefix's own hash. Membership
//     changes move only the prefixes adjacent to the changed node.
//   * A node may restrict itself to advertised namespace prefixes
//     ("/data", ...); the ring walk skips nodes that do not export the
//     prefix being placed.
//
// Placement is a plain value type: NOT thread-safe. federation::Router
// owns one behind its mutex and rebuilds it from discovery records.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace clarens::federation {

/// One storage node as seen by the ring, distilled from its discovery
/// ServiceRecords.
struct NodeInfo {
  std::string id;        // stable identity: "<farm>/<node>"
  std::string url;       // RPC endpoint, e.g. "http://host:port/"
  double capacity = 1.0; // ring weight (discovery metric "capacity")
  std::vector<std::string> prefixes;  // exported roots ("" / empty = all)

  bool exports(const std::string& prefix) const;
};

class Placement {
 public:
  /// Namespace prefix a path is placed by: the first `depth` components,
  /// normalized ("/data/run1/a/b", 2 -> "/data/run1"; "/data" -> "/data";
  /// "" or "/" -> "/").
  static std::string prefix_of(const std::string& path, int depth = 2);

  /// Replace the membership and rebuild the ring. Nodes with
  /// non-positive capacity are dropped.
  void set_nodes(std::vector<NodeInfo> nodes);

  const std::vector<NodeInfo>& nodes() const { return nodes_; }
  bool empty() const { return ring_.empty(); }

  /// The node owning `prefix`, or nullopt when the ring is empty or no
  /// node exports the prefix.
  std::optional<NodeInfo> owner(const std::string& prefix) const;

  /// Up to `replicas` distinct nodes for `prefix`, primary first —
  /// the ring walk order, so every caller agrees on the fallback chain.
  std::vector<NodeInfo> owners(const std::string& prefix, int replicas) const;

 private:
  struct Point {
    std::uint64_t hash;
    std::size_t node;  // index into nodes_
  };

  std::vector<NodeInfo> nodes_;
  std::vector<Point> ring_;  // sorted by hash
};

}  // namespace clarens::federation
