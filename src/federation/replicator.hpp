// Background repair engine: the head-side daemon that makes the layout
// table true (ISSUE 10 tentpole).
//
// The write path only ever lands bytes on ONE storage node (the client
// is redirected to the primary owner and writes there directly). The
// Replicator is what turns that single copy into `replica_count` copies,
// and what puts the cluster back together after a node dies or a disk
// silently flips a bit:
//
//   * note_write/note_commit/note_remove feed it layout events from the
//     head's method bindings; each enqueues work on an internal queue.
//   * A single worker thread drains the queue through the Router's
//     keep-alive peer pools: copy chunks from a healthy replica
//     (file.read), land them on the target (file.write + file.append),
//     then verify with file.checksum before marking the replica healthy.
//     Failures retry with capped exponential backoff + jitter; after
//     retry_max attempts the task is parked (the periodic
//     under-replication sweep and the fsck scrub pick it up again).
//   * A membership tick watches Router::storage_nodes(): a node gone for
//     longer than the grace period has its replicas marked missing and
//     every affected file re-replicated elsewhere; a (re)joining node
//     triggers an under-replication sweep.
//   * fsck() is the scrub: stream-checksum every replica of every layout
//     (file.checksum on the storage nodes), mark mismatches stale,
//     missing files missing, and repair from a healthy copy. With
//     fsck_interval_ms > 0 the worker runs it periodically.
//   * report_failure()/pick_read_node() close the read loop: a client
//     that could not reach a redirect target reports the node, the head
//     marks it suspect for suspect_ttl_ms, and subsequent reads route to
//     a healthy replica immediately — no failed client reads while
//     discovery catches up with a dead node.
//
// Locking: the rank-20 federation.replicator mutex guards ONLY queue,
// liveness, suspect and stats state. It is never held across a peer
// call, a layout-table access, or any Router method (the router's own
// mutex shares rank 20 — holding both would be a sideways acquisition
// and the rank checker aborts).
//
// Repair authority: copies are made with node tickets minted for the
// layout's recorded writer identity, so the repair engine never holds
// more authority than the write that created the data.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "federation/layout.hpp"
#include "federation/router.hpp"
#include "rpc/value.hpp"
#include "util/sync.hpp"

namespace clarens::federation {

struct ReplicatorOptions {
  /// Default replica_count stamped on new layouts (placement_replicas).
  int replicas = 1;
  /// Attempts per queued task before it is parked.
  int retry_max = 8;
  /// First retry delay; doubles per attempt up to retry_max_ms, with
  /// +-25% jitter so a cluster-wide event does not retry in lockstep.
  int retry_base_ms = 100;
  int retry_max_ms = 5000;
  /// How long a node must be absent from the ring before its replicas
  /// are declared missing and re-replication starts.
  int node_grace_ms = 5000;
  /// How long a client-reported unreachable node is skipped for reads.
  int suspect_ttl_ms = 3000;
  /// Membership/liveness poll cadence of the worker thread.
  int tick_ms = 250;
  /// Cadence of the catch-all under-replication sweep (re-queues parked
  /// work).
  int rescan_ms = 5000;
  /// Periodic fsck scrub cadence; 0 = scrub only on demand.
  int fsck_interval_ms = 0;
  /// Bytes per file.read/file.append hop during a replica copy. Must not
  /// exceed the storage nodes' max_read_chunk.
  std::int64_t copy_chunk = 1 << 20;
};

/// Identity a layout event was performed under (from the RPC context).
struct WriterIdentity {
  std::string dn;
  bool via_proxy = false;
  std::string proxy_serial;
};

/// One fsck pass, summarized (the replica.fsck result).
struct FsckReport {
  std::int64_t files = 0;             ///< layouts examined
  std::int64_t replicas_checked = 0;  ///< remote checksums computed
  std::int64_t mismatched = 0;        ///< replicas marked stale
  std::int64_t missing = 0;           ///< replicas found absent
  std::int64_t unreachable = 0;       ///< nodes that did not answer
  std::int64_t repaired = 0;          ///< replica copies restored
  std::int64_t failed = 0;            ///< files whose repair did not finish
  std::int64_t under_replicated = 0;  ///< files still below target after
};

struct ReplicatorStats {
  std::uint64_t enqueued = 0;
  std::uint64_t completed = 0;
  std::uint64_t retried = 0;
  std::uint64_t parked = 0;
  std::uint64_t copies = 0;
  std::uint64_t bytes_copied = 0;
  std::uint64_t commits = 0;
  std::uint64_t fsck_runs = 0;
  std::uint64_t read_failures_reported = 0;
  std::size_t queue_depth = 0;
  std::size_t suspects = 0;
  std::size_t draining = 0;
};

class Replicator {
 public:
  Replicator(Router& router, LayoutTable& layouts, ReplicatorOptions options);
  /// Joins the worker; safe when start() was never called.
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  void start();
  void stop();

  /// A write/append redirect for `path` was minted toward `primary_id`:
  /// the layout's checksum is unknown until the commit notification (or
  /// a poll) lands, and every other replica is presumed stale.
  void note_write(const std::string& path, const std::string& primary_id,
                  const WriterIdentity& who);

  /// A storage node reported a completed write (replica.committed):
  /// `checksum`/`size` become the confirmed layout truth.
  void note_commit(const std::string& path, const std::string& node_id,
                   const std::string& checksum, std::int64_t size,
                   const WriterIdentity& who);

  /// A remove redirect was minted: purge the remaining replicas and the
  /// layout row (covers every layout under `path` when it is a tree).
  void note_remove(const std::string& path);

  /// A client failed to reach `node_url` on a redirected read; skip the
  /// node for reads until the suspect TTL lapses.
  void report_failure(const std::string& node_url);
  bool is_suspect(const NodeInfo& node) const;

  /// Best node to serve a read of `path`: healthy layout replicas first
  /// (live, non-suspect, non-draining), then ring owners; nullopt when
  /// nothing qualifies (caller serves locally).
  std::optional<NodeInfo> pick_read_node(const std::string& path);

  /// Synchronous repair of one file (replica.repair). A file with no
  /// layout is adopted: storage nodes are probed for the bytes and the
  /// first copy found becomes the adopted truth.
  bool repair_file(const std::string& path, const WriterIdentity& who,
                   std::string* error);

  /// Move every replica off `node_id` (replica.drain): the node stops
  /// being a placement target for managed files and its copies are
  /// purged once re-replicated. Returns the number of files enqueued.
  std::size_t drain(const std::string& node_id);

  /// Scrub every layout under `prefix` ("" = all): verify checksums,
  /// mark divergence, repair from a healthy copy.
  FsckReport fsck(const std::string& prefix);

  ReplicatorStats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// RAII tag for a replica copy in flight toward (path, node): the
  /// storage node notifies the head on every ticketed file.write/append,
  /// so the copy's own chunks arrive as commit notifications carrying
  /// partial-content hashes. note_commit drops notifications for tagged
  /// pairs — otherwise each chunk would read as a client overwrite,
  /// demote the healthy source to stale, and two replicas would re-copy
  /// each other forever.
  struct InflightMark;

  struct Task {
    enum class Kind { Replicate, Purge } kind = Kind::Replicate;
    std::string path;
    int attempt = 0;
    Clock::time_point not_before{};
  };

  void run_worker();
  void execute(Task task);
  void tick();
  void on_node_lost(const std::string& node_id);
  void enqueue_under_replicated();
  void enqueue(Task::Kind kind, const std::string& path, int delay_ms);

  /// Bring `path` up to its layout's replica target. `copies_out`, when
  /// non-null, accumulates the number of replica copies made.
  bool run_replicate(const std::string& path, int* copies_out,
                     std::string* error_out);
  bool run_purge(const std::string& path, std::string* error_out);
  bool copy_replica(const FileLayout& layout, const NodeInfo& source,
                    const NodeInfo& target, std::string* error_out);
  bool adopt_checksum(const std::string& path, FileLayout& layout,
                      const std::vector<NodeInfo>& live);

  /// Ring owners for `path` honoring its layout target and skipping
  /// draining nodes.
  std::vector<NodeInfo> desired_owners(const std::string& path, int want);

  rpc::Value call_node(const NodeInfo& node, const std::string& method,
                       std::vector<rpc::Value> params, const FileLayout& layout,
                       bool write);

  int backoff_ms_locked(int attempt) CLARENS_REQUIRES(mutex_);
  void expire_suspects_locked(Clock::time_point now) CLARENS_REQUIRES(mutex_);

  Router& router_;
  LayoutTable& layouts_;
  ReplicatorOptions options_;

  mutable util::Mutex mutex_{util::LockLevel::kFederationReplicator};
  util::CondVar cv_;
  bool started_ CLARENS_GUARDED_BY(mutex_) = false;
  bool stopping_ CLARENS_GUARDED_BY(mutex_) = false;
  std::deque<Task> queue_ CLARENS_GUARDED_BY(mutex_);
  std::map<std::string, Clock::time_point> last_seen_ CLARENS_GUARDED_BY(
      mutex_);
  std::set<std::string> gone_ CLARENS_GUARDED_BY(mutex_);
  std::map<std::string, Clock::time_point> suspects_ CLARENS_GUARDED_BY(
      mutex_);
  std::set<std::string> draining_ CLARENS_GUARDED_BY(mutex_);
  std::multiset<std::pair<std::string, std::string>> inflight_
      CLARENS_GUARDED_BY(mutex_);
  bool seeded_membership_ CLARENS_GUARDED_BY(mutex_) = false;
  std::uint64_t rand_state_ CLARENS_GUARDED_BY(mutex_) = 0x9e3779b97f4a7c15ull;
  ReplicatorStats stats_ CLARENS_GUARDED_BY(mutex_);

  util::Thread worker_;
};

}  // namespace clarens::federation
