// Per-file replica layouts (ISSUE 10 tentpole).
//
// The head records, for every file written through it, *where the bytes
// are supposed to live and what they are supposed to hash to*: a
// FileLayout names the target replica count, the authoritative checksum
// and size, and one entry per replica with its node id and state. The
// replicator and the fsck scrubber reconcile the cluster against this
// table; read routing prefers replicas the table believes are healthy.
//
// Replica states:
//   pending  — the redirect was minted but no commit has been seen yet
//              (the client writes directly to the storage node, so the
//              head learns of completion via the node's commit
//              notification or by polling file.checksum);
//   healthy  — last verified to match the layout checksum;
//   stale    — bytes exist but hashed differently (corruption, or an
//              interrupted copy); never served, repaired by fsck;
//   missing  — the node lacks the file (new replica target, node
//              returned empty, or NotFound during a scrub).
//
// The checksum is *confirmed* when a storage node reported it at commit
// time; until then it is merely adopted from whatever the primary held
// when the replicator first looked, and fsck treats the primary — not
// the table — as the source of truth (an adopted checksum could predate
// the client's write; overwriting the primary from it would lose data).
//
// Persistence: one db::Store row per file in table "layout" (the head's
// own store), a line-oriented value format parsed leniently so layouts
// survive rolling upgrades. LayoutTable serializes read-modify-writes
// behind a rank-22 mutex (federation.layout); the store itself is
// thread-safe below it.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "db/store.hpp"
#include "util/sync.hpp"

namespace clarens::federation {

enum class ReplicaState { Pending, Healthy, Stale, Missing };

const char* to_string(ReplicaState state);
std::optional<ReplicaState> replica_state_from(const std::string& name);

struct Replica {
  std::string node_id;  // "<farm>/<node>", as the placement ring names it
  ReplicaState state = ReplicaState::Pending;
};

struct FileLayout {
  std::string path;
  int replica_count = 1;
  std::string checksum;      // hex MD5 of the content; "" = not yet known
  bool confirmed = false;    // checksum came from a commit notification
  std::int64_t size = -1;    // -1 = not yet known
  std::int64_t updated_at = 0;  // unix seconds of the last table write
  /// Writer identity: repair copies are made with tickets minted for the
  /// original writer, so the repair engine never holds more authority
  /// than the write that created the data.
  std::string dn;
  bool via_proxy = false;
  std::string proxy_serial;
  std::vector<Replica> replicas;  // primary first

  Replica* find(const std::string& node_id);
  const Replica* find(const std::string& node_id) const;
  /// Mark (adding if absent) `node_id` with `state`.
  void mark(const std::string& node_id, ReplicaState state);
  int count(ReplicaState state) const;

  std::string encode() const;
  static std::optional<FileLayout> decode(const std::string& path,
                                          const std::string& value);
};

class LayoutTable {
 public:
  explicit LayoutTable(db::Store& store);

  std::optional<FileLayout> get(const std::string& path) const;
  void put(const FileLayout& layout);
  void erase(const std::string& path);

  /// Atomically read-modify-write one layout. `fn` receives the current
  /// layout (or a fresh one with just `path` set when absent) and
  /// returns true to store the result, false to leave the table
  /// untouched. The table mutex is held across the store write, never
  /// across anything blocking.
  void update(const std::string& path,
              const std::function<bool(FileLayout&)>& fn);

  /// Paths of every layout under `prefix` ("" = all), sorted.
  std::vector<std::string> paths(const std::string& prefix = "") const;

  std::size_t size() const;

 private:
  db::Store& store_;
  mutable util::Mutex mutex_{util::LockLevel::kFederationLayout};
};

}  // namespace clarens::federation
