#include "federation/replicator.hpp"

#include <algorithm>

#include "rpc/fault.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace clarens::federation {

namespace {

std::chrono::milliseconds ms(int n) { return std::chrono::milliseconds(n); }

/// "/data/run1/evt.bin" -> "/data/run1"; "/evt.bin" -> "/". The ticket
/// scope for a copy: covers the file and the mkdir of its parent.
std::string parent_of(const std::string& path) {
  std::size_t slash = path.rfind('/');
  if (slash == std::string::npos || slash == 0) return "/";
  return path.substr(0, slash);
}

const NodeInfo* live_by_id(const std::vector<NodeInfo>& live,
                           const std::string& id) {
  for (const NodeInfo& node : live) {
    if (node.id == id) return &node;
  }
  return nullptr;
}

/// file.checksum reply -> (md5, size).
std::pair<std::string, std::int64_t> checksum_of(const rpc::Value& reply) {
  return {reply.at("md5").as_string(), reply.at("size").as_int()};
}

}  // namespace

Replicator::Replicator(Router& router, LayoutTable& layouts,
                       ReplicatorOptions options)
    : router_(router), layouts_(layouts), options_(options) {}

Replicator::~Replicator() { stop(); }

void Replicator::start() {
  {
    util::LockGuard lock(mutex_);
    if (started_) return;
    started_ = true;
    stopping_ = false;
  }
  worker_ = util::Thread([this] { run_worker(); });
}

void Replicator::stop() {
  {
    util::LockGuard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  util::LockGuard lock(mutex_);
  started_ = false;
}

// ---------------------------------------------------------------------------
// Event intake (head bindings; no locks held by callers).

void Replicator::note_write(const std::string& path,
                            const std::string& primary_id,
                            const WriterIdentity& who) {
  layouts_.update(path, [&](FileLayout& layout) {
    if (layout.replicas.empty()) layout.replica_count = options_.replicas;
    // The bytes about to land on the primary supersede every other copy;
    // until the commit notification arrives the content hash is unknown.
    layout.checksum.clear();
    layout.confirmed = false;
    layout.size = -1;
    layout.dn = who.dn;
    layout.via_proxy = who.via_proxy;
    layout.proxy_serial = who.proxy_serial;
    for (Replica& replica : layout.replicas) {
      if (replica.state == ReplicaState::Healthy) {
        replica.state = ReplicaState::Stale;
      }
    }
    layout.mark(primary_id, ReplicaState::Pending);
    // Primary first: fsck and checksum adoption treat replicas[0] as the
    // node whose bytes are the truth.
    auto it = std::find_if(
        layout.replicas.begin(), layout.replicas.end(),
        [&](const Replica& r) { return r.node_id == primary_id; });
    std::rotate(layout.replicas.begin(), it, it + 1);
    return true;
  });
  // Give the redirected client a beat to actually write before polling.
  enqueue(Task::Kind::Replicate, path, options_.retry_base_ms);
}

struct Replicator::InflightMark {
  Replicator& self;
  std::pair<std::string, std::string> key;  // (path, target node id)

  InflightMark(Replicator& replicator, const std::string& path,
               const std::string& node_id)
      : self(replicator), key(path, node_id) {
    util::LockGuard lock(self.mutex_);
    self.inflight_.insert(key);
  }
  ~InflightMark() {
    util::LockGuard lock(self.mutex_);
    auto it = self.inflight_.find(key);
    if (it != self.inflight_.end()) self.inflight_.erase(it);
  }
  InflightMark(const InflightMark&) = delete;
  InflightMark& operator=(const InflightMark&) = delete;
};

void Replicator::note_commit(const std::string& path,
                             const std::string& node_id,
                             const std::string& checksum, std::int64_t size,
                             const WriterIdentity& who) {
  {
    // Our own copy landing on (path, node): the chunked write/append
    // notifications carry partial-content hashes, not a client
    // overwrite. copy_replica verifies the finished copy end to end and
    // run_replicate marks it healthy; adopting a chunk hash here would
    // demote the healthy source instead.
    util::LockGuard lock(mutex_);
    if (inflight_.count({path, node_id}) > 0) return;
  }
  layouts_.update(path, [&](FileLayout& layout) {
    if (layout.replicas.empty()) {
      // Direct ticketed write we never saw a redirect for: adopt it.
      layout.replica_count = options_.replicas;
      layout.dn = who.dn;
      layout.via_proxy = who.via_proxy;
      layout.proxy_serial = who.proxy_serial;
    }
    bool changed = layout.checksum != checksum;
    layout.checksum = checksum;
    layout.confirmed = true;
    layout.size = size;
    if (changed) {
      for (Replica& replica : layout.replicas) {
        if (replica.state == ReplicaState::Healthy) {
          replica.state = ReplicaState::Stale;
        }
      }
    }
    layout.mark(node_id, ReplicaState::Healthy);
    auto it = std::find_if(
        layout.replicas.begin(), layout.replicas.end(),
        [&](const Replica& r) { return r.node_id == node_id; });
    std::rotate(layout.replicas.begin(), it, it + 1);
    return true;
  });
  {
    util::LockGuard lock(mutex_);
    ++stats_.commits;
  }
  enqueue(Task::Kind::Replicate, path, 0);
}

void Replicator::note_remove(const std::string& path) {
  // A tree remove takes every layout underneath with it; prefix-scan and
  // filter on the component boundary so "/data/run1" does not purge
  // "/data/run10".
  for (const std::string& managed : layouts_.paths(path)) {
    if (managed != path &&
        (managed.size() <= path.size() || managed[path.size()] != '/')) {
      continue;
    }
    enqueue(Task::Kind::Purge, managed, 0);
  }
}

void Replicator::report_failure(const std::string& node_url) {
  // Resolve the URL to a node id OUTSIDE the replicator lock (the
  // router's mutex shares rank 20).
  std::string node_id;
  for (const NodeInfo& node : router_.storage_nodes()) {
    if (node.url == node_url) {
      node_id = node.id;
      break;
    }
  }
  router_.invalidate();  // membership may have changed under us
  util::LockGuard lock(mutex_);
  Clock::time_point now = Clock::now();
  suspects_[node_url] = now;
  if (!node_id.empty()) suspects_[node_id] = now;
  ++stats_.read_failures_reported;
}

bool Replicator::is_suspect(const NodeInfo& node) const {
  util::LockGuard lock(mutex_);
  Clock::time_point now = Clock::now();
  const_cast<Replicator*>(this)->expire_suspects_locked(now);
  return suspects_.count(node.id) > 0 || suspects_.count(node.url) > 0;
}

std::optional<NodeInfo> Replicator::pick_read_node(const std::string& path) {
  std::optional<FileLayout> layout = layouts_.get(path);
  std::vector<NodeInfo> live = router_.storage_nodes();
  if (live.empty()) return std::nullopt;
  int want = layout ? std::max(1, layout->replica_count) : options_.replicas;

  std::vector<NodeInfo> candidates;
  auto add = [&](const NodeInfo& node) {
    for (const NodeInfo& have : candidates) {
      if (have.id == node.id) return;
    }
    candidates.push_back(node);
  };
  if (layout) {
    for (const Replica& replica : layout->replicas) {
      if (replica.state != ReplicaState::Healthy) continue;
      if (const NodeInfo* node = live_by_id(live, replica.node_id)) {
        add(*node);
      }
    }
  }
  // Ring owners cover unmanaged files and layouts whose replication has
  // not caught up yet (the primary owner holds the only copy).
  for (const NodeInfo& node : router_.route_owners(path, want)) add(node);
  if (candidates.empty()) return std::nullopt;

  util::LockGuard lock(mutex_);
  expire_suspects_locked(Clock::now());
  for (const NodeInfo& node : candidates) {
    if (suspects_.count(node.id) || suspects_.count(node.url)) continue;
    if (draining_.count(node.id)) continue;
    return node;
  }
  // Everything is suspect; better a likely-dead redirect (the client
  // retries through us) than refusing outright.
  return candidates.front();
}

std::size_t Replicator::drain(const std::string& node_id) {
  {
    util::LockGuard lock(mutex_);
    draining_.insert(node_id);
    stats_.draining = draining_.size();
  }
  std::size_t enqueued = 0;
  for (const std::string& path : layouts_.paths("")) {
    std::optional<FileLayout> layout = layouts_.get(path);
    if (layout && layout->find(node_id)) {
      enqueue(Task::Kind::Replicate, path, 0);
      ++enqueued;
    }
  }
  return enqueued;
}

bool Replicator::repair_file(const std::string& path, const WriterIdentity& who,
                             std::string* error) {
  if (!layouts_.get(path)) {
    // Adopt an unmanaged file: probe ring owners first (most likely to
    // hold the bytes), then every other storage node.
    std::vector<NodeInfo> probe =
        router_.route_owners(path, std::max(1, options_.replicas));
    for (const NodeInfo& node : router_.storage_nodes()) {
      if (!live_by_id(probe, node.id)) probe.push_back(node);
    }
    FileLayout seed;
    seed.path = path;
    seed.dn = who.dn;
    seed.via_proxy = who.via_proxy;
    seed.proxy_serial = who.proxy_serial;
    bool adopted = false;
    for (const NodeInfo& node : probe) {
      try {
        auto [sum, size] =
            checksum_of(call_node(node, "file.checksum", {rpc::Value(path)},
                                  seed, /*write=*/false));
        layouts_.update(path, [&](FileLayout& layout) {
          if (!layout.checksum.empty()) return false;  // raced a writer
          layout.replica_count = options_.replicas;
          layout.checksum = sum;
          layout.confirmed = false;
          layout.size = size;
          layout.dn = who.dn;
          layout.via_proxy = who.via_proxy;
          layout.proxy_serial = who.proxy_serial;
          layout.mark(node.id, ReplicaState::Healthy);
          return true;
        });
        adopted = true;
        break;
      } catch (const std::exception&) {
        continue;  // absent here or unreachable: try the next node
      }
    }
    if (!adopted) {
      if (error) *error = "no storage node holds " + path;
      return false;
    }
  }
  return run_replicate(path, nullptr, error);
}

ReplicatorStats Replicator::stats() const {
  util::LockGuard lock(mutex_);
  ReplicatorStats out = stats_;
  out.queue_depth = queue_.size();
  out.suspects = suspects_.size();
  out.draining = draining_.size();
  return out;
}

// ---------------------------------------------------------------------------
// Worker.

void Replicator::enqueue(Task::Kind kind, const std::string& path,
                         int delay_ms) {
  Clock::time_point at = Clock::now() + ms(delay_ms);
  {
    util::LockGuard lock(mutex_);
    for (Task& task : queue_) {
      if (task.kind == kind && task.path == path) {
        // Collapse onto the queued task; a fresh event outranks any
        // backoff it accumulated.
        task.not_before = std::min(task.not_before, at);
        task.attempt = 0;
        cv_.notify_one();
        return;
      }
    }
    queue_.push_back({kind, path, 0, at});
    ++stats_.enqueued;
  }
  cv_.notify_one();
}

void Replicator::run_worker() {
  Clock::time_point next_tick = Clock::now();
  Clock::time_point next_rescan = Clock::now() + ms(options_.rescan_ms);
  Clock::time_point next_fsck = Clock::now() + ms(options_.fsck_interval_ms);
  for (;;) {
    Task task;
    bool have_task = false;
    bool do_tick = false;
    {
      util::UniqueLock lock(mutex_);
      while (!stopping_) {
        Clock::time_point now = Clock::now();
        if (now >= next_tick) {
          do_tick = true;
          break;
        }
        std::size_t due = queue_.size();
        Clock::time_point earliest = next_tick;
        for (std::size_t i = 0; i < queue_.size(); ++i) {
          if (due == queue_.size() && queue_[i].not_before <= now) due = i;
          earliest = std::min(earliest, queue_[i].not_before);
        }
        if (due < queue_.size()) {
          task = std::move(queue_[due]);
          queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(due));
          have_task = true;
          break;
        }
        cv_.wait_until(lock, earliest);
      }
      if (stopping_) return;
    }
    if (do_tick) {
      next_tick = Clock::now() + ms(options_.tick_ms);
      tick();
      Clock::time_point now = Clock::now();
      if (now >= next_rescan) {
        next_rescan = now + ms(options_.rescan_ms);
        enqueue_under_replicated();
      }
      if (options_.fsck_interval_ms > 0 && now >= next_fsck) {
        next_fsck = now + ms(options_.fsck_interval_ms);
        fsck("");
      }
    } else if (have_task) {
      execute(std::move(task));
    }
  }
}

void Replicator::execute(Task task) {
  bool ok = false;
  std::string error;
  try {
    ok = task.kind == Task::Kind::Replicate
             ? run_replicate(task.path, nullptr, &error)
             : run_purge(task.path, &error);
  } catch (const std::exception& e) {
    error = e.what();
  }
  util::LockGuard lock(mutex_);
  if (ok) {
    ++stats_.completed;
    return;
  }
  if (++task.attempt >= options_.retry_max) {
    ++stats_.parked;
    CLARENS_LOG(Warn) << "replicator: parking " << task.path << " after "
                      << task.attempt << " attempts: " << error;
    return;
  }
  ++stats_.retried;
  task.not_before = Clock::now() + ms(backoff_ms_locked(task.attempt));
  // Re-insert through the same dedup as enqueue(): a fresh event for the
  // path may already be queued.
  for (Task& queued : queue_) {
    if (queued.kind == task.kind && queued.path == task.path) return;
  }
  queue_.push_back(std::move(task));
}

int Replicator::backoff_ms_locked(int attempt) {
  std::int64_t delay = options_.retry_base_ms;
  for (int i = 1; i < attempt && delay < options_.retry_max_ms; ++i) {
    delay *= 2;
  }
  delay = std::min<std::int64_t>(delay, options_.retry_max_ms);
  // xorshift64; +-25% jitter so a cluster event does not retry in phase.
  rand_state_ ^= rand_state_ << 13;
  rand_state_ ^= rand_state_ >> 7;
  rand_state_ ^= rand_state_ << 17;
  std::int64_t half_band = delay / 4;
  if (half_band > 0) {
    delay += static_cast<std::int64_t>(rand_state_ % (2 * half_band + 1)) -
             half_band;
  }
  return static_cast<int>(std::max<std::int64_t>(1, delay));
}

void Replicator::expire_suspects_locked(Clock::time_point now) {
  for (auto it = suspects_.begin(); it != suspects_.end();) {
    if (now - it->second >= ms(options_.suspect_ttl_ms)) {
      it = suspects_.erase(it);
    } else {
      ++it;
    }
  }
  stats_.suspects = suspects_.size();
}

void Replicator::tick() {
  std::vector<NodeInfo> live = router_.storage_nodes();
  std::vector<std::string> lost;
  bool rejoined = false;
  {
    util::LockGuard lock(mutex_);
    Clock::time_point now = Clock::now();
    for (const NodeInfo& node : live) {
      auto seen = last_seen_.find(node.id);
      if (seen == last_seen_.end()) {
        // New node: worth a sweep, except on the very first tick (the
        // whole cluster is "new" then).
        rejoined = rejoined || seeded_membership_;
      } else if (gone_.erase(node.id) > 0) {
        rejoined = true;
      }
      last_seen_[node.id] = now;
    }
    for (const auto& [id, seen] : last_seen_) {
      if (live_by_id(live, id)) continue;
      if (gone_.count(id)) continue;
      if (now - seen >= ms(options_.node_grace_ms)) {
        gone_.insert(id);
        lost.push_back(id);
      }
    }
    expire_suspects_locked(now);
    seeded_membership_ = true;
  }
  for (const std::string& id : lost) {
    CLARENS_LOG(Warn) << "replicator: node " << id
                      << " gone past grace period; re-replicating";
    on_node_lost(id);
  }
  if (rejoined) enqueue_under_replicated();
}

void Replicator::on_node_lost(const std::string& node_id) {
  for (const std::string& path : layouts_.paths("")) {
    bool affected = false;
    layouts_.update(path, [&](FileLayout& layout) {
      Replica* replica = layout.find(node_id);
      if (!replica || replica->state == ReplicaState::Missing) return false;
      replica->state = ReplicaState::Missing;
      affected = true;
      return true;
    });
    if (affected) enqueue(Task::Kind::Replicate, path, 0);
  }
}

void Replicator::enqueue_under_replicated() {
  for (const std::string& path : layouts_.paths("")) {
    std::optional<FileLayout> layout = layouts_.get(path);
    if (!layout) continue;
    int healthy = layout->count(ReplicaState::Healthy);
    bool draining_replica = false;
    {
      util::LockGuard lock(mutex_);
      for (const Replica& replica : layout->replicas) {
        draining_replica =
            draining_replica || draining_.count(replica.node_id) > 0;
      }
    }
    if (healthy < std::max(1, layout->replica_count) || draining_replica) {
      enqueue(Task::Kind::Replicate, path, 0);
    }
  }
}

// ---------------------------------------------------------------------------
// Repair primitives. None of these hold mutex_ while talking to peers.

rpc::Value Replicator::call_node(const NodeInfo& node,
                                 const std::string& method,
                                 std::vector<rpc::Value> params,
                                 const FileLayout& layout, bool write) {
  std::string ticket =
      router_.mint_ticket(layout.dn, layout.via_proxy, layout.proxy_serial,
                          parent_of(layout.path), write);
  return router_.call_on(node, method, params, ticket, /*replication=*/true);
}

bool Replicator::adopt_checksum(const std::string& path, FileLayout& layout,
                                const std::vector<NodeInfo>& live) {
  // No commit notification yet: poll the replicas in layout order (the
  // primary first) and adopt the first copy we can actually hash.
  for (const Replica& replica : layout.replicas) {
    const NodeInfo* node = live_by_id(live, replica.node_id);
    if (!node) continue;
    try {
      auto [sum, size] = checksum_of(call_node(
          *node, "file.checksum", {rpc::Value(path)}, layout, false));
      layouts_.update(path, [&](FileLayout& current) {
        if (current.confirmed) return false;  // a commit raced us: keep it
        current.checksum = sum;
        current.confirmed = false;
        current.size = size;
        current.mark(node->id, ReplicaState::Healthy);
        return true;
      });
      if (std::optional<FileLayout> reloaded = layouts_.get(path)) {
        layout = *reloaded;
      }
      return true;
    } catch (const std::exception&) {
      continue;  // not written yet, or node unreachable: try the next
    }
  }
  return false;
}

std::vector<NodeInfo> Replicator::desired_owners(const std::string& path,
                                                 int want) {
  std::set<std::string> draining;
  {
    util::LockGuard lock(mutex_);
    draining = draining_;
  }
  // Ask for extra owners so skipping draining nodes still yields `want`.
  std::vector<NodeInfo> ring =
      router_.route_owners(path, want + static_cast<int>(draining.size()));
  std::vector<NodeInfo> owners;
  for (const NodeInfo& node : ring) {
    if (draining.count(node.id)) continue;
    owners.push_back(node);
    if (static_cast<int>(owners.size()) >= want) break;
  }
  return owners;
}

bool Replicator::run_replicate(const std::string& path, int* copies_out,
                               std::string* error_out) {
  std::optional<FileLayout> layout_opt = layouts_.get(path);
  if (!layout_opt) return true;  // removed since it was queued
  FileLayout layout = *layout_opt;
  std::vector<NodeInfo> live = router_.storage_nodes();

  if (layout.checksum.empty() && !adopt_checksum(path, layout, live)) {
    if (error_out) *error_out = "no replica holds readable bytes yet";
    return false;
  }

  int want = std::max(1, layout.replica_count);
  std::vector<NodeInfo> owners = desired_owners(path, want);
  if (owners.empty()) {
    if (error_out) *error_out = "no live storage nodes";
    return false;
  }

  auto pick_source = [&]() -> const NodeInfo* {
    for (const Replica& replica : layout.replicas) {
      if (replica.state != ReplicaState::Healthy) continue;
      if (const NodeInfo* node = live_by_id(live, replica.node_id)) {
        return node;
      }
    }
    return nullptr;
  };

  bool all_ok = true;
  int healthy_owners = 0;
  for (const NodeInfo& owner : owners) {
    const Replica* have = layout.find(owner.id);
    if (have && have->state == ReplicaState::Healthy) {
      ++healthy_owners;
      continue;
    }
    const NodeInfo* source = pick_source();
    if (!source) {
      if (error_out) *error_out = "no healthy source replica is live";
      all_ok = false;
      break;
    }
    std::string copy_error;
    if (copy_replica(layout, *source, owner, &copy_error)) {
      layouts_.update(path, [&](FileLayout& current) {
        if (current.checksum != layout.checksum) return false;  // superseded
        current.mark(owner.id, ReplicaState::Healthy);
        return true;
      });
      layout.mark(owner.id, ReplicaState::Healthy);
      ++healthy_owners;
      if (copies_out) ++*copies_out;
      util::LockGuard lock(mutex_);
      ++stats_.copies;
      if (layout.size > 0) {
        stats_.bytes_copied += static_cast<std::uint64_t>(layout.size);
      }
    } else {
      if (error_out) *error_out = copy_error;
      all_ok = false;
    }
  }

  bool replicated =
      all_ok && !owners.empty() &&
      healthy_owners >= std::min<int>(want, static_cast<int>(owners.size()));
  if (!replicated) return false;

  // Fully replicated: retire strays — copies on draining nodes (purge
  // the bytes too) and bookkeeping entries that never became real.
  std::set<std::string> draining;
  {
    util::LockGuard lock(mutex_);
    draining = draining_;
  }
  std::vector<std::string> purge;
  for (const Replica& replica : layout.replicas) {
    if (live_by_id(owners, replica.node_id)) continue;
    if (replica.state == ReplicaState::Healthy &&
        draining.count(replica.node_id) && live_by_id(live, replica.node_id)) {
      purge.push_back(replica.node_id);
    }
  }
  for (const std::string& node_id : purge) {
    if (const NodeInfo* node = live_by_id(live, node_id)) {
      try {
        call_node(*node, "file.rm", {rpc::Value(path)}, layout,
                  /*write=*/true);
      } catch (const std::exception&) {
        // Leave the entry; the next drain sweep retries the purge.
        continue;
      }
    }
    layouts_.update(path, [&](FileLayout& current) {
      auto it = std::remove_if(
          current.replicas.begin(), current.replicas.end(),
          [&](const Replica& r) { return r.node_id == node_id; });
      if (it == current.replicas.end()) return false;
      current.replicas.erase(it, current.replicas.end());
      return true;
    });
  }
  // Drop non-owner entries that hold no usable bytes (stale/missing
  // stragglers from old placements); keep extra healthy live copies —
  // they can serve reads and seed repairs.
  layouts_.update(path, [&](FileLayout& current) {
    auto it = std::remove_if(
        current.replicas.begin(), current.replicas.end(), [&](const Replica& r) {
          if (live_by_id(owners, r.node_id)) return false;
          if (r.state == ReplicaState::Healthy &&
              live_by_id(live, r.node_id) && !draining.count(r.node_id)) {
            return false;
          }
          return true;
        });
    if (it == current.replicas.end()) return false;
    current.replicas.erase(it, current.replicas.end());
    return true;
  });
  return true;
}

bool Replicator::copy_replica(const FileLayout& layout, const NodeInfo& source,
                              const NodeInfo& target, std::string* error_out) {
  const std::string& path = layout.path;
  InflightMark inflight(*this, path, target.id);
  try {
    std::string parent = parent_of(path);
    if (parent != "/") {
      try {
        call_node(target, "file.mkdir", {rpc::Value(parent)}, layout,
                  /*write=*/true);
      } catch (const rpc::Fault&) {
        // Parent already exists (or is the virtual root): fine.
      }
    }
    std::int64_t offset = 0;
    bool first = true;
    for (;;) {
      std::int64_t want = options_.copy_chunk;
      if (layout.size >= 0) {
        want = std::min(want, std::max<std::int64_t>(0, layout.size - offset));
      }
      rpc::Value chunk =
          want > 0
              ? call_node(source, "file.read",
                          {rpc::Value(path), rpc::Value(offset),
                           rpc::Value(want)},
                          layout, /*write=*/false)
              : rpc::Value(std::vector<std::uint8_t>{});
      const std::vector<std::uint8_t>& bytes = chunk.as_binary();
      if (first) {
        call_node(target, "file.write", {rpc::Value(path), rpc::Value(bytes)},
                  layout, /*write=*/true);
        first = false;
      } else if (!bytes.empty()) {
        call_node(target, "file.append", {rpc::Value(path), rpc::Value(bytes)},
                  layout, /*write=*/true);
      }
      offset += static_cast<std::int64_t>(bytes.size());
      if (static_cast<std::int64_t>(bytes.size()) < want || want == 0) break;
    }
    // The copy only counts once the target hashes to the layout truth.
    auto [sum, size] = checksum_of(call_node(
        target, "file.checksum", {rpc::Value(path)}, layout, false));
    if (sum != layout.checksum) {
      if (error_out) {
        *error_out = "checksum mismatch after copy to " + target.id;
      }
      return false;
    }
    (void)size;
    return true;
  } catch (const std::exception& e) {
    if (error_out) {
      *error_out = "copy to " + target.id + " failed: " + e.what();
    }
    return false;
  }
}

bool Replicator::run_purge(const std::string& path, std::string* error_out) {
  std::optional<FileLayout> layout = layouts_.get(path);
  if (!layout) return true;
  std::vector<NodeInfo> live = router_.storage_nodes();
  bool all_reached = true;
  for (const Replica& replica : layout->replicas) {
    const NodeInfo* node = live_by_id(live, replica.node_id);
    if (!node) continue;  // gone; nothing left to purge there
    try {
      call_node(*node, "file.rm", {rpc::Value(path)}, *layout, /*write=*/true);
    } catch (const rpc::Fault&) {
      // Already absent (the client's own redirected rm, most likely).
    } catch (const std::exception& e) {
      if (error_out) *error_out = "purge on " + node->id + ": " + e.what();
      all_reached = false;
    }
  }
  if (!all_reached) return false;
  layouts_.erase(path);
  return true;
}

// ---------------------------------------------------------------------------
// Scrub.

FsckReport Replicator::fsck(const std::string& prefix) {
  FsckReport report;
  for (const std::string& path : layouts_.paths(prefix)) {
    std::optional<FileLayout> layout_opt = layouts_.get(path);
    if (!layout_opt) continue;
    FileLayout layout = *layout_opt;
    ++report.files;
    std::vector<NodeInfo> live = router_.storage_nodes();

    // An adopted (unconfirmed) checksum is hearsay: the primary's
    // current bytes outrank it, so re-poll before judging anyone. (A
    // confirmed checksum came from the writing node itself and IS the
    // truth.) If the primary is unreachable the stored hash is the best
    // guess available; secondaries are still verified against it, but
    // the primary is never overwritten from them.
    if (!layout.confirmed && !layout.replicas.empty()) {
      const NodeInfo* primary = live_by_id(live, layout.replicas[0].node_id);
      if (primary) {
        try {
          auto [sum, size] = checksum_of(call_node(
              *primary, "file.checksum", {rpc::Value(path)}, layout, false));
          if (sum != layout.checksum) {
            layouts_.update(path, [&](FileLayout& current) {
              if (current.confirmed) return false;
              current.checksum = sum;
              current.size = size;
              for (Replica& replica : current.replicas) {
                if (replica.state == ReplicaState::Healthy) {
                  replica.state = ReplicaState::Stale;
                }
              }
              current.mark(primary->id, ReplicaState::Healthy);
              return true;
            });
            if (auto reloaded = layouts_.get(path)) layout = *reloaded;
          }
        } catch (const std::exception&) {
          // Leave the adopted hash in place.
        }
      }
    }

    // Verify every replica against the layout truth.
    for (const Replica& replica : layout.replicas) {
      const NodeInfo* node = live_by_id(live, replica.node_id);
      ReplicaState verdict = replica.state;
      if (!node) {
        verdict = ReplicaState::Missing;
        ++report.missing;
      } else {
        try {
          auto [sum, size] = checksum_of(call_node(
              *node, "file.checksum", {rpc::Value(path)}, layout, false));
          (void)size;
          ++report.replicas_checked;
          if (sum == layout.checksum) {
            verdict = ReplicaState::Healthy;
          } else {
            verdict = ReplicaState::Stale;
            ++report.mismatched;
          }
        } catch (const rpc::Fault&) {
          verdict = ReplicaState::Missing;
          ++report.missing;
        } catch (const std::exception&) {
          ++report.unreachable;
          continue;  // unknown, not condemned: keep the recorded state
        }
      }
      if (verdict != replica.state) {
        layouts_.update(path, [&](FileLayout& current) {
          if (current.checksum != layout.checksum) return false;  // raced
          current.mark(replica.node_id, verdict);
          return true;
        });
        layout.mark(replica.node_id, verdict);
      }
    }

    // Repair in place, from whichever replica is still healthy.
    int copies = 0;
    std::string error;
    if (!run_replicate(path, &copies, &error)) {
      ++report.failed;
      CLARENS_LOG(Warn) << "fsck: repair of " << path << " failed: " << error;
    }
    report.repaired += copies;
    if (std::optional<FileLayout> after = layouts_.get(path)) {
      if (after->count(ReplicaState::Healthy) <
          std::max(1, after->replica_count)) {
        ++report.under_replicated;
      }
    }
  }
  util::LockGuard lock(mutex_);
  ++stats_.fsck_runs;
  return report;
}

}  // namespace clarens::federation
