#include "federation/node_ticket.hpp"

#include <span>
#include <vector>

#include "crypto/hmac.hpp"
#include "rpc/jsonrpc.hpp"
#include "rpc/value.hpp"
#include "util/hex.hpp"

namespace clarens::federation {

namespace {

constexpr const char* kVersion = "cnt1";

std::string mac_hex(std::string_view secret, std::string_view signed_part) {
  crypto::Sha256::Digest digest = crypto::hmac_sha256(secret, signed_part);
  return util::hex_encode(std::span<const std::uint8_t>(digest));
}

}  // namespace

std::string NodeTicket::mint(std::string_view secret) const {
  rpc::Value payload = rpc::Value::struct_();
  payload.set("dn", dn);
  payload.set("via_proxy", via_proxy);
  payload.set("proxy_serial", proxy_serial);
  payload.set("scope", scope);
  payload.set("write", write);
  payload.set("exp", expires);
  std::string json = rpc::jsonrpc::serialize_value(payload);
  std::string signed_part =
      std::string(kVersion) + "." +
      util::hex_encode(std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(json.data()), json.size()));
  return signed_part + "." + mac_hex(secret, signed_part);
}

std::optional<NodeTicket> NodeTicket::verify(std::string_view secret,
                                             std::string_view token,
                                             std::int64_t now) {
  std::size_t first = token.find('.');
  if (first == std::string_view::npos) return std::nullopt;
  std::size_t second = token.find('.', first + 1);
  if (second == std::string_view::npos) return std::nullopt;
  if (token.substr(0, first) != kVersion) return std::nullopt;
  std::string_view signed_part = token.substr(0, second);
  std::string_view mac = token.substr(second + 1);
  std::string expect = mac_hex(secret, signed_part);
  // Both sides are our own hex; constant-time compare the MACs anyway
  // (the token comes off the wire).
  if (expect.size() != mac.size() ||
      !crypto::constant_time_equal(
          std::span<const std::uint8_t>(
              reinterpret_cast<const std::uint8_t*>(expect.data()),
              expect.size()),
          std::span<const std::uint8_t>(
              reinterpret_cast<const std::uint8_t*>(mac.data()), mac.size()))) {
    return std::nullopt;
  }
  try {
    std::vector<std::uint8_t> raw =
        util::hex_decode(token.substr(first + 1, second - first - 1));
    rpc::Value payload = rpc::jsonrpc::parse_value(std::string_view(
        reinterpret_cast<const char*>(raw.data()), raw.size()));
    NodeTicket ticket;
    ticket.dn = payload.at("dn").as_string();
    ticket.via_proxy = payload.at("via_proxy").as_bool();
    ticket.proxy_serial = payload.at("proxy_serial").as_string();
    ticket.scope = payload.at("scope").as_string();
    ticket.write = payload.at("write").as_bool();
    ticket.expires = payload.at("exp").as_int();
    if (ticket.expires < now) return std::nullopt;
    return ticket;
  } catch (const std::exception&) {
    // Undecodable payload under a valid MAC (rpc::Fault from at() is a
    // plain runtime_error, hence the wide catch).
    return std::nullopt;
  }
}

bool NodeTicket::scope_covers(const std::string& scope,
                              const std::string& path) {
  if (scope.empty() || scope == "/") return true;
  if (path.compare(0, scope.size(), scope) != 0) return false;
  return path.size() == scope.size() || path[scope.size()] == '/';
}

}  // namespace clarens::federation
