// Head-side routing: discovery records -> placement ring -> node calls
// (ISSUE 8 tentpole).
//
// The Router is what a head node consults on every federated file call:
// it keeps a Placement ring built from the discovery server's live
// records (role == "storage", deduped per node, capacity-weighted),
// refreshing it at a bounded cadence so membership changes — a node
// SIGKILLed, a node joining — are picked up within about a refresh
// period + discovery TTL. It also mints node tickets and carries the
// peer-to-peer call plumbing (keep-alive pool, epoll fan-out).
//
// Layering: federation sits on client/discovery/rpc/crypto/util and must
// never include core/ (enforced by clarens_lint's layering rule) — the
// head's method bindings in core depend on Router, not the reverse.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "client/async_client.hpp"
#include "client/peer_pool.hpp"
#include "discovery/discovery_server.hpp"
#include "federation/node_ticket.hpp"
#include "federation/placement.hpp"
#include "rpc/value.hpp"
#include "util/clock.hpp"
#include "util/sync.hpp"

namespace clarens::federation {

struct RouterOptions {
  /// This head's own URL — excluded from the ring even if a colocated
  /// storage role publishes under the same farm/node.
  std::string self_url;
  /// Shared cluster secret for node tickets.
  std::string secret;
  /// Distinct nodes per prefix (primary + fallbacks).
  int replicas = 1;
  /// Minimum interval between ring rebuilds from discovery.
  int refresh_ms = 1000;
  /// Node ticket lifetime.
  int ticket_ttl_s = 300;
  /// Path components per placement prefix.
  int prefix_depth = 2;
};

class Router {
 public:
  Router(const discovery::DiscoveryServer& discovery, RouterOptions options);

  const RouterOptions& options() const { return options_; }

  /// Placement prefix for `path` under the configured depth.
  std::string prefix_of(const std::string& path) const;

  /// Primary owner of `path`'s prefix, or nullopt when no storage node
  /// is live (caller falls back to serving locally).
  std::optional<NodeInfo> route(const std::string& path);

  /// Primary + fallback owners of `path`'s prefix (ring walk order).
  std::vector<NodeInfo> route_replicas(const std::string& path);

  /// Same, but with an explicit owner count — the replicator places each
  /// file by its layout's own replica_count, which may differ from the
  /// configured default.
  std::vector<NodeInfo> route_owners(const std::string& path, int replicas);

  /// All live storage nodes (fan-out targets), ring membership order.
  std::vector<NodeInfo> storage_nodes();

  /// Mint a ticket letting `dn` act on `scope` on a storage node.
  /// `write` grants mutations (file.write/mkdir/rm); read redirects and
  /// metadata proxying mint read-only tickets so a leaked/logged token
  /// can never authorize a change.
  std::string mint_ticket(const std::string& dn, bool via_proxy,
                          const std::string& proxy_serial,
                          const std::string& scope, bool write) const;

  /// Proxy one call to `node` over the keep-alive pool, presenting
  /// `ticket`. Throws what the remote call throws (rpc::Fault,
  /// SystemError);
  /// a transport failure retires the pooled connection.
  /// `replication` marks the call as repair-engine traffic
  /// (X-Clarens-Replication): the target skips its commit notification,
  /// which would otherwise call back into the head synchronously.
  rpc::Value call_on(const NodeInfo& node, const std::string& method,
                     const std::vector<rpc::Value>& params,
                     const std::string& ticket, bool replication = false);

  /// Issue the same call on every node concurrently (plaintext targets
  /// go through one epoll loop; TLS targets fall back to sequential
  /// pooled calls). Result order matches `nodes`.
  std::vector<client::FanOutReply> fan_out(
      const std::vector<NodeInfo>& nodes, const std::string& method,
      const std::vector<rpc::Value>& params, const std::string& ticket);

  /// Force a ring rebuild on the next query (tests; also used after a
  /// node call fails so the next route sees fresh membership sooner).
  void invalidate();

 private:
  void refresh_if_stale();

  const discovery::DiscoveryServer& discovery_;
  RouterOptions options_;
  client::PeerPool pool_;

  mutable util::Mutex mutex_{util::LockLevel::kFederationRouter};
  Placement placement_ CLARENS_GUARDED_BY(mutex_);
  bool ring_valid_ CLARENS_GUARDED_BY(mutex_) = false;
  util::Stopwatch refresh_age_ CLARENS_GUARDED_BY(mutex_);
};

}  // namespace clarens::federation
