#include "federation/layout.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "util/clock.hpp"

namespace clarens::federation {

namespace {

constexpr const char* kTable = "layout";

}  // namespace

const char* to_string(ReplicaState state) {
  switch (state) {
    case ReplicaState::Pending:
      return "pending";
    case ReplicaState::Healthy:
      return "healthy";
    case ReplicaState::Stale:
      return "stale";
    case ReplicaState::Missing:
      return "missing";
  }
  return "pending";
}

std::optional<ReplicaState> replica_state_from(const std::string& name) {
  if (name == "pending") return ReplicaState::Pending;
  if (name == "healthy") return ReplicaState::Healthy;
  if (name == "stale") return ReplicaState::Stale;
  if (name == "missing") return ReplicaState::Missing;
  return std::nullopt;
}

Replica* FileLayout::find(const std::string& node_id) {
  for (Replica& replica : replicas) {
    if (replica.node_id == node_id) return &replica;
  }
  return nullptr;
}

const Replica* FileLayout::find(const std::string& node_id) const {
  return const_cast<FileLayout*>(this)->find(node_id);
}

void FileLayout::mark(const std::string& node_id, ReplicaState state) {
  if (Replica* replica = find(node_id)) {
    replica->state = state;
    return;
  }
  replicas.push_back({node_id, state});
}

int FileLayout::count(ReplicaState state) const {
  int n = 0;
  for (const Replica& replica : replicas) n += replica.state == state;
  return n;
}

// Line-oriented value format (the path is the row key, never encoded):
//
//   v1
//   replica_count 2
//   checksum d41d8cd98f00b204e9800998ecf8427e confirmed
//   size 4096
//   updated_at 1754700000
//   dn /O=testgrid.org/OU=People/CN=Alice Able
//   via_proxy 1 SERIAL
//   replica healthy fedfarm/fst1
//
// Node ids and DNs go last on their line, so embedded spaces survive.
// Unknown lines are skipped on decode (forward compatibility).
std::string FileLayout::encode() const {
  std::ostringstream out;
  out << "v1\n";
  out << "replica_count " << replica_count << "\n";
  if (!checksum.empty()) {
    out << "checksum " << checksum << (confirmed ? " confirmed" : " adopted")
        << "\n";
  }
  out << "size " << size << "\n";
  out << "updated_at " << updated_at << "\n";
  if (!dn.empty()) out << "dn " << dn << "\n";
  if (via_proxy) out << "via_proxy " << proxy_serial << "\n";
  for (const Replica& replica : replicas) {
    out << "replica " << to_string(replica.state) << " " << replica.node_id
        << "\n";
  }
  return out.str();
}

std::optional<FileLayout> FileLayout::decode(const std::string& path,
                                             const std::string& value) {
  FileLayout layout;
  layout.path = path;
  std::istringstream in(value);
  std::string line;
  if (!std::getline(in, line) || line != "v1") return std::nullopt;
  while (std::getline(in, line)) {
    std::size_t space = line.find(' ');
    std::string key = line.substr(0, space);
    std::string rest =
        space == std::string::npos ? std::string() : line.substr(space + 1);
    if (key == "replica_count") {
      layout.replica_count = std::max(1, std::atoi(rest.c_str()));
    } else if (key == "checksum") {
      std::size_t flag = rest.find(' ');
      layout.checksum = rest.substr(0, flag);
      layout.confirmed =
          flag != std::string::npos && rest.substr(flag + 1) == "confirmed";
    } else if (key == "size") {
      layout.size = std::atoll(rest.c_str());
    } else if (key == "updated_at") {
      layout.updated_at = std::atoll(rest.c_str());
    } else if (key == "dn") {
      layout.dn = rest;
    } else if (key == "via_proxy") {
      layout.via_proxy = true;
      layout.proxy_serial = rest;
    } else if (key == "replica") {
      std::size_t id = rest.find(' ');
      if (id == std::string::npos) continue;
      auto state = replica_state_from(rest.substr(0, id));
      if (!state) continue;
      layout.replicas.push_back({rest.substr(id + 1), *state});
    }
    // Unknown keys: skip.
  }
  return layout;
}

LayoutTable::LayoutTable(db::Store& store) : store_(store) {}

std::optional<FileLayout> LayoutTable::get(const std::string& path) const {
  // Point reads are snapshot reads in the store; no table lock needed.
  std::optional<std::string> value = store_.get(kTable, path);
  if (!value) return std::nullopt;
  return FileLayout::decode(path, *value);
}

void LayoutTable::put(const FileLayout& layout) {
  // lock-order: federation.layout -> db.store.shard
  util::LockGuard lock(mutex_);
  FileLayout stamped = layout;
  stamped.updated_at = util::unix_now();
  store_.put(kTable, stamped.path, stamped.encode());
}

void LayoutTable::erase(const std::string& path) {
  util::LockGuard lock(mutex_);
  store_.erase(kTable, path);
}

void LayoutTable::update(const std::string& path,
                         const std::function<bool(FileLayout&)>& fn) {
  // lock-order: federation.layout -> db.store.shard
  util::LockGuard lock(mutex_);
  FileLayout layout;
  if (std::optional<std::string> value = store_.get(kTable, path)) {
    if (std::optional<FileLayout> decoded = FileLayout::decode(path, *value)) {
      layout = std::move(*decoded);
    }
  }
  layout.path = path;
  if (!fn(layout)) return;
  layout.updated_at = util::unix_now();
  store_.put(kTable, path, layout.encode());
}

std::vector<std::string> LayoutTable::paths(const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto& [key, _] : store_.scan_prefix(kTable, prefix)) {
    out.push_back(key);
  }
  return out;
}

std::size_t LayoutTable::size() const { return store_.size(kTable); }

}  // namespace clarens::federation
