#include "federation/placement.hpp"

#include <algorithm>
#include <cmath>

namespace clarens::federation {

namespace {

// FNV-1a 64-bit: tiny, dependency-free, and plenty uniform for ring
// point spreading (this is placement, not integrity — tickets use HMAC).
std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

// Virtual nodes per unit of capacity. High enough that a 2-node ring
// splits the namespace roughly evenly; low enough that rebuilds stay
// trivially cheap at realistic fleet sizes.
constexpr int kPointsPerCapacity = 64;

}  // namespace

bool NodeInfo::exports(const std::string& prefix) const {
  if (prefixes.empty()) return true;  // no restriction advertised
  for (const auto& root : prefixes) {
    if (root.empty() || root == "/") return true;
    if (prefix.compare(0, root.size(), root) == 0 &&
        (prefix.size() == root.size() || prefix[root.size()] == '/')) {
      return true;
    }
  }
  return false;
}

std::string Placement::prefix_of(const std::string& path, int depth) {
  std::string out;
  int components = 0;
  std::size_t i = 0;
  while (i < path.size() && components < depth) {
    // Skip separator runs, then take one component.
    while (i < path.size() && path[i] == '/') ++i;
    if (i >= path.size()) break;
    std::size_t start = i;
    while (i < path.size() && path[i] != '/') ++i;
    out += '/';
    out.append(path, start, i - start);
    ++components;
  }
  return out.empty() ? "/" : out;
}

void Placement::set_nodes(std::vector<NodeInfo> nodes) {
  nodes_.clear();
  ring_.clear();
  for (auto& node : nodes) {
    if (node.capacity <= 0) continue;
    nodes_.push_back(std::move(node));
  }
  for (std::size_t index = 0; index < nodes_.size(); ++index) {
    int points = std::max(
        1, static_cast<int>(std::lround(nodes_[index].capacity *
                                        kPointsPerCapacity)));
    for (int p = 0; p < points; ++p) {
      ring_.push_back(
          {fnv1a(nodes_[index].id + "#" + std::to_string(p)), index});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.node < b.node;
  });
}

std::optional<NodeInfo> Placement::owner(const std::string& prefix) const {
  std::vector<NodeInfo> one = owners(prefix, 1);
  if (one.empty()) return std::nullopt;
  return one.front();
}

std::vector<NodeInfo> Placement::owners(const std::string& prefix,
                                        int replicas) const {
  std::vector<NodeInfo> out;
  if (ring_.empty() || replicas <= 0) return out;
  std::uint64_t target = fnv1a(prefix);
  std::size_t start = std::lower_bound(ring_.begin(), ring_.end(), target,
                                       [](const Point& p, std::uint64_t h) {
                                         return p.hash < h;
                                       }) -
                      ring_.begin();
  std::vector<bool> taken(nodes_.size(), false);
  for (std::size_t step = 0;
       step < ring_.size() && out.size() < static_cast<std::size_t>(replicas);
       ++step) {
    const Point& point = ring_[(start + step) % ring_.size()];
    if (taken[point.node]) continue;
    taken[point.node] = true;
    if (!nodes_[point.node].exports(prefix)) continue;
    out.push_back(nodes_[point.node]);
  }
  return out;
}

}  // namespace clarens::federation
