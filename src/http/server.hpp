// HTTP server: accept loop + connection threads with keep-alive.
//
// The paper's PClarens runs inside Apache's prefork worker pool; this
// server mirrors that shape with a thread per connection (the paper's
// Figure-4 workload is 1-79 long-lived keep-alive connections). TLS is
// applied per-connection when configured, reproducing the architecture's
// "SSL handled transparently by the web server" property: handlers never
// see encryption. GET file responses use sendfile(2) on plaintext
// connections, the zero-copy path §2.3 credits for file throughput.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "http/message.hpp"
#include "net/socket.hpp"
#include "tls/channel.hpp"

namespace clarens::http {

/// What the transport layer knows about the requester.
struct Peer {
  /// TLS-verified identity, when the connection is encrypted and the
  /// client presented a certificate.
  std::optional<pki::TrustStore::Result> tls_identity;
  std::vector<pki::Certificate> chain;
  bool encrypted = false;
};

using HandlerFn = std::function<Response(const Request&, const Peer&)>;

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral
  std::optional<tls::TlsConfig> tls;
  std::size_t max_connections = 1024;
};

class Server {
 public:
  Server(ServerOptions options, HandlerFn handler);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and spawn the acceptor. Throws on bind failure.
  void start();

  /// Close the listener and all live connections; join every thread.
  void stop();

  std::uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }

  /// Served request count (all connections).
  std::uint64_t requests_served() const { return requests_.load(); }

 private:
  void accept_loop();
  void serve_connection(net::TcpConnection tcp);
  void send_response(net::Stream& stream, net::TcpConnection* plain_tcp,
                     const Request& request, Response response);

  ServerOptions options_;
  HandlerFn handler_;
  net::TcpListener listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread acceptor_;

  // Connection threads run detached; stop() waits for live_count_ to
  // reach zero after shutting down every live socket.
  std::mutex threads_mutex_;
  std::condition_variable all_done_;
  std::set<int> live_fds_;
  std::size_t live_count_ = 0;
};

}  // namespace clarens::http
