// HTTP server: epoll reactor front end + worker-pool request execution.
//
// The paper's PClarens runs inside Apache's event-driven front end with a
// pool of worker processes; this server mirrors that shape directly:
//
//   * a single reactor thread owns the listening socket and every
//     plaintext connection fd (non-blocking), accepts, reads, and feeds
//     the incremental request parser;
//   * complete requests are queued per connection and drained — in
//     order — by `util::ThreadPool` workers that run the handler and
//     write the response (keep-alive pipelining preserved);
//   * connection teardown is always executed on the reactor thread
//     (workers schedule it via Reactor::post), so an fd is never closed
//     while the reactor might still act on it;
//   * TLS connections keep a blocking per-connection model (the record
//     layer reads synchronously) on *tracked* threads that stop() joins —
//     nothing is detached anywhere.
//
// GET file responses use sendfile(2) on plaintext connections, the
// zero-copy path §2.3 credits for file throughput.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "http/message.hpp"
#include "http/parser.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"
#include "tls/channel.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace clarens::http {

/// What the transport layer knows about the requester.
struct Peer {
  /// TLS-verified identity, when the connection is encrypted and the
  /// client presented a certificate.
  std::optional<pki::TrustStore::Result> tls_identity;
  std::vector<pki::Certificate> chain;
  bool encrypted = false;
};

using HandlerFn = std::function<Response(const Request&, const Peer&)>;

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral
  std::optional<tls::TlsConfig> tls;
  std::size_t max_connections = 1024;
  /// Handler worker threads; 0 = hardware_concurrency - 1 (min 1), the
  /// reactor thread taking the remaining core.
  std::size_t worker_threads = 0;
};

class Server {
 public:
  Server(ServerOptions options, HandlerFn handler);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and spawn the reactor + worker pool. Throws on bind
  /// failure.
  void start();

  /// Close the listener and all live connections; join every thread.
  void stop();

  std::uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }

  /// Served request count (all connections).
  std::uint64_t requests_served() const { return requests_.load(); }

 private:
  /// Per-connection state (plaintext reactor path). The reactor thread
  /// owns `tcp` reads and `parser`; at most one worker at a time owns
  /// writes while draining `ready`.
  struct Conn {
    explicit Conn(net::TcpConnection c) : tcp(std::move(c)) {}
    net::TcpConnection tcp;
    Peer peer;
    RequestParser parser;  // reactor thread only

    util::Mutex mutex;
    /// Parsed, not yet handled.
    std::deque<Request> ready CLARENS_GUARDED_BY(mutex);
    /// A worker is draining `ready`.
    bool busy CLARENS_GUARDED_BY(mutex) = false;
    /// Drain then close; no new dispatch.
    bool closing CLARENS_GUARDED_BY(mutex) = false;
    /// Malformed stream: answer 400 when drained.
    bool bad CLARENS_GUARDED_BY(mutex) = false;
  };

  // Reactor-thread handlers.
  void on_acceptable();
  void admit(net::TcpConnection tcp);
  void on_readable(const std::shared_ptr<Conn>& conn);
  void close_conn(const std::shared_ptr<Conn>& conn);  // reactor thread only

  // Worker-side.
  void worker_drain(std::shared_ptr<Conn> conn);
  void request_close(const std::shared_ptr<Conn>& conn);

  // Tracked blocking threads for TLS connections.
  void spawn_tls(net::TcpConnection tcp);
  void serve_tls(net::TcpConnection tcp);
  void join_tls_threads();

  std::size_t live_connections();
  void send_response(net::Stream& stream, net::TcpConnection* plain_tcp,
                     const Request& request, Response response);

  ServerOptions options_;
  HandlerFn handler_;
  net::TcpListener listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};

  std::unique_ptr<net::Reactor> reactor_;
  util::Thread reactor_thread_;
  std::unique_ptr<util::ThreadPool> pool_;

  util::Mutex conns_mutex_;
  std::unordered_map<int, std::shared_ptr<Conn>> conns_
      CLARENS_GUARDED_BY(conns_mutex_);

  // TLS connection threads, keyed by a sequence id. A finishing thread
  // parks its handle in tls_finished_ (a thread cannot join itself);
  // the acceptor and stop() reap those.
  util::Mutex tls_mutex_;
  util::CondVar tls_done_;
  std::map<std::uint64_t, util::Thread> tls_threads_
      CLARENS_GUARDED_BY(tls_mutex_);
  std::vector<util::Thread> tls_finished_ CLARENS_GUARDED_BY(tls_mutex_);
  std::set<int> tls_fds_ CLARENS_GUARDED_BY(tls_mutex_);
  std::uint64_t tls_seq_ CLARENS_GUARDED_BY(tls_mutex_) = 0;
};

}  // namespace clarens::http
