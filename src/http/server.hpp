// HTTP server: epoll reactor front end + adaptive inline / worker-pool
// request execution.
//
// The paper's PClarens runs inside Apache's event-driven front end with a
// pool of worker processes; this server mirrors that shape and then
// erases the mandatory handoff for the paper's hot path (small
// authenticated RPCs, §4):
//
//   * a single reactor thread owns the listening socket and every
//     connection fd (non-blocking, plaintext and TLS alike), accepts,
//     reads, and feeds the incremental request parser; TLS bytes pass
//     through a per-connection sans-IO tls::Engine, so handshakes and
//     record decryption are driven by readiness events, never by a
//     blocking read;
//   * complete requests are queued per connection. Small, measured-cheap
//     requests are executed *inline* on the reactor thread (adaptive
//     dispatch: per-method EWMA cost, body-size cap, per-epoll-tick
//     budget), with responses written non-blockingly — any unsent tail
//     parks in a per-connection outbox drained on EPOLLOUT. Everything
//     else spills to the `util::ThreadPool` workers that run the handler
//     and write the response blockingly (keep-alive pipelining and
//     per-connection ordering preserved in both modes, and across mode
//     switches);
//   * connection teardown is always executed on the reactor thread
//     (workers schedule it via Reactor::post), so an fd is never closed
//     while the reactor might still act on it.
//
// File-region responses use sendfile(2) on plaintext connections — the
// zero-copy path §2.3 credits for file throughput — optionally wrapped in
// an RPC envelope (FileRegion::head/tail) so large file.read responses
// bypass the serialization arena entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "http/message.hpp"
#include "http/parser.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"
#include "tls/channel.hpp"
#include "tls/engine.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace clarens::http {

/// What the transport layer knows about the requester.
struct Peer {
  /// TLS-verified identity, when the connection is encrypted and the
  /// client presented a certificate.
  std::optional<pki::TrustStore::Result> tls_identity;
  std::vector<pki::Certificate> chain;
  bool encrypted = false;
};

using HandlerFn = std::function<Response(const Request&, const Peer&)>;

/// Inline-dispatch policy (DESIGN.md "Dispatch policy"). The reactor runs
/// a request inline iff cost_key() returns a non-empty key, the body is
/// small, the key's EWMA cost is under the limit, and this epoll tick's
/// inline budget is not exhausted; otherwise the request spills to the
/// worker pool.
struct DispatchOptions {
  /// Master switch; off = every request takes the worker handoff (the
  /// pre-inline behavior, kept benchmarkable as the ablation).
  bool inline_dispatch = true;
  /// Requests with bodies above this never run inline.
  std::size_t inline_max_body = 16 * 1024;
  /// A method whose EWMA cost exceeds this spills (microseconds).
  double inline_cost_limit_us = 500.0;
  /// Total inline handler time allowed per epoll tick (microseconds);
  /// past it the remainder of the tick spills, bounding how long the
  /// reactor defers its read loop.
  double inline_budget_us = 5000.0;
  /// Maps a parsed request to its cost-tracking key ("" = never inline).
  /// Unset = inline dispatch disabled: only the embedder knows which
  /// handlers are safe to run on the reactor thread.
  std::function<std::string(const Request&)> cost_key;
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral
  std::optional<tls::TlsConfig> tls;
  std::size_t max_connections = 1024;
  /// Handler worker threads; 0 = hardware_concurrency - 1 (min 1), the
  /// reactor thread taking the remaining core.
  std::size_t worker_threads = 0;
  DispatchOptions dispatch;
};

class Server {
 public:
  Server(ServerOptions options, HandlerFn handler);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and spawn the reactor + worker pool. Throws on bind
  /// failure.
  void start();

  /// Close the listener and all live connections; join every thread.
  void stop();

  std::uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }

  /// Served request count (all connections).
  std::uint64_t requests_served() const { return requests_.load(); }

  /// Requests executed inline on the reactor thread (subset of
  /// requests_served; dispatch-policy telemetry).
  std::uint64_t requests_inlined() const { return inlined_.load(); }

 private:
  /// Per-connection state. The reactor thread owns `tcp` reads, `parser`,
  /// the TLS engine's read side, and `outbox`; at most one drainer at a
  /// time (a worker, or the reactor running inline) owns writes and the
  /// front of `ready` — the `busy` flag is that ownership token. While
  /// `outbox` is non-empty the reactor owns the write side exclusively
  /// and no drainer is dispatched.
  struct Conn {
    explicit Conn(net::TcpConnection c) : tcp(std::move(c)) {}
    net::TcpConnection tcp;
    Peer peer;
    /// Reactor thread only: latches the one-shot post-handshake peer
    /// assignment. Field values can't serve as the guard — an anonymous
    /// TLS peer leaves them empty, and re-assigning on every readable
    /// event would race a worker reading `peer` in the handler.
    bool peer_set = false;
    RequestParser parser;  // reactor thread only
    /// Sans-IO TLS state machine; null on plaintext connections. Read
    /// side (feed/read_plain) is reactor-only; write side (encrypt) is
    /// serialized by the drainer token.
    std::unique_ptr<tls::Engine> engine;
    /// Unwritten response/handshake bytes (reactor thread only).
    util::Buffer outbox;
    bool want_write = false;  // reactor thread only: EPOLLOUT armed

    /// A parsed request plus its dispatch-cost key (computed once on the
    /// reactor at parse time; "" = never inline).
    struct Pending {
      Request request;
      std::string cost_key;
    };

    util::Mutex mutex{util::LockLevel::kHttpConn};
    /// Parsed, not yet handled.
    std::deque<Pending> ready CLARENS_GUARDED_BY(mutex);
    /// A drainer (worker or inline) owns writes + the ready front.
    bool busy CLARENS_GUARDED_BY(mutex) = false;
    /// Drain then close; no new dispatch.
    bool closing CLARENS_GUARDED_BY(mutex) = false;
    /// Malformed stream: answer 400 when drained.
    bool bad CLARENS_GUARDED_BY(mutex) = false;
  };

  // Reactor-thread handlers.
  void on_acceptable();
  void admit(net::TcpConnection tcp);
  void on_event(const std::shared_ptr<Conn>& conn, std::uint32_t ready);
  void on_readable(const std::shared_ptr<Conn>& conn);
  void maybe_dispatch(const std::shared_ptr<Conn>& conn);
  void inline_drain(const std::shared_ptr<Conn>& conn);
  void flush_outbox(const std::shared_ptr<Conn>& conn);
  void arm_write(Conn& conn, bool on);
  /// Non-blocking write; parks the unsent tail in the outbox and arms
  /// EPOLLOUT. Returns true when fully written.
  bool write_or_park(const std::shared_ptr<Conn>& conn,
                     std::span<const std::string_view> chunks);
  void close_conn(const std::shared_ptr<Conn>& conn);  // reactor thread only

  // Dispatch-policy state.
  bool inline_eligible(const Conn::Pending& item) CLARENS_EXCLUDES(costs_mutex_);
  double cost_of(const std::string& key) CLARENS_EXCLUDES(costs_mutex_);
  void note_cost(const std::string& key, double us) CLARENS_EXCLUDES(costs_mutex_);

  // Worker-side.
  void worker_drain(std::shared_ptr<Conn> conn);
  void worker_send(Conn& conn, const Request& request, Response response);
  void request_close(const std::shared_ptr<Conn>& conn);

  Response run_handler(const Request& request, const Peer& peer,
                       const std::string& cost_key);
  std::size_t live_connections();
  void send_response(net::Stream& stream, net::TcpConnection* plain_tcp,
                     const Request& request, Response response);

  ServerOptions options_;
  HandlerFn handler_;
  net::TcpListener listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> inlined_{0};

  std::unique_ptr<net::Reactor> reactor_;
  util::Thread reactor_thread_;
  std::unique_ptr<util::ThreadPool> pool_;

  util::Mutex conns_mutex_{util::LockLevel::kHttpServerConns};
  std::unordered_map<int, std::shared_ptr<Conn>> conns_
      CLARENS_GUARDED_BY(conns_mutex_);

  // Per-method EWMA handler cost in microseconds, updated after every
  // execution (inline and worker alike).
  util::Mutex costs_mutex_{util::LockLevel::kHttpServerCosts};
  std::unordered_map<std::string, double> costs_ CLARENS_GUARDED_BY(costs_mutex_);

  // Inline budget accounting; reactor thread only.
  std::uint64_t budget_tick_ = 0;
  double budget_spent_us_ = 0;
};

}  // namespace clarens::http
