#include "http/message.hpp"

#include "util/buffer.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace clarens::http {

void Headers::add(std::string name, std::string value) {
  items_.emplace_back(std::move(name), std::move(value));
}

void Headers::set(std::string name, std::string value) {
  for (auto& [n, v] : items_) {
    if (util::iequals(n, name)) {
      v = std::move(value);
      return;
    }
  }
  add(std::move(name), std::move(value));
}

const std::string* Headers::find(std::string_view name) const {
  for (const auto& [n, v] : items_) {
    if (util::iequals(n, name)) return &v;
  }
  return nullptr;
}

std::optional<std::string> Headers::get(std::string_view name) const {
  const std::string* v = find(name);
  if (v) return *v;
  return std::nullopt;
}

std::string Headers::get_or(std::string_view name, std::string fallback) const {
  const std::string* v = find(name);
  return v ? *v : std::move(fallback);
}

std::string Request::path() const {
  std::size_t q = target.find('?');
  return url_decode(q == std::string::npos ? target : target.substr(0, q));
}

std::map<std::string, std::string> Request::query() const {
  std::map<std::string, std::string> out;
  std::size_t q = target.find('?');
  if (q == std::string::npos) return out;
  for (const auto& pair : util::split(target.substr(q + 1), '&')) {
    if (pair.empty()) continue;
    std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      out[url_decode(pair)] = "";
    } else {
      out[url_decode(pair.substr(0, eq))] = url_decode(pair.substr(eq + 1));
    }
  }
  return out;
}

bool Request::keep_alive() const {
  const std::string* conn = headers.find("Connection");
  if (version == "HTTP/1.0") {
    return conn && util::iequals(util::trim(*conn), "keep-alive");
  }
  return !(conn && util::iequals(util::trim(*conn), "close"));
}

std::string Request::serialize() const {
  std::string out;
  out.reserve(method.size() + target.size() + version.size() + 64 +
              body.size());
  out.append(method).push_back(' ');
  out.append(target).push_back(' ');
  out.append(version).append("\r\n");
  bool has_length = false;
  for (const auto& [name, value] : headers.all()) {
    out.append(name).append(": ").append(value).append("\r\n");
    if (util::iequals(name, "Content-Length")) has_length = true;
  }
  if (!has_length && (!body.empty() || method == "POST" || method == "PUT")) {
    out.append("Content-Length: ");
    out.append(std::to_string(body.size()));
    out.append("\r\n");
  }
  out.append("\r\n").append(body);
  return out;
}

Response Response::make(int status, std::string body, std::string content_type) {
  Response r;
  r.status = status;
  r.reason = reason_phrase(status);
  r.body = std::move(body);
  r.headers.set("Content-Type", std::move(content_type));
  return r;
}

void Response::serialize_head_into(util::Buffer& out,
                                   std::size_t content_length) const {
  out.write("HTTP/1.1 ");
  util::append_int(out, status);
  out.write_u8(' ');
  out.write(reason.empty() ? std::string_view(reason_phrase(status))
                           : std::string_view(reason));
  out.write("\r\n");
  bool has_length = false;
  for (const auto& [name, value] : headers.all()) {
    out.write(name);
    out.write(": ");
    out.write(value);
    out.write("\r\n");
    if (util::iequals(name, "Content-Length")) has_length = true;
  }
  if (!has_length) {
    out.write("Content-Length: ");
    util::append_uint(out, content_length);
    out.write("\r\n");
  }
  out.write("\r\n");
}

std::string Response::serialize_head(std::size_t content_length) const {
  util::Buffer out;
  serialize_head_into(out, content_length);
  return std::string(out.peek_view());
}

std::string Response::serialize() const {
  util::Buffer out;
  std::string_view b = effective_body();
  serialize_head_into(out, b.size());
  out.write(b);
  return std::string(out.peek_view());
}

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 206: return "Partial Content";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 304: return "Not Modified";
    case 307: return "Temporary Redirect";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '%') {
      if (i + 2 >= s.size()) throw ParseError("truncated %-escape in URL");
      auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        if (h >= 'A' && h <= 'F') return h - 'A' + 10;
        return -1;
      };
      int hi = hex(s[i + 1]);
      int lo = hex(s[i + 2]);
      if (hi < 0 || lo < 0) throw ParseError("invalid %-escape in URL");
      out.push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
    } else if (c == '+') {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string url_encode(std::string_view s) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (std::isalnum(c) || c == '-' || c == '_' || c == '.' || c == '~' ||
        c == '/') {
      out.push_back(static_cast<char>(c));
    } else {
      out.push_back('%');
      out.push_back(hex[c >> 4]);
      out.push_back(hex[c & 0xf]);
    }
  }
  return out;
}

}  // namespace clarens::http
