// Incremental HTTP/1.1 parsers for requests (server side) and responses
// (client side). Fed arbitrary byte chunks; yields complete messages.
// Supports Content-Length and chunked transfer-encoding bodies.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "http/message.hpp"
#include "util/buffer.hpp"

namespace clarens::http {

class RequestParser {
 public:
  /// Append raw bytes from the connection.
  void feed(std::string_view data);
  void feed(std::span<const std::uint8_t> data) {
    feed(std::string_view(reinterpret_cast<const char*>(data.data()),
                          data.size()));
  }

  /// Returns the next complete request, or nullopt if more bytes are
  /// needed. Throws clarens::ParseError on malformed input.
  std::optional<Request> next();

  /// Bytes currently buffered (for overload protection).
  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

class ResponseParser {
 public:
  void feed(std::string_view data);
  void feed(std::span<const std::uint8_t> data) {
    feed(std::string_view(reinterpret_cast<const char*>(data.data()),
                          data.size()));
  }

  std::optional<Response> next();

  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Shared body-framing logic exposed for tests: given headers and the
/// byte stream after the blank line, determine whether a complete body is
/// present. Returns consumed byte count and the decoded body, or nullopt.
std::optional<std::pair<std::size_t, std::string>> extract_body(
    const Headers& headers, std::string_view rest);

}  // namespace clarens::http
