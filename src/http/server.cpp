#include "http/server.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstring>

#include "http/parser.hpp"
#include "util/buffer.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace clarens::http {

namespace {

/// Worker-side stream over an established TLS connection: encrypts through
/// the connection's engine (write side — the drainer token serializes it
/// against other writers) and writes blockingly on the raw socket. Reads
/// stay on the reactor, which owns the engine's read side.
struct TlsStream final : net::Stream {
  net::TcpConnection& tcp;
  tls::Engine& engine;

  TlsStream(net::TcpConnection& t, tls::Engine& e) : tcp(t), engine(e) {}

  std::size_t read(std::span<std::uint8_t>) override {
    throw SystemError("TLS reads are reactor-side");
  }

  using net::Stream::write_all;

  void write_all(std::span<const std::uint8_t> data) override {
    thread_local util::Buffer wire;
    wire.clear();
    engine.encrypt(data, wire);
    tcp.write_all(wire.peek());
  }

  void write_vec(std::span<const std::string_view> chunks) override {
    thread_local util::Buffer wire;
    wire.clear();
    engine.encrypt(chunks, wire);
    tcp.write_all(wire.peek());
  }

  void close() override { tcp.close(); }
};

std::span<const std::uint8_t> as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

}  // namespace

Server::Server(ServerOptions options, HandlerFn handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.exchange(true)) return;
  listener_ = net::TcpListener::listen(options_.port, options_.host);
  port_ = listener_.local_port();
  listener_.set_nonblocking(true);

  std::size_t workers = options_.worker_threads;
  if (workers == 0) {
    // The reactor thread occupies one core; handlers get the rest. On a
    // single-core host one worker minimizes scheduler churn between the
    // reader and the handler.
    std::size_t cores = util::Thread::hardware_concurrency();
    workers = cores > 1 ? cores - 1 : 1;
  }
  pool_ = std::make_unique<util::ThreadPool>(workers);
  reactor_ = std::make_unique<net::Reactor>();
  reactor_->add(listener_.fd(), net::Reactor::kRead,
                [this](std::uint32_t) { on_acceptable(); });
  reactor_thread_ = util::Thread([this] { reactor_->run(); });
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  // Quiesce the reactor first: once it has joined, no thread reads
  // connection fds, runs inline handlers, or dispatches new work, so the
  // teardown below cannot race with accepts or parser feeds.
  listener_.shutdown();
  reactor_->stop();
  // clarens-lint: allow(reactor-blocking): stop() runs on a control thread, never on the reactor it is joining.
  if (reactor_thread_.joinable()) reactor_thread_.join();

  // Signal every live connection (shutdown leaves the fds intact for
  // workers mid-write; their next write fails and they bail out).
  {
    util::LockGuard lock(conns_mutex_);
    for (auto& [fd, conn] : conns_) ::shutdown(fd, SHUT_RDWR);
  }

  // Join handler workers (their posted close tasks are now no-ops).
  pool_.reset();

  // Nothing references the connections any more; RAII closes the fds.
  {
    util::LockGuard lock(conns_mutex_);
    conns_.clear();
  }
  reactor_.reset();
  listener_.close();
}

std::size_t Server::live_connections() {
  util::LockGuard lock(conns_mutex_);
  return conns_.size();
}

void Server::on_acceptable() {
  for (;;) {
    std::optional<net::TcpConnection> tcp;
    try {
      tcp = listener_.accept_nonblocking();
    } catch (const SystemError&) {
      return;  // listener shut down, or transient accept failure
    }
    if (!tcp) return;
    if (!running_.load()) return;

    if (live_connections() >= options_.max_connections) {
      // Shed load. Best-effort and non-blocking, with no server lock
      // held: a slow or hostile client must not stall the accept path.
      try {
        tcp->set_nonblocking(true);
        std::string wire = Response::make(503, "server busy\n").serialize();
        tcp->write_some(as_bytes(wire));
      } catch (const SystemError&) {
      }
      continue;  // destructor closes; client sees 503 then EOF
    }
    admit(std::move(*tcp));
  }
}

void Server::admit(net::TcpConnection tcp) {
  try {
    tcp.set_nonblocking(true);
    // RPC traffic is small request/response pairs; never batch them
    // behind Nagle while the peer sits on a delayed ACK.
    tcp.set_nodelay(true);
  } catch (const SystemError&) {
    return;
  }
  auto conn = std::make_shared<Conn>(std::move(tcp));
  if (options_.tls) {
    // TLS connections join the reactor like plaintext ones: the sans-IO
    // engine turns readable ciphertext into handshake flights and
    // plaintext without ever blocking for the peer.
    conn->engine =
        std::make_unique<tls::Engine>(tls::Engine::Role::Server, *options_.tls);
    conn->peer.encrypted = true;
  }
  int fd = conn->tcp.fd();
  {
    util::LockGuard lock(conns_mutex_);
    conns_[fd] = conn;
  }
  reactor_->add(fd, net::Reactor::kRead, [this, conn](std::uint32_t ready) {
    on_event(conn, ready);
  });
}

void Server::on_event(const std::shared_ptr<Conn>& conn, std::uint32_t ready) {
  if (!conn->tcp.valid()) return;
  if (ready & net::Reactor::kWrite) flush_outbox(conn);
  if (!conn->tcp.valid()) return;  // flush may have sealed the connection
  if (ready & net::Reactor::kRead) on_readable(conn);
}

void Server::on_readable(const std::shared_ptr<Conn>& conn) {
  bool eof = false;
  bool bad = false;
  std::vector<Conn::Pending> parsed;
  std::array<std::uint8_t, 64 * 1024> chunk;

  auto drain_parser = [&] {
    std::optional<Request> request;
    while ((request = conn->parser.next())) {
      Conn::Pending item;
      const DispatchOptions& d = options_.dispatch;
      if (d.inline_dispatch && d.cost_key &&
          request->body.size() <= d.inline_max_body) {
        item.cost_key = d.cost_key(*request);
      }
      item.request = std::move(*request);
      parsed.push_back(std::move(item));
    }
  };

  for (;;) {
    std::optional<std::size_t> n;
    try {
      n = conn->tcp.read_some(chunk);
    } catch (const SystemError&) {
      eof = true;
      break;
    }
    if (!n) break;  // drained the socket buffer
    if (*n == 0) {
      eof = true;  // client closed
      break;
    }

    if (conn->engine) {
      thread_local util::Buffer flight;
      flight.clear();
      try {
        conn->engine->feed(std::span<const std::uint8_t>(chunk.data(), *n),
                           flight);
      } catch (const Error& e) {
        CLARENS_LOG(Debug) << "TLS failure: " << e.what();
        if (flight.readable() != 0) {
          // Best-effort alert; never park bytes on a dead handshake. A
          // busy drainer may be mid-write on this fd, and parked outbox
          // bytes must go first — in either case just drop the alert
          // (the connection is being torn down anyway) rather than
          // interleave with another writer.
          bool drainer_active;
          {
            util::LockGuard lock(conn->mutex);
            drainer_active = conn->busy;
          }
          if (!drainer_active && conn->outbox.readable() == 0) {
            try {
              conn->tcp.write_some(flight.peek());
            } catch (const SystemError&) {
            }
          }
        }
        eof = true;
        break;
      }
      if (flight.readable() != 0) {
        std::array<std::string_view, 1> out = {flight.peek_view()};
        try {
          write_or_park(conn, out);
        } catch (const SystemError&) {
          eof = true;
          break;
        }
      }
      if (conn->engine->handshake_done() && !conn->peer_set) {
        conn->peer_set = true;
        conn->peer.tls_identity = conn->engine->peer();
        conn->peer.chain = conn->engine->peer_chain();
      }
      try {
        while (conn->engine->plain_available() > 0) {
          std::size_t m = conn->engine->read_plain(chunk);
          conn->parser.feed(std::span<const std::uint8_t>(chunk.data(), m));
          drain_parser();
        }
      } catch (const ParseError&) {
        bad = true;
        eof = true;
        break;
      }
    } else {
      try {
        conn->parser.feed(std::span<const std::uint8_t>(chunk.data(), *n));
        drain_parser();
      } catch (const ParseError&) {
        bad = true;
        eof = true;
        break;
      }
    }
    // A short read almost always means the buffer is drained; skip the
    // EAGAIN probe. Level-triggered epoll re-reports any residue.
    if (*n < chunk.size()) break;
  }

  {
    util::LockGuard lock(conn->mutex);
    if (conn->closing) return;  // a worker already sealed this connection
    for (auto& item : parsed) conn->ready.push_back(std::move(item));
    if (bad) conn->bad = true;
    if (eof) conn->closing = true;
  }
  maybe_dispatch(conn);
}

void Server::maybe_dispatch(const std::shared_ptr<Conn>& conn) {
  // While the outbox holds bytes the reactor owns the write side; any
  // dispatched drainer would interleave its response with the parked one.
  if (conn->outbox.readable() != 0) return;
  bool run_inline = false;
  bool spill = false;
  bool close_now = false;
  bool bad = false;
  {
    util::LockGuard lock(conn->mutex);
    if (conn->busy) return;
    if (!conn->ready.empty()) {
      conn->busy = true;
      if (inline_eligible(conn->ready.front())) {
        run_inline = true;
      } else {
        spill = true;
      }
    } else if (conn->closing) {
      close_now = true;
      bad = conn->bad;
    }
  }
  if (run_inline) {
    inline_drain(conn);
  } else if (spill) {
    pool_->submit([this, conn] { worker_drain(conn); });
  } else if (close_now) {
    if (bad) {
      // Malformed stream and no drainer to answer: refuse best-effort,
      // never blocking the reactor on a full socket buffer.
      std::string wire = Response::make(400, "malformed request\n").serialize();
      try {
        if (conn->engine && conn->engine->handshake_done()) {
          thread_local util::Buffer enc;
          enc.clear();
          conn->engine->encrypt(as_bytes(wire), enc);
          conn->tcp.write_some(enc.peek());
        } else if (!conn->engine) {
          conn->tcp.write_some(as_bytes(wire));
        }
      } catch (const SystemError&) {
      }
    }
    close_conn(conn);
  }
}

bool Server::inline_eligible(const Conn::Pending& item) {
  const DispatchOptions& d = options_.dispatch;
  if (!d.inline_dispatch || item.cost_key.empty()) return false;
  std::uint64_t tick = reactor_->ticks();
  if (tick != budget_tick_) {
    budget_tick_ = tick;
    budget_spent_us_ = 0;
  }
  if (budget_spent_us_ >= d.inline_budget_us) return false;
  return cost_of(item.cost_key) < d.inline_cost_limit_us;
}

double Server::cost_of(const std::string& key) {
  util::LockGuard lock(costs_mutex_);
  auto it = costs_.find(key);
  // Unknown methods get the optimistic answer: run inline once, measure,
  // and let the EWMA evict them if they turn out slow.
  return it == costs_.end() ? 0.0 : it->second;
}

void Server::note_cost(const std::string& key, double us) {
  util::LockGuard lock(costs_mutex_);
  double& cost = costs_[key];
  cost = cost == 0.0 ? us : 0.7 * cost + 0.3 * us;
}

Response Server::run_handler(const Request& request, const Peer& peer,
                             const std::string& cost_key) {
  util::Stopwatch watch;
  Response response;
  try {
    response = handler_(request, peer);
  } catch (const std::exception& e) {
    response = Response::make(500, std::string(e.what()) + "\n");
  }
  if (!cost_key.empty()) note_cost(cost_key, watch.seconds() * 1e6);
  return response;
}

void Server::inline_drain(const std::shared_ptr<Conn>& conn) {
  // Reactor thread, holding the drainer token (busy). Each iteration runs
  // one measured-cheap request and writes its response without blocking;
  // the first ineligible request (or an exhausted tick budget) hands the
  // token to a pool worker so the reactor returns to its fds.
  for (;;) {
    Conn::Pending item;
    {
      util::LockGuard lock(conn->mutex);
      if (conn->ready.empty()) {
        conn->busy = false;
        if (!conn->closing) return;
        break;  // drained a closing connection: finish below
      }
      if (!inline_eligible(conn->ready.front())) {
        // Spill the rest of the queue; the token transfers to the worker.
        pool_->submit([this, conn] { worker_drain(conn); });
        return;
      }
      item = std::move(conn->ready.front());
      conn->ready.pop_front();
    }

    requests_.fetch_add(1, std::memory_order_relaxed);
    inlined_.fetch_add(1, std::memory_order_relaxed);
    util::Stopwatch watch;
    Response response = run_handler(item.request, conn->peer, item.cost_key);
    budget_spent_us_ += watch.seconds() * 1e6;

    bool close_after = false;
    if (!item.request.keep_alive()) {
      response.headers.set("Connection", "close");
      close_after = true;
    }

    if (response.file) {
      // File regions stream with blocking I/O (sendfile or the TLS read
      // loop) — hand both the send and the drainer token to a worker.
      pool_->submit([this, conn, request = std::move(item.request),
                     response = std::move(response), close_after]() mutable {
        bool ok = true;
        try {
          worker_send(*conn, request, std::move(response));
        } catch (const SystemError&) {
          ok = false;
        }
        if (!ok || close_after) {
          util::LockGuard lock(conn->mutex);
          conn->closing = true;
          conn->ready.clear();
        }
        worker_drain(conn);
      });
      return;
    }

    std::string_view body = response.effective_body();
    thread_local util::Buffer head;
    head.clear();
    response.serialize_head_into(head, body.size());
    std::array<std::string_view, 2> chunks = {
        head.peek_view(),
        item.request.method != "HEAD" ? body : std::string_view()};
    bool flushed = false;
    bool broken = false;
    try {
      if (conn->engine) {
        thread_local util::Buffer enc;
        enc.clear();
        conn->engine->encrypt(chunks, enc);
        std::array<std::string_view, 1> wire = {enc.peek_view()};
        flushed = write_or_park(conn, wire);
      } else {
        flushed = write_or_park(conn, chunks);
      }
    } catch (const SystemError&) {
      broken = true;  // peer vanished mid-write
    }

    if (broken || (close_after && flushed)) {
      {
        util::LockGuard lock(conn->mutex);
        conn->closing = true;
        conn->ready.clear();
        conn->busy = false;
      }
      close_conn(conn);
      return;
    }
    if (!flushed) {
      // The tail is parked in the outbox; the reactor resumes this queue
      // (or closes, if close_after marked it) once EPOLLOUT drains it.
      util::LockGuard lock(conn->mutex);
      if (close_after) {
        conn->closing = true;
        conn->ready.clear();
      }
      conn->busy = false;
      return;
    }
  }

  // Drained a closing connection on the reactor: best-effort 400 if the
  // stream was malformed, then tear down. busy is already released, but
  // no other dispatcher can run — we are the dispatcher.
  bool bad;
  {
    util::LockGuard lock(conn->mutex);
    bad = conn->bad;
  }
  if (bad) {
    std::string wire = Response::make(400, "malformed request\n").serialize();
    try {
      if (conn->engine && conn->engine->handshake_done()) {
        thread_local util::Buffer enc;
        enc.clear();
        conn->engine->encrypt(as_bytes(wire), enc);
        conn->tcp.write_some(enc.peek());
      } else if (!conn->engine) {
        conn->tcp.write_some(as_bytes(wire));
      }
    } catch (const SystemError&) {
    }
  }
  close_conn(conn);
}

bool Server::write_or_park(const std::shared_ptr<Conn>& conn,
                           std::span<const std::string_view> chunks) {
  std::size_t written = 0;
  if (conn->outbox.readable() == 0) {
    written = conn->tcp.writev_some(chunks);
  }
  // Park whatever the socket did not take (everything, if earlier bytes
  // are already parked — ordering is the outbox's whole point).
  std::size_t skip = written;
  bool parked = false;
  for (std::string_view chunk : chunks) {
    if (skip >= chunk.size()) {
      skip -= chunk.size();
      continue;
    }
    conn->outbox.write(chunk.substr(skip));
    skip = 0;
    parked = true;
  }
  if (!parked) return true;
  arm_write(*conn, true);
  return false;
}

void Server::flush_outbox(const std::shared_ptr<Conn>& conn) {
  if (!conn->tcp.valid()) return;
  if (conn->outbox.readable() != 0) {
    try {
      std::size_t n = conn->tcp.write_some(conn->outbox.peek());
      conn->outbox.consume(n);
    } catch (const SystemError&) {
      {
        util::LockGuard lock(conn->mutex);
        conn->closing = true;
        conn->ready.clear();
      }
      close_conn(conn);
      return;
    }
  }
  if (conn->outbox.readable() == 0) {
    conn->outbox.compact();
    arm_write(*conn, false);
    maybe_dispatch(conn);  // resume the queue (or close) now that writes drained
  }
}

void Server::arm_write(Conn& conn, bool on) {
  if (conn.want_write == on) return;
  if (!reactor_->watching(conn.tcp.fd())) return;
  std::uint32_t interest = net::Reactor::kRead;
  if (on) interest |= net::Reactor::kWrite;
  reactor_->modify(conn.tcp.fd(), interest);
  conn.want_write = on;
}

void Server::worker_drain(std::shared_ptr<Conn> conn) {
  for (;;) {
    Conn::Pending item;
    {
      util::LockGuard lock(conn->mutex);
      if (conn->ready.empty()) {
        if (!conn->closing) {
          conn->busy = false;  // reactor will redispatch on new input
          return;
        }
        break;  // drained a closing connection: finish below
      }
      item = std::move(conn->ready.front());
      conn->ready.pop_front();
    }

    requests_.fetch_add(1, std::memory_order_relaxed);
    Response response = run_handler(item.request, conn->peer, item.cost_key);
    bool close_after = false;
    if (!item.request.keep_alive()) {
      response.headers.set("Connection", "close");
      close_after = true;
    }
    try {
      worker_send(*conn, item.request, std::move(response));
    } catch (const SystemError&) {
      close_after = true;  // peer vanished mid-write
    }
    if (close_after) {
      util::LockGuard lock(conn->mutex);
      conn->closing = true;
      conn->ready.clear();
      break;
    }
  }

  // Finishing a closing connection. `busy` is still held, so the
  // reactor cannot close the fd underneath the 400 write below.
  bool bad;
  {
    util::LockGuard lock(conn->mutex);
    bad = conn->bad;
  }
  if (bad) {
    std::string wire = Response::make(400, "malformed request\n").serialize();
    try {
      if (conn->engine && conn->engine->handshake_done()) {
        TlsStream stream(conn->tcp, *conn->engine);
        stream.write_all(wire);
      } else if (!conn->engine) {
        conn->tcp.write_all(wire);
      }
    } catch (const SystemError&) {
    }
  }
  {
    util::LockGuard lock(conn->mutex);
    conn->busy = false;
  }
  request_close(conn);
}

void Server::worker_send(Conn& conn, const Request& request,
                         Response response) {
  if (conn.engine) {
    TlsStream stream(conn.tcp, *conn.engine);
    send_response(stream, nullptr, request, std::move(response));
  } else {
    send_response(conn.tcp, &conn.tcp, request, std::move(response));
  }
}

void Server::request_close(const std::shared_ptr<Conn>& conn) {
  reactor_->post([this, conn] { close_conn(conn); });
}

void Server::close_conn(const std::shared_ptr<Conn>& conn) {
  if (!conn->tcp.valid()) return;  // already torn down (idempotent)
  int fd = conn->tcp.fd();
  if (reactor_->watching(fd)) reactor_->remove(fd);
  conn->tcp.close();
  util::LockGuard lock(conns_mutex_);
  conns_.erase(fd);
}

void Server::send_response(net::Stream& stream, net::TcpConnection* plain_tcp,
                           const Request& request, Response response) {
  if (!response.file) {
    // Head into a per-worker scratch buffer, then one vectored write of
    // {head, body}: the body (often a view of the handler's serialization
    // arena) is never copied into a combined wire string.
    std::string_view body = response.effective_body();
    thread_local util::Buffer head;
    head.clear();
    response.serialize_head_into(head, body.size());
    std::array<std::string_view, 2> chunks = {
        head.peek_view(),
        request.method != "HEAD" ? body : std::string_view()};
    stream.write_vec(chunks);
    return;
  }

  const auto& region = *response.file;
  int fd = ::open(region.path.c_str(), O_RDONLY);
  if (fd < 0) {
    stream.write_all(Response::make(404, "file not found\n").serialize());
    return;
  }

  if (!region.head.empty()) {
    // RPC envelope mode (zero-copy file.read): the handler already
    // resolved and clamped the region, and head/tail carry the serialized
    // response framing around the raw bytes. The body bypasses the
    // serialization arena entirely — sendfile(2) on plaintext.
    std::size_t length = static_cast<std::size_t>(region.length);
    std::string_view body_head = region.head;
    std::string_view body_tail = region.tail;
    thread_local util::Buffer http_head;
    http_head.clear();
    response.serialize_head_into(http_head,
                                 body_head.size() + length + body_tail.size());
    std::array<std::string_view, 2> opening = {http_head.peek_view(),
                                               body_head};
    stream.write_vec(opening);
    std::size_t sent = 0;
    if (plain_tcp) {
      sent = plain_tcp->sendfile(fd, region.offset, length);
    } else {
      if (::lseek(fd, region.offset, SEEK_SET) < 0) {
        ::close(fd);
        throw SystemError("lseek failed");
      }
      std::array<std::uint8_t, 64 * 1024> buf;
      while (sent < length) {
        ssize_t n = ::read(fd, buf.data(), std::min(length - sent, buf.size()));
        if (n <= 0) break;
        stream.write_all(std::span<const std::uint8_t>(
            buf.data(), static_cast<std::size_t>(n)));
        sent += static_cast<std::size_t>(n);
      }
    }
    ::close(fd);
    if (sent != length) {
      // The Content-Length is committed; a short file (truncated between
      // resolve and send) can only be answered by killing the connection.
      throw SystemError("file region shrank mid-response");
    }
    stream.write_all(body_tail);
    return;
  }

  // GET-style file responses: stat, fix up length, stream.
  struct stat st{};
  if (fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    stream.write_all(Response::make(404, "not a regular file\n").serialize());
    return;
  }
  std::int64_t offset = region.offset;
  std::int64_t length = region.length;
  if (offset > st.st_size) offset = st.st_size;
  if (length < 0 || offset + length > st.st_size) length = st.st_size - offset;

  stream.write_all(response.serialize_head(static_cast<std::size_t>(length)));
  if (request.method == "HEAD" || length == 0) {
    ::close(fd);
    return;
  }

  if (plain_tcp) {
    // Zero-copy path.
    plain_tcp->sendfile(fd, offset, static_cast<std::size_t>(length));
  } else {
    // Encrypted: read and push through the record layer.
    if (::lseek(fd, offset, SEEK_SET) < 0) {
      ::close(fd);
      throw SystemError("lseek failed");
    }
    std::array<std::uint8_t, 64 * 1024> buf;
    std::int64_t remaining = length;
    while (remaining > 0) {
      ssize_t n = ::read(fd, buf.data(),
                         std::min<std::int64_t>(remaining,
                                                static_cast<std::int64_t>(buf.size())));
      if (n <= 0) break;
      stream.write_all(std::span<const std::uint8_t>(buf.data(),
                                                     static_cast<std::size_t>(n)));
      remaining -= n;
    }
  }
  ::close(fd);
}

}  // namespace clarens::http
