#include "http/server.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cstring>

#include "http/parser.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace clarens::http {

Server::Server(ServerOptions options, HandlerFn handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.exchange(true)) return;
  listener_ = net::TcpListener::listen(options_.port, options_.host);
  port_ = listener_.local_port();
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  // Signal first (shutdown leaves the fds intact for threads still using
  // them), reclaim descriptors only after every thread has left.
  listener_.shutdown();
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::unique_lock<std::mutex> lock(threads_mutex_);
    all_done_.wait(lock, [this] { return live_count_ == 0; });
  }
  listener_.close();
}

void Server::accept_loop() {
  while (running_.load()) {
    net::TcpConnection tcp;
    try {
      tcp = listener_.accept();
    } catch (const SystemError&) {
      // Listener closed by stop(), or transient accept failure.
      if (!running_.load()) return;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(threads_mutex_);
      if (live_count_ >= options_.max_connections) {
        // Shed load: refuse politely and move on.
        try {
          tcp.write_all(Response::make(503, "server busy\n").serialize());
        } catch (const SystemError&) {
        }
        continue;
      }
      ++live_count_;
      live_fds_.insert(tcp.fd());
      std::thread([this, conn = std::move(tcp)]() mutable {
        int fd = conn.fd();
        try {
          serve_connection(std::move(conn));
        } catch (...) {
          // Connection threads never take the process down.
        }
        std::lock_guard<std::mutex> lock(threads_mutex_);
        live_fds_.erase(fd);
        --live_count_;
        if (live_count_ == 0) all_done_.notify_all();
      }).detach();
    }
  }
}

void Server::serve_connection(net::TcpConnection tcp) {
  net::TcpConnection* plain_tcp = nullptr;
  std::unique_ptr<net::Stream> stream;

  if (options_.tls) {
    try {
      stream = tls::SecureChannel::accept(
          std::make_unique<net::TcpConnection>(std::move(tcp)), *options_.tls);
    } catch (const Error& e) {
      CLARENS_LOG(Debug) << "TLS handshake failed: " << e.what();
      return;
    }
  } else {
    auto owned = std::make_unique<net::TcpConnection>(std::move(tcp));
    plain_tcp = owned.get();
    stream = std::move(owned);
  }

  Peer peer;
  peer.encrypted = options_.tls.has_value();
  if (auto* secure = dynamic_cast<tls::SecureChannel*>(stream.get())) {
    peer.tls_identity = secure->peer();
    peer.chain = secure->peer_chain();
  }

  RequestParser parser;
  std::array<std::uint8_t, 64 * 1024> chunk;
  bool alive = true;
  while (alive && running_.load()) {
    std::size_t n;
    try {
      n = stream->read(chunk);
    } catch (const SystemError&) {
      return;
    }
    if (n == 0) return;  // client closed
    try {
      parser.feed(std::span<const std::uint8_t>(chunk.data(), n));
      std::optional<Request> request;
      while (alive && (request = parser.next())) {
        requests_.fetch_add(1, std::memory_order_relaxed);
        Response response;
        try {
          response = handler_(*request, peer);
        } catch (const Error& e) {
          response = Response::make(500, std::string(e.what()) + "\n");
        } catch (const std::exception& e) {
          response = Response::make(500, std::string(e.what()) + "\n");
        }
        if (!request->keep_alive()) {
          response.headers.set("Connection", "close");
          alive = false;
        }
        send_response(*stream, plain_tcp, *request, std::move(response));
      }
    } catch (const ParseError& e) {
      try {
        stream->write_all(Response::make(400, std::string(e.what()) + "\n")
                              .serialize());
      } catch (const SystemError&) {
      }
      return;
    } catch (const SystemError&) {
      return;  // peer vanished mid-write
    }
  }
}

void Server::send_response(net::Stream& stream, net::TcpConnection* plain_tcp,
                           const Request& request, Response response) {
  if (!response.file) {
    std::string wire = response.serialize_head(response.body.size());
    if (request.method != "HEAD") wire += response.body;
    stream.write_all(wire);
    return;
  }

  // File region responses: stat, fix up length, stream.
  const auto& region = *response.file;
  int fd = ::open(region.path.c_str(), O_RDONLY);
  if (fd < 0) {
    stream.write_all(Response::make(404, "file not found\n").serialize());
    return;
  }
  struct stat st{};
  if (fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    stream.write_all(Response::make(404, "not a regular file\n").serialize());
    return;
  }
  std::int64_t offset = region.offset;
  std::int64_t length = region.length;
  if (offset > st.st_size) offset = st.st_size;
  if (length < 0 || offset + length > st.st_size) length = st.st_size - offset;

  stream.write_all(response.serialize_head(static_cast<std::size_t>(length)));
  if (request.method == "HEAD" || length == 0) {
    ::close(fd);
    return;
  }

  if (plain_tcp) {
    // Zero-copy path.
    plain_tcp->sendfile(fd, offset, static_cast<std::size_t>(length));
  } else {
    // Encrypted: read and push through the record layer.
    if (::lseek(fd, offset, SEEK_SET) < 0) {
      ::close(fd);
      throw SystemError("lseek failed");
    }
    std::array<std::uint8_t, 64 * 1024> buf;
    std::int64_t remaining = length;
    while (remaining > 0) {
      ssize_t n = ::read(fd, buf.data(),
                         std::min<std::int64_t>(remaining,
                                                static_cast<std::int64_t>(buf.size())));
      if (n <= 0) break;
      stream.write_all(std::span<const std::uint8_t>(buf.data(),
                                                     static_cast<std::size_t>(n)));
      remaining -= n;
    }
  }
  ::close(fd);
}

}  // namespace clarens::http
