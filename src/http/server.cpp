#include "http/server.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cstring>

#include "http/parser.hpp"
#include "util/buffer.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace clarens::http {

Server::Server(ServerOptions options, HandlerFn handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.exchange(true)) return;
  listener_ = net::TcpListener::listen(options_.port, options_.host);
  port_ = listener_.local_port();
  listener_.set_nonblocking(true);

  std::size_t workers = options_.worker_threads;
  if (workers == 0) {
    // The reactor thread occupies one core; handlers get the rest. On a
    // single-core host one worker minimizes scheduler churn between the
    // reader and the handler.
    std::size_t cores = util::Thread::hardware_concurrency();
    workers = cores > 1 ? cores - 1 : 1;
  }
  pool_ = std::make_unique<util::ThreadPool>(workers);
  reactor_ = std::make_unique<net::Reactor>();
  reactor_->add(listener_.fd(), net::Reactor::kRead,
                [this](std::uint32_t) { on_acceptable(); });
  reactor_thread_ = util::Thread([this] { reactor_->run(); });
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  // Quiesce the reactor first: once it has joined, no thread reads
  // connection fds or dispatches new work, so the teardown below cannot
  // race with accepts or parser feeds.
  listener_.shutdown();
  reactor_->stop();
  if (reactor_thread_.joinable()) reactor_thread_.join();

  // Signal every live connection (shutdown leaves the fds intact for
  // workers mid-write; their next write fails and they bail out).
  {
    util::LockGuard lock(conns_mutex_);
    for (auto& [fd, conn] : conns_) ::shutdown(fd, SHUT_RDWR);
  }
  {
    util::LockGuard lock(tls_mutex_);
    for (int fd : tls_fds_) ::shutdown(fd, SHUT_RDWR);
  }

  // Join handler workers (their posted close tasks are now no-ops), then
  // the TLS connection threads.
  pool_.reset();
  join_tls_threads();

  // Nothing references the connections any more; RAII closes the fds.
  {
    util::LockGuard lock(conns_mutex_);
    conns_.clear();
  }
  reactor_.reset();
  listener_.close();
}

std::size_t Server::live_connections() {
  std::size_t n = 0;
  {
    util::LockGuard lock(conns_mutex_);
    n = conns_.size();
  }
  {
    util::LockGuard lock(tls_mutex_);
    n += tls_fds_.size();
  }
  return n;
}

void Server::on_acceptable() {
  for (;;) {
    std::optional<net::TcpConnection> tcp;
    try {
      tcp = listener_.accept_nonblocking();
    } catch (const SystemError&) {
      return;  // listener shut down, or transient accept failure
    }
    if (!tcp) return;
    if (!running_.load()) return;

    if (live_connections() >= options_.max_connections) {
      // Shed load. Best-effort and non-blocking, with no server lock
      // held: a slow or hostile client must not stall the accept path.
      try {
        tcp->set_nonblocking(true);
        std::string wire = Response::make(503, "server busy\n").serialize();
        tcp->write_some(std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(wire.data()), wire.size()));
      } catch (const SystemError&) {
      }
      continue;  // destructor closes; client sees 503 then EOF
    }

    if (options_.tls) {
      spawn_tls(std::move(*tcp));
    } else {
      admit(std::move(*tcp));
    }
  }
}

void Server::admit(net::TcpConnection tcp) {
  try {
    tcp.set_nonblocking(true);
    // RPC traffic is small request/response pairs; never batch them
    // behind Nagle while the peer sits on a delayed ACK.
    tcp.set_nodelay(true);
  } catch (const SystemError&) {
    return;
  }
  auto conn = std::make_shared<Conn>(std::move(tcp));
  conn->peer.encrypted = false;
  int fd = conn->tcp.fd();
  {
    util::LockGuard lock(conns_mutex_);
    conns_[fd] = conn;
  }
  reactor_->add(fd, net::Reactor::kRead,
                [this, conn](std::uint32_t) { on_readable(conn); });
}

void Server::on_readable(const std::shared_ptr<Conn>& conn) {
  bool eof = false;
  bool bad = false;
  std::vector<Request> parsed;
  std::array<std::uint8_t, 64 * 1024> chunk;
  for (;;) {
    std::optional<std::size_t> n;
    try {
      n = conn->tcp.read_some(chunk);
    } catch (const SystemError&) {
      eof = true;
      break;
    }
    if (!n) break;  // drained the socket buffer
    if (*n == 0) {
      eof = true;  // client closed
      break;
    }
    try {
      conn->parser.feed(std::span<const std::uint8_t>(chunk.data(), *n));
      std::optional<Request> request;
      while ((request = conn->parser.next())) {
        parsed.push_back(std::move(*request));
      }
    } catch (const ParseError&) {
      bad = true;
      eof = true;
      break;
    }
    // A short read almost always means the buffer is drained; skip the
    // EAGAIN probe. Level-triggered epoll re-reports any residue.
    if (*n < chunk.size()) break;
  }

  bool close_now = false;
  {
    util::LockGuard lock(conn->mutex);
    if (conn->closing) return;  // a worker already sealed this connection
    for (auto& request : parsed) conn->ready.push_back(std::move(request));
    if (bad) conn->bad = true;
    if (eof) conn->closing = true;
    if (!conn->busy && !conn->ready.empty()) {
      conn->busy = true;
      pool_->submit([this, conn] { worker_drain(conn); });
    } else if (!conn->busy && conn->closing) {
      close_now = true;
    }
  }
  if (close_now) {
    if (bad) {
      // Malformed first request and no worker to answer: refuse inline,
      // best-effort (never block the reactor on a full socket buffer).
      std::string wire = Response::make(400, "malformed request\n").serialize();
      try {
        conn->tcp.write_some(std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(wire.data()), wire.size()));
      } catch (const SystemError&) {
      }
    }
    close_conn(conn);
  }
}

void Server::worker_drain(std::shared_ptr<Conn> conn) {
  for (;;) {
    Request request;
    {
      util::LockGuard lock(conn->mutex);
      if (conn->ready.empty()) {
        if (!conn->closing) {
          conn->busy = false;  // reactor will redispatch on new input
          return;
        }
        break;  // drained a closing connection: finish below
      }
      request = std::move(conn->ready.front());
      conn->ready.pop_front();
    }

    requests_.fetch_add(1, std::memory_order_relaxed);
    Response response;
    try {
      response = handler_(request, conn->peer);
    } catch (const std::exception& e) {
      response = Response::make(500, std::string(e.what()) + "\n");
    }
    bool close_after = false;
    if (!request.keep_alive()) {
      response.headers.set("Connection", "close");
      close_after = true;
    }
    try {
      send_response(conn->tcp, &conn->tcp, request, std::move(response));
    } catch (const SystemError&) {
      close_after = true;  // peer vanished mid-write
    }
    if (close_after) {
      util::LockGuard lock(conn->mutex);
      conn->closing = true;
      conn->ready.clear();
      break;
    }
  }

  // Finishing a closing connection. `busy` is still held, so the
  // reactor cannot close the fd underneath the 400 write below.
  bool bad;
  {
    util::LockGuard lock(conn->mutex);
    bad = conn->bad;
  }
  if (bad) {
    try {
      conn->tcp.write_all(
          Response::make(400, "malformed request\n").serialize());
    } catch (const SystemError&) {
    }
  }
  {
    util::LockGuard lock(conn->mutex);
    conn->busy = false;
  }
  request_close(conn);
}

void Server::request_close(const std::shared_ptr<Conn>& conn) {
  reactor_->post([this, conn] { close_conn(conn); });
}

void Server::close_conn(const std::shared_ptr<Conn>& conn) {
  if (!conn->tcp.valid()) return;  // already torn down (idempotent)
  int fd = conn->tcp.fd();
  if (reactor_->watching(fd)) reactor_->remove(fd);
  conn->tcp.close();
  util::LockGuard lock(conns_mutex_);
  conns_.erase(fd);
}

void Server::spawn_tls(net::TcpConnection tcp) {
  util::LockGuard lock(tls_mutex_);
  std::uint64_t id = ++tls_seq_;
  int fd = tcp.fd();
  tls_fds_.insert(fd);
  // The body blocks on tls_mutex_ until the emplace below completes, so
  // it always finds its own handle in tls_threads_.
  util::Thread thread([this, id, fd, conn = std::move(tcp)]() mutable {
    try {
      serve_tls(std::move(conn));
    } catch (...) {
      // Connection threads never take the process down.
    }
    util::LockGuard lk(tls_mutex_);
    tls_fds_.erase(fd);
    auto it = tls_threads_.find(id);
    if (it != tls_threads_.end()) {
      tls_finished_.push_back(std::move(it->second));
      tls_threads_.erase(it);
    }
    tls_done_.notify_all();
  });
  tls_threads_.emplace(id, std::move(thread));
  // Reap threads that finished earlier (they only parked their handles;
  // joining is instant or near-instant).
  for (auto& finished : tls_finished_) finished.join();
  tls_finished_.clear();
}

void Server::join_tls_threads() {
  util::UniqueLock lock(tls_mutex_);
  while (!tls_threads_.empty()) tls_done_.wait(lock);
  for (auto& finished : tls_finished_) finished.join();
  tls_finished_.clear();
}

void Server::serve_tls(net::TcpConnection tcp) {
  std::unique_ptr<net::Stream> stream;
  try {
    stream = tls::SecureChannel::accept(
        std::make_unique<net::TcpConnection>(std::move(tcp)), *options_.tls);
  } catch (const Error& e) {
    CLARENS_LOG(Debug) << "TLS handshake failed: " << e.what();
    return;
  }

  Peer peer;
  peer.encrypted = true;
  if (auto* secure = dynamic_cast<tls::SecureChannel*>(stream.get())) {
    peer.tls_identity = secure->peer();
    peer.chain = secure->peer_chain();
  }

  RequestParser parser;
  std::array<std::uint8_t, 64 * 1024> chunk;
  bool alive = true;
  while (alive && running_.load()) {
    std::size_t n;
    try {
      n = stream->read(chunk);
    } catch (const SystemError&) {
      return;
    }
    if (n == 0) return;  // client closed
    try {
      parser.feed(std::span<const std::uint8_t>(chunk.data(), n));
      std::optional<Request> request;
      while (alive && (request = parser.next())) {
        requests_.fetch_add(1, std::memory_order_relaxed);
        Response response;
        try {
          response = handler_(*request, peer);
        } catch (const std::exception& e) {
          response = Response::make(500, std::string(e.what()) + "\n");
        }
        if (!request->keep_alive()) {
          response.headers.set("Connection", "close");
          alive = false;
        }
        send_response(*stream, nullptr, *request, std::move(response));
      }
    } catch (const ParseError& e) {
      try {
        stream->write_all(
            Response::make(400, std::string(e.what()) + "\n").serialize());
      } catch (const SystemError&) {
      }
      return;
    } catch (const SystemError&) {
      return;  // peer vanished mid-write
    }
  }
}

void Server::send_response(net::Stream& stream, net::TcpConnection* plain_tcp,
                           const Request& request, Response response) {
  if (!response.file) {
    // Head into a per-worker scratch buffer, then one vectored write of
    // {head, body}: the body (often a view of the handler's serialization
    // arena) is never copied into a combined wire string.
    std::string_view body = response.effective_body();
    thread_local util::Buffer head;
    head.clear();
    response.serialize_head_into(head, body.size());
    std::array<std::string_view, 2> chunks = {
        head.peek_view(),
        request.method != "HEAD" ? body : std::string_view()};
    stream.write_vec(chunks);
    return;
  }

  // File region responses: stat, fix up length, stream.
  const auto& region = *response.file;
  int fd = ::open(region.path.c_str(), O_RDONLY);
  if (fd < 0) {
    stream.write_all(Response::make(404, "file not found\n").serialize());
    return;
  }
  struct stat st{};
  if (fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    stream.write_all(Response::make(404, "not a regular file\n").serialize());
    return;
  }
  std::int64_t offset = region.offset;
  std::int64_t length = region.length;
  if (offset > st.st_size) offset = st.st_size;
  if (length < 0 || offset + length > st.st_size) length = st.st_size - offset;

  stream.write_all(response.serialize_head(static_cast<std::size_t>(length)));
  if (request.method == "HEAD" || length == 0) {
    ::close(fd);
    return;
  }

  if (plain_tcp) {
    // Zero-copy path.
    plain_tcp->sendfile(fd, offset, static_cast<std::size_t>(length));
  } else {
    // Encrypted: read and push through the record layer.
    if (::lseek(fd, offset, SEEK_SET) < 0) {
      ::close(fd);
      throw SystemError("lseek failed");
    }
    std::array<std::uint8_t, 64 * 1024> buf;
    std::int64_t remaining = length;
    while (remaining > 0) {
      ssize_t n = ::read(fd, buf.data(),
                         std::min<std::int64_t>(remaining,
                                                static_cast<std::int64_t>(buf.size())));
      if (n <= 0) break;
      stream.write_all(std::span<const std::uint8_t>(buf.data(),
                                                     static_cast<std::size_t>(n)));
      remaining -= n;
    }
  }
  ::close(fd);
}

}  // namespace clarens::http
