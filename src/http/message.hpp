// HTTP/1.1 request and response models.
//
// Clarens rides on plain HTTP: XML-RPC/SOAP/JSON-RPC POSTs to the service
// endpoint, GETs for files and the browser portal (paper §2, §3).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/buffer.hpp"

namespace clarens::http {

/// Ordered, case-insensitive-lookup header list. Lookups compare names
/// char-by-char (util::iequals) — no lowercase temporaries.
class Headers {
 public:
  void add(std::string name, std::string value);
  void set(std::string name, std::string value);  // replace or add
  /// First value, case-insensitive name match.
  std::optional<std::string> get(std::string_view name) const;
  std::string get_or(std::string_view name, std::string fallback) const;
  /// Allocation-free lookup: pointer to the stored value, or nullptr.
  const std::string* find(std::string_view name) const;
  bool has(std::string_view name) const { return find(name) != nullptr; }

  const std::vector<std::pair<std::string, std::string>>& all() const {
    return items_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> items_;
};

struct Request {
  std::string method;   // GET, POST, ...
  std::string target;   // raw request target: /path?query
  std::string version = "HTTP/1.1";
  Headers headers;
  std::string body;

  /// Decoded path component (without query, %xx decoded).
  std::string path() const;
  /// Decoded query parameters.
  std::map<std::string, std::string> query() const;

  bool keep_alive() const;

  /// Wire form.
  std::string serialize() const;
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  Headers headers;
  std::string body;

  /// When set, the body bytes live in an external arena (e.g. the worker's
  /// reusable serialization buffer) and `body` is ignored. The referenced
  /// storage must stay alive and unmodified until the response is written;
  /// the server writes it in the same worker turn that produced it.
  std::optional<std::string_view> body_view;

  std::string_view effective_body() const {
    return body_view ? *body_view : std::string_view(body);
  }

  /// When set, the server streams this file region as the body instead of
  /// `body`, using sendfile(2) on plaintext connections. Content-Length is
  /// set automatically.
  struct FileRegion {
    std::string path;
    std::int64_t offset = 0;
    std::int64_t length = -1;  // -1 = to EOF
    /// When `head` is non-empty the region is an RPC-envelope response:
    /// `head` and `tail` bracket the raw file bytes inside the serialized
    /// RPC framing, offset/length are taken verbatim (the handler already
    /// clamped them, so `length` must be >= 0), and Content-Length covers
    /// head + region + tail. The file bytes never touch the serialization
    /// arena — plaintext connections send them with sendfile(2).
    std::string head;
    std::string tail;
  };
  std::optional<FileRegion> file;

  static Response make(int status, std::string body,
                       std::string content_type = "text/plain");

  std::string serialize_head(std::size_t content_length) const;
  /// Append the status line + headers + blank line to `out` without
  /// intermediate strings (the server's vectored-write hot path).
  void serialize_head_into(util::Buffer& out, std::size_t content_length) const;
  std::string serialize() const;
};

const char* reason_phrase(int status);

/// %xx-decode. Throws clarens::ParseError on malformed escapes.
std::string url_decode(std::string_view s);
std::string url_encode(std::string_view s);

}  // namespace clarens::http
