#include "http/parser.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace clarens::http {

namespace {

constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 256 * 1024 * 1024;

/// Parse header block lines (after the start line) into `headers`.
void parse_header_lines(std::string_view block, Headers& headers) {
  for (const auto& line : util::split(block, '\n')) {
    std::string_view trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    std::size_t colon = trimmed.find(':');
    if (colon == std::string_view::npos) {
      throw ParseError("malformed header line: '" + std::string(line) + "'");
    }
    headers.add(std::string(util::trim(trimmed.substr(0, colon))),
                std::string(util::trim(trimmed.substr(colon + 1))));
  }
}

}  // namespace

std::optional<std::pair<std::size_t, std::string>> extract_body(
    const Headers& headers, std::string_view rest) {
  std::string te = util::to_lower(headers.get_or("Transfer-Encoding", ""));
  if (te.find("chunked") != std::string::npos) {
    // Chunked: size-line CRLF data CRLF ... 0 CRLF CRLF.
    std::string body;
    std::size_t pos = 0;
    for (;;) {
      std::size_t line_end = rest.find("\r\n", pos);
      if (line_end == std::string_view::npos) return std::nullopt;
      std::string size_line(util::trim(rest.substr(pos, line_end - pos)));
      // Ignore chunk extensions after ';'.
      std::size_t semi = size_line.find(';');
      if (semi != std::string::npos) size_line.resize(semi);
      std::size_t chunk_size = 0;
      try {
        chunk_size = static_cast<std::size_t>(
            std::stoull(size_line, nullptr, 16));
      } catch (const std::exception&) {
        throw ParseError("invalid chunk size: '" + size_line + "'");
      }
      std::size_t data_start = line_end + 2;
      if (chunk_size == 0) {
        // Trailer section: skip to the blank line.
        std::size_t end = rest.find("\r\n", data_start);
        if (end == std::string_view::npos) return std::nullopt;
        // Allow optional trailers: find the terminating CRLF.
        std::size_t cursor = data_start;
        for (;;) {
          std::size_t eol = rest.find("\r\n", cursor);
          if (eol == std::string_view::npos) return std::nullopt;
          if (eol == cursor) {  // blank line
            return std::make_pair(eol + 2, std::move(body));
          }
          cursor = eol + 2;
        }
      }
      if (body.size() + chunk_size > kMaxBodyBytes) {
        throw ParseError("chunked body too large");
      }
      if (rest.size() < data_start + chunk_size + 2) return std::nullopt;
      body.append(rest.substr(data_start, chunk_size));
      if (rest.substr(data_start + chunk_size, 2) != "\r\n") {
        throw ParseError("chunk not terminated by CRLF");
      }
      pos = data_start + chunk_size + 2;
    }
  }

  auto length_header = headers.get("Content-Length");
  if (!length_header) return std::make_pair(std::size_t{0}, std::string());
  std::uint64_t length = util::parse_uint(*length_header);
  if (length > kMaxBodyBytes) throw ParseError("body too large");
  if (rest.size() < length) return std::nullopt;
  return std::make_pair(static_cast<std::size_t>(length),
                        std::string(rest.substr(0, length)));
}

void RequestParser::feed(std::string_view data) { buffer_.append(data); }

std::optional<Request> RequestParser::next() {
  std::size_t head_end = buffer_.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    if (buffer_.size() > kMaxHeaderBytes) {
      throw ParseError("request header block too large");
    }
    return std::nullopt;
  }
  std::string_view head(buffer_.data(), head_end);
  std::size_t line_end = head.find("\r\n");
  std::string_view start_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);

  auto parts = util::split_trimmed(start_line, ' ');
  if (parts.size() != 3) {
    throw ParseError("malformed request line: '" + std::string(start_line) + "'");
  }
  Request request;
  request.method = parts[0];
  request.target = parts[1];
  request.version = parts[2];
  if (request.version != "HTTP/1.1" && request.version != "HTTP/1.0") {
    throw ParseError("unsupported HTTP version: " + request.version);
  }
  if (line_end != std::string_view::npos) {
    parse_header_lines(head.substr(line_end + 1), request.headers);
  }

  std::string_view rest(buffer_.data() + head_end + 4,
                        buffer_.size() - head_end - 4);
  auto body = extract_body(request.headers, rest);
  if (!body) return std::nullopt;
  request.body = std::move(body->second);
  buffer_.erase(0, head_end + 4 + body->first);
  return request;
}

void ResponseParser::feed(std::string_view data) { buffer_.append(data); }

std::optional<Response> ResponseParser::next() {
  std::size_t head_end = buffer_.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    if (buffer_.size() > kMaxHeaderBytes) {
      throw ParseError("response header block too large");
    }
    return std::nullopt;
  }
  std::string_view head(buffer_.data(), head_end);
  std::size_t line_end = head.find("\r\n");
  std::string_view status_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);

  // "HTTP/1.1 200 OK" — reason may contain spaces.
  std::size_t sp1 = status_line.find(' ');
  if (sp1 == std::string_view::npos) {
    throw ParseError("malformed status line: '" + std::string(status_line) + "'");
  }
  std::size_t sp2 = status_line.find(' ', sp1 + 1);
  Response response;
  std::string_view code = status_line.substr(
      sp1 + 1, sp2 == std::string_view::npos ? std::string_view::npos
                                             : sp2 - sp1 - 1);
  response.status = static_cast<int>(util::parse_int(util::trim(code)));
  if (sp2 != std::string_view::npos) {
    response.reason = std::string(util::trim(status_line.substr(sp2 + 1)));
  }
  if (line_end != std::string_view::npos) {
    parse_header_lines(head.substr(line_end + 1), response.headers);
  }

  std::string_view rest(buffer_.data() + head_end + 4,
                        buffer_.size() - head_end - 4);
  auto body = extract_body(response.headers, rest);
  if (!body) return std::nullopt;
  response.body = std::move(body->second);
  buffer_.erase(0, head_end + 4 + body->first);
  return response;
}

}  // namespace clarens::http
