#include "core/message_service.hpp"

#include <algorithm>
#include <cstdio>

#include "rpc/jsonrpc.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace clarens::core {

namespace {

constexpr const char* kMailboxTable = "mailboxes";
constexpr const char* kChannelTable = "channels";
constexpr const char* kCounterTable = "mailbox_counters";

std::string encode(const Message& message) {
  rpc::Value v = rpc::Value::struct_();
  v.set("from", message.from);
  v.set("to", message.to);
  v.set("channel", message.channel);
  v.set("subject", message.subject);
  v.set("body", message.body);
  v.set("sent", message.sent);
  return rpc::jsonrpc::serialize_value(v);
}

Message decode(std::uint64_t id, const std::string& text) {
  rpc::Value v = rpc::jsonrpc::parse_value(text);
  Message message;
  message.id = id;
  message.from = v.at("from").as_string();
  message.to = v.at("to").as_string();
  message.channel = v.at("channel").as_string();
  message.subject = v.at("subject").as_string();
  message.body = v.at("body").as_string();
  message.sent = v.at("sent").as_int();
  return message;
}

}  // namespace

MessageService::MessageService(db::Store& store, std::size_t max_mailbox)
    : store_(store), max_mailbox_(max_mailbox) {}

std::string MessageService::mailbox_key(const std::string& dn,
                                        std::uint64_t id) {
  // Fixed-width id keeps lexicographic order == arrival order for the
  // prefix scan.
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%020llu",
                static_cast<unsigned long long>(id));
  return dn + "\n" + buf;
}

std::uint64_t MessageService::enqueue(Message message) {
  // lock-order: core.message -> db.store.shard
  util::LockGuard lock(mutex_);
  // Next id for this mailbox.
  std::uint64_t id = 1;
  if (auto counter = store_.get(kCounterTable, message.to)) {
    id = util::parse_uint(*counter) + 1;
  }
  store_.put(kCounterTable, message.to, std::to_string(id));
  message.id = id;
  store_.put(kMailboxTable, mailbox_key(message.to, id), encode(message));

  // Bound the mailbox: drop oldest beyond the cap.
  auto entries = store_.scan_prefix(kMailboxTable, message.to + "\n");
  if (entries.size() > max_mailbox_) {
    std::size_t excess = entries.size() - max_mailbox_;
    for (std::size_t i = 0; i < excess; ++i) {
      store_.erase(kMailboxTable, entries[i].first);
    }
  }
  return id;
}

std::uint64_t MessageService::send(const std::string& from_dn,
                                   const std::string& to_dn,
                                   const std::string& subject,
                                   const std::string& body) {
  if (to_dn.empty()) throw ParseError("message recipient must not be empty");
  Message message;
  message.from = from_dn;
  message.to = to_dn;
  message.subject = subject;
  message.body = body;
  message.sent = util::unix_now();
  return enqueue(std::move(message));
}

void MessageService::subscribe(const std::string& channel,
                               const std::string& dn) {
  if (channel.empty()) throw ParseError("channel name must not be empty");
  store_.put(kChannelTable, channel + "\n" + dn, "1");
}

void MessageService::unsubscribe(const std::string& channel,
                                 const std::string& dn) {
  store_.erase(kChannelTable, channel + "\n" + dn);
}

std::vector<std::string> MessageService::subscribers(
    const std::string& channel) const {
  std::vector<std::string> out;
  for (const auto& [key, _] : store_.scan_prefix(kChannelTable, channel + "\n")) {
    out.push_back(key.substr(channel.size() + 1));
  }
  return out;
}

std::size_t MessageService::publish(const std::string& from_dn,
                                    const std::string& channel,
                                    const std::string& subject,
                                    const std::string& body) {
  std::size_t delivered = 0;
  for (const auto& dn : subscribers(channel)) {
    Message message;
    message.from = from_dn;
    message.to = dn;
    message.channel = channel;
    message.subject = subject;
    message.body = body;
    message.sent = util::unix_now();
    enqueue(std::move(message));
    ++delivered;
  }
  return delivered;
}

std::vector<Message> MessageService::peek(const std::string& dn,
                                          std::size_t max) const {
  std::vector<Message> out;
  for (const auto& [key, value] : store_.scan_prefix(kMailboxTable, dn + "\n")) {
    if (out.size() >= max) break;
    std::uint64_t id = util::parse_uint(key.substr(dn.size() + 1));
    out.push_back(decode(id, value));
  }
  return out;
}

std::vector<Message> MessageService::poll(const std::string& dn,
                                          std::size_t max) {
  std::vector<Message> out = peek(dn, max);
  for (const auto& message : out) {
    store_.erase(kMailboxTable, mailbox_key(dn, message.id));
  }
  return out;
}

std::size_t MessageService::pending(const std::string& dn) const {
  return store_.scan_prefix(kMailboxTable, dn + "\n").size();
}

}  // namespace clarens::core
