#include "core/job_service.hpp"

#include <algorithm>
#include <chrono>

#include "crypto/random.hpp"
#include "rpc/jsonrpc.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace clarens::core {

namespace {

constexpr const char* kTable = "jobs";

JobState state_from(const std::string& name) {
  if (name == "QUEUED") return JobState::Queued;
  if (name == "RUNNING") return JobState::Running;
  if (name == "DONE") return JobState::Done;
  if (name == "FAILED") return JobState::Failed;
  if (name == "CANCELLED") return JobState::Cancelled;
  throw ParseError("unknown job state: '" + name + "'");
}

std::string encode(const Job& job) {
  rpc::Value v = rpc::Value::struct_();
  v.set("owner", job.owner);
  v.set("command", job.command);
  v.set("state", std::string(to_string(job.state)));
  v.set("exit_code", static_cast<std::int64_t>(job.exit_code));
  v.set("output", job.output);
  v.set("error", job.error);
  v.set("submitted", job.submitted);
  v.set("finished", job.finished);
  return rpc::jsonrpc::serialize_value(v);
}

Job decode(const std::string& id, const std::string& text) {
  rpc::Value v = rpc::jsonrpc::parse_value(text);
  Job job;
  job.id = id;
  job.owner = v.at("owner").as_string();
  job.command = v.at("command").as_string();
  job.state = state_from(v.at("state").as_string());
  job.exit_code = static_cast<int>(v.at("exit_code").as_int());
  job.output = v.at("output").as_string();
  job.error = v.at("error").as_string();
  job.submitted = v.at("submitted").as_int();
  job.finished = v.at("finished").as_int();
  return job;
}

bool is_terminal(JobState state) {
  return state == JobState::Done || state == JobState::Failed ||
         state == JobState::Cancelled;
}

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::Queued: return "QUEUED";
    case JobState::Running: return "RUNNING";
    case JobState::Done: return "DONE";
    case JobState::Failed: return "FAILED";
    case JobState::Cancelled: return "CANCELLED";
  }
  return "?";
}

JobService::JobService(db::Store& store, ShellService& shell, int workers)
    : store_(store), shell_(shell) {
  // Recover orphans: jobs mid-flight when the server died re-queue.
  for (const auto& id : store_.keys(kTable)) {
    if (auto text = store_.get(kTable, id)) {
      Job job = decode(id, *text);
      if (job.state == JobState::Running || job.state == JobState::Queued) {
        job.state = JobState::Queued;
        save(job);
        queue_.push_back(id);
      }
    }
  }
  if (workers < 1) workers = 1;
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

JobService::~JobService() {
  {
    util::LockGuard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void JobService::save(const Job& job) { store_.put(kTable, job.id, encode(job)); }

Job JobService::load(const std::string& job_id) const {
  auto text = store_.get(kTable, job_id);
  if (!text) throw NotFoundError("no such job: " + job_id);
  return decode(job_id, *text);
}

std::string JobService::submit(const pki::DistinguishedName& owner,
                               const std::string& command) {
  if (!shell_.map_user(owner)) {
    throw AccessError("no system user mapped for " + owner.str());
  }
  Job job;
  job.id = crypto::random_token(10);
  job.owner = owner.str();
  job.command = command;
  job.submitted = util::unix_now();
  {
    // lock-order: core.job -> db.store.shard
    util::LockGuard lock(mutex_);
    save(job);
    queue_.push_back(job.id);
  }
  work_available_.notify_one();
  return job.id;
}

void JobService::worker_loop() {
  for (;;) {
    std::string job_id;
    Job job;
    {
      // lock-order: core.job -> db.store.shard
      util::UniqueLock lock(mutex_);
      while (!stopping_ && queue_.empty()) work_available_.wait(lock);
      if (stopping_) return;
      job_id = queue_.front();
      queue_.pop_front();
      try {
        job = load(job_id);
      } catch (const NotFoundError&) {
        continue;  // purged while queued
      }
      if (job.state != JobState::Queued) continue;  // cancelled
      job.state = JobState::Running;
      save(job);
    }
    state_changed_.notify_all();

    ShellResult result;
    std::string failure;
    try {
      result = shell_.execute(pki::DistinguishedName::parse(job.owner),
                              job.command);
    } catch (const Error& e) {
      failure = e.what();
    }

    {
      // lock-order: core.job -> db.store.shard
      util::LockGuard lock(mutex_);
      try {
        job = load(job_id);
      } catch (const NotFoundError&) {
        continue;
      }
      if (!failure.empty()) {
        job.state = JobState::Failed;
        job.error = failure;
        job.exit_code = -1;
      } else {
        job.state = result.exit_code == 0 ? JobState::Done : JobState::Failed;
        job.exit_code = result.exit_code;
        job.output = result.out;
        job.error = result.err;
      }
      job.finished = util::unix_now();
      save(job);
    }
    state_changed_.notify_all();
  }
}

Job JobService::status(const std::string& job_id,
                       const pki::DistinguishedName& who) const {
  // lock-order: core.job -> db.store.shard
  util::LockGuard lock(mutex_);
  Job job = load(job_id);
  if (job.owner != who.str()) {
    throw AccessError("job belongs to a different identity");
  }
  return job;
}

std::vector<Job> JobService::list(const pki::DistinguishedName& owner) const {
  // lock-order: core.job -> db.store.shard
  util::LockGuard lock(mutex_);
  std::vector<Job> out;
  for (const auto& id : store_.keys(kTable)) {
    if (auto text = store_.get(kTable, id)) {
      Job job = decode(id, *text);
      if (job.owner == owner.str()) out.push_back(std::move(job));
    }
  }
  std::sort(out.begin(), out.end(), [](const Job& a, const Job& b) {
    return a.submitted > b.submitted;
  });
  return out;
}

bool JobService::cancel(const std::string& job_id,
                        const pki::DistinguishedName& who) {
  // lock-order: core.job -> db.store.shard
  util::LockGuard lock(mutex_);
  Job job = load(job_id);
  if (job.owner != who.str()) {
    throw AccessError("job belongs to a different identity");
  }
  if (job.state != JobState::Queued) return false;
  job.state = JobState::Cancelled;
  job.finished = util::unix_now();
  save(job);
  state_changed_.notify_all();
  return true;
}

void JobService::purge(const std::string& job_id,
                       const pki::DistinguishedName& who) {
  // lock-order: core.job -> db.store.shard
  util::LockGuard lock(mutex_);
  Job job = load(job_id);
  if (job.owner != who.str()) {
    throw AccessError("job belongs to a different identity");
  }
  if (!is_terminal(job.state)) {
    throw Error("cannot purge a job in state " +
                std::string(to_string(job.state)));
  }
  store_.erase(kTable, job_id);
}

Job JobService::wait(const std::string& job_id,
                     const pki::DistinguishedName& who, int timeout_ms) {
  // lock-order: core.job -> db.store.shard
  util::UniqueLock lock(mutex_);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  Job job = load(job_id);
  while (!is_terminal(job.state)) {
    bool timed_out =
        state_changed_.wait_until(lock, deadline) == std::cv_status::timeout;
    job = load(job_id);
    if (is_terminal(job.state)) break;
    if (timed_out) throw SystemError("job did not finish in time");
  }
  if (job.owner != who.str()) {
    throw AccessError("job belongs to a different identity");
  }
  return job;
}

}  // namespace clarens::core
