#include "core/config_loader.hpp"

#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace clarens::core {

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SystemError("cannot read file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// "allow <path> <subject>" where subject is '*', a DN prefix, or
/// "group:<name>".
void apply_allow(AclSpec& spec, const std::string& subject) {
  if (util::starts_with(subject, "group:")) {
    spec.allow_groups.push_back(subject.substr(6));
  } else {
    spec.allow_dns.push_back(subject);
  }
}

}  // namespace

ClarensConfig config_from(const util::Config& config) {
  ClarensConfig out;
  out.host = config.get_or("host", out.host);
  out.port = static_cast<std::uint16_t>(config.get_int_or("port", 0));
  out.data_dir = config.get_or("data_dir", "");
  out.admins = config.get_all("admin");
  out.default_allow = config.get_bool_or("default_allow", false);
  out.use_tls = config.get_bool_or("use_tls", false);
  out.require_client_cert = config.get_bool_or("require_client_cert", false);
  out.session_ttl = config.get_int_or("session_ttl", out.session_ttl);
  out.challenge_ttl = config.get_int_or("challenge_ttl", out.challenge_ttl);
  out.max_read_chunk = config.get_int_or("max_read_chunk", out.max_read_chunk);
  // The binary-protocol blob framing carries a u32 length; a larger chunk
  // limit would let sendfile regions desynchronize the frame from the
  // HTTP Content-Length.
  if (out.max_read_chunk <= 0 ||
      static_cast<std::uint64_t>(out.max_read_chunk) >
          std::numeric_limits<std::uint32_t>::max()) {
    throw ParseError("max_read_chunk must be in (0, 4294967295]");
  }
  out.store_shards = static_cast<std::size_t>(config.get_int_or(
      "store_shards", static_cast<std::int64_t>(out.store_shards)));
  if (out.store_shards < 1 || out.store_shards > 1024) {
    throw ParseError("store_shards must be in [1, 1024]");
  }
  out.store_group_commit =
      config.get_bool_or("store_group_commit", out.store_group_commit);
  out.store_commit_interval_us = config.get_int_or(
      "store_commit_interval_us", out.store_commit_interval_us);
  if (out.store_commit_interval_us < 0 ||
      out.store_commit_interval_us > 1000000) {
    throw ParseError("store_commit_interval_us must be in [0, 1000000]");
  }
  out.store_commit_batch_max = static_cast<std::size_t>(config.get_int_or(
      "store_commit_batch_max",
      static_cast<std::int64_t>(out.store_commit_batch_max)));
  if (out.store_commit_batch_max < 1 || out.store_commit_batch_max > 65536) {
    throw ParseError("store_commit_batch_max must be in [1, 65536]");
  }
  out.store_compact_threshold = config.get_int_or("store_compact_threshold",
                                                  out.store_compact_threshold);
  if (out.store_compact_threshold < 4096) {
    throw ParseError("store_compact_threshold must be >= 4096");
  }
  out.session_durable_writes = config.get_bool_or("session_durable_writes",
                                                  out.session_durable_writes);
  out.inline_dispatch =
      config.get_bool_or("inline_dispatch", out.inline_dispatch);
  out.sendfile_threshold =
      config.get_int_or("sendfile_threshold", out.sendfile_threshold);
  out.sandbox_base = config.get_or("sandbox_base", "");
  out.portal_dir = config.get_or("portal_dir", "");
  out.farm = config.get_or("farm", out.farm);
  out.node = config.get_or("node", out.node);
  out.max_connections = static_cast<std::size_t>(
      config.get_int_or("max_connections", static_cast<std::int64_t>(out.max_connections)));
  out.publish_interval_ms = static_cast<int>(
      config.get_int_or("publish_interval_ms", out.publish_interval_ms));

  if (auto path = config.get("credential_file")) {
    out.credential = pki::Credential::decode(read_file(*path));
  }
  for (const auto& path : config.get_all("chain_file")) {
    out.chain.push_back(pki::Certificate::decode(read_file(path)));
  }
  for (const auto& path : config.get_all("trust_file")) {
    out.trust.add_authority(pki::Certificate::decode(read_file(path)));
  }
  if (auto path = config.get("user_map_file")) {
    out.user_map = parse_user_map(read_file(*path));
  }

  // file_root <virtual> <real>
  for (const auto& value : config.get_all("file_root")) {
    auto parts = util::split_trimmed(value, ' ');
    if (parts.size() != 2) {
      throw ParseError("file_root expects '<virtual> <real>': '" + value + "'");
    }
    out.file_roots[parts[0]] = parts[1];
  }

  // allow <method-path> <subject>   (accumulates per path)
  std::map<std::string, AclSpec> method_acls;
  for (const auto& value : config.get_all("allow")) {
    auto parts = util::split_trimmed(value, ' ');
    if (parts.size() != 2) {
      throw ParseError("allow expects '<method-path> <subject>': '" + value + "'");
    }
    apply_allow(method_acls[parts[0]], parts[1]);
  }
  for (auto& [path, spec] : method_acls) {
    out.initial_method_acls.emplace_back(path, std::move(spec));
  }

  // file_allow <path> <subject>  (grants read and write)
  std::map<std::string, FileAcl> file_acls;
  for (const auto& value : config.get_all("file_allow")) {
    auto parts = util::split_trimmed(value, ' ');
    if (parts.size() != 2) {
      throw ParseError("file_allow expects '<path> <subject>': '" + value + "'");
    }
    apply_allow(file_acls[parts[0]].read, parts[1]);
    apply_allow(file_acls[parts[0]].write, parts[1]);
  }
  // file_allow_read / file_allow_write for finer grants.
  for (const auto& value : config.get_all("file_allow_read")) {
    auto parts = util::split_trimmed(value, ' ');
    if (parts.size() != 2) {
      throw ParseError("file_allow_read expects '<path> <subject>'");
    }
    apply_allow(file_acls[parts[0]].read, parts[1]);
  }
  for (const auto& value : config.get_all("file_allow_write")) {
    auto parts = util::split_trimmed(value, ' ');
    if (parts.size() != 2) {
      throw ParseError("file_allow_write expects '<path> <subject>'");
    }
    apply_allow(file_acls[parts[0]].write, parts[1]);
  }
  for (auto& [path, acl] : file_acls) {
    out.initial_file_acls.emplace_back(path, std::move(acl));
  }

  // --- Federation knobs (ISSUE 8) -------------------------------------
  if (auto role = config.get("node_role")) {
    if (*role == "standalone") {
      out.node_role = NodeRole::Standalone;
    } else if (*role == "head") {
      out.node_role = NodeRole::Head;
    } else if (*role == "storage") {
      out.node_role = NodeRole::Storage;
    } else {
      throw ParseError("node_role must be 'standalone', 'head' or 'storage'"
                       ", got '" + *role + "'");
    }
  }
  out.head_url = config.get_or("head_url", "");
  if (!out.head_url.empty() &&
      !util::starts_with(out.head_url, "http://") &&
      !util::starts_with(out.head_url, "https://")) {
    throw ParseError("head_url must start with http:// or https://: '" +
                     out.head_url + "'");
  }
  out.node_ticket_secret = config.get_or("node_ticket_secret", "");
  if (out.node_role != NodeRole::Standalone &&
      out.node_ticket_secret.size() < 16) {
    throw ParseError(
        "head/storage roles require node_ticket_secret of >= 16 characters "
        "(it signs the cluster's node tickets)");
  }
  if (out.node_role == NodeRole::Storage && out.head_url.empty()) {
    throw ParseError("node_role storage requires head_url");
  }
  out.placement_replicas = static_cast<int>(
      config.get_int_or("placement_replicas", out.placement_replicas));
  if (out.placement_replicas < 1 || out.placement_replicas > 8) {
    throw ParseError("placement_replicas must be in [1, 8]");
  }
  if (auto capacity = config.get("node_capacity")) {
    try {
      out.node_capacity = std::stod(*capacity);
    } catch (const std::exception&) {
      throw ParseError("node_capacity must be a number: '" + *capacity + "'");
    }
    if (!(out.node_capacity > 0)) {
      throw ParseError("node_capacity must be > 0");
    }
  }
  out.federation_refresh_ms = static_cast<int>(
      config.get_int_or("federation_refresh_ms", out.federation_refresh_ms));
  if (out.federation_refresh_ms < 0 || out.federation_refresh_ms > 60000) {
    throw ParseError("federation_refresh_ms must be in [0, 60000]");
  }
  out.node_ticket_ttl_s = static_cast<int>(
      config.get_int_or("node_ticket_ttl_s", out.node_ticket_ttl_s));
  if (out.node_ticket_ttl_s < 1 || out.node_ticket_ttl_s > 86400) {
    throw ParseError("node_ticket_ttl_s must be in [1, 86400]");
  }
  out.placement_prefix_depth = static_cast<int>(config.get_int_or(
      "placement_prefix_depth", out.placement_prefix_depth));
  if (out.placement_prefix_depth < 1 || out.placement_prefix_depth > 8) {
    throw ParseError("placement_prefix_depth must be in [1, 8]");
  }

  // Replication / self-healing (head role).
  out.replication_grace_ms = static_cast<int>(
      config.get_int_or("replication_grace_ms", out.replication_grace_ms));
  if (out.replication_grace_ms < 100 || out.replication_grace_ms > 600000) {
    throw ParseError("replication_grace_ms must be in [100, 600000]");
  }
  out.replication_retry_max = static_cast<int>(
      config.get_int_or("replication_retry_max", out.replication_retry_max));
  if (out.replication_retry_max < 1 || out.replication_retry_max > 64) {
    throw ParseError("replication_retry_max must be in [1, 64]");
  }
  out.replication_retry_base_ms = static_cast<int>(config.get_int_or(
      "replication_retry_base_ms", out.replication_retry_base_ms));
  if (out.replication_retry_base_ms < 1 ||
      out.replication_retry_base_ms > 60000) {
    throw ParseError("replication_retry_base_ms must be in [1, 60000]");
  }
  out.replication_retry_max_ms = static_cast<int>(config.get_int_or(
      "replication_retry_max_ms", out.replication_retry_max_ms));
  if (out.replication_retry_max_ms < out.replication_retry_base_ms ||
      out.replication_retry_max_ms > 600000) {
    throw ParseError(
        "replication_retry_max_ms must be in [replication_retry_base_ms, "
        "600000]");
  }
  out.replication_chunk =
      config.get_int_or("replication_chunk", out.replication_chunk);
  if (out.replication_chunk < 4096 ||
      out.replication_chunk > out.max_read_chunk) {
    throw ParseError(
        "replication_chunk must be in [4096, max_read_chunk]");
  }
  out.fsck_interval_ms = static_cast<int>(
      config.get_int_or("fsck_interval_ms", out.fsck_interval_ms));
  if (out.fsck_interval_ms < 0 || out.fsck_interval_ms > 86400000) {
    throw ParseError("fsck_interval_ms must be in [0, 86400000]");
  }
  out.replica_suspect_ttl_ms = static_cast<int>(config.get_int_or(
      "replica_suspect_ttl_ms", out.replica_suspect_ttl_ms));
  if (out.replica_suspect_ttl_ms < 0 || out.replica_suspect_ttl_ms > 600000) {
    throw ParseError("replica_suspect_ttl_ms must be in [0, 600000]");
  }

  // station <host>:<port>
  if (auto value = config.get("station")) {
    std::size_t colon = value->rfind(':');
    if (colon == std::string::npos) {
      throw ParseError("station expects '<host>:<port>': '" + *value + "'");
    }
    out.station = {{value->substr(0, colon),
                    static_cast<std::uint16_t>(
                        util::parse_uint(value->substr(colon + 1)))}};
  }

  if (out.use_tls && !out.credential) {
    throw ParseError("use_tls requires credential_file");
  }
  return out;
}

ClarensConfig load_config_file(const std::string& path) {
  return config_from(util::Config::load(path));
}

}  // namespace clarens::core
