// DB-backed sessions.
//
// HTTP is stateless, so Clarens stores session information persistently
// on the server side (paper §1, end of Architecture): clients survive
// server restarts without re-authenticating. Every RPC performs a session
// lookup against the database — the first of the two per-request access
// checks the Figure-4 benchmark measures.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "db/store.hpp"

namespace clarens::core {

struct Session {
  std::string id;
  std::string identity;  // DN string
  bool via_proxy = false;
  std::int64_t created = 0;
  std::int64_t expires = 0;
  /// Serial of an attached stored proxy, if any (proxy.attach).
  std::string attached_proxy_serial;
};

class SessionManager {
 public:
  /// `store` must outlive the manager. `default_ttl` in seconds.
  SessionManager(db::Store& store, std::int64_t default_ttl = 24 * 3600);

  /// Mint a session for an authenticated identity.
  Session create(const std::string& identity, bool via_proxy);

  /// Validate and return the session; throws clarens::AuthError when the
  /// token is unknown or expired (expired sessions are reaped lazily).
  Session lookup(const std::string& id) const;

  /// Extend the expiry of an existing session (proxy renewal semantics).
  void renew(const std::string& id, std::int64_t extra_seconds);

  /// Record an attached proxy (delegation onto an existing session).
  void attach_proxy(const std::string& id, const std::string& proxy_serial);

  /// Returns true if the session existed.
  bool destroy(const std::string& id);

  /// Remove all expired sessions; returns count reaped.
  std::size_t reap_expired();

  std::size_t active_count() const;

 private:
  static std::string encode(const Session& session);
  static Session decode(const std::string& id, const std::string& text);

  db::Store& store_;
  std::int64_t default_ttl_;
};

}  // namespace clarens::core
