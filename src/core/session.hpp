// DB-backed sessions with a sharded in-memory read cache.
//
// HTTP is stateless, so Clarens stores session information persistently
// on the server side (paper §1, end of Architecture): clients survive
// server restarts without re-authenticating. Every RPC performs a session
// lookup — the first of the two per-request access checks the Figure-4
// benchmark measures. The database stays the source of truth (writes go
// through it first), but warm lookups are served from a sharded cache of
// decoded sessions so the RPC hot path touches neither the store mutex
// nor the JSON decoder.
//
// Cache coherence: create/renew/attach_proxy write the store and then
// overwrite the cache entry; destroy/reap invalidate. A generation
// counter closes the destroy-vs-concurrent-miss race: a lookup that
// missed records the generation before reading the store and refuses to
// populate the cache if any invalidation happened in between, so a just
// destroyed session can never be resurrected into the cache.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "db/store.hpp"
#include "pki/dn.hpp"
#include "util/sync.hpp"

namespace clarens::core {

struct Session {
  std::string id;
  std::string identity;  // DN string
  /// `identity` pre-parsed at decode time so per-request ACL checks skip
  /// DN string parsing entirely.
  pki::DistinguishedName identity_dn;
  bool via_proxy = false;
  std::int64_t created = 0;
  std::int64_t expires = 0;
  /// Serial of an attached stored proxy, if any (proxy.attach).
  std::string attached_proxy_serial;
};

class SessionManager {
 public:
  /// `store` must outlive the manager. `default_ttl` in seconds. With
  /// `durable_writes`, create/destroy use the store's group-commit
  /// durable path: the call returns only after the mutation's journal
  /// group is fdatasync'ed (concurrent logins share one fsync), so an
  /// acknowledged login survives a server crash.
  SessionManager(db::Store& store, std::int64_t default_ttl = 24 * 3600,
                 bool durable_writes = false);

  /// Mint a session for an authenticated identity.
  Session create(const std::string& identity, bool via_proxy);

  /// Validate and return the session; throws clarens::AuthError when the
  /// token is unknown or expired. Lookup never mutates the store:
  /// expired sessions are only dropped from the cache here, and reclaimed
  /// from the database by reap_expired().
  Session lookup(const std::string& id) const;

  /// Zero-copy variant of lookup(): returns the cached immutable session
  /// record. This is what the RPC hot path uses.
  std::shared_ptr<const Session> lookup_shared(const std::string& id) const;

  /// Extend the expiry of an existing session (proxy renewal semantics).
  void renew(const std::string& id, std::int64_t extra_seconds);

  /// Record an attached proxy (delegation onto an existing session).
  void attach_proxy(const std::string& id, const std::string& proxy_serial);

  /// Returns true if the session existed.
  bool destroy(const std::string& id);

  /// Remove all expired sessions; returns count reaped.
  std::size_t reap_expired();

  std::size_t active_count() const;

 private:
  static constexpr std::size_t kShards = 16;
  static constexpr std::size_t kShardCap = 4096;  // bound memory, not an LRU

  /// Shard locks are leaves: store reads on the miss path happen before
  /// the insert lock is taken, never under it (docs/CONCURRENCY.md,
  /// level `core.session.shard`).
  struct Shard {
    mutable util::Mutex mutex{util::LockLevel::kCoreSessionShard};
    std::unordered_map<std::string, std::shared_ptr<const Session>> entries
        CLARENS_GUARDED_BY(mutex);
  };

  static std::string encode(const Session& session);
  static Session decode(const std::string& id, const std::string& text);

  Shard& shard_for(const std::string& id) const;
  void cache_put(const Session& session) const;
  /// Insert an already-built immutable record without copying it.
  void cache_put(std::shared_ptr<const Session> session) const;
  void cache_erase(const std::string& id) const;

  db::Store& store_;
  std::int64_t default_ttl_;
  bool durable_writes_;
  mutable Shard shards_[kShards];
  // Bumped before every store erase of a session; see header comment.
  mutable std::atomic<std::uint64_t> invalidations_{1};
};

}  // namespace clarens::core
