#include "core/file_service.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "crypto/md5.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/strings.hpp"

namespace fs = std::filesystem;

namespace clarens::core {

FileService::FileService(AclManager& acl) : acl_(acl) {}

void FileService::add_root(const std::string& virtual_prefix,
                           const std::string& directory) {
  if (virtual_prefix.empty() || virtual_prefix.front() != '/') {
    throw ParseError("virtual root must start with '/': " + virtual_prefix);
  }
  fs::path canonical = fs::weakly_canonical(directory);
  roots_[virtual_prefix] = canonical.string();
}

std::vector<std::string> FileService::roots() const {
  std::vector<std::string> out;
  for (const auto& [prefix, _] : roots_) out.push_back(prefix);
  return out;
}

std::string FileService::resolve(const std::string& path) const {
  if (path.empty() || path.front() != '/') {
    throw AccessError("file paths must be absolute: '" + path + "'");
  }
  // Longest matching virtual prefix wins.
  const std::string* best_prefix = nullptr;
  const std::string* best_dir = nullptr;
  for (const auto& [prefix, dir] : roots_) {
    bool matches = path == prefix || util::starts_with(path, prefix + "/") ||
                   prefix == "/";
    if (matches && (!best_prefix || prefix.size() > best_prefix->size())) {
      best_prefix = &prefix;
      best_dir = &dir;
    }
  }
  if (!best_prefix) {
    throw NotFoundError("no virtual root matches '" + path + "'");
  }
  std::string rest = path.substr(best_prefix->size() == 1 && (*best_prefix)[0] == '/'
                                     ? 0
                                     : best_prefix->size());
  // Normalize and enforce containment: the resolved path must stay under
  // the root directory even in the presence of ".." components.
  fs::path real = fs::path(*best_dir) / fs::path(rest).relative_path();
  fs::path normal = real.lexically_normal();
  fs::path root_normal = fs::path(*best_dir).lexically_normal();
  auto rel = normal.lexically_relative(root_normal);
  if (rel.empty() || (!rel.native().empty() && *rel.begin() == "..")) {
    throw AccessError("path escapes virtual root: '" + path + "'");
  }
  return normal.string();
}

void FileService::require_read(const std::string& path,
                               const pki::DistinguishedName& who) const {
  if (!acl_.check_file_read(path, who)) {
    throw AccessError("read access denied: '" + path + "'");
  }
}

void FileService::require_write(const std::string& path,
                                const pki::DistinguishedName& who) const {
  if (!acl_.check_file_write(path, who)) {
    throw AccessError("write access denied: '" + path + "'");
  }
}

std::vector<std::uint8_t> FileService::read(const std::string& path,
                                            std::int64_t offset,
                                            std::int64_t length,
                                            const pki::DistinguishedName& who) const {
  require_read(path, who);
  if (offset < 0 || length < 0) throw ParseError("negative offset or length");
  if (length > max_read_chunk_) {
    throw ParseError("read length " + std::to_string(length) +
                     " exceeds maximum chunk of " +
                     std::to_string(max_read_chunk_) + " bytes");
  }
  std::string real = resolve(path);
  std::ifstream in(real, std::ios::binary);
  if (!in) throw NotFoundError("cannot open file: '" + path + "'");
  // The length arrives from the wire; size the buffer by what the file
  // can actually yield, never by the request alone.
  in.seekg(0, std::ios::end);
  std::int64_t file_size = static_cast<std::int64_t>(in.tellg());
  std::int64_t remaining = file_size > offset ? file_size - offset : 0;
  std::int64_t to_read = std::min(length, remaining);
  in.seekg(offset);
  std::vector<std::uint8_t> out(static_cast<std::size_t>(to_read));
  in.read(reinterpret_cast<char*>(out.data()), to_read);
  out.resize(static_cast<std::size_t>(in.gcount()));
  return out;
}

FileService::ResolvedRegion FileService::read_region(
    const std::string& path, std::int64_t offset, std::int64_t length,
    const pki::DistinguishedName& who) const {
  require_read(path, who);
  if (offset < 0 || length < 0) throw ParseError("negative offset or length");
  if (length > max_read_chunk_) {
    throw ParseError("read length " + std::to_string(length) +
                     " exceeds maximum chunk of " +
                     std::to_string(max_read_chunk_) + " bytes");
  }
  ResolvedRegion region;
  region.real_path = resolve(path);
  std::error_code ec;
  auto file_size =
      static_cast<std::int64_t>(fs::file_size(region.real_path, ec));
  if (ec) throw NotFoundError("cannot open file: '" + path + "'");
  std::int64_t remaining = file_size > offset ? file_size - offset : 0;
  region.offset = offset;
  region.length = std::min(length, remaining);
  return region;
}

std::vector<FileStat> FileService::ls(const std::string& path,
                                      const pki::DistinguishedName& who) const {
  require_read(path, who);
  std::string real = resolve(path);
  std::error_code ec;
  if (!fs::is_directory(real, ec)) {
    throw NotFoundError("not a directory: '" + path + "'");
  }
  std::vector<FileStat> out;
  for (const auto& entry : fs::directory_iterator(real, ec)) {
    FileStat st;
    st.name = entry.path().filename().string();
    st.is_directory = entry.is_directory(ec);
    if (!st.is_directory) {
      st.size = static_cast<std::int64_t>(entry.file_size(ec));
    }
    struct ::stat raw{};
    if (::stat(entry.path().c_str(), &raw) == 0) st.mtime = raw.st_mtime;
    out.push_back(std::move(st));
  }
  std::sort(out.begin(), out.end(),
            [](const FileStat& a, const FileStat& b) { return a.name < b.name; });
  return out;
}

FileStat FileService::stat(const std::string& path,
                           const pki::DistinguishedName& who) const {
  require_read(path, who);
  std::string real = resolve(path);
  struct ::stat raw{};
  if (::stat(real.c_str(), &raw) != 0) {
    throw NotFoundError("no such file: '" + path + "'");
  }
  FileStat st;
  std::size_t slash = path.rfind('/');
  st.name = slash == std::string::npos ? path : path.substr(slash + 1);
  st.is_directory = S_ISDIR(raw.st_mode);
  st.size = st.is_directory ? 0 : raw.st_size;
  st.mtime = raw.st_mtime;
  return st;
}

std::string FileService::md5(const std::string& path,
                             const pki::DistinguishedName& who) const {
  return checksum(path, who).md5;
}

FileService::FileChecksum FileService::checksum(
    const std::string& path, const pki::DistinguishedName& who) const {
  require_read(path, who);
  std::string real = resolve(path);
  FileChecksum out;
  std::optional<std::string> hex = crypto::Md5::file_hex(real, &out.size);
  if (!hex) throw NotFoundError("cannot open file: '" + path + "'");
  out.md5 = std::move(*hex);
  return out;
}

std::vector<std::string> FileService::find(const std::string& path,
                                           const std::string& pattern,
                                           const pki::DistinguishedName& who) const {
  require_read(path, who);
  std::string real = resolve(path);
  std::error_code ec;
  std::vector<std::string> out;
  fs::path base(real);
  for (auto it = fs::recursive_directory_iterator(
           base, fs::directory_options::skip_permission_denied, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) break;
    std::string name = it->path().filename().string();
    if (pattern == "*" || name.find(pattern) != std::string::npos) {
      // Report the virtual path: prefix + relative part.
      fs::path rel = it->path().lexically_relative(base);
      std::string virtual_path = path;
      if (virtual_path.back() != '/') virtual_path.push_back('/');
      virtual_path += rel.string();
      out.push_back(std::move(virtual_path));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::int64_t FileService::size(const std::string& path,
                               const pki::DistinguishedName& who) const {
  return stat(path, who).size;
}

void FileService::write(const std::string& path,
                        std::span<const std::uint8_t> data,
                        const pki::DistinguishedName& who) const {
  require_write(path, who);
  std::string real = resolve(path);
  // The detail is the resolved path: in-process cluster tests arm the
  // point against one node's data directory to fail just that node.
  if (CLARENS_FAULT("file.write.eio", real)) {
    throw SystemError("injected I/O error writing '" + path + "'");
  }
  std::ofstream out(real, std::ios::binary | std::ios::trunc);
  if (!out) throw SystemError("cannot write file: '" + path + "'");
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

void FileService::append(const std::string& path,
                         std::span<const std::uint8_t> data,
                         const pki::DistinguishedName& who) const {
  require_write(path, who);
  std::string real = resolve(path);
  if (CLARENS_FAULT("file.write.eio", real)) {
    throw SystemError("injected I/O error appending to '" + path + "'");
  }
  std::ofstream out(real, std::ios::binary | std::ios::app);
  if (!out) throw SystemError("cannot append to file: '" + path + "'");
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

void FileService::mkdir(const std::string& path,
                        const pki::DistinguishedName& who) const {
  require_write(path, who);
  std::string real = resolve(path);
  std::error_code ec;
  fs::create_directories(real, ec);
  if (ec) throw SystemError("mkdir failed: '" + path + "': " + ec.message());
}

void FileService::remove(const std::string& path,
                         const pki::DistinguishedName& who) const {
  require_write(path, who);
  std::string real = resolve(path);
  std::error_code ec;
  if (!fs::remove_all(real, ec) || ec) {
    if (ec) throw SystemError("remove failed: '" + path + "': " + ec.message());
    throw NotFoundError("no such file: '" + path + "'");
  }
}

std::string FileService::resolve_for_read(const std::string& path,
                                          const pki::DistinguishedName& who) const {
  require_read(path, who);
  return resolve(path);
}

}  // namespace clarens::core
