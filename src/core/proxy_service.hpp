// Proxy-certificate storage and delegation (paper §2.6).
//
// A proxy credential — short-lived certificate plus *unencrypted* private
// key — can be stored on a Clarens server protected by a password. It can
// later be:
//   * retrieved by anyone holding the DN and the password (delegation);
//   * used to log into the server knowing only DN + password
//     (proxy.logon), which is how the paper lets users authenticate
//     without typing their long-term key password repeatedly;
//   * attached to an existing session (proxy.attach), renewing it or
//     adding delegation to sessions initiated without a proxy — e.g.
//     browser sessions opened with a CA-issued certificate.
//
// Storage encrypts the credential with a key derived from the password
// (ChaCha20 + HMAC integrity, random salt), so the server's database
// never holds a usable private key in the clear.
#pragma once

#include <optional>
#include <string>

#include "db/store.hpp"
#include "pki/certificate.hpp"
#include "pki/verify.hpp"

namespace clarens::core {

class SessionManager;

class ProxyService {
 public:
  ProxyService(db::Store& store, SessionManager& sessions,
               const pki::TrustStore& trust);

  /// Store (replacing any previous) a proxy for its subject DN. The proxy
  /// chain must verify against the trust store. Throws AuthError on an
  /// invalid chain, ParseError on an empty password.
  void store(const pki::Credential& proxy, const pki::Certificate& user_cert,
             const std::string& password);

  /// Retrieve with DN + password. Throws AuthError on wrong password or
  /// missing entry, and if the stored proxy has expired.
  struct StoredProxy {
    pki::Credential proxy;
    pki::Certificate user_cert;
  };
  StoredProxy retrieve(const std::string& dn, const std::string& password) const;

  /// Create a session authenticated as the proxy's *user* identity from
  /// DN + password alone.
  std::string logon(const std::string& dn, const std::string& password);

  /// Attach the stored proxy to an existing session: marks the session
  /// delegated and extends it to the proxy's remaining lifetime.
  void attach(const std::string& session_id, const std::string& dn,
              const std::string& password);

  bool exists(const std::string& dn) const;
  bool remove(const std::string& dn, const std::string& password);

 private:
  db::Store& store_;
  SessionManager& sessions_;
  const pki::TrustStore& trust_;
};

}  // namespace clarens::core
