#include "core/server.hpp"

#include <chrono>
#include <filesystem>
#include <set>

#include "crypto/random.hpp"
#include "rpc/fault.hpp"
#include "rpc/jsonrpc.hpp"
#include "rpc/protocol.hpp"
#include "util/buffer.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace clarens::core {

namespace {

constexpr const char* kChallengeTable = "challenges";
constexpr const char* kSessionHeader = "X-Clarens-Session";

// Methods callable without an established session (they *create* the
// session, or are pure liveness probes).
bool is_public_method(const std::string& name) {
  return name == "system.challenge" || name == "system.auth" ||
         name == "system.ping" || name == "proxy.logon";
}

const rpc::Value& arg(const std::vector<rpc::Value>& params, std::size_t i) {
  if (i >= params.size()) {
    throw rpc::Fault(rpc::kFaultType,
                     "missing parameter " + std::to_string(i));
  }
  return params[i];
}

std::string arg_string(const std::vector<rpc::Value>& params, std::size_t i) {
  return arg(params, i).as_string();
}

std::int64_t arg_int(const std::vector<rpc::Value>& params, std::size_t i) {
  return arg(params, i).as_int();
}

rpc::Value strings_value(const std::vector<std::string>& list) {
  rpc::Value v = rpc::Value::array();
  for (const auto& s : list) v.push(s);
  return v;
}

rpc::Value spec_value(const AclSpec& spec) {
  return rpc::jsonrpc::parse_value(encode_spec(spec));
}

AclSpec spec_from(const rpc::Value& v) {
  return decode_spec(rpc::jsonrpc::serialize_value(v));
}

rpc::Value stat_value(const FileStat& st) {
  rpc::Value v = rpc::Value::struct_();
  v.set("name", st.name);
  v.set("is_directory", st.is_directory);
  v.set("size", st.size);
  v.set("mtime", rpc::DateTime{st.mtime});
  return v;
}

// Minimal browser portal (paper §3): a static page whose JavaScript would
// issue the web-service calls; served to satisfy HTTP GET on "/".
constexpr const char* kPortalPage = R"(<!DOCTYPE html>
<html><head><title>Clarens Server</title></head>
<body>
<h1>Clarens Web Service Framework</h1>
<p>This server speaks XML-RPC, SOAP and JSON-RPC on POST /clarens.</p>
<ul>
  <li>Remote file browsing: GET under a configured virtual root</li>
  <li>VO management: vo.* methods</li>
  <li>Access control management: acl.* methods</li>
  <li>Service discovery: discovery.* methods</li>
  <li>Job submission / shell: shell.* methods</li>
</ul>
</body></html>
)";

}  // namespace

ClarensServer::ClarensServer(ClarensConfig config)
    : config_(std::move(config)) {
  store_ = config_.data_dir.empty()
               ? std::make_unique<db::Store>()
               : std::make_unique<db::Store>(config_.data_dir);
  sessions_ = std::make_unique<SessionManager>(*store_, config_.session_ttl);
  vo_ = std::make_unique<VoManager>(*store_, config_.admins);
  acl_ = std::make_unique<AclManager>(*store_, *vo_, config_.default_allow);
  files_ = std::make_unique<FileService>(*acl_);
  for (const auto& [prefix, dir] : config_.file_roots) {
    files_->add_root(prefix, dir);
  }
  if (!config_.sandbox_base.empty()) {
    shell_ = std::make_unique<ShellService>(*vo_, config_.sandbox_base);
    shell_->set_user_map(config_.user_map);
    // Sandboxes are visible to the file service (paper §2.5).
    files_->add_root("/sandbox", config_.sandbox_base);
  }
  proxy_ = std::make_unique<ProxyService>(*store_, *sessions_, config_.trust);
  messages_ = std::make_unique<MessageService>(*store_);
  if (shell_) {
    jobs_ = std::make_unique<JobService>(*store_, *shell_, config_.job_workers);
  }
  if (config_.transfer_workers > 0) {
    transfers_ = std::make_unique<TransferService>(
        *store_, *files_, *proxy_, config_.trust, config_.transfer_workers);
  }

  for (const auto& [path, spec] : config_.initial_method_acls) {
    acl_->set_method_acl(path, spec);
  }
  for (const auto& [path, facl] : config_.initial_file_acls) {
    acl_->set_file_acl(path, facl);
  }

  register_core_methods();
}

ClarensServer::~ClarensServer() { stop(); }

void ClarensServer::start() {
  http::ServerOptions options;
  options.host = config_.host;
  options.port = config_.port;
  options.max_connections = config_.max_connections;
  if (config_.use_tls) {
    if (!config_.credential) {
      throw Error("TLS requires a server credential");
    }
    tls::TlsConfig tls;
    tls.credential = config_.credential;
    tls.chain = config_.chain;
    tls.trust = &config_.trust;
    tls.require_peer_certificate = config_.require_client_cert;
    options.tls = std::move(tls);
  }
  http_ = std::make_unique<http::Server>(
      std::move(options), [this](const http::Request& request,
                                 const http::Peer& peer) {
        return handle(request, peer);
      });
  http_->start();
  started_at_ = util::unix_now();
  if (config_.station) start_publisher();
  if (config_.session_reap_interval_s > 0) {
    reaper_stopping_ = false;
    reaper_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(reaper_mutex_);
      while (!reaper_stop_.wait_for(
          lock, std::chrono::seconds(config_.session_reap_interval_s),
          [this] { return reaper_stopping_; })) {
        sessions_->reap_expired();
      }
    });
  }
}

void ClarensServer::stop() {
  {
    std::lock_guard<std::mutex> lock(reaper_mutex_);
    reaper_stopping_ = true;
  }
  reaper_stop_.notify_all();
  if (reaper_.joinable()) reaper_.join();
  if (publisher_) publisher_->stop();
  if (http_) http_->stop();
}

std::uint16_t ClarensServer::port() const { return http_ ? http_->port() : 0; }

std::string ClarensServer::url() const {
  return std::string(config_.use_tls ? "https" : "http") + "://" +
         config_.host + ":" + std::to_string(port()) + "/clarens";
}

Session ClarensServer::direct_login(const std::string& identity_dn) {
  return sessions_->create(identity_dn, /*via_proxy=*/false);
}

std::shared_ptr<const Session> ClarensServer::check_session(
    const std::string& session_id) const {
  if (session_id.empty()) throw AuthError("no session token supplied");
  return sessions_->lookup_shared(session_id);
}

void ClarensServer::check_acl(const std::string& method,
                              const pki::DistinguishedName& dn) const {
  // ACL first: the common case is an explicit allow, and the root-admin
  // bypass (root administrators own the ACL tables) only matters when
  // the ACL chain would deny.
  if (acl_->check_method(method, dn)) return;
  if (vo_->is_root_admin(dn)) return;
  throw AccessError("access denied to method '" + method + "'");
}

void ClarensServer::start_publisher() {
  publisher_ = std::make_unique<discovery::Publisher>(config_.station->first,
                                                      config_.station->second);
  std::vector<discovery::ServiceRecord> records;
  std::set<std::string> modules;
  for (const auto& name : registry_.list()) {
    modules.insert(name.substr(0, name.find('.')));
  }
  for (const auto& module : modules) {
    discovery::ServiceRecord record;
    record.farm = config_.farm;
    record.node = config_.node;
    record.service = module;
    record.url = url();
    record.protocol = "xmlrpc";
    record.version = "1.0";
    // GLUE-style key/numerical-value pairs (paper §2.4): basic load data
    // rides along with the service description.
    record.metrics["methods"] = static_cast<double>(registry_.size());
    record.metrics["sessions"] =
        static_cast<double>(sessions_->active_count());
    records.push_back(std::move(record));
  }
  publisher_->set_records(std::move(records));
  publisher_->start_periodic(config_.publish_interval_ms);
}

http::Response ClarensServer::handle(const http::Request& request,
                                     const http::Peer& peer) {
  if (request.method == "POST") return handle_rpc(request, peer);
  if (request.method == "GET" || request.method == "HEAD") {
    return handle_get(request, peer);
  }
  return http::Response::make(405, "method not allowed\n");
}

http::Response ClarensServer::handle_rpc(const http::Request& request,
                                         const http::Peer& peer) {
  rpc::Protocol protocol = rpc::Protocol::XmlRpc;
  rpc::Response rpc_response;
  rpc::Value request_id;
  try {
    const std::string* content_type = request.headers.find("Content-Type");
    protocol = rpc::detect(content_type ? *content_type : std::string_view(),
                           request.body);
    rpc::Request rpc_request = rpc::parse_request(protocol, request.body);
    request_id = rpc_request.id;

    rpc::CallContext context;
    context.protocol = rpc::to_string(protocol);

    if (is_public_method(rpc_request.method)) {
      // TLS-verified identity is available even pre-session.
      if (peer.tls_identity && peer.tls_identity->ok) {
        context.identity = peer.tls_identity->identity.str();
        context.via_proxy = peer.tls_identity->via_proxy;
      }
    } else {
      // Check 1: session lookup (cache, write-through to the database).
      static const std::string kNoToken;
      const std::string* token = request.headers.find(kSessionHeader);
      std::shared_ptr<const Session> session =
          check_session(token ? *token : kNoToken);
      context.identity = session->identity;
      context.session_id = session->id;
      context.via_proxy = session->via_proxy;
      // Check 2: method ACL (compiled-spec cache; DN pre-parsed at
      // session decode time).
      check_acl(rpc_request.method, session->identity_dn);
    }

    rpc::Value result =
        registry_.dispatch(rpc_request.method, context, rpc_request.params);
    rpc_response = rpc::Response::success(std::move(result));
  } catch (const rpc::Fault& fault) {
    rpc_response = rpc::Response::fault(fault.code(), fault.what());
  } catch (const Error& error) {
    rpc_response = rpc::Response::fault(error.code(), error.what());
  } catch (const std::exception& error) {
    rpc_response = rpc::Response::fault(rpc::kFaultGeneric, error.what());
  }
  rpc_response.id = request_id;

  // Serialize into a per-worker arena and hand the HTTP layer a view of
  // it: the worker that runs this handler also performs the vectored
  // write, so no heap copy of the body is ever made. The arena is
  // compacted after pathological responses so a one-off huge payload
  // doesn't pin its allocation.
  thread_local util::Buffer arena;
  arena.clear();
  arena.compact();
  rpc::serialize_response(protocol, rpc_response, arena);
  http::Response response;
  response.status = 200;
  response.reason = http::reason_phrase(200);
  response.headers.set("Content-Type", rpc::content_type(protocol));
  response.body_view = arena.peek_view();
  return response;
}

namespace {

/// Content types for the portal's static assets.
const char* portal_content_type(const std::string& path) {
  auto ends = [&path](const char* suffix) {
    return util::ends_with(path, suffix);
  };
  if (ends(".html") || ends(".htm")) return "text/html";
  if (ends(".js")) return "application/javascript";
  if (ends(".css")) return "text/css";
  if (ends(".png")) return "image/png";
  if (ends(".gif")) return "image/gif";
  if (ends(".jpg") || ends(".jpeg")) return "image/jpeg";
  if (ends(".svg")) return "image/svg+xml";
  if (ends(".txt")) return "text/plain";
  return "application/octet-stream";
}

}  // namespace

http::Response ClarensServer::serve_portal(const std::string& path) const {
  if (config_.portal_dir.empty()) {
    if (path == "/" || path == "/index.html" || path == "/portal") {
      return http::Response::make(200, kPortalPage, "text/html");
    }
    return http::Response::make(404, "no portal configured\n");
  }
  // Map "/" -> index.html; "/portal/x" -> x. Containment enforced.
  std::string rel = path == "/" || path == "/portal"
                        ? "index.html"
                        : path.substr(std::string("/portal/").size());
  namespace fs = std::filesystem;
  fs::path full = (fs::path(config_.portal_dir) / rel).lexically_normal();
  auto inside = full.lexically_relative(
      fs::path(config_.portal_dir).lexically_normal());
  if (inside.empty() || (*inside.begin() == "..")) {
    return http::Response::make(403, "portal path escapes root\n");
  }
  if (!fs::is_regular_file(full)) {
    return http::Response::make(404, "no such portal page\n");
  }
  http::Response response =
      http::Response::make(200, "", portal_content_type(rel));
  response.file = http::Response::FileRegion{full.string(), 0, -1};
  return response;
}

http::Response ClarensServer::handle_get(const http::Request& request,
                                         const http::Peer& peer) {
  std::string path = request.path();
  if (path == "/" || path == "/index.html" || path == "/portal" ||
      util::starts_with(path, "/portal/")) {
    return serve_portal(path);
  }
  if (path == "/ping") return http::Response::make(200, "pong\n");

  // File serving: identity from TLS, else from a session header, else
  // anonymous (empty DN — only files whose ACL allows '*' are served...
  // which requires an authenticated match, so effectively none unless
  // default_allow is set).
  pki::DistinguishedName identity;
  if (peer.tls_identity && peer.tls_identity->ok) {
    identity = peer.tls_identity->identity;
  } else if (auto token = request.headers.get(kSessionHeader)) {
    try {
      identity = sessions_->lookup_shared(*token)->identity_dn;
    } catch (const AuthError&) {
      return http::Response::make(401, "invalid session\n");
    }
  }

  try {
    std::string real = files_->resolve_for_read(path, identity);
    FileStat st = files_->stat(path, identity);
    if (st.is_directory) {
      // Simple index listing, as the paper's file browser component shows.
      std::string body = "<html><body><h2>" + path + "</h2><ul>";
      for (const auto& entry : files_->ls(path, identity)) {
        body += "<li>" + entry.name + (entry.is_directory ? "/" : "") + "</li>";
      }
      body += "</ul></body></html>";
      return http::Response::make(200, body, "text/html");
    }
    http::Response response = http::Response::make(200, "", "application/octet-stream");
    // Range support: "offset-length" via query (?offset=&length=).
    auto query = request.query();
    std::int64_t offset = 0, length = -1;
    if (auto it = query.find("offset"); it != query.end()) {
      offset = util::parse_int(it->second);
    }
    if (auto it = query.find("length"); it != query.end()) {
      length = util::parse_int(it->second);
    }
    response.file = http::Response::FileRegion{real, offset, length};
    return response;
  } catch (const AccessError& e) {
    return http::Response::make(403, std::string(e.what()) + "\n");
  } catch (const NotFoundError& e) {
    return http::Response::make(404, std::string(e.what()) + "\n");
  }
}

void ClarensServer::attach_discovery(discovery::DiscoveryServer& discovery) {
  discovery_ = &discovery;
  registry_.add(
      "discovery.find_services",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>& params) {
        std::string query = params.empty() ? "" : params[0].as_string();
        rpc::Value out = rpc::Value::array();
        for (const auto& record : discovery_->find_services(query)) {
          out.push(record.to_value());
        }
        return out;
      },
      "Search aggregated service records by service-name substring",
      "array (string query)");
  registry_.add(
      "discovery.find_servers",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>&) {
        return strings_value(discovery_->find_servers());
      },
      "List distinct server endpoints known to discovery", "array ()");
  registry_.add(
      "discovery.locate",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>& params) {
        auto url = discovery_->locate(arg_string(params, 0));
        if (!url) {
          throw rpc::Fault(rpc::kFaultNotFound,
                           "no live endpoint for service");
        }
        return rpc::Value(*url);
      },
      "Resolve a service name to a live endpoint URL",
      "string (string service)");
}

void ClarensServer::attach_storage(storage::SrmService& srm) {
  srm_ = &srm;
  // Staged copies live in the SRM disk cache; exposing it as a virtual
  // root lets clients read READY files through file.read / HTTP GET.
  files_->add_root("/srmcache", srm.storage().cache_dir());

  registry_.add(
      "srm.prepare_to_get",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>& params) {
        return rpc::Value(srm_->prepare_to_get(arg_string(params, 0)));
      },
      "Request staging of a tape file; returns a request token",
      "string (string logical_path)");
  registry_.add(
      "srm.status",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>& params) {
        storage::SrmRequest request = srm_->status(arg_string(params, 0));
        rpc::Value v = rpc::Value::struct_();
        v.set("token", request.token);
        v.set("path", request.logical_path);
        v.set("state", std::string(storage::to_string(request.state)));
        if (request.state == storage::SrmState::Ready) {
          // Virtual path of the staged copy (basename inside the cache).
          std::string name = request.cache_file;
          std::size_t slash = name.rfind('/');
          if (slash != std::string::npos) name = name.substr(slash + 1);
          v.set("cache_path", "/srmcache/" + name);
        }
        if (!request.error.empty()) v.set("error", request.error);
        return v;
      },
      "State of a staging request (QUEUED/STAGING/READY/FAILED)",
      "struct (string token)");
  registry_.add(
      "srm.release",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>& params) {
        srm_->release(arg_string(params, 0));
        return rpc::Value(true);
      },
      "Release (unpin) a READY staging request", "boolean (string token)");
  registry_.add(
      "srm.put",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>& params) {
        const rpc::Value& data = arg(params, 1);
        if (data.type() == rpc::Value::Type::Binary) {
          const auto& blob = data.as_binary();
          srm_->put(arg_string(params, 0),
                    std::string_view(reinterpret_cast<const char*>(blob.data()),
                                     blob.size()));
        } else {
          srm_->put(arg_string(params, 0), data.as_string());
        }
        return rpc::Value(true);
      },
      "Write a file through the cache to tape",
      "boolean (string logical_path, base64|string data)");
  registry_.add(
      "srm.ls",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>& params) {
        return strings_value(srm_->ls(arg_string(params, 0)));
      },
      "List the tape namespace below a logical directory",
      "array (string logical_dir)");
  registry_.add(
      "srm.size",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>& params) {
        return rpc::Value(srm_->size(arg_string(params, 0)));
      },
      "Size of a tape file in bytes", "int (string logical_path)");
}

void ClarensServer::register_core_methods() {
  // ---- system ---------------------------------------------------------
  registry_.add(
      "system.list_methods",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>&) {
        return strings_value(registry_.list());
      },
      "List every method registered on this server", "array ()");
  registry_.add(
      "system.method_help",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>& params) {
        return rpc::Value(registry_.info(arg_string(params, 0)).help);
      },
      "One-line description of a method", "string (string method)");
  registry_.add(
      "system.method_signature",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>& params) {
        return rpc::Value(registry_.info(arg_string(params, 0)).signature);
      },
      "Type signature of a method", "string (string method)");
  registry_.add(
      "system.ping",
      [](const rpc::CallContext&, const std::vector<rpc::Value>&) {
        return rpc::Value(std::string("pong"));
      },
      "Liveness probe (no session required)", "string ()");
  registry_.add(
      "system.whoami",
      [](const rpc::CallContext& context, const std::vector<rpc::Value>&) {
        rpc::Value v = rpc::Value::struct_();
        v.set("dn", context.identity);
        v.set("via_proxy", context.via_proxy);
        v.set("protocol", context.protocol);
        return v;
      },
      "Authenticated identity of the caller", "struct ()");
  registry_.add(
      "system.server_info",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>&) {
        rpc::Value v = rpc::Value::struct_();
        v.set("framework", std::string("clarens-cpp"));
        v.set("version", std::string("1.0"));
        v.set("methods", static_cast<std::int64_t>(registry_.size()));
        v.set("encrypted", config_.use_tls);
        v.set("farm", config_.farm);
        v.set("node", config_.node);
        return v;
      },
      "Server identification and capabilities", "struct ()");
  registry_.add(
      "system.stats",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>&) {
        rpc::Value v = rpc::Value::struct_();
        v.set("requests_served",
              static_cast<std::int64_t>(requests_served()));
        v.set("active_sessions",
              static_cast<std::int64_t>(sessions_->active_count()));
        v.set("uptime_seconds", util::unix_now() - started_at_);
        v.set("methods", static_cast<std::int64_t>(registry_.size()));
        return v;
      },
      "Operational counters (requests, sessions, uptime)", "struct ()");
  registry_.add(
      "system.challenge",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>&) {
        std::string nonce = crypto::random_token(24);
        rpc::Value v = rpc::Value::struct_();
        v.set("expires", util::unix_now() + config_.challenge_ttl);
        store_->put(kChallengeTable, nonce, rpc::jsonrpc::serialize_value(v));
        return rpc::Value(nonce);
      },
      "Issue a single-use authentication nonce", "string ()");
  registry_.add(
      "system.auth",
      [this](const rpc::CallContext& context,
             const std::vector<rpc::Value>& params) {
        if (params.empty()) {
          // TLS path: the channel already verified the client chain.
          if (context.identity.empty()) {
            throw rpc::Fault(rpc::kFaultAuth,
                             "no certificate presented on this connection");
          }
          Session session =
              sessions_->create(context.identity, context.via_proxy);
          return rpc::Value(session.id);
        }
        // Challenge path (plaintext connections):
        //   params = [nonce, chain (array of certificate strings),
        //             signature (base64 of sig over the nonce)].
        std::string nonce = arg_string(params, 0);
        auto challenge = store_->get(kChallengeTable, nonce);
        if (!challenge) throw rpc::Fault(rpc::kFaultAuth, "unknown challenge");
        store_->erase(kChallengeTable, nonce);  // single use
        rpc::Value cv = rpc::jsonrpc::parse_value(*challenge);
        if (cv.at("expires").as_int() < util::unix_now()) {
          throw rpc::Fault(rpc::kFaultAuth, "challenge expired");
        }
        std::vector<pki::Certificate> chain;
        for (const auto& cert_text : arg(params, 1).as_array()) {
          chain.push_back(pki::Certificate::decode(cert_text.as_string()));
        }
        if (chain.empty()) throw rpc::Fault(rpc::kFaultAuth, "empty chain");
        auto verdict = config_.trust.verify(chain, util::unix_now());
        if (!verdict.ok) {
          throw rpc::Fault(rpc::kFaultAuth,
                           "certificate rejected: " + verdict.error);
        }
        std::vector<std::uint8_t> signature =
            util::base64_decode(arg_string(params, 2));
        if (!crypto::rsa_verify(chain.front().public_key(), nonce, signature)) {
          throw rpc::Fault(rpc::kFaultAuth, "challenge signature invalid");
        }
        Session session =
            sessions_->create(verdict.identity.str(), verdict.via_proxy);
        return rpc::Value(session.id);
      },
      "Authenticate with a certificate chain; returns a session token",
      "string (string nonce, array chain, string signature)");
  registry_.add(
      "system.logout",
      [this](const rpc::CallContext& context, const std::vector<rpc::Value>&) {
        return rpc::Value(sessions_->destroy(context.session_id));
      },
      "Destroy the calling session", "boolean ()");

  // ---- echo (the trivial method of the Globus comparison) -------------
  registry_.add(
      "echo.echo",
      [](const rpc::CallContext&, const std::vector<rpc::Value>& params) {
        return params.empty() ? rpc::Value() : params[0];
      },
      "Return the first parameter unchanged", "any (any value)");

  // ---- vo --------------------------------------------------------------
  auto actor_of = [](const rpc::CallContext& context) {
    return pki::DistinguishedName::parse(context.identity);
  };
  registry_.add(
      "vo.groups",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>&) {
        return strings_value(vo_->list_groups());
      },
      "List all VO groups", "array ()");
  registry_.add(
      "vo.info",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>& params) {
        GroupInfo info = vo_->info(arg_string(params, 0));
        rpc::Value v = rpc::Value::struct_();
        v.set("name", info.name);
        v.set("members", strings_value(info.members));
        v.set("admins", strings_value(info.admins));
        return v;
      },
      "Members and administrators of a group", "struct (string group)");
  registry_.add(
      "vo.create_group",
      [this, actor_of](const rpc::CallContext& context,
                       const std::vector<rpc::Value>& params) {
        vo_->create_group(arg_string(params, 0), actor_of(context));
        return rpc::Value(true);
      },
      "Create a group (admins of the parent branch only)",
      "boolean (string group)");
  registry_.add(
      "vo.delete_group",
      [this, actor_of](const rpc::CallContext& context,
                       const std::vector<rpc::Value>& params) {
        vo_->delete_group(arg_string(params, 0), actor_of(context));
        return rpc::Value(true);
      },
      "Delete a group and its descendants", "boolean (string group)");
  registry_.add(
      "vo.add_member",
      [this, actor_of](const rpc::CallContext& context,
                       const std::vector<rpc::Value>& params) {
        vo_->add_member(arg_string(params, 0), arg_string(params, 1),
                        actor_of(context));
        return rpc::Value(true);
      },
      "Add a member DN (prefix) to a group",
      "boolean (string group, string dn)");
  registry_.add(
      "vo.remove_member",
      [this, actor_of](const rpc::CallContext& context,
                       const std::vector<rpc::Value>& params) {
        vo_->remove_member(arg_string(params, 0), arg_string(params, 1),
                           actor_of(context));
        return rpc::Value(true);
      },
      "Remove a member DN from a group", "boolean (string group, string dn)");
  registry_.add(
      "vo.add_admin",
      [this, actor_of](const rpc::CallContext& context,
                       const std::vector<rpc::Value>& params) {
        vo_->add_admin(arg_string(params, 0), arg_string(params, 1),
                       actor_of(context));
        return rpc::Value(true);
      },
      "Add an administrator DN to a group",
      "boolean (string group, string dn)");
  registry_.add(
      "vo.remove_admin",
      [this, actor_of](const rpc::CallContext& context,
                       const std::vector<rpc::Value>& params) {
        vo_->remove_admin(arg_string(params, 0), arg_string(params, 1),
                          actor_of(context));
        return rpc::Value(true);
      },
      "Remove an administrator DN from a group",
      "boolean (string group, string dn)");
  registry_.add(
      "vo.is_member",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>& params) {
        return rpc::Value(vo_->is_member(
            arg_string(params, 0),
            pki::DistinguishedName::parse(arg_string(params, 1))));
      },
      "Test (inherited, prefix-matched) group membership",
      "boolean (string group, string dn)");

  // ---- acl --------------------------------------------------------------
  auto require_root = [this, actor_of](const rpc::CallContext& context) {
    if (!vo_->is_root_admin(actor_of(context))) {
      throw AccessError("ACL management requires root administrator");
    }
  };
  registry_.add(
      "acl.set_method",
      [this, require_root](const rpc::CallContext& context,
                           const std::vector<rpc::Value>& params) {
        require_root(context);
        acl_->set_method_acl(arg_string(params, 0), spec_from(arg(params, 1)));
        return rpc::Value(true);
      },
      "Attach an ACL to a method path", "boolean (string path, struct spec)");
  registry_.add(
      "acl.get_method",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>& params) {
        auto spec = acl_->get_method_acl(arg_string(params, 0));
        if (!spec) throw rpc::Fault(rpc::kFaultNotFound, "no ACL at this path");
        return spec_value(*spec);
      },
      "Fetch the ACL attached to a method path", "struct (string path)");
  registry_.add(
      "acl.del_method",
      [this, require_root](const rpc::CallContext& context,
                           const std::vector<rpc::Value>& params) {
        require_root(context);
        acl_->remove_method_acl(arg_string(params, 0));
        return rpc::Value(true);
      },
      "Remove the ACL at a method path", "boolean (string path)");
  registry_.add(
      "acl.list",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>&) {
        rpc::Value v = rpc::Value::struct_();
        v.set("methods", strings_value(acl_->list_method_acls()));
        v.set("files", strings_value(acl_->list_file_acls()));
        return v;
      },
      "All paths carrying ACLs", "struct ()");
  registry_.add(
      "acl.check_method",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>& params) {
        return rpc::Value(acl_->check_method(
            arg_string(params, 0),
            pki::DistinguishedName::parse(arg_string(params, 1))));
      },
      "Evaluate method access for a DN", "boolean (string method, string dn)");
  registry_.add(
      "acl.set_file",
      [this, require_root](const rpc::CallContext& context,
                           const std::vector<rpc::Value>& params) {
        require_root(context);
        FileAcl facl;
        facl.read = spec_from(arg(params, 1).at("read"));
        facl.write = spec_from(arg(params, 1).at("write"));
        acl_->set_file_acl(arg_string(params, 0), facl);
        return rpc::Value(true);
      },
      "Attach a read/write ACL to a file path",
      "boolean (string path, struct {read, write})");
  registry_.add(
      "acl.get_file",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>& params) {
        auto facl = acl_->get_file_acl(arg_string(params, 0));
        if (!facl) throw rpc::Fault(rpc::kFaultNotFound, "no ACL at this path");
        rpc::Value v = rpc::Value::struct_();
        v.set("read", spec_value(facl->read));
        v.set("write", spec_value(facl->write));
        return v;
      },
      "Fetch the file ACL at a path", "struct (string path)");
  registry_.add(
      "acl.del_file",
      [this, require_root](const rpc::CallContext& context,
                           const std::vector<rpc::Value>& params) {
        require_root(context);
        acl_->remove_file_acl(arg_string(params, 0));
        return rpc::Value(true);
      },
      "Remove the file ACL at a path", "boolean (string path)");

  // ---- file --------------------------------------------------------------
  auto who_of = [](const rpc::CallContext& context) {
    return pki::DistinguishedName::parse(context.identity);
  };
  registry_.add(
      "file.read",
      [this, who_of](const rpc::CallContext& context,
                     const std::vector<rpc::Value>& params) {
        return rpc::Value(files_->read(arg_string(params, 0),
                                       arg_int(params, 1), arg_int(params, 2),
                                       who_of(context)));
      },
      "Read a byte range of a remote file",
      "base64 (string path, int offset, int length)");
  registry_.add(
      "file.write",
      [this, who_of](const rpc::CallContext& context,
                     const std::vector<rpc::Value>& params) {
        const rpc::Value& data = arg(params, 1);
        if (data.type() == rpc::Value::Type::Binary) {
          files_->write(arg_string(params, 0), data.as_binary(), who_of(context));
        } else {
          const std::string& s = data.as_string();
          files_->write(arg_string(params, 0),
                        std::span<const std::uint8_t>(
                            reinterpret_cast<const std::uint8_t*>(s.data()),
                            s.size()),
                        who_of(context));
        }
        return rpc::Value(true);
      },
      "Create or overwrite a remote file",
      "boolean (string path, base64|string data)");
  registry_.add(
      "file.ls",
      [this, who_of](const rpc::CallContext& context,
                     const std::vector<rpc::Value>& params) {
        rpc::Value out = rpc::Value::array();
        for (const auto& st : files_->ls(arg_string(params, 0), who_of(context))) {
          out.push(stat_value(st));
        }
        return out;
      },
      "Directory listing", "array (string path)");
  registry_.add(
      "file.stat",
      [this, who_of](const rpc::CallContext& context,
                     const std::vector<rpc::Value>& params) {
        return stat_value(files_->stat(arg_string(params, 0), who_of(context)));
      },
      "File or directory information", "struct (string path)");
  registry_.add(
      "file.md5",
      [this, who_of](const rpc::CallContext& context,
                     const std::vector<rpc::Value>& params) {
        return rpc::Value(files_->md5(arg_string(params, 0), who_of(context)));
      },
      "MD5 integrity hash of a file", "string (string path)");
  registry_.add(
      "file.size",
      [this, who_of](const rpc::CallContext& context,
                     const std::vector<rpc::Value>& params) {
        return rpc::Value(files_->size(arg_string(params, 0), who_of(context)));
      },
      "Size of a file in bytes", "int (string path)");
  registry_.add(
      "file.find",
      [this, who_of](const rpc::CallContext& context,
                     const std::vector<rpc::Value>& params) {
        return strings_value(files_->find(arg_string(params, 0),
                                          arg_string(params, 1),
                                          who_of(context)));
      },
      "Recursive filename search", "array (string path, string pattern)");
  registry_.add(
      "file.mkdir",
      [this, who_of](const rpc::CallContext& context,
                     const std::vector<rpc::Value>& params) {
        files_->mkdir(arg_string(params, 0), who_of(context));
        return rpc::Value(true);
      },
      "Create a directory", "boolean (string path)");
  registry_.add(
      "file.rm",
      [this, who_of](const rpc::CallContext& context,
                     const std::vector<rpc::Value>& params) {
        files_->remove(arg_string(params, 0), who_of(context));
        return rpc::Value(true);
      },
      "Remove a file or directory tree", "boolean (string path)");
  registry_.add(
      "file.roots",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>&) {
        return strings_value(files_->roots());
      },
      "Configured virtual root prefixes", "array ()");

  // ---- shell --------------------------------------------------------------
  if (shell_) {
    registry_.add(
        "shell.cmd",
        [this, who_of](const rpc::CallContext& context,
                       const std::vector<rpc::Value>& params) {
          ShellResult result =
              shell_->execute(who_of(context), arg_string(params, 0));
          rpc::Value v = rpc::Value::struct_();
          v.set("exit_code", static_cast<std::int64_t>(result.exit_code));
          v.set("stdout", result.out);
          v.set("stderr", result.err);
          return v;
        },
        "Execute a sandboxed command as the mapped system user",
        "struct (string command)");
    registry_.add(
        "shell.cmd_info",
        [this, who_of](const rpc::CallContext& context,
                       const std::vector<rpc::Value>&) {
          rpc::Value v = rpc::Value::struct_();
          v.set("sandbox", shell_->cmd_info(who_of(context)));
          auto user = shell_->map_user(who_of(context));
          v.set("user", user ? *user : std::string());
          return v;
        },
        "Sandbox directory (file-service visible) and mapped user",
        "struct ()");
    registry_.add(
        "shell.commands",
        [](const rpc::CallContext&, const std::vector<rpc::Value>&) {
          return strings_value(ShellService::supported_commands());
        },
        "Commands the restricted interpreter supports", "array ()");

    // ---- job submission (portal functionality, paper §3) ----------------
    auto job_value = [](const Job& job) {
      rpc::Value v = rpc::Value::struct_();
      v.set("id", job.id);
      v.set("command", job.command);
      v.set("state", std::string(to_string(job.state)));
      v.set("exit_code", static_cast<std::int64_t>(job.exit_code));
      v.set("output", job.output);
      v.set("error", job.error);
      v.set("submitted", rpc::DateTime{job.submitted});
      if (job.finished > 0) v.set("finished", rpc::DateTime{job.finished});
      return v;
    };
    registry_.add(
        "job.submit",
        [this, who_of](const rpc::CallContext& context,
                       const std::vector<rpc::Value>& params) {
          return rpc::Value(
              jobs_->submit(who_of(context), arg_string(params, 0)));
        },
        "Queue a sandboxed command for asynchronous execution",
        "string (string command)");
    registry_.add(
        "job.status",
        [this, who_of, job_value](const rpc::CallContext& context,
                                  const std::vector<rpc::Value>& params) {
          return job_value(jobs_->status(arg_string(params, 0), who_of(context)));
        },
        "State, exit code and captured output of a job",
        "struct (string job_id)");
    registry_.add(
        "job.list",
        [this, who_of, job_value](const rpc::CallContext& context,
                                  const std::vector<rpc::Value>&) {
          rpc::Value out = rpc::Value::array();
          for (const auto& job : jobs_->list(who_of(context))) {
            out.push(job_value(job));
          }
          return out;
        },
        "The caller's jobs, newest first", "array ()");
    registry_.add(
        "job.cancel",
        [this, who_of](const rpc::CallContext& context,
                       const std::vector<rpc::Value>& params) {
          return rpc::Value(
              jobs_->cancel(arg_string(params, 0), who_of(context)));
        },
        "Cancel a queued job (false if it already started)",
        "boolean (string job_id)");
    registry_.add(
        "job.purge",
        [this, who_of](const rpc::CallContext& context,
                       const std::vector<rpc::Value>& params) {
          jobs_->purge(arg_string(params, 0), who_of(context));
          return rpc::Value(true);
        },
        "Delete a finished job record", "boolean (string job_id)");
  }

  // ---- proxy --------------------------------------------------------------
  registry_.add(
      "proxy.store",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>& params) {
        pki::Credential proxy =
            pki::Credential::decode(arg_string(params, 0));
        pki::Certificate user_cert =
            pki::Certificate::decode(arg_string(params, 1));
        proxy_->store(proxy, user_cert, arg_string(params, 2));
        return rpc::Value(true);
      },
      "Store a password-protected proxy credential",
      "boolean (string proxy_credential, string user_cert, string password)");
  registry_.add(
      "proxy.retrieve",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>& params) {
        auto stored =
            proxy_->retrieve(arg_string(params, 0), arg_string(params, 1));
        rpc::Value v = rpc::Value::struct_();
        v.set("proxy", stored.proxy.encode());
        v.set("user_cert", stored.user_cert.encode());
        return v;
      },
      "Retrieve a stored proxy (delegation)",
      "struct (string dn, string password)");
  registry_.add(
      "proxy.logon",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>& params) {
        return rpc::Value(
            proxy_->logon(arg_string(params, 0), arg_string(params, 1)));
      },
      "Open a session knowing only DN and proxy password",
      "string (string dn, string password)");
  registry_.add(
      "proxy.attach",
      [this](const rpc::CallContext& context,
             const std::vector<rpc::Value>& params) {
        proxy_->attach(context.session_id, arg_string(params, 0),
                       arg_string(params, 1));
        return rpc::Value(true);
      },
      "Attach/renew a stored proxy on the calling session",
      "boolean (string dn, string password)");
  registry_.add(
      "proxy.exists",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>& params) {
        return rpc::Value(proxy_->exists(arg_string(params, 0)));
      },
      "Does a stored proxy exist for this DN?", "boolean (string dn)");
  registry_.add(
      "proxy.remove",
      [this](const rpc::CallContext&, const std::vector<rpc::Value>& params) {
        return rpc::Value(
            proxy_->remove(arg_string(params, 0), arg_string(params, 1)));
      },
      "Delete a stored proxy (password required)",
      "boolean (string dn, string password)");

  // ---- transfer (third-party file pulls via delegation, paper §6) ------
  if (transfers_) {
    auto transfer_value = [](const Transfer& t) {
      rpc::Value v = rpc::Value::struct_();
      v.set("id", t.id);
      v.set("source", t.source_host + ":" + std::to_string(t.source_port) +
                          t.source_path);
      v.set("dest", t.dest_path);
      v.set("state", std::string(to_string(t.state)));
      v.set("bytes", t.bytes);
      v.set("verified", t.verified);
      if (!t.error.empty()) v.set("error", t.error);
      return v;
    };
    auto who_of2 = [](const rpc::CallContext& context) {
      return pki::DistinguishedName::parse(context.identity);
    };
    registry_.add(
        "transfer.start",
        [this, who_of2](const rpc::CallContext& context,
                        const std::vector<rpc::Value>& params) {
          return rpc::Value(transfers_->start(
              who_of2(context), arg_string(params, 0), arg_string(params, 1),
              arg_string(params, 2), arg_string(params, 3)));
        },
        "Pull a file from another Clarens server using the caller's "
        "stored proxy (delegation)",
        "string (string source_url, string source_path, string dest_path, "
        "string proxy_password)");
    registry_.add(
        "transfer.status",
        [this, who_of2, transfer_value](const rpc::CallContext& context,
                                        const std::vector<rpc::Value>& params) {
          return transfer_value(
              transfers_->status(arg_string(params, 0), who_of2(context)));
        },
        "State, byte count and verification result of a transfer",
        "struct (string transfer_id)");
    registry_.add(
        "transfer.list",
        [this, who_of2, transfer_value](const rpc::CallContext& context,
                                        const std::vector<rpc::Value>&) {
          rpc::Value out = rpc::Value::array();
          for (const auto& t : transfers_->list(who_of2(context))) {
            out.push(transfer_value(t));
          }
          return out;
        },
        "The caller's transfers, newest first", "array ()");
    registry_.add(
        "transfer.cancel",
        [this, who_of2](const rpc::CallContext& context,
                        const std::vector<rpc::Value>& params) {
          return rpc::Value(
              transfers_->cancel(arg_string(params, 0), who_of2(context)));
        },
        "Cancel a queued transfer", "boolean (string transfer_id)");
  }

  // ---- message (async bi-directional communication, paper §6) ---------
  registry_.add(
      "message.send",
      [this](const rpc::CallContext& context,
             const std::vector<rpc::Value>& params) {
        return rpc::Value(static_cast<std::int64_t>(
            messages_->send(context.identity, arg_string(params, 0),
                            arg_string(params, 1), arg_string(params, 2))));
      },
      "Queue a direct message for another identity",
      "int (string to_dn, string subject, string body)");
  registry_.add(
      "message.poll",
      [this](const rpc::CallContext& context,
             const std::vector<rpc::Value>& params) {
        std::size_t max = params.empty()
                              ? 100
                              : static_cast<std::size_t>(arg_int(params, 0));
        rpc::Value out = rpc::Value::array();
        for (const auto& m : messages_->poll(context.identity, max)) {
          rpc::Value v = rpc::Value::struct_();
          v.set("id", static_cast<std::int64_t>(m.id));
          v.set("from", m.from);
          v.set("channel", m.channel);
          v.set("subject", m.subject);
          v.set("body", m.body);
          v.set("sent", rpc::DateTime{m.sent});
          out.push(v);
        }
        return out;
      },
      "Drain queued messages for the calling identity (oldest first)",
      "array (int max)");
  registry_.add(
      "message.pending",
      [this](const rpc::CallContext& context, const std::vector<rpc::Value>&) {
        return rpc::Value(
            static_cast<std::int64_t>(messages_->pending(context.identity)));
      },
      "Number of queued messages for the caller", "int ()");
  registry_.add(
      "message.subscribe",
      [this](const rpc::CallContext& context,
             const std::vector<rpc::Value>& params) {
        messages_->subscribe(arg_string(params, 0), context.identity);
        return rpc::Value(true);
      },
      "Subscribe the caller to a channel", "boolean (string channel)");
  registry_.add(
      "message.unsubscribe",
      [this](const rpc::CallContext& context,
             const std::vector<rpc::Value>& params) {
        messages_->unsubscribe(arg_string(params, 0), context.identity);
        return rpc::Value(true);
      },
      "Unsubscribe the caller from a channel", "boolean (string channel)");
  registry_.add(
      "message.publish",
      [this](const rpc::CallContext& context,
             const std::vector<rpc::Value>& params) {
        return rpc::Value(static_cast<std::int64_t>(
            messages_->publish(context.identity, arg_string(params, 0),
                               arg_string(params, 1), arg_string(params, 2))));
      },
      "Publish to every subscriber of a channel; returns deliveries",
      "int (string channel, string subject, string body)");
}

}  // namespace clarens::core
