#include "core/server.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <limits>
#include <set>

#include "client/peer_pool.hpp"
#include "core/bindings/bindings.hpp"
#include "rpc/binrpc.hpp"
#include "rpc/fault.hpp"
#include "rpc/protocol.hpp"
#include "util/buffer.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace clarens::core {

namespace {

constexpr const char* kSessionHeader = "X-Clarens-Session";
constexpr const char* kNodeTicketHeader = "X-Clarens-Node-Ticket";
constexpr const char* kReplicationHeader = "X-Clarens-Replication";

// Minimal browser portal (paper §3): a static page whose JavaScript would
// issue the web-service calls; served to satisfy HTTP GET on "/".
constexpr const char* kPortalPage = R"(<!DOCTYPE html>
<html><head><title>Clarens Server</title></head>
<body>
<h1>Clarens Web Service Framework</h1>
<p>This server speaks XML-RPC, SOAP and JSON-RPC on POST /clarens.</p>
<ul>
  <li>Remote file browsing: GET under a configured virtual root</li>
  <li>VO management: vo.* methods</li>
  <li>Access control management: acl.* methods</li>
  <li>Service discovery: discovery.* methods</li>
  <li>Job submission / shell: shell.* methods</li>
</ul>
</body></html>
)";

}  // namespace

const char* to_string(NodeRole role) {
  switch (role) {
    case NodeRole::Standalone: return "standalone";
    case NodeRole::Head: return "head";
    case NodeRole::Storage: return "storage";
  }
  return "standalone";
}

ClarensServer::ClarensServer(ClarensConfig config)
    : config_(std::move(config)) {
  if (config_.data_dir.empty()) {
    store_ = std::make_unique<db::Store>();
  } else {
    db::StoreOptions store_options;
    store_options.shards = config_.store_shards;
    store_options.group_commit = config_.store_group_commit;
    store_options.commit_interval_us =
        static_cast<std::uint32_t>(config_.store_commit_interval_us);
    store_options.commit_batch_max = config_.store_commit_batch_max;
    store_options.compact_threshold =
        static_cast<std::size_t>(config_.store_compact_threshold);
    store_ = std::make_unique<db::Store>(config_.data_dir, store_options);
  }
  sessions_ = std::make_unique<SessionManager>(
      *store_, config_.session_ttl,
      config_.session_durable_writes && store_->persistent());
  vo_ = std::make_unique<VoManager>(*store_, config_.admins);
  acl_ = std::make_unique<AclManager>(*store_, *vo_, config_.default_allow);
  files_ = std::make_unique<FileService>(*acl_);
  files_->set_max_read_chunk(config_.max_read_chunk);
  files_->set_sendfile_threshold(config_.sendfile_threshold);
  for (const auto& [prefix, dir] : config_.file_roots) {
    files_->add_root(prefix, dir);
  }
  if (!config_.sandbox_base.empty()) {
    shell_ = std::make_unique<ShellService>(*vo_, config_.sandbox_base);
    shell_->set_user_map(config_.user_map);
    // Sandboxes are visible to the file service (paper §2.5).
    files_->add_root("/sandbox", config_.sandbox_base);
  }
  proxy_ = std::make_unique<ProxyService>(*store_, *sessions_, config_.trust);
  messages_ = std::make_unique<MessageService>(*store_);
  if (shell_) {
    jobs_ = std::make_unique<JobService>(*store_, *shell_, config_.job_workers);
  }
  if (config_.transfer_workers > 0) {
    transfers_ = std::make_unique<TransferService>(
        *store_, *files_, *proxy_, config_.trust, config_.transfer_workers);
  }

  for (const auto& [path, spec] : config_.initial_method_acls) {
    acl_->set_method_acl(path, spec);
  }
  for (const auto& [path, facl] : config_.initial_file_acls) {
    acl_->set_file_acl(path, facl);
  }

  if (config_.node_role == NodeRole::Storage && !config_.head_url.empty() &&
      !config_.node_ticket_secret.empty()) {
    // Commit notifications ride the same plaintext JSON-RPC peer channel
    // the head uses toward storage nodes (the trust boundary is the node
    // ticket, not the transport).
    client::ClientOptions base;
    base.protocol = rpc::Protocol::JsonRpc;
    head_pool_ = std::make_unique<client::PeerPool>(std::move(base));
  }

  register_core_methods();
}

ClarensServer::~ClarensServer() { stop(); }

// Method registration is decomposed into per-service binding units
// (core/bindings/): each attaches one service module's typed handlers,
// signatures and metadata. This server only decides which services exist.
void ClarensServer::register_core_methods() {
  bindings::register_system_methods(*this);
  bindings::register_vo_methods(*vo_, registry_);
  bindings::register_acl_methods(*acl_, *vo_, registry_);
  bindings::register_file_methods(
      *files_, registry_,
      [this](const rpc::CallContext& context, const std::string& path) {
        notify_commit(context, path);
      });
  if (shell_) bindings::register_shell_methods(*shell_, registry_);
  if (jobs_) bindings::register_job_methods(*jobs_, registry_);
  bindings::register_proxy_methods(*proxy_, registry_);
  bindings::register_message_methods(*messages_, registry_);
  if (transfers_) bindings::register_transfer_methods(*transfers_, registry_);
}

void ClarensServer::attach_discovery(discovery::DiscoveryServer& discovery) {
  discovery_ = &discovery;
  bindings::register_discovery_methods(discovery, registry_);
  if (config_.node_role == NodeRole::Head) {
    // The head's routing layer: discovery records feed the placement
    // ring, and the federated file.* bindings re-bind the local
    // handlers with redirect/proxy/fan-out variants.
    federation::RouterOptions options;
    options.secret = config_.node_ticket_secret;
    options.replicas = config_.placement_replicas;
    options.refresh_ms = config_.federation_refresh_ms;
    options.ticket_ttl_s = config_.node_ticket_ttl_s;
    options.prefix_depth = config_.placement_prefix_depth;
    router_ = std::make_unique<federation::Router>(discovery, options);
    bindings::register_federation_methods(*this, *router_, registry_);

    // Replication control plane: the layout table persists in the head's
    // own store; the repair engine drains its queue once start() runs.
    layouts_ = std::make_unique<federation::LayoutTable>(*store_);
    federation::ReplicatorOptions ropts;
    ropts.replicas = config_.placement_replicas;
    ropts.retry_max = config_.replication_retry_max;
    ropts.retry_base_ms = config_.replication_retry_base_ms;
    ropts.retry_max_ms = config_.replication_retry_max_ms;
    ropts.node_grace_ms = config_.replication_grace_ms;
    ropts.suspect_ttl_ms = config_.replica_suspect_ttl_ms;
    ropts.fsck_interval_ms = config_.fsck_interval_ms;
    ropts.copy_chunk =
        std::min(config_.replication_chunk, config_.max_read_chunk);
    // Poll membership fast enough to resolve the grace period, and sweep
    // for under-replication at least as often as nodes are declared gone.
    ropts.tick_ms = std::clamp(config_.replication_grace_ms / 4, 50, 250);
    ropts.rescan_ms = std::max(1000, config_.replication_grace_ms);
    replicator_ = std::make_unique<federation::Replicator>(*router_, *layouts_,
                                                           ropts);
    bindings::register_replica_methods(*this, *router_, *layouts_,
                                       *replicator_, registry_);
  }
}

void ClarensServer::attach_storage(storage::SrmService& srm) {
  srm_ = &srm;
  // Staged copies live in the SRM disk cache; exposing it as a virtual
  // root lets clients read READY files through file.read / HTTP GET.
  files_->add_root("/srmcache", srm.storage().cache_dir());
  bindings::register_srm_methods(srm, registry_);
}

void ClarensServer::start() {
  http::ServerOptions options;
  options.host = config_.host;
  options.port = config_.port;
  options.max_connections = config_.max_connections;
  options.dispatch.inline_dispatch = config_.inline_dispatch;
  // The dispatch-cost key (DESIGN.md "Dispatch policy"): a cheap method
  // peek before the full parse. Only modules whose handlers are
  // in-memory and store-read-only are inline-eligible; the auth
  // handshake methods do crypto and write the session store, so they
  // always take a worker.
  options.dispatch.cost_key = [](const http::Request& request) -> std::string {
    if (request.method != "POST") return {};
    const std::string* content_type = request.headers.find("Content-Type");
    rpc::Protocol protocol = rpc::detect(
        content_type ? *content_type : std::string_view(), request.body);
    std::string name = rpc::peek_method(protocol, request.body);
    std::string_view module =
        std::string_view(name).substr(0, std::min(name.find('.'), name.size()));
    if (module != "system" && module != "echo") return {};
    if (name == "system.auth" || name == "system.challenge" ||
        name == "system.logout") {
      return {};
    }
    return name;
  };
  if (config_.use_tls) {
    if (!config_.credential) {
      throw Error("TLS requires a server credential");
    }
    tls::TlsConfig tls;
    tls.credential = config_.credential;
    tls.chain = config_.chain;
    tls.trust = &config_.trust;
    tls.require_peer_certificate = config_.require_client_cert;
    options.tls = std::move(tls);
  }
  http_ = std::make_unique<http::Server>(
      std::move(options), [this](const http::Request& request,
                                 const http::Peer& peer) {
        return handle(request, peer);
      });
  http_->start();
  started_at_ = util::unix_now();
  if (config_.station) start_publisher();
  if (replicator_) replicator_->start();
  if (config_.session_reap_interval_s > 0) {
    {
      util::LockGuard lock(reaper_mutex_);
      reaper_stopping_ = false;
    }
    reaper_ = util::Thread([this] {
      // The sweep below takes session-shard and store locks while the
      // reaper lock is held.
      // lock-order: core.server.reaper -> core.session.shard
      // lock-order: core.server.reaper -> db.store.shard
      util::UniqueLock lock(reaper_mutex_);
      while (!reaper_stopping_) {
        reaper_stop_.wait_for(
            lock, std::chrono::seconds(config_.session_reap_interval_s));
        if (reaper_stopping_) break;
        sessions_->reap_expired();
      }
    });
  }
}

void ClarensServer::stop() {
  {
    util::LockGuard lock(reaper_mutex_);
    reaper_stopping_ = true;
  }
  reaper_stop_.notify_all();
  if (reaper_.joinable()) reaper_.join();
  if (replicator_) replicator_->stop();
  if (publisher_) publisher_->stop();
  if (http_) http_->stop();
}

std::uint16_t ClarensServer::port() const { return http_ ? http_->port() : 0; }

std::string ClarensServer::url() const {
  return std::string(config_.use_tls ? "https" : "http") + "://" +
         config_.host + ":" + std::to_string(port()) + "/clarens";
}

Session ClarensServer::direct_login(const std::string& identity_dn) {
  return sessions_->create(identity_dn, /*via_proxy=*/false);
}

std::shared_ptr<const Session> ClarensServer::check_session(
    const std::string& session_id) const {
  if (session_id.empty()) throw AuthError("no session token supplied");
  return sessions_->lookup_shared(session_id);
}

federation::NodeTicket ClarensServer::check_node_ticket(
    const std::string& token) const {
  if (config_.node_ticket_secret.empty()) {
    throw AuthError("this server does not accept node tickets");
  }
  std::optional<federation::NodeTicket> ticket = federation::NodeTicket::verify(
      config_.node_ticket_secret, token, util::unix_now());
  if (!ticket) throw AuthError("invalid or expired node ticket");
  return *ticket;
}

void ClarensServer::notify_commit(const rpc::CallContext& context,
                                  const std::string& path) {
  if (!head_pool_) return;
  try {
    // Checksum what actually landed (streamed, bounded memory), then
    // report it under a self-minted node ticket: storage nodes hold the
    // same cluster secret the head mints with, and the head honors node
    // tickets for exactly this one method. The ticket carries the
    // original writer's identity so the head's method ACL still judges
    // the user, not the node.
    FileService::FileChecksum sum =
        files_->checksum(path, pki::DistinguishedName::parse(context.identity));
    federation::NodeTicket ticket;
    ticket.dn = context.identity;
    ticket.via_proxy = context.via_proxy;
    ticket.proxy_serial = context.proxy_serial;
    ticket.scope = path;
    ticket.write = false;
    ticket.expires = util::unix_now() + 60;
    std::string token = ticket.mint(config_.node_ticket_secret);
    client::PeerPool::Lease lease = head_pool_->lease(config_.head_url);
    lease->set_header(kNodeTicketHeader, token);
    try {
      lease->call("replica.committed",
                  {rpc::Value(path),
                   rpc::Value(config_.farm + "/" + config_.node),
                   rpc::Value(sum.md5), rpc::Value(sum.size)});
    } catch (const SystemError&) {
      lease.discard();
      throw;
    }
  } catch (const std::exception& error) {
    // Best effort: a lost notification leaves the layout checksum
    // unconfirmed, and the head's fsck scrub re-derives it from the
    // primary replica.
    CLARENS_LOG(Warn) << "commit notification for '" << path
                      << "' failed: " << error.what();
  }
}

void ClarensServer::check_acl(const std::string& method,
                              const pki::DistinguishedName& dn) const {
  // ACL first: the common case is an explicit allow, and the root-admin
  // bypass (root administrators own the ACL tables) only matters when
  // the ACL chain would deny.
  if (acl_->check_method(method, dn)) return;
  if (vo_->is_root_admin(dn)) return;
  throw AccessError("access denied to method '" + method + "'");
}

void ClarensServer::start_publisher() {
  publisher_ = std::make_unique<discovery::Publisher>(config_.station->first,
                                                      config_.station->second);
  std::vector<discovery::ServiceRecord> records;
  std::set<std::string> modules;
  for (const auto& name : registry_.list()) {
    modules.insert(name.substr(0, name.find('.')));
  }
  for (const auto& module : modules) {
    discovery::ServiceRecord record;
    record.farm = config_.farm;
    record.node = config_.node;
    record.service = module;
    record.url = url();
    record.protocol = "xmlrpc";
    record.version = "1.0";
    // Federation attributes: the role tells head routers whether this
    // node belongs on the placement ring; storage nodes advertise their
    // virtual roots as namespace prefixes.
    record.role = to_string(config_.node_role);
    if (config_.node_role == NodeRole::Storage) {
      record.prefixes = files_->roots();
    }
    // GLUE-style key/numerical-value pairs (paper §2.4): basic load data
    // rides along with the service description.
    record.metrics["methods"] = static_cast<double>(registry_.size());
    record.metrics["sessions"] =
        static_cast<double>(sessions_->active_count());
    record.metrics["capacity"] = config_.node_capacity;
    records.push_back(std::move(record));
  }
  publisher_->set_records(std::move(records));
  publisher_->start_periodic(config_.publish_interval_ms);
}

http::Response ClarensServer::handle(const http::Request& request,
                                     const http::Peer& peer) {
  if (request.method == "POST") return handle_rpc(request, peer);
  if (request.method == "GET" || request.method == "HEAD") {
    return handle_get(request, peer);
  }
  return http::Response::make(405, "method not allowed\n");
}

http::Response ClarensServer::handle_rpc(const http::Request& request,
                                         const http::Peer& peer) {
  rpc::Protocol protocol = rpc::Protocol::XmlRpc;
  rpc::Response rpc_response;
  rpc::Value request_id;
  try {
    const std::string* content_type = request.headers.find("Content-Type");
    protocol = rpc::detect(content_type ? *content_type : std::string_view(),
                           request.body);
    rpc::Request rpc_request = rpc::parse_request(protocol, request.body);
    request_id = rpc_request.id;

    // One registry lookup serves the pre-dispatch metadata checks and
    // the dispatch itself.
    std::shared_ptr<const rpc::Method> method =
        registry_.find(rpc_request.method);
    if (!method) {
      throw rpc::Fault(rpc::kFaultBadMethod,
                       "no such method: " + rpc_request.method);
    }

    rpc::CallContext context;
    context.protocol = rpc::to_string(protocol);
    // Binary responses can carry a raw byte range spliced in by the
    // transport (sendfile); offer that path to handlers that support it.
    context.offer_file_region =
        protocol == rpc::Protocol::Binary && config_.sendfile_threshold >= 0;

    if (method->info.is_public) {
      // Public methods create the session or are liveness probes; a
      // TLS-verified identity is still available pre-session.
      if (peer.tls_identity && peer.tls_identity->ok) {
        context.identity = peer.tls_identity->identity.str();
        context.via_proxy = peer.tls_identity->via_proxy;
      }
    } else if (const std::string* node_token =
                   config_.node_role == NodeRole::Standalone ||
                           config_.node_ticket_secret.empty()
                       ? nullptr
                       : request.headers.find(kNodeTicketHeader)) {
      // Federation fast path: a head-minted node ticket replaces the
      // session handshake — the head already authenticated the caller
      // and the HMAC proves it. Standalone servers run the full session
      // stack only; a ticket is a *file capability*, not a blanket
      // identity. On storage nodes it authorizes file.* methods only,
      // and the file handlers enforce its namespace scope and write bit
      // against the path they touch. On the head exactly one method
      // honors tickets: replica.committed, the storage node's post-write
      // commit notification (minted by the node with the same shared
      // secret; the binding checks the ticket scope against the reported
      // path). The method ACL still runs against the forwarded identity
      // (delegated credentials ride along in via_proxy / proxy_serial).
      federation::NodeTicket ticket = check_node_ticket(*node_token);
      bool allowed = config_.node_role == NodeRole::Storage
                         ? util::starts_with(rpc_request.method, "file.")
                         : rpc_request.method == "replica.committed";
      if (!allowed) {
        throw AuthError("node ticket does not authorize method '" +
                        rpc_request.method + "'");
      }
      context.identity = ticket.dn;
      context.via_proxy = ticket.via_proxy;
      context.proxy_serial = ticket.proxy_serial;
      context.via_ticket = true;
      context.ticket_scope = ticket.scope;
      context.ticket_write = ticket.write;
      const std::string* replication =
          request.headers.find(kReplicationHeader);
      context.replication = replication != nullptr && *replication == "1";
      check_acl(method->info.acl_path.empty() ? rpc_request.method
                                              : method->info.acl_path,
                pki::DistinguishedName::parse(ticket.dn));
    } else {
      // Check 1: session lookup (cache, write-through to the database).
      static const std::string kNoToken;
      const std::string* token = request.headers.find(kSessionHeader);
      std::shared_ptr<const Session> session =
          check_session(token ? *token : kNoToken);
      context.identity = session->identity;
      context.session_id = session->id;
      context.via_proxy = session->via_proxy;
      context.proxy_serial = session->attached_proxy_serial;
      // Check 2: method ACL (compiled-spec cache; DN pre-parsed at
      // session decode time). Methods may carry an explicit ACL path;
      // the default is the method name itself.
      check_acl(method->info.acl_path.empty() ? rpc_request.method
                                              : method->info.acl_path,
                session->identity_dn);
    }

    rpc::Value result = method->handler(context, rpc_request.params);

    if (context.file_region && protocol == rpc::Protocol::Binary) {
      // Zero-copy response: the handler claimed the file-region offer, so
      // splice the resolved range into the binary framing. The result
      // value is the placeholder the handler returned; discard it.
      const auto& claimed = *context.file_region;
      // The blob framing length is a u32; config validation bounds
      // max_read_chunk below that, but a handler could still hand back a
      // wider region — fail it rather than desynchronize the framing
      // from Content-Length.
      if (claimed.length < 0 ||
          static_cast<std::uint64_t>(claimed.length) >
              std::numeric_limits<std::uint32_t>::max()) {
        throw rpc::Fault(rpc::kFaultGeneric,
                         "file region exceeds 32-bit frame length");
      }
      util::Buffer framing;
      rpc::binrpc::serialize_blob_response_head(
          static_cast<std::uint32_t>(claimed.length), framing);
      http::Response response;
      response.status = 200;
      response.reason = http::reason_phrase(200);
      response.headers.set("Content-Type", rpc::content_type(protocol));
      http::Response::FileRegion region;
      region.path = claimed.path;
      region.offset = claimed.offset;
      region.length = claimed.length;
      region.head = std::string(framing.peek_view());
      framing.clear();
      rpc::binrpc::serialize_blob_response_tail(request_id, framing);
      region.tail = std::string(framing.peek_view());
      response.file = std::move(region);
      return response;
    }

    rpc_response = rpc::Response::success(std::move(result));
  } catch (const rpc::Fault& fault) {
    rpc_response = rpc::Response::fault(fault.code(), fault.what());
  } catch (const Error& error) {
    rpc_response = rpc::Response::fault(error.code(), error.what());
  } catch (const std::exception& error) {
    rpc_response = rpc::Response::fault(rpc::kFaultGeneric, error.what());
  }
  rpc_response.id = request_id;

  // Serialize into a per-worker arena and hand the HTTP layer a view of
  // it: the worker that runs this handler also performs the vectored
  // write, so no heap copy of the body is ever made. The arena is
  // compacted after pathological responses so a one-off huge payload
  // doesn't pin its allocation.
  thread_local util::Buffer arena;
  arena.clear();
  arena.compact();
  rpc::serialize_response(protocol, rpc_response, arena);
  http::Response response;
  response.status = 200;
  response.reason = http::reason_phrase(200);
  response.headers.set("Content-Type", rpc::content_type(protocol));
  response.body_view = arena.peek_view();
  return response;
}

namespace {

/// Content types for the portal's static assets.
const char* portal_content_type(const std::string& path) {
  auto ends = [&path](const char* suffix) {
    return util::ends_with(path, suffix);
  };
  if (ends(".html") || ends(".htm")) return "text/html";
  if (ends(".js")) return "application/javascript";
  if (ends(".css")) return "text/css";
  if (ends(".png")) return "image/png";
  if (ends(".gif")) return "image/gif";
  if (ends(".jpg") || ends(".jpeg")) return "image/jpeg";
  if (ends(".svg")) return "image/svg+xml";
  if (ends(".txt")) return "text/plain";
  return "application/octet-stream";
}

}  // namespace

http::Response ClarensServer::serve_portal(const std::string& path) const {
  if (config_.portal_dir.empty()) {
    if (path == "/" || path == "/index.html" || path == "/portal") {
      return http::Response::make(200, kPortalPage, "text/html");
    }
    return http::Response::make(404, "no portal configured\n");
  }
  // Map "/" -> index.html; "/portal/x" -> x. Containment enforced.
  std::string rel = path == "/" || path == "/portal"
                        ? "index.html"
                        : path.substr(std::string("/portal/").size());
  namespace fs = std::filesystem;
  fs::path full = (fs::path(config_.portal_dir) / rel).lexically_normal();
  auto inside = full.lexically_relative(
      fs::path(config_.portal_dir).lexically_normal());
  if (inside.empty() || (*inside.begin() == "..")) {
    return http::Response::make(403, "portal path escapes root\n");
  }
  if (!fs::is_regular_file(full)) {
    return http::Response::make(404, "no such portal page\n");
  }
  http::Response response =
      http::Response::make(200, "", portal_content_type(rel));
  response.file = http::Response::FileRegion{full.string(), 0, -1};
  return response;
}

http::Response ClarensServer::handle_get(const http::Request& request,
                                         const http::Peer& peer) {
  std::string path = request.path();
  if (path == "/" || path == "/index.html" || path == "/portal" ||
      util::starts_with(path, "/portal/")) {
    return serve_portal(path);
  }
  if (path == "/ping") return http::Response::make(200, "pong\n");

  // File serving: identity from TLS, else from a session header, else
  // anonymous (empty DN — only files whose ACL allows '*' are served...
  // which requires an authenticated match, so effectively none unless
  // default_allow is set).
  auto query = request.query();
  pki::DistinguishedName identity;
  // Delegation info rides into any node ticket minted below: a caller
  // whose identity came from a stored proxy logon must look the same to
  // a storage node whichever protocol (RPC or GET) carried the hop.
  bool via_proxy = false;
  std::string proxy_serial;
  if (peer.tls_identity && peer.tls_identity->ok) {
    identity = peer.tls_identity->identity;
    via_proxy = peer.tls_identity->via_proxy;
  } else if (auto token = request.headers.get(kSessionHeader)) {
    try {
      std::shared_ptr<const Session> session = sessions_->lookup_shared(*token);
      identity = session->identity_dn;
      via_proxy = session->via_proxy;
      proxy_serial = session->attached_proxy_serial;
    } catch (const AuthError&) {
      return http::Response::make(401, "invalid session\n");
    }
  } else if (auto it = query.find("ticket");
             it != query.end() && config_.node_role == NodeRole::Storage) {
    // Storage-node GET path: a head-minted node ticket rides as a query
    // parameter (the token is hex, hence URL-safe) because the 307
    // redirect cannot make the browser attach a custom header. Only
    // storage-role nodes honor tickets — everywhere else the full
    // session stack decides. GET is read-only, so any valid covering
    // ticket (read or write) serves.
    try {
      federation::NodeTicket ticket = check_node_ticket(it->second);
      if (!ticket.covers(path)) {
        return http::Response::make(403, "ticket does not cover path\n");
      }
      identity = pki::DistinguishedName::parse(ticket.dn);
    } catch (const AuthError& e) {
      return http::Response::make(401, std::string(e.what()) + "\n");
    }
  }

  // Federated head: file bytes live on storage nodes — answer with a
  // real HTTP 307 carrying a ticket-bearing Location, the GET analogue
  // of the RPC redirect envelope. Falls through to local serving when
  // no storage node owns the prefix (empty ring).
  if (config_.node_role == NodeRole::Head && router_) {
    // Replica-aware pick: a node the layout table knows is unhealthy or
    // that a client reported unreachable is skipped, so GETs keep
    // succeeding while the repair engine restores replication.
    std::optional<federation::NodeInfo> owner =
        replicator_ ? replicator_->pick_read_node(path)
                    : router_->route(path);
    if (owner) {
      if (!acl_->check_file_read(path, identity) &&
          !vo_->is_root_admin(identity)) {
        return http::Response::make(403, "file access denied\n");
      }
      std::string scope = router_->prefix_of(path);
      // Read-only ticket: the GET ticket travels in a query string that
      // proxies and access logs capture, so even a leaked token must
      // never authorize a mutation (see docs/FEDERATION.md).
      std::string ticket = router_->mint_ticket(identity.str(), via_proxy,
                                                proxy_serial, scope,
                                                /*write=*/false);
      client::PeerEndpoint endpoint = client::PeerEndpoint::parse(owner->url);
      // The path was %-decoded by request.path(); re-encode it (keeping
      // '/') so names with spaces/'#'/'&' survive as a well-formed URL.
      // The ticket itself is hex-safe by construction.
      std::string location = std::string(endpoint.tls ? "https" : "http") +
                             "://" + endpoint.host + ":" +
                             std::to_string(endpoint.port) +
                             http::url_encode(path) + "?ticket=" + ticket;
      // Byte-range parameters survive the hop.
      for (const char* key : {"offset", "length"}) {
        if (auto param = query.find(key); param != query.end()) {
          location += "&" + std::string(key) + "=" +
                      http::url_encode(param->second);
        }
      }
      http::Response response =
          http::Response::make(307, "file is on " + owner->url + "\n");
      response.reason = http::reason_phrase(307);
      response.headers.set("Location", location);
      return response;
    }
  }

  try {
    std::string real = files_->resolve_for_read(path, identity);
    FileStat st = files_->stat(path, identity);
    if (st.is_directory) {
      // Simple index listing, as the paper's file browser component shows.
      std::string body = "<html><body><h2>" + path + "</h2><ul>";
      for (const auto& entry : files_->ls(path, identity)) {
        body += "<li>" + entry.name + (entry.is_directory ? "/" : "") + "</li>";
      }
      body += "</ul></body></html>";
      return http::Response::make(200, body, "text/html");
    }
    http::Response response = http::Response::make(200, "", "application/octet-stream");
    // Range support: "offset-length" via query (?offset=&length=).
    std::int64_t offset = 0, length = -1;
    if (auto it = query.find("offset"); it != query.end()) {
      offset = util::parse_int(it->second);
    }
    if (auto it = query.find("length"); it != query.end()) {
      length = util::parse_int(it->second);
    }
    response.file = http::Response::FileRegion{real, offset, length};
    return response;
  } catch (const AccessError& e) {
    return http::Response::make(403, std::string(e.what()) + "\n");
  } catch (const NotFoundError& e) {
    return http::Response::make(404, std::string(e.what()) + "\n");
  }
}

}  // namespace clarens::core
