#include "core/proxy_service.hpp"

#include "core/session.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/random.hpp"
#include "rpc/jsonrpc.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"

namespace clarens::core {

namespace {

constexpr const char* kTable = "proxies";

// Envelope: salt(16) | nonce(12) | ciphertext | hmac(32).
// key = HKDF(password | salt, "proxy-store", 64) -> cipher key + mac key.
std::string seal(const std::string& plaintext, const std::string& password) {
  auto salt = crypto::random_bytes(16);
  auto nonce = crypto::random_bytes(12);
  std::vector<std::uint8_t> ikm(password.begin(), password.end());
  ikm.insert(ikm.end(), salt.begin(), salt.end());
  auto material = crypto::derive_key(ikm, "proxy-store", 64);
  std::span<const std::uint8_t> cipher_key(material.data(), 32);
  std::span<const std::uint8_t> mac_key(material.data() + 32, 32);

  std::vector<std::uint8_t> ct(plaintext.begin(), plaintext.end());
  crypto::ChaCha20 cipher(cipher_key, nonce);
  cipher.crypt(ct);

  std::vector<std::uint8_t> mac_input = salt;
  mac_input.insert(mac_input.end(), nonce.begin(), nonce.end());
  mac_input.insert(mac_input.end(), ct.begin(), ct.end());
  auto mac = crypto::hmac_sha256(mac_key, mac_input);

  std::vector<std::uint8_t> blob = std::move(mac_input);
  blob.insert(blob.end(), mac.begin(), mac.end());
  return util::base64_encode(blob);
}

std::string unseal(const std::string& sealed, const std::string& password) {
  auto blob = util::base64_decode(sealed);
  if (blob.size() < 16 + 12 + 32) throw AuthError("corrupt proxy record");
  std::span<const std::uint8_t> salt(blob.data(), 16);
  std::span<const std::uint8_t> nonce(blob.data() + 16, 12);
  std::span<const std::uint8_t> ct(blob.data() + 28, blob.size() - 28 - 32);
  std::span<const std::uint8_t> mac(blob.data() + blob.size() - 32, 32);

  std::vector<std::uint8_t> ikm(password.begin(), password.end());
  ikm.insert(ikm.end(), salt.begin(), salt.end());
  auto material = crypto::derive_key(ikm, "proxy-store", 64);
  std::span<const std::uint8_t> cipher_key(material.data(), 32);
  std::span<const std::uint8_t> mac_key(material.data() + 32, 32);

  std::vector<std::uint8_t> mac_input(blob.begin(),
                                      blob.end() - 32);
  auto expected = crypto::hmac_sha256(mac_key, mac_input);
  if (!crypto::constant_time_equal(mac, expected)) {
    throw AuthError("wrong password or corrupt proxy record");
  }
  std::vector<std::uint8_t> pt(ct.begin(), ct.end());
  crypto::ChaCha20 cipher(cipher_key, nonce);
  cipher.crypt(pt);
  return std::string(pt.begin(), pt.end());
}

}  // namespace

ProxyService::ProxyService(db::Store& store, SessionManager& sessions,
                           const pki::TrustStore& trust)
    : store_(store), sessions_(sessions), trust_(trust) {}

void ProxyService::store(const pki::Credential& proxy,
                         const pki::Certificate& user_cert,
                         const std::string& password) {
  if (password.empty()) throw ParseError("proxy password must not be empty");
  auto verdict =
      trust_.verify({proxy.certificate, user_cert}, util::unix_now());
  if (!verdict.ok) throw AuthError("proxy chain rejected: " + verdict.error);

  // Keyed by the *user* DN (the identity the proxy stands for).
  rpc::Value v = rpc::Value::struct_();
  v.set("proxy", proxy.encode());
  v.set("user_cert", user_cert.encode());
  std::string plaintext = rpc::jsonrpc::serialize_value(v);
  store_.put(kTable, verdict.identity.str(), seal(plaintext, password));
}

ProxyService::StoredProxy ProxyService::retrieve(const std::string& dn,
                                                 const std::string& password) const {
  auto sealed = store_.get(kTable, dn);
  if (!sealed) throw AuthError("no stored proxy for " + dn);
  std::string plaintext = unseal(*sealed, password);
  rpc::Value v = rpc::jsonrpc::parse_value(plaintext);
  StoredProxy out{pki::Credential::decode(v.at("proxy").as_string()),
                  pki::Certificate::decode(v.at("user_cert").as_string())};
  if (!out.proxy.certificate.valid_at(util::unix_now())) {
    throw AuthError("stored proxy has expired");
  }
  return out;
}

std::string ProxyService::logon(const std::string& dn,
                                const std::string& password) {
  StoredProxy stored = retrieve(dn, password);
  auto verdict = trust_.verify({stored.proxy.certificate, stored.user_cert},
                               util::unix_now());
  if (!verdict.ok) throw AuthError("stored proxy no longer verifies: " + verdict.error);
  Session session = sessions_.create(verdict.identity.str(), /*via_proxy=*/true);
  sessions_.attach_proxy(session.id, stored.proxy.certificate.serial());
  return session.id;
}

void ProxyService::attach(const std::string& session_id, const std::string& dn,
                          const std::string& password) {
  Session session = sessions_.lookup(session_id);
  StoredProxy stored = retrieve(dn, password);
  // The proxy must belong to the session's identity: attaching someone
  // else's delegation is not renewal, it is impersonation.
  if (session.identity != dn) {
    throw AccessError("stored proxy DN does not match session identity");
  }
  sessions_.attach_proxy(session_id, stored.proxy.certificate.serial());
  std::int64_t remaining =
      stored.proxy.certificate.not_after() - util::unix_now();
  if (remaining > 0) sessions_.renew(session_id, remaining);
}

bool ProxyService::exists(const std::string& dn) const {
  return store_.contains(kTable, dn);
}

bool ProxyService::remove(const std::string& dn, const std::string& password) {
  auto sealed = store_.get(kTable, dn);
  if (!sealed) return false;
  unseal(*sealed, password);  // throws on wrong password
  return store_.erase(kTable, dn);
}

}  // namespace clarens::core
