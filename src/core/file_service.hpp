// Remote file access (paper §2.3).
//
// Data in "big science" experiments lives in files; this service exposes
// them under *virtual roots* — logical names mapped to server directories
// via configuration — through both RPC methods (file.read and friends)
// and HTTP GET. Every operation is subject to file ACLs (read/write), and
// path resolution refuses to escape a root.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <optional>
#include <string>
#include <vector>

#include "core/acl.hpp"
#include "pki/dn.hpp"

namespace clarens::core {

struct FileStat {
  std::string name;
  bool is_directory = false;
  std::int64_t size = 0;
  std::int64_t mtime = 0;  // unix seconds
};

class FileService {
 public:
  explicit FileService(AclManager& acl);

  /// Map virtual path prefix "/data" to server directory `directory`.
  void add_root(const std::string& virtual_prefix, const std::string& directory);

  /// Largest `length` a single read() accepts. The length arrives from
  /// the wire and sizes a buffer, so it must be bounded server-side;
  /// larger requests are rejected (callers chunk, as transfer.* does).
  void set_max_read_chunk(std::int64_t bytes) { max_read_chunk_ = bytes; }
  std::int64_t max_read_chunk() const { return max_read_chunk_; }

  std::vector<std::string> roots() const;

  /// All virtual paths below are absolute ("/data/run1/events.bin") and
  /// resolved against the matching root. Operations throw:
  ///   NotFoundError  — no root matches or file missing
  ///   AccessError    — ACL denies, or the path escapes the root
  ///   SystemError    — I/O failure

  /// Read `length` bytes at `offset` (paper: file.read(name, offset, n)).
  std::vector<std::uint8_t> read(const std::string& path, std::int64_t offset,
                                 std::int64_t length,
                                 const pki::DistinguishedName& who) const;

  /// A resolved, ACL-checked, clamped byte range — read()'s access and
  /// bounds semantics without materializing the bytes. The transport
  /// streams the range straight from the file (sendfile(2)), so large
  /// file.read responses never pass through a user-space buffer.
  struct ResolvedRegion {
    std::string real_path;
    std::int64_t offset = 0;
    std::int64_t length = 0;  // clamped to what the file can yield
  };
  ResolvedRegion read_region(const std::string& path, std::int64_t offset,
                             std::int64_t length,
                             const pki::DistinguishedName& who) const;

  /// file.read responses of at least this many bytes are offered to the
  /// transport as zero-copy regions; < 0 disables the bypass.
  void set_sendfile_threshold(std::int64_t bytes) {
    sendfile_threshold_ = bytes;
  }
  std::int64_t sendfile_threshold() const { return sendfile_threshold_; }

  /// Directory listing (file.ls).
  std::vector<FileStat> ls(const std::string& path,
                           const pki::DistinguishedName& who) const;

  /// File or directory information (file.stat).
  FileStat stat(const std::string& path,
                const pki::DistinguishedName& who) const;

  /// Hex MD5 of the whole file (file.md5), streamed in bounded memory.
  std::string md5(const std::string& path,
                  const pki::DistinguishedName& who) const;

  /// Hash + size in one pass (file.checksum) — what the fsck scrubber
  /// and the post-write commit notification ask a storage node for.
  struct FileChecksum {
    std::string md5;
    std::int64_t size = 0;
  };
  FileChecksum checksum(const std::string& path,
                        const pki::DistinguishedName& who) const;

  /// Recursive find: paths under `path` whose basename contains `pattern`
  /// ('*' alone matches everything) (file.find).
  std::vector<std::string> find(const std::string& path,
                                const std::string& pattern,
                                const pki::DistinguishedName& who) const;

  std::int64_t size(const std::string& path,
                    const pki::DistinguishedName& who) const;

  /// Write (create/overwrite) a file — used by the shell sandbox upload
  /// flow; requires write ACL.
  void write(const std::string& path, std::span<const std::uint8_t> data,
             const pki::DistinguishedName& who) const;

  /// Append to (creating if needed) a file — the chunked-write primitive
  /// the transfer service streams through; requires write ACL.
  void append(const std::string& path, std::span<const std::uint8_t> data,
              const pki::DistinguishedName& who) const;

  void mkdir(const std::string& path, const pki::DistinguishedName& who) const;

  void remove(const std::string& path, const pki::DistinguishedName& who) const;

  /// Resolve a virtual path to a real filesystem path *after* the read
  /// ACL check. Used by the HTTP GET handler to hand the region to
  /// sendfile. Throws like read().
  std::string resolve_for_read(const std::string& path,
                               const pki::DistinguishedName& who) const;

 private:
  /// Split into (root-relative real path). Enforces containment.
  std::string resolve(const std::string& path) const;
  void require_read(const std::string& path,
                    const pki::DistinguishedName& who) const;
  void require_write(const std::string& path,
                     const pki::DistinguishedName& who) const;

  AclManager& acl_;
  std::map<std::string, std::string> roots_;  // virtual prefix -> directory
  std::int64_t max_read_chunk_ = 8 * 1024 * 1024;
  std::int64_t sendfile_threshold_ = 64 * 1024;
};

}  // namespace clarens::core
