#include "core/shell_service.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/vo.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace fs = std::filesystem;

namespace clarens::core {

std::vector<UserMapEntry> parse_user_map(std::string_view text) {
  std::vector<UserMapEntry> entries;
  for (const auto& raw_line : util::split(text, '\n')) {
    std::string_view line = util::trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    auto fields = util::split(line, ';');
    if (fields.empty() || util::trim(fields[0]).empty()) {
      throw ParseError("user map line missing system user: '" +
                       std::string(line) + "'");
    }
    UserMapEntry entry;
    entry.system_user = std::string(util::trim(fields[0]));
    if (fields.size() > 1) entry.dns = util::split_trimmed(fields[1], ',');
    if (fields.size() > 2) entry.groups = util::split_trimmed(fields[2], ',');
    if (fields.size() > 3) entry.reserved = util::split_trimmed(fields[3], ',');
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::vector<std::string> shell_tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  bool in_token = false;
  char quote = '\0';
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quote) {
      if (c == quote) {
        quote = '\0';
      } else {
        current.push_back(c);
      }
      continue;
    }
    if (c == '\'' || c == '"') {
      quote = c;
      in_token = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (in_token) {
        tokens.push_back(std::move(current));
        current.clear();
        in_token = false;
      }
      continue;
    }
    current.push_back(c);
    in_token = true;
  }
  if (quote) throw ParseError("unterminated quote in command");
  if (in_token) tokens.push_back(std::move(current));
  return tokens;
}

ShellService::ShellService(VoManager& vo, std::string sandbox_base)
    : vo_(vo), sandbox_base_(std::move(sandbox_base)) {
  fs::create_directories(sandbox_base_);
}

void ShellService::set_user_map(std::vector<UserMapEntry> entries) {
  util::LockGuard lock(mutex_);
  entries_ = std::move(entries);
}

void ShellService::load_user_map_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw SystemError("cannot open user map: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  set_user_map(parse_user_map(buf.str()));
}

std::optional<std::string> ShellService::map_user(
    const pki::DistinguishedName& dn) const {
  // VO membership checks below read the store while we hold the map lock.
  // lock-order: core.shell -> db.store.shard
  util::LockGuard lock(mutex_);
  for (const auto& entry : entries_) {
    for (const auto& prefix : entry.dns) {
      try {
        if (pki::DistinguishedName::parse(prefix).is_prefix_of(dn)) {
          return entry.system_user;
        }
      } catch (const ParseError&) {
      }
    }
    for (const auto& group : entry.groups) {
      if (vo_.is_member(group, dn)) return entry.system_user;
    }
  }
  return std::nullopt;
}

std::string ShellService::sandbox_dir(const std::string& system_user) const {
  return (fs::path(sandbox_base_) / system_user).string();
}

std::string ShellService::cmd_info(const pki::DistinguishedName& dn) {
  auto user = map_user(dn);
  if (!user) throw AccessError("no system user mapped for " + dn.str());
  fs::create_directories(sandbox_dir(*user));
  return "/sandbox/" + *user;
}

ShellResult ShellService::execute(const pki::DistinguishedName& dn,
                                  const std::string& command_line) {
  auto user = map_user(dn);
  if (!user) throw AccessError("no system user mapped for " + dn.str());
  fs::create_directories(sandbox_dir(*user));
  std::vector<std::string> argv = shell_tokenize(command_line);
  if (argv.empty()) return {0, "", ""};
  return run_builtin(*user, argv);
}

std::vector<std::string> ShellService::supported_commands() {
  return {"cat", "cd",    "cp",   "echo", "find", "head", "id",
          "ls",  "mkdir", "mv",   "pwd",  "rm",   "tail", "touch",
          "wc",  "grep",  "stat"};
}

namespace {

/// Resolve `arg` against the sandbox (cwd-relative or sandbox-absolute)
/// and refuse escapes.
fs::path resolve_in_sandbox(const fs::path& sandbox, const std::string& cwd,
                            const std::string& arg) {
  fs::path p = arg.empty() || arg[0] != '/' ? fs::path(cwd) / arg
                                            : fs::path(arg).relative_path();
  fs::path full = (sandbox / p).lexically_normal();
  auto rel = full.lexically_relative(sandbox.lexically_normal());
  if (!rel.empty() && *rel.begin() == "..") {
    throw AccessError("path escapes sandbox: '" + arg + "'");
  }
  return full;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw NotFoundError("cannot open: " + p.filename().string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

ShellResult ShellService::run_builtin(const std::string& system_user,
                                      const std::vector<std::string>& argv) {
  const fs::path sandbox = sandbox_dir(system_user);
  // One command at a time per service: commands mutate the shared cwd_
  // map and the filesystem; the restricted commands are all short.
  util::LockGuard lock(mutex_);
  std::string& cwd = cwd_[system_user];  // "" = sandbox root
  const std::string& cmd = argv[0];
  ShellResult result;

  auto fail = [&result](const std::string& message) {
    result.exit_code = 1;
    result.err = message + "\n";
    return result;
  };

  try {
    if (cmd == "echo") {
      for (std::size_t i = 1; i < argv.size(); ++i) {
        if (i > 1) result.out += ' ';
        result.out += argv[i];
      }
      result.out += '\n';
    } else if (cmd == "pwd") {
      result.out = "/" + cwd + "\n";
    } else if (cmd == "id") {
      result.out = "uid=" + system_user + "\n";
    } else if (cmd == "cd") {
      std::string target = argv.size() > 1 ? argv[1] : "/";
      fs::path full = resolve_in_sandbox(sandbox, cwd, target);
      if (!fs::is_directory(full)) return fail("cd: no such directory: " + target);
      cwd = full.lexically_relative(sandbox.lexically_normal()).string();
      if (cwd == ".") cwd.clear();
    } else if (cmd == "ls") {
      std::string target = argv.size() > 1 ? argv[1] : ".";
      fs::path full = resolve_in_sandbox(sandbox, cwd, target);
      if (fs::is_directory(full)) {
        std::vector<std::string> names;
        for (const auto& entry : fs::directory_iterator(full)) {
          names.push_back(entry.path().filename().string() +
                          (entry.is_directory() ? "/" : ""));
        }
        std::sort(names.begin(), names.end());
        for (const auto& name : names) result.out += name + "\n";
      } else if (fs::exists(full)) {
        result.out = full.filename().string() + "\n";
      } else {
        return fail("ls: no such file or directory: " + target);
      }
    } else if (cmd == "cat") {
      if (argv.size() < 2) return fail("cat: missing operand");
      for (std::size_t i = 1; i < argv.size(); ++i) {
        result.out += read_file(resolve_in_sandbox(sandbox, cwd, argv[i]));
      }
    } else if (cmd == "mkdir") {
      if (argv.size() < 2) return fail("mkdir: missing operand");
      for (std::size_t i = 1; i < argv.size(); ++i) {
        fs::create_directories(resolve_in_sandbox(sandbox, cwd, argv[i]));
      }
    } else if (cmd == "touch") {
      if (argv.size() < 2) return fail("touch: missing operand");
      for (std::size_t i = 1; i < argv.size(); ++i) {
        std::ofstream(resolve_in_sandbox(sandbox, cwd, argv[i]),
                      std::ios::app);
      }
    } else if (cmd == "rm") {
      if (argv.size() < 2) return fail("rm: missing operand");
      for (std::size_t i = 1; i < argv.size(); ++i) {
        if (argv[i] == "-r" || argv[i] == "-rf") continue;
        fs::path full = resolve_in_sandbox(sandbox, cwd, argv[i]);
        if (!fs::remove_all(full)) return fail("rm: cannot remove: " + argv[i]);
      }
    } else if (cmd == "cp" || cmd == "mv") {
      if (argv.size() != 3) return fail(cmd + ": expected source and dest");
      fs::path src = resolve_in_sandbox(sandbox, cwd, argv[1]);
      fs::path dst = resolve_in_sandbox(sandbox, cwd, argv[2]);
      if (fs::is_directory(dst)) dst /= src.filename();
      if (cmd == "cp") {
        fs::copy(src, dst, fs::copy_options::recursive |
                               fs::copy_options::overwrite_existing);
      } else {
        fs::rename(src, dst);
      }
    } else if (cmd == "head" || cmd == "tail") {
      if (argv.size() < 2) return fail(cmd + ": missing operand");
      std::size_t count = 10;
      std::size_t file_arg = 1;
      if (argv[1] == "-n" && argv.size() >= 4) {
        count = static_cast<std::size_t>(util::parse_uint(argv[2]));
        file_arg = 3;
      }
      std::string content = read_file(resolve_in_sandbox(sandbox, cwd, argv[file_arg]));
      auto lines = util::split(content, '\n');
      if (!lines.empty() && lines.back().empty()) lines.pop_back();
      std::size_t n = std::min(count, lines.size());
      if (cmd == "head") {
        for (std::size_t i = 0; i < n; ++i) result.out += lines[i] + "\n";
      } else {
        for (std::size_t i = lines.size() - n; i < lines.size(); ++i) {
          result.out += lines[i] + "\n";
        }
      }
    } else if (cmd == "wc") {
      if (argv.size() < 2) return fail("wc: missing operand");
      std::string content = read_file(resolve_in_sandbox(sandbox, cwd, argv[1]));
      std::size_t lines = 0, words = 0;
      bool in_word = false;
      for (char c : content) {
        if (c == '\n') ++lines;
        if (std::isspace(static_cast<unsigned char>(c))) {
          in_word = false;
        } else if (!in_word) {
          in_word = true;
          ++words;
        }
      }
      result.out = std::to_string(lines) + " " + std::to_string(words) + " " +
                   std::to_string(content.size()) + " " + argv[1] + "\n";
    } else if (cmd == "grep") {
      if (argv.size() < 3) return fail("grep: usage: grep PATTERN FILE");
      std::string content = read_file(resolve_in_sandbox(sandbox, cwd, argv[2]));
      bool any = false;
      for (const auto& line : util::split(content, '\n')) {
        if (line.find(argv[1]) != std::string::npos) {
          result.out += line + "\n";
          any = true;
        }
      }
      if (!any) result.exit_code = 1;
    } else if (cmd == "find") {
      std::string target = argv.size() > 1 ? argv[1] : ".";
      fs::path full = resolve_in_sandbox(sandbox, cwd, target);
      if (!fs::exists(full)) return fail("find: no such path: " + target);
      std::vector<std::string> found;
      found.push_back(target);
      if (fs::is_directory(full)) {
        for (const auto& entry : fs::recursive_directory_iterator(full)) {
          found.push_back(
              (fs::path(target) / entry.path().lexically_relative(full)).string());
        }
      }
      std::sort(found.begin(), found.end());
      for (const auto& f : found) result.out += f + "\n";
    } else if (cmd == "stat") {
      if (argv.size() < 2) return fail("stat: missing operand");
      fs::path full = resolve_in_sandbox(sandbox, cwd, argv[1]);
      if (!fs::exists(full)) return fail("stat: no such file: " + argv[1]);
      result.out = argv[1] + " size=" +
                   std::to_string(fs::is_directory(full)
                                      ? 0
                                      : static_cast<long long>(fs::file_size(full))) +
                   (fs::is_directory(full) ? " type=dir" : " type=file") + "\n";
    } else {
      return fail(cmd + ": command not found");
    }
  } catch (const Error& e) {
    return fail(e.what());
  } catch (const fs::filesystem_error& e) {
    return fail(e.what());
  }
  return result;
}

}  // namespace clarens::core
