// Third-party file transfer (paper §6: "robust file transfer between
// different mass storage facilities").
//
// A client asks the *destination* server to pull a file from a *source*
// Clarens server. The destination authenticates to the source **as the
// requesting user**, using the proxy credential the user previously
// stored on the destination (proxy.store) — exactly the delegation use
// case §2.6 describes ("allows the proxy to be used on behalf of the
// user by others"). Both ends therefore enforce their own ACLs against
// the user's identity: the source checks read access, the destination
// checks write access.
//
// Robustness: DB-backed transfer records (survive restarts, orphans
// re-queue), chunked streaming in bounded memory, and post-transfer MD5
// verification against the source's file.md5().
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "core/file_service.hpp"
#include "core/proxy_service.hpp"
#include "db/store.hpp"
#include "util/sync.hpp"

namespace clarens::core {

enum class TransferState { Queued, Running, Done, Failed, Cancelled };

const char* to_string(TransferState state);

struct Transfer {
  std::string id;
  std::string owner;  // DN string (the delegated identity)
  std::string source_host;
  std::uint16_t source_port = 0;
  bool source_tls = false;
  std::string source_path;
  std::string dest_path;
  TransferState state = TransferState::Queued;
  std::int64_t bytes = 0;
  bool verified = false;  // md5 matched after completion
  std::string error;
  std::int64_t submitted = 0;
  std::int64_t finished = 0;
};

class TransferService {
 public:
  /// `proxies` supplies delegated credentials; `files` is the local
  /// (destination) file service; `trust` verifies the remote server.
  TransferService(db::Store& store, FileService& files, ProxyService& proxies,
                  const pki::TrustStore& trust, int workers = 2);
  ~TransferService();

  TransferService(const TransferService&) = delete;
  TransferService& operator=(const TransferService&) = delete;

  /// Queue a pull. `proxy_password` unlocks the owner's stored proxy;
  /// it is used immediately to retrieve the credential and never stored.
  /// Throws AuthError when no usable proxy exists.
  std::string start(const pki::DistinguishedName& owner,
                    const std::string& source_url,
                    const std::string& source_path,
                    const std::string& dest_path,
                    const std::string& proxy_password);

  Transfer status(const std::string& transfer_id,
                  const pki::DistinguishedName& who) const;

  std::vector<Transfer> list(const pki::DistinguishedName& owner) const;

  bool cancel(const std::string& transfer_id,
              const pki::DistinguishedName& who);

  Transfer wait(const std::string& transfer_id,
                const pki::DistinguishedName& who, int timeout_ms = 30000);

  /// Streaming block size (bytes) for file.read pulls.
  static constexpr std::int64_t kBlockSize = 1 << 20;

 private:
  void worker_loop();
  void run_transfer(const std::string& transfer_id);
  void save(const Transfer& transfer);
  Transfer load(const std::string& transfer_id) const;

  db::Store& store_;
  FileService& files_;
  ProxyService& proxies_;
  const pki::TrustStore& trust_;

  /// Held across store reads/writes of transfer records: hierarchy
  /// `core.transfer` -> `db.store.shard`.
  mutable util::Mutex mutex_{util::LockLevel::kCoreTransfer};
  util::CondVar work_available_;
  util::CondVar state_changed_;
  std::deque<std::string> queue_ CLARENS_GUARDED_BY(mutex_);
  /// Retrieved proxy credentials for queued transfers, keyed by id —
  /// kept in memory only (never persisted; passwords are not retained).
  std::map<std::string, ProxyService::StoredProxy> credentials_
      CLARENS_GUARDED_BY(mutex_);
  bool stopping_ CLARENS_GUARDED_BY(mutex_) = false;
  std::vector<util::Thread> workers_;  // written once in the constructor
};

/// Parse "http://host:port" / "https://host:port" into (host, port, tls).
/// Throws clarens::ParseError.
void parse_server_url(const std::string& url, std::string& host,
                      std::uint16_t& port, bool& tls);

}  // namespace clarens::core
