// Virtual Organization management (paper §2.1).
//
// Each server manages a tree of groups rooted in `admins`, which is
// populated from the server configuration at startup. A group holds two
// DN lists — members and administrators. Semantics reproduced from the
// paper:
//   * the admins group may create and delete groups at all levels;
//   * group administrators may add/delete members, and groups at lower
//     levels of their branch;
//   * membership is hierarchical downward: members of a higher-level
//     group are automatically members of lower-level groups in the same
//     branch (a member of A is a member of A.1);
//   * a member entry is a DN *prefix*: "/O=doesciencegrid.org/OU=People"
//     admits every person the DOE grid CA issued.
//
// Group names are dotted paths: "A", "A.1", "cms.analysis.users". All VO
// state lives in the database.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "db/store.hpp"
#include "pki/dn.hpp"
#include "util/sync.hpp"

namespace clarens::core {

struct GroupInfo {
  std::string name;
  std::vector<std::string> members;  // DN prefixes
  std::vector<std::string> admins;   // DN prefixes
};

class VoManager {
 public:
  /// `root_admins` seeds the admins group (config-provided, re-applied on
  /// every construction = server restart, exactly as the paper states).
  VoManager(db::Store& store, std::vector<std::string> root_admins);

  /// Name of the root group.
  static constexpr const char* kAdminsGroup = "admins";

  // --- queries ------------------------------------------------------
  bool group_exists(const std::string& group) const;
  GroupInfo info(const std::string& group) const;  // throws NotFoundError
  std::vector<std::string> list_groups() const;

  /// Direct or inherited membership (walks ancestor groups, DN-prefix
  /// matching on each entry). Admins of a group count as members.
  bool is_member(const std::string& group, const pki::DistinguishedName& dn) const;

  /// Administrator of the group, any ancestor group, or the root admins.
  bool is_admin(const std::string& group, const pki::DistinguishedName& dn) const;

  /// Root administrator?
  bool is_root_admin(const pki::DistinguishedName& dn) const;

  // --- mutations (authorization enforced; throw AccessError) ---------
  void create_group(const std::string& group, const pki::DistinguishedName& actor);
  void delete_group(const std::string& group, const pki::DistinguishedName& actor);
  void add_member(const std::string& group, const std::string& member_dn,
                  const pki::DistinguishedName& actor);
  void remove_member(const std::string& group, const std::string& member_dn,
                     const pki::DistinguishedName& actor);
  void add_admin(const std::string& group, const std::string& admin_dn,
                 const pki::DistinguishedName& actor);
  void remove_admin(const std::string& group, const std::string& admin_dn,
                    const pki::DistinguishedName& actor);

 private:
  GroupInfo load(const std::string& group) const;
  void save(const GroupInfo& info);
  /// "A.1.x" -> {"A", "A.1"} (nearest last).
  static std::vector<std::string> ancestors(const std::string& group);
  /// May `actor` administer `group` (admin of it or any ancestor)?
  bool can_administer(const std::string& group,
                      const pki::DistinguishedName& actor) const;
  static bool dn_list_matches(const std::vector<std::string>& prefixes,
                              const pki::DistinguishedName& dn);

  db::Store& store_;
  /// Serializes group mutations: add/remove operations are read-modify-
  /// write over the stored group record, and concurrent administrators
  /// must not lose each other's changes. Queries read the store directly
  /// (it is internally thread-safe) and take no lock. Held across store
  /// calls: hierarchy `core.vo.write` -> `db.store.shard`.
  util::Mutex write_mutex_{util::LockLevel::kCoreVoWrite};

  // is_root_admin() runs on the ACL evaluation path (group-based specs,
  // deny fallback), so the admins group is cached pre-parsed. Every
  // group mutation bumps the generation; the cache reloads lazily (the
  // reload reads the store under the lock: `core.vo.root_cache` ->
  // `db.store.shard`).
  struct RootAdminCache {
    std::uint64_t stamp = 0;
    std::vector<pki::DistinguishedName> prefixes;  // admins + members
  };
  std::atomic<std::uint64_t> generation_{1};
  mutable util::Mutex root_cache_mutex_{util::LockLevel::kCoreVoRootCache};
  mutable RootAdminCache root_cache_ CLARENS_GUARDED_BY(root_cache_mutex_);
};

}  // namespace clarens::core
