#include "core/session.hpp"

#include "crypto/random.hpp"
#include "rpc/jsonrpc.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace clarens::core {

namespace {
constexpr const char* kTable = "sessions";
}

SessionManager::SessionManager(db::Store& store, std::int64_t default_ttl)
    : store_(store), default_ttl_(default_ttl) {}

std::string SessionManager::encode(const Session& session) {
  rpc::Value v = rpc::Value::struct_();
  v.set("identity", session.identity);
  v.set("via_proxy", session.via_proxy);
  v.set("created", session.created);
  v.set("expires", session.expires);
  v.set("proxy_serial", session.attached_proxy_serial);
  return rpc::jsonrpc::serialize_value(v);
}

Session SessionManager::decode(const std::string& id, const std::string& text) {
  rpc::Value v = rpc::jsonrpc::parse_value(text);
  Session session;
  session.id = id;
  session.identity = v.at("identity").as_string();
  session.via_proxy = v.at("via_proxy").as_bool();
  session.created = v.at("created").as_int();
  session.expires = v.at("expires").as_int();
  session.attached_proxy_serial = v.at("proxy_serial").as_string();
  return session;
}

Session SessionManager::create(const std::string& identity, bool via_proxy) {
  Session session;
  session.id = crypto::random_token(16);
  session.identity = identity;
  session.via_proxy = via_proxy;
  session.created = util::unix_now();
  session.expires = session.created + default_ttl_;
  store_.put(kTable, session.id, encode(session));
  return session;
}

Session SessionManager::lookup(const std::string& id) const {
  auto text = store_.get(kTable, id);
  if (!text) throw AuthError("no such session");
  Session session = decode(id, *text);
  if (session.expires < util::unix_now()) {
    store_.erase(kTable, id);
    throw AuthError("session expired");
  }
  return session;
}

void SessionManager::renew(const std::string& id, std::int64_t extra_seconds) {
  Session session = lookup(id);
  session.expires = util::unix_now() + extra_seconds;
  store_.put(kTable, id, encode(session));
}

void SessionManager::attach_proxy(const std::string& id,
                                  const std::string& proxy_serial) {
  Session session = lookup(id);
  session.attached_proxy_serial = proxy_serial;
  session.via_proxy = true;
  store_.put(kTable, id, encode(session));
}

bool SessionManager::destroy(const std::string& id) {
  return store_.erase(kTable, id);
}

std::size_t SessionManager::reap_expired() {
  std::size_t reaped = 0;
  std::int64_t now = util::unix_now();
  for (const auto& id : store_.keys(kTable)) {
    auto text = store_.get(kTable, id);
    if (!text) continue;
    if (decode(id, *text).expires < now) {
      store_.erase(kTable, id);
      ++reaped;
    }
  }
  return reaped;
}

std::size_t SessionManager::active_count() const { return store_.size(kTable); }

}  // namespace clarens::core
