#include "core/session.hpp"

#include <functional>

#include "crypto/random.hpp"
#include "rpc/jsonrpc.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace clarens::core {

namespace {
constexpr const char* kTable = "sessions";
}

SessionManager::SessionManager(db::Store& store, std::int64_t default_ttl,
                               bool durable_writes)
    : store_(store),
      default_ttl_(default_ttl),
      durable_writes_(durable_writes) {}

namespace {

/// Append `s` as a JSON string literal, escaping exactly the byte set the
/// jsonrpc parser understands (quote, backslash, control characters).
void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(c >> 4) & 0xf]);
          out.push_back(kHex[c & 0xf]);
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::string SessionManager::encode(const Session& session) {
  // Emitted directly rather than through an rpc::Value struct: session
  // creation is on the login path and the benchmark floor, and the
  // generic serializer costs a map of Values per call. The output stays
  // parse-compatible with jsonrpc::parse_value, which decode() uses.
  std::string out;
  out.reserve(96 + session.identity.size() +
              session.attached_proxy_serial.size());
  out += "{\"identity\":";
  append_json_string(out, session.identity);
  out += ",\"via_proxy\":";
  out += session.via_proxy ? "true" : "false";
  out += ",\"created\":";
  out += std::to_string(session.created);
  out += ",\"expires\":";
  out += std::to_string(session.expires);
  out += ",\"proxy_serial\":";
  append_json_string(out, session.attached_proxy_serial);
  out += "}";
  return out;
}

Session SessionManager::decode(const std::string& id, const std::string& text) {
  rpc::Value v = rpc::jsonrpc::parse_value(text);
  Session session;
  session.id = id;
  session.identity = v.at("identity").as_string();
  session.identity_dn = pki::DistinguishedName::parse(session.identity);
  session.via_proxy = v.at("via_proxy").as_bool();
  session.created = v.at("created").as_int();
  session.expires = v.at("expires").as_int();
  session.attached_proxy_serial = v.at("proxy_serial").as_string();
  return session;
}

SessionManager::Shard& SessionManager::shard_for(const std::string& id) const {
  return shards_[std::hash<std::string>{}(id) % kShards];
}

void SessionManager::cache_put(const Session& session) const {
  cache_put(std::make_shared<const Session>(session));
}

void SessionManager::cache_put(std::shared_ptr<const Session> session) const {
  Shard& shard = shard_for(session->id);
  util::LockGuard lock(shard.mutex);
  if (shard.entries.size() >= kShardCap) shard.entries.clear();
  shard.entries[session->id] = std::move(session);
}

void SessionManager::cache_erase(const std::string& id) const {
  Shard& shard = shard_for(id);
  util::LockGuard lock(shard.mutex);
  shard.entries.erase(id);
}

Session SessionManager::create(const std::string& identity, bool via_proxy) {
  // Build the immutable record once and share it between the write-through
  // store put and the cache insert; the old path re-copied the session
  // into the cache after encoding it through the generic serializer.
  auto session = std::make_shared<Session>();
  session->id = crypto::random_token(16);
  session->identity = identity;
  session->identity_dn = pki::DistinguishedName::parse(identity);
  session->via_proxy = via_proxy;
  session->created = util::unix_now();
  session->expires = session->created + default_ttl_;
  // encode() produces an rvalue, so the store takes the record without a
  // copy. The durable path rides the store's group commit: concurrent
  // logins share one fdatasync instead of paying one each.
  if (durable_writes_) {
    store_.put_durable(kTable, session->id, encode(*session));
  } else {
    store_.put(kTable, session->id, encode(*session));
  }
  Session out = *session;
  cache_put(std::shared_ptr<const Session>(std::move(session)));
  return out;
}

Session SessionManager::lookup(const std::string& id) const {
  return *lookup_shared(id);
}

std::shared_ptr<const Session> SessionManager::lookup_shared(
    const std::string& id) const {
  Shard& shard = shard_for(id);
  {
    util::LockGuard lock(shard.mutex);
    auto it = shard.entries.find(id);
    if (it != shard.entries.end()) {
      std::shared_ptr<const Session> session = it->second;
      if (session->expires < util::unix_now()) {
        // Lazy expiry: drop the cache entry only. The database copy is
        // left for reap_expired() — lookup is a read, not a mutation.
        shard.entries.erase(it);
        throw AuthError("session expired");
      }
      return session;
    }
  }

  // Miss: read through to the store. Record the invalidation generation
  // first — if a destroy lands between our read and our insert, skip the
  // insert rather than cache a deleted session.
  std::uint64_t gen = invalidations_.load(std::memory_order_acquire);
  auto text = store_.get(kTable, id);
  if (!text) throw AuthError("no such session");
  auto session = std::make_shared<const Session>(decode(id, *text));
  if (session->expires < util::unix_now()) throw AuthError("session expired");
  if (invalidations_.load(std::memory_order_acquire) == gen) {
    util::LockGuard lock(shard.mutex);
    if (shard.entries.size() >= kShardCap) shard.entries.clear();
    shard.entries[id] = session;
  }
  return session;
}

void SessionManager::renew(const std::string& id, std::int64_t extra_seconds) {
  Session session = lookup(id);
  session.expires = util::unix_now() + extra_seconds;
  store_.put(kTable, id, encode(session));
  cache_put(session);
}

void SessionManager::attach_proxy(const std::string& id,
                                  const std::string& proxy_serial) {
  Session session = lookup(id);
  session.attached_proxy_serial = proxy_serial;
  session.via_proxy = true;
  store_.put(kTable, id, encode(session));
  cache_put(session);
}

bool SessionManager::destroy(const std::string& id) {
  // Bump the generation before touching the store so an in-flight miss
  // that already read the old row cannot re-populate the cache.
  invalidations_.fetch_add(1, std::memory_order_release);
  bool existed = durable_writes_ ? store_.erase_durable(kTable, id)
                                 : store_.erase(kTable, id);
  cache_erase(id);
  return existed;
}

std::size_t SessionManager::reap_expired() {
  std::size_t reaped = 0;
  std::int64_t now = util::unix_now();
  invalidations_.fetch_add(1, std::memory_order_release);
  for (const auto& id : store_.keys(kTable)) {
    auto text = store_.get(kTable, id);
    if (!text) continue;
    if (decode(id, *text).expires < now) {
      store_.erase(kTable, id);
      cache_erase(id);
      ++reaped;
    }
  }
  return reaped;
}

std::size_t SessionManager::active_count() const { return store_.size(kTable); }

}  // namespace clarens::core
