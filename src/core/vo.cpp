#include "core/vo.hpp"

#include "rpc/jsonrpc.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace clarens::core {

namespace {
constexpr const char* kTable = "vo_groups";

std::string encode(const GroupInfo& info) {
  rpc::Value v = rpc::Value::struct_();
  rpc::Value members = rpc::Value::array();
  for (const auto& m : info.members) members.push(m);
  rpc::Value admins = rpc::Value::array();
  for (const auto& a : info.admins) admins.push(a);
  v.set("members", members);
  v.set("admins", admins);
  return rpc::jsonrpc::serialize_value(v);
}

GroupInfo decode(const std::string& name, const std::string& text) {
  rpc::Value v = rpc::jsonrpc::parse_value(text);
  GroupInfo info;
  info.name = name;
  for (const auto& m : v.at("members").as_array()) {
    info.members.push_back(m.as_string());
  }
  for (const auto& a : v.at("admins").as_array()) {
    info.admins.push_back(a.as_string());
  }
  return info;
}

void validate_group_name(const std::string& group) {
  if (group.empty() || group.front() == '.' || group.back() == '.') {
    throw ParseError("invalid group name: '" + group + "'");
  }
  for (char c : group) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '.' && c != '_' &&
        c != '-') {
      throw ParseError("invalid character in group name: '" + group + "'");
    }
  }
}

}  // namespace

VoManager::VoManager(db::Store& store, std::vector<std::string> root_admins)
    : store_(store) {
  // The admins group is (re)populated statically from configuration on
  // each server restart — stale DB content for it is overwritten.
  GroupInfo admins;
  admins.name = kAdminsGroup;
  admins.admins = std::move(root_admins);
  save(admins);
}

GroupInfo VoManager::load(const std::string& group) const {
  auto text = store_.get(kTable, group);
  if (!text) throw NotFoundError("no such group: '" + group + "'");
  return decode(group, *text);
}

void VoManager::save(const GroupInfo& info) {
  store_.put(kTable, info.name, encode(info));
  // Invalidate after the store holds the update (see root_cache_).
  generation_.fetch_add(1, std::memory_order_release);
}

std::vector<std::string> VoManager::ancestors(const std::string& group) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while ((pos = group.find('.', pos)) != std::string::npos) {
    out.push_back(group.substr(0, pos));
    ++pos;
  }
  return out;
}

bool VoManager::dn_list_matches(const std::vector<std::string>& prefixes,
                                const pki::DistinguishedName& dn) {
  for (const auto& prefix : prefixes) {
    // Entries are DN prefixes (paper §2.1's "initial significant part").
    try {
      if (pki::DistinguishedName::parse(prefix).is_prefix_of(dn)) return true;
    } catch (const ParseError&) {
      // A malformed stored entry never matches.
    }
  }
  return false;
}

bool VoManager::group_exists(const std::string& group) const {
  return store_.contains(kTable, group);
}

GroupInfo VoManager::info(const std::string& group) const { return load(group); }

std::vector<std::string> VoManager::list_groups() const {
  return store_.keys(kTable);
}

bool VoManager::is_root_admin(const pki::DistinguishedName& dn) const {
  std::uint64_t gen = generation_.load(std::memory_order_acquire);
  // lock-order: core.vo.root_cache -> db.store.shard
  // lock-order: core.vo.write -> core.vo.root_cache (same-rank)
  // Group mutations call this with core.vo.write held (same rank 20).
  // The pair cannot deadlock: root_cache never acquires write, and the
  // only nesting direction is write -> root_cache.
  util::LockGuard lock(root_cache_mutex_,
                       util::SameRankToken{"core.vo.write -> root_cache"});
  if (root_cache_.stamp != gen) {
    root_cache_.prefixes.clear();
    if (auto text = store_.get(kTable, kAdminsGroup)) {
      GroupInfo admins = decode(kAdminsGroup, *text);
      auto parse_into = [this](const std::vector<std::string>& prefixes) {
        for (const auto& prefix : prefixes) {
          try {
            root_cache_.prefixes.push_back(
                pki::DistinguishedName::parse(prefix));
          } catch (const ParseError&) {
            // Malformed entries never match (dn_list_matches semantics).
          }
        }
      };
      parse_into(admins.admins);
      parse_into(admins.members);
    }
    root_cache_.stamp = gen;
  }
  for (const auto& prefix : root_cache_.prefixes) {
    if (prefix.is_prefix_of(dn)) return true;
  }
  return false;
}

bool VoManager::is_member(const std::string& group,
                          const pki::DistinguishedName& dn) const {
  if (!group_exists(group)) return false;
  // The group itself, then every ancestor in the same branch.
  std::vector<std::string> lineage = ancestors(group);
  lineage.push_back(group);
  for (const auto& name : lineage) {
    if (!group_exists(name)) continue;
    GroupInfo info = load(name);
    if (dn_list_matches(info.members, dn) || dn_list_matches(info.admins, dn)) {
      return true;
    }
  }
  return false;
}

bool VoManager::is_admin(const std::string& group,
                         const pki::DistinguishedName& dn) const {
  if (is_root_admin(dn)) return true;
  std::vector<std::string> lineage = ancestors(group);
  lineage.push_back(group);
  for (const auto& name : lineage) {
    if (!group_exists(name)) continue;
    if (dn_list_matches(load(name).admins, dn)) return true;
  }
  return false;
}

bool VoManager::can_administer(const std::string& group,
                               const pki::DistinguishedName& actor) const {
  if (is_root_admin(actor)) return true;
  // Admin of the group itself or of any ancestor (lower levels of their
  // branch are theirs to manage).
  return is_admin(group, actor);
}

void VoManager::create_group(const std::string& group,
                             const pki::DistinguishedName& actor) {
  // lock-order: core.vo.write -> db.store.shard
  util::LockGuard lock(write_mutex_);
  validate_group_name(group);
  if (group == kAdminsGroup) {
    throw AccessError("the admins group is configuration-managed");
  }
  if (group_exists(group)) throw Error("group already exists: '" + group + "'");
  // Creating "A.1" requires authority over "A"; creating a top-level
  // group requires root admin.
  auto parents = ancestors(group);
  if (parents.empty()) {
    if (!is_root_admin(actor)) {
      throw AccessError("only root administrators may create top-level groups");
    }
  } else {
    const std::string& parent = parents.back();
    if (!group_exists(parent)) {
      throw NotFoundError("parent group does not exist: '" + parent + "'");
    }
    if (!can_administer(parent, actor)) {
      throw AccessError("not an administrator of '" + parent + "'");
    }
  }
  GroupInfo info;
  info.name = group;
  // The creator administers the new group.
  info.admins.push_back(actor.str());
  save(info);
}

void VoManager::delete_group(const std::string& group,
                             const pki::DistinguishedName& actor) {
  // lock-order: core.vo.write -> db.store.shard
  util::LockGuard lock(write_mutex_);
  if (group == kAdminsGroup) {
    throw AccessError("the admins group cannot be deleted");
  }
  if (!group_exists(group)) throw NotFoundError("no such group: '" + group + "'");
  if (!can_administer(group, actor)) {
    throw AccessError("not an administrator of '" + group + "'");
  }
  // Drop the group and every descendant.
  std::string prefix = group + ".";
  for (const auto& name : store_.keys(kTable)) {
    if (name == group || util::starts_with(name, prefix)) {
      store_.erase(kTable, name);
    }
  }
  generation_.fetch_add(1, std::memory_order_release);
}

void VoManager::add_member(const std::string& group, const std::string& member_dn,
                           const pki::DistinguishedName& actor) {
  // lock-order: core.vo.write -> db.store.shard
  util::LockGuard lock(write_mutex_);
  GroupInfo info = load(group);
  if (!can_administer(group, actor)) {
    throw AccessError("not an administrator of '" + group + "'");
  }
  pki::DistinguishedName::parse(member_dn);  // validate syntax
  for (const auto& m : info.members) {
    if (m == member_dn) return;  // idempotent
  }
  info.members.push_back(member_dn);
  save(info);
}

void VoManager::remove_member(const std::string& group,
                              const std::string& member_dn,
                              const pki::DistinguishedName& actor) {
  // lock-order: core.vo.write -> db.store.shard
  util::LockGuard lock(write_mutex_);
  GroupInfo info = load(group);
  if (!can_administer(group, actor)) {
    throw AccessError("not an administrator of '" + group + "'");
  }
  std::erase(info.members, member_dn);
  save(info);
}

void VoManager::add_admin(const std::string& group, const std::string& admin_dn,
                          const pki::DistinguishedName& actor) {
  // lock-order: core.vo.write -> db.store.shard
  util::LockGuard lock(write_mutex_);
  if (group == kAdminsGroup && !is_root_admin(actor)) {
    throw AccessError("only root administrators may modify the admins group");
  }
  GroupInfo info = load(group);
  if (!can_administer(group, actor)) {
    throw AccessError("not an administrator of '" + group + "'");
  }
  pki::DistinguishedName::parse(admin_dn);
  for (const auto& a : info.admins) {
    if (a == admin_dn) return;
  }
  info.admins.push_back(admin_dn);
  save(info);
}

void VoManager::remove_admin(const std::string& group, const std::string& admin_dn,
                             const pki::DistinguishedName& actor) {
  // lock-order: core.vo.write -> db.store.shard
  util::LockGuard lock(write_mutex_);
  GroupInfo info = load(group);
  if (!can_administer(group, actor)) {
    throw AccessError("not an administrator of '" + group + "'");
  }
  std::erase(info.admins, admin_dn);
  save(info);
}

}  // namespace clarens::core
