// shell.* — sandboxed command execution as a mapped system user (§2.5).
#include "core/bindings/bindings.hpp"

#include "core/shell_service.hpp"

namespace clarens::core::bindings {

void register_shell_methods(ShellService& shell, rpc::Registry& registry) {
  ShellService* s = &shell;

  registry.bind(
      "shell.cmd",
      [s](const rpc::CallContext& context, const std::string& command) {
        ShellResult result = s->execute(caller_dn(context), command);
        rpc::Value v = rpc::Value::struct_();
        v.set("exit_code", static_cast<std::int64_t>(result.exit_code));
        v.set("stdout", result.out);
        v.set("stderr", result.err);
        return rpc::StructResult{std::move(v)};
      },
      {.help = "Execute a sandboxed command as the mapped system user",
       .params = {"command"}});

  registry.bind(
      "shell.cmd_info",
      [s](const rpc::CallContext& context) {
        pki::DistinguishedName who = caller_dn(context);
        rpc::Value v = rpc::Value::struct_();
        v.set("sandbox", s->cmd_info(who));
        auto user = s->map_user(who);
        v.set("user", user ? *user : std::string());
        return rpc::StructResult{std::move(v)};
      },
      {.help = "Sandbox directory (file-service visible) and mapped user"});

  registry.bind(
      "shell.commands", [] { return ShellService::supported_commands(); },
      {.help = "Commands the restricted interpreter supports"});
}

}  // namespace clarens::core::bindings
