// vo.* — Virtual Organization management (paper §2.1).
#include "core/bindings/bindings.hpp"

#include "core/vo.hpp"

namespace clarens::core::bindings {

void register_vo_methods(VoManager& vo, rpc::Registry& registry) {
  VoManager* v = &vo;

  registry.bind(
      "vo.groups", [v] { return v->list_groups(); },
      {.help = "List all VO groups"});

  registry.bind(
      "vo.info",
      [v](const std::string& group) {
        GroupInfo info = v->info(group);
        rpc::Value out = rpc::Value::struct_();
        out.set("name", info.name);
        rpc::Value members = rpc::Value::array();
        for (const auto& m : info.members) members.push(m);
        out.set("members", std::move(members));
        rpc::Value admins = rpc::Value::array();
        for (const auto& a : info.admins) admins.push(a);
        out.set("admins", std::move(admins));
        return rpc::StructResult{std::move(out)};
      },
      {.help = "Members and administrators of a group", .params = {"group"}});

  registry.bind(
      "vo.create_group",
      [v](const rpc::CallContext& context, const std::string& group) {
        v->create_group(group, caller_dn(context));
        return true;
      },
      {.help = "Create a group (admins of the parent branch only)",
       .params = {"group"}});

  registry.bind(
      "vo.delete_group",
      [v](const rpc::CallContext& context, const std::string& group) {
        v->delete_group(group, caller_dn(context));
        return true;
      },
      {.help = "Delete a group and its descendants", .params = {"group"}});

  registry.bind(
      "vo.add_member",
      [v](const rpc::CallContext& context, const std::string& group,
          const std::string& dn) {
        v->add_member(group, dn, caller_dn(context));
        return true;
      },
      {.help = "Add a member DN (prefix) to a group",
       .params = {"group", "dn"}});

  registry.bind(
      "vo.remove_member",
      [v](const rpc::CallContext& context, const std::string& group,
          const std::string& dn) {
        v->remove_member(group, dn, caller_dn(context));
        return true;
      },
      {.help = "Remove a member DN from a group", .params = {"group", "dn"}});

  registry.bind(
      "vo.add_admin",
      [v](const rpc::CallContext& context, const std::string& group,
          const std::string& dn) {
        v->add_admin(group, dn, caller_dn(context));
        return true;
      },
      {.help = "Add an administrator DN to a group",
       .params = {"group", "dn"}});

  registry.bind(
      "vo.remove_admin",
      [v](const rpc::CallContext& context, const std::string& group,
          const std::string& dn) {
        v->remove_admin(group, dn, caller_dn(context));
        return true;
      },
      {.help = "Remove an administrator DN from a group",
       .params = {"group", "dn"}});

  registry.bind(
      "vo.is_member",
      [v](const std::string& group, const std::string& dn) {
        return v->is_member(group, pki::DistinguishedName::parse(dn));
      },
      {.help = "Test (inherited, prefix-matched) group membership",
       .params = {"group", "dn"}});
}

}  // namespace clarens::core::bindings
