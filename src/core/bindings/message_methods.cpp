// message.* — asynchronous bi-directional communication (paper §6).
#include "core/bindings/bindings.hpp"

#include "core/message_service.hpp"

namespace clarens::core::bindings {

void register_message_methods(MessageService& messages,
                              rpc::Registry& registry) {
  MessageService* m = &messages;

  registry.bind(
      "message.send",
      [m](const rpc::CallContext& context, const std::string& to_dn,
          const std::string& subject, const std::string& body) {
        return static_cast<std::int64_t>(
            m->send(context.identity, to_dn, subject, body));
      },
      {.help = "Queue a direct message for another identity",
       .params = {"to_dn", "subject", "body"}});

  registry.bind(
      "message.poll",
      [m](const rpc::CallContext& context, std::optional<std::int64_t> max) {
        std::size_t limit =
            max && *max > 0 ? static_cast<std::size_t>(*max) : 100;
        rpc::Array out;
        for (const auto& msg : m->poll(context.identity, limit)) {
          rpc::Value v = rpc::Value::struct_();
          v.set("id", static_cast<std::int64_t>(msg.id));
          v.set("from", msg.from);
          v.set("channel", msg.channel);
          v.set("subject", msg.subject);
          v.set("body", msg.body);
          v.set("sent", rpc::DateTime{msg.sent});
          out.push_back(std::move(v));
        }
        return out;
      },
      {.help = "Drain queued messages for the calling identity (oldest first)",
       .params = {"max"}});

  registry.bind(
      "message.pending",
      [m](const rpc::CallContext& context) {
        return static_cast<std::int64_t>(m->pending(context.identity));
      },
      {.help = "Number of queued messages for the caller"});

  registry.bind(
      "message.subscribe",
      [m](const rpc::CallContext& context, const std::string& channel) {
        m->subscribe(channel, context.identity);
        return true;
      },
      {.help = "Subscribe the caller to a channel", .params = {"channel"}});

  registry.bind(
      "message.unsubscribe",
      [m](const rpc::CallContext& context, const std::string& channel) {
        m->unsubscribe(channel, context.identity);
        return true;
      },
      {.help = "Unsubscribe the caller from a channel", .params = {"channel"}});

  registry.bind(
      "message.publish",
      [m](const rpc::CallContext& context, const std::string& channel,
          const std::string& subject, const std::string& body) {
        return static_cast<std::int64_t>(
            m->publish(context.identity, channel, subject, body));
      },
      {.help = "Publish to every subscriber of a channel; returns deliveries",
       .params = {"channel", "subject", "body"}});
}

}  // namespace clarens::core::bindings
