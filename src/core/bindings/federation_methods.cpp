// Federated head routing for file.* (ISSUE 8 tentpole).
//
// On a head node these bindings *replace* the local file.* handlers
// registered by register_file_methods (Registry::bind replaces same-name
// registrations):
//
//   * Bulk data (file.read / file.write) and namespace mutations
//     (file.mkdir / file.rm) come back as redirect envelopes — the
//     client replays the call on the owning storage node with a
//     head-minted node ticket, so the bytes never cross the head.
//     Mutations redirect rather than proxy so a replay decision stays
//     with the client (proxying a non-idempotent call over a pooled
//     connection could double-execute on retry).
//   * Small metadata (file.stat / file.md5 / file.size) is proxied
//     head-side over the per-node keep-alive pool — one client hop.
//   * Namespace-spanning reads (file.ls / file.find) fan out to every
//     storage node concurrently and merge.
//   * file.locate (new) exposes the placement decision itself.
//
// When the ring is empty (no live storage node) every method falls back
// to the head's local FileService, so a degraded cluster behaves like a
// standalone server rather than erroring.
#include <algorithm>
#include <set>

#include "core/bindings/bindings.hpp"
#include "core/acl.hpp"
#include "core/file_service.hpp"
#include "core/server.hpp"
#include "core/vo.hpp"
#include "federation/replicator.hpp"
#include "federation/router.hpp"
#include "rpc/binding.hpp"
#include "rpc/fault.hpp"
#include "util/error.hpp"

namespace clarens::core::bindings {

namespace {

/// Head-side pre-check of the *file* ACL before a ticket is minted: a
/// caller the head would deny locally never receives a capability to
/// present elsewhere.
void check_file_access(ClarensServer& server, const rpc::CallContext& context,
                       const std::string& path, bool write) {
  pki::DistinguishedName dn = caller_dn(context);
  bool ok = write ? server.acl().check_file_write(path, dn)
                  : server.acl().check_file_read(path, dn);
  if (!ok && !server.vo().is_root_admin(dn)) {
    throw AccessError(std::string("file ") + (write ? "write" : "read") +
                      " access denied: " + path);
  }
}

std::string mint(federation::Router& router, const rpc::CallContext& context,
                 const std::string& scope, bool write) {
  return router.mint_ticket(context.identity, context.via_proxy,
                            context.proxy_serial, scope, write);
}

rpc::RedirectResult redirect_to(federation::Router& router,
                                const rpc::CallContext& context,
                                const federation::NodeInfo& node,
                                const std::string& path, bool write) {
  rpc::RedirectResult redirect;
  redirect.url = node.url;
  redirect.scope = router.prefix_of(path);
  redirect.ticket = mint(router, context, redirect.scope, write);
  return redirect;
}

/// Fan a read-only namespace call out to every storage node and hand the
/// per-node replies to `merge`. Nodes that fail with "not found" are
/// normal (the path simply isn't placed there); if *every* node fails,
/// the first error is rethrown as a fault.
std::vector<rpc::Value> fan_out_collect(federation::Router& router,
                                        const rpc::CallContext& context,
                                        const std::string& method,
                                        const std::string& path,
                                        const std::vector<rpc::Value>& params) {
  std::vector<federation::NodeInfo> nodes = router.storage_nodes();
  std::vector<client::FanOutReply> replies = router.fan_out(
      nodes, method, params, mint(router, context, "/", /*write=*/false));
  std::vector<rpc::Value> results;
  std::string first_error;
  for (auto& reply : replies) {
    if (reply.ok) {
      results.push_back(std::move(reply.result));
    } else if (first_error.empty()) {
      first_error = reply.error;
    }
  }
  if (results.empty() && !replies.empty()) {
    throw rpc::Fault(rpc::kFaultNotFound,
                     method + " '" + path + "' failed on every storage node: " +
                         first_error);
  }
  return results;
}

/// Node to serve a read of `path`. With a replicator attached (head with
/// replication wired up) the layout table drives the choice — healthy,
/// live, non-suspect replicas first — so reads keep succeeding while a
/// node is down. Without one, fall back to plain ring routing.
std::optional<federation::NodeInfo> pick_read(ClarensServer& server,
                                              federation::Router& router,
                                              const std::string& path) {
  if (federation::Replicator* rep = server.replicator()) {
    return rep->pick_read_node(path);
  }
  return router.route(path);
}

/// Record the intent of a write/append redirect in the layout table
/// before the client ever reaches the storage node: the replicator now
/// expects a commit for `path` on `primary` and treats every other
/// replica as stale.
void note_write(ClarensServer& server, const rpc::CallContext& context,
                const std::string& path, const federation::NodeInfo& primary) {
  if (federation::Replicator* rep = server.replicator()) {
    rep->note_write(path, primary.id,
                    {context.identity, context.via_proxy,
                     context.proxy_serial});
  }
}

}  // namespace

void register_federation_methods(ClarensServer& server,
                                 federation::Router& router,
                                 rpc::Registry& registry) {
  ClarensServer* s = &server;
  federation::Router* r = &router;
  FileService* files = &server.files();

  registry.bind(
      "file.read",
      [s, r, files](const rpc::CallContext& context, const std::string& path,
                    std::int64_t offset, std::int64_t length) -> rpc::Value {
        if (auto owner = pick_read(*s, *r, path)) {
          check_file_access(*s, context, path, /*write=*/false);
          return redirect_to(*r, context, *owner, path, /*write=*/false)
              .to_value();
        }
        return rpc::Value(files->read(path, offset, length,
                                      caller_dn(context)));
      },
      {.help = "Read a byte range (redirects to the owning storage node)",
       .params = {"path", "offset", "length"},
       .acl_path = "file.read"});

  registry.bind(
      "file.write",
      [s, r, files](const rpc::CallContext& context, const std::string& path,
                    rpc::Blob data) -> rpc::Value {
        if (auto owner = r->route(path)) {
          check_file_access(*s, context, path, /*write=*/true);
          note_write(*s, context, path, *owner);
          return redirect_to(*r, context, *owner, path, /*write=*/true)
              .to_value();
        }
        files->write(path, data.bytes, caller_dn(context));
        return rpc::Value(true);
      },
      {.help = "Create or overwrite a file (redirects to the owning node)",
       .params = {"path", "data"},
       .acl_path = "file.write"});

  registry.bind(
      "file.append",
      [s, r, files](const rpc::CallContext& context, const std::string& path,
                    rpc::Blob data) -> rpc::Value {
        if (auto owner = r->route(path)) {
          check_file_access(*s, context, path, /*write=*/true);
          note_write(*s, context, path, *owner);
          return redirect_to(*r, context, *owner, path, /*write=*/true)
              .to_value();
        }
        files->append(path, data.bytes, caller_dn(context));
        return rpc::Value(true);
      },
      {.help = "Append to a file (redirects to the owning node)",
       .params = {"path", "data"},
       .acl_path = "file.write"});

  registry.bind(
      "file.mkdir",
      [s, r, files](const rpc::CallContext& context,
                    const std::string& path) -> rpc::Value {
        if (auto owner = r->route(path)) {
          check_file_access(*s, context, path, /*write=*/true);
          return redirect_to(*r, context, *owner, path, /*write=*/true)
              .to_value();
        }
        files->mkdir(path, caller_dn(context));
        return rpc::Value(true);
      },
      {.help = "Create a directory (redirects to the owning node)",
       .params = {"path"},
       .acl_path = "file.mkdir"});

  registry.bind(
      "file.rm",
      [s, r, files](const rpc::CallContext& context,
                    const std::string& path) -> rpc::Value {
        if (auto owner = r->route(path)) {
          check_file_access(*s, context, path, /*write=*/true);
          // The client removes the primary copy; the replicator purges
          // the other replicas and the layout rows underneath `path`.
          if (federation::Replicator* rep = s->replicator()) {
            rep->note_remove(path);
          }
          return redirect_to(*r, context, *owner, path, /*write=*/true)
              .to_value();
        }
        files->remove(path, caller_dn(context));
        return rpc::Value(true);
      },
      {.help = "Remove a file or tree (redirects to the owning node)",
       .params = {"path"},
       .acl_path = "file.rm"});

  // Small metadata: one proxied hop over the keep-alive peer pool beats
  // bouncing the client (all three are idempotent, so a stale pooled
  // connection is retried safely by the peer client).
  for (const char* name :
       {"file.stat", "file.md5", "file.size", "file.checksum"}) {
    std::string method = name;
    registry.bind(
        method,
        [s, r, files, method](const rpc::CallContext& context,
                              const std::string& path) -> rpc::Value {
          std::vector<rpc::Value> params = {rpc::Value(path)};
          if (auto owner = pick_read(*s, *r, path)) {
            check_file_access(*s, context, path, /*write=*/false);
            std::string ticket =
                mint(*r, context, r->prefix_of(path), /*write=*/false);
            try {
              return r->call_on(*owner, method, params, ticket);
            } catch (const SystemError&) {
              // The node did not answer; mark it suspect so the client's
              // retry of this call lands on a healthy replica.
              if (federation::Replicator* rep = s->replicator()) {
                rep->report_failure(owner->url);
              }
              throw;
            }
          }
          pki::DistinguishedName dn = caller_dn(context);
          if (method == "file.md5") return rpc::Value(files->md5(path, dn));
          if (method == "file.size") return rpc::Value(files->size(path, dn));
          if (method == "file.checksum") {
            FileService::FileChecksum sum = files->checksum(path, dn);
            rpc::Value v = rpc::Value::struct_();
            v.set("md5", sum.md5);
            v.set("size", sum.size);
            return v;
          }
          FileStat st = files->stat(path, dn);
          rpc::Value v = rpc::Value::struct_();
          v.set("name", st.name);
          v.set("is_directory", st.is_directory);
          v.set("size", st.size);
          v.set("mtime", rpc::DateTime{st.mtime});
          return v;
        },
        {.help = std::string(name) + " proxied to the owning storage node",
         .params = {"path"},
         .acl_path = method});
  }

  registry.bind(
      "file.ls",
      [s, r, files](const rpc::CallContext& context,
                    const std::string& path) -> rpc::Value {
        std::vector<federation::NodeInfo> nodes = r->storage_nodes();
        if (nodes.empty()) {
          rpc::Value out = rpc::Value::array();
          for (const auto& st : files->ls(path, caller_dn(context))) {
            rpc::Value v = rpc::Value::struct_();
            v.set("name", st.name);
            v.set("is_directory", st.is_directory);
            v.set("size", st.size);
            v.set("mtime", rpc::DateTime{st.mtime});
            out.push(v);
          }
          return out;
        }
        check_file_access(*s, context, path, /*write=*/false);
        // One namespace, many nodes: merge the per-node listings and
        // dedupe by entry name (directories materialize on several
        // nodes; their listings differ, their names collide).
        std::vector<rpc::Value> listings = fan_out_collect(
            *r, context, "file.ls", path, {rpc::Value(path)});
        rpc::Value out = rpc::Value::array();
        std::set<std::string> seen;
        for (auto& listing : listings) {
          for (const auto& entry : listing.as_array()) {
            if (seen.insert(entry.at("name").as_string()).second) {
              out.push(entry);
            }
          }
        }
        return out;
      },
      {.help = "Directory listing merged across storage nodes",
       .params = {"path"},
       .acl_path = "file.ls"});

  registry.bind(
      "file.find",
      [s, r, files](const rpc::CallContext& context, const std::string& path,
                    const std::string& pattern) -> rpc::Value {
        std::vector<federation::NodeInfo> nodes = r->storage_nodes();
        if (nodes.empty()) {
          rpc::Value out = rpc::Value::array();
          for (const auto& hit :
               files->find(path, pattern, caller_dn(context))) {
            out.push(hit);
          }
          return out;
        }
        check_file_access(*s, context, path, /*write=*/false);
        std::vector<rpc::Value> per_node =
            fan_out_collect(*r, context, "file.find", path,
                            {rpc::Value(path), rpc::Value(pattern)});
        std::set<std::string> merged;
        for (auto& hits : per_node) {
          for (const auto& hit : hits.as_array()) {
            merged.insert(hit.as_string());
          }
        }
        rpc::Value out = rpc::Value::array();
        for (const auto& hit : merged) out.push(hit);
        return out;
      },
      {.help = "Recursive filename search fanned out across storage nodes",
       .params = {"path", "pattern"},
       .acl_path = "file.find"});

  registry.bind(
      "file.locate",
      [r](const rpc::CallContext&, const std::string& path) {
        rpc::Value v = rpc::Value::struct_();
        v.set("prefix", r->prefix_of(path));
        rpc::Value owners = rpc::Value::array();
        for (const auto& node : r->route_replicas(path)) {
          rpc::Value o = rpc::Value::struct_();
          o.set("id", node.id);
          o.set("url", node.url);
          owners.push(o);
        }
        v.set("owners", owners);
        return rpc::StructResult{std::move(v)};
      },
      {.help = "Placement decision: which storage nodes own a path",
       .params = {"path"}});
}

}  // namespace clarens::core::bindings
