// replica.* + file.layout — the head's replication control plane
// (ISSUE 10 tentpole).
//
// These bindings expose the layout table and the background repair
// engine: inspect where a file's replicas live and what state they are
// in (file.layout, replica.list), force a synchronous repair
// (replica.repair), evacuate a node (replica.drain), run the checksum
// scrub on demand (replica.fsck), and read engine counters
// (replica.status). Two methods close feedback loops rather than serve
// operators: replica.report is how a client tells the head a redirect
// target did not answer, and replica.committed is how a storage node
// reports the checksum of a just-landed write — the only method a
// node ticket authorizes on the head (server.cpp gates it; the binding
// re-checks the ticket scope against the reported path).
#include "core/bindings/bindings.hpp"

#include "core/server.hpp"
#include "federation/layout.hpp"
#include "federation/replicator.hpp"
#include "federation/router.hpp"
#include "rpc/binding.hpp"
#include "rpc/fault.hpp"

namespace clarens::core::bindings {

namespace {

federation::WriterIdentity writer_of(const rpc::CallContext& context) {
  return {context.identity, context.via_proxy, context.proxy_serial};
}

rpc::Value layout_value(const federation::FileLayout& layout) {
  rpc::Value v = rpc::Value::struct_();
  v.set("path", layout.path);
  v.set("replica_count", static_cast<std::int64_t>(layout.replica_count));
  v.set("checksum", layout.checksum);
  v.set("confirmed", layout.confirmed);
  v.set("size", layout.size);
  v.set("updated_at", layout.updated_at);
  rpc::Value replicas = rpc::Value::array();
  for (const auto& replica : layout.replicas) {
    rpc::Value r = rpc::Value::struct_();
    r.set("node", replica.node_id);
    r.set("state", std::string(federation::to_string(replica.state)));
    replicas.push(r);
  }
  v.set("replicas", replicas);
  return v;
}

rpc::Value fsck_value(const federation::FsckReport& report) {
  rpc::Value v = rpc::Value::struct_();
  v.set("files", report.files);
  v.set("replicas_checked", report.replicas_checked);
  v.set("mismatched", report.mismatched);
  v.set("missing", report.missing);
  v.set("unreachable", report.unreachable);
  v.set("repaired", report.repaired);
  v.set("failed", report.failed);
  v.set("under_replicated", report.under_replicated);
  return v;
}

}  // namespace

void register_replica_methods(ClarensServer& server,
                              federation::Router& router,
                              federation::LayoutTable& layouts,
                              federation::Replicator& replicator,
                              rpc::Registry& registry) {
  (void)server;
  federation::Router* r = &router;
  federation::LayoutTable* l = &layouts;
  federation::Replicator* rep = &replicator;

  registry.bind(
      "file.layout",
      [r, l](const rpc::CallContext&, const std::string& path) {
        std::optional<federation::FileLayout> layout = l->get(path);
        if (!layout) {
          throw rpc::Fault(rpc::kFaultNotFound,
                           "no layout recorded for '" + path + "'");
        }
        rpc::Value v = layout_value(*layout);
        // The ring's current opinion rides along so an operator can see
        // placement drift (layout replicas vs. where the ring would put
        // the file today).
        rpc::Value owners = rpc::Value::array();
        for (const auto& node :
             r->route_owners(path, layout->replica_count)) {
          owners.push(node.id);
        }
        v.set("ring_owners", owners);
        return rpc::StructResult{std::move(v)};
      },
      {.help = "Replica layout of a file: target count, checksum, "
               "per-replica state",
       .params = {"path"}});

  registry.bind(
      "replica.list",
      [l](const rpc::CallContext&, const std::string& prefix) -> rpc::Value {
        rpc::Value out = rpc::Value::array();
        for (const auto& path : l->paths(prefix)) {
          if (std::optional<federation::FileLayout> layout = l->get(path)) {
            out.push(layout_value(*layout));
          }
        }
        return out;
      },
      {.help = "Layouts of every managed file under a prefix ('' = all)",
       .params = {"prefix"}});

  registry.bind(
      "replica.repair",
      [rep](const rpc::CallContext& context, const std::string& path) {
        std::string error;
        bool ok = rep->repair_file(path, writer_of(context), &error);
        rpc::Value v = rpc::Value::struct_();
        v.set("ok", ok);
        if (!ok) v.set("error", error);
        return rpc::StructResult{std::move(v)};
      },
      {.help = "Synchronously restore a file to its replica target",
       .params = {"path"}});

  registry.bind(
      "replica.drain",
      [rep](const rpc::CallContext&, const std::string& node_id) {
        return static_cast<std::int64_t>(rep->drain(node_id));
      },
      {.help = "Evacuate a storage node: re-replicate its files "
               "elsewhere, then purge its copies",
       .params = {"node_id"}});

  registry.bind(
      "replica.fsck",
      [rep](const rpc::CallContext&, const std::string& prefix) {
        return rpc::StructResult{fsck_value(rep->fsck(prefix))};
      },
      {.help = "Checksum-scrub every replica under a prefix ('' = all) "
               "and repair divergence",
       .params = {"prefix"}});

  registry.bind(
      "replica.status",
      [l, rep](const rpc::CallContext&) {
        federation::ReplicatorStats stats = rep->stats();
        rpc::Value v = rpc::Value::struct_();
        v.set("files", static_cast<std::int64_t>(l->size()));
        v.set("enqueued", static_cast<std::int64_t>(stats.enqueued));
        v.set("completed", static_cast<std::int64_t>(stats.completed));
        v.set("retried", static_cast<std::int64_t>(stats.retried));
        v.set("parked", static_cast<std::int64_t>(stats.parked));
        v.set("copies", static_cast<std::int64_t>(stats.copies));
        v.set("bytes_copied", static_cast<std::int64_t>(stats.bytes_copied));
        v.set("commits", static_cast<std::int64_t>(stats.commits));
        v.set("fsck_runs", static_cast<std::int64_t>(stats.fsck_runs));
        v.set("read_failures_reported",
              static_cast<std::int64_t>(stats.read_failures_reported));
        v.set("queue_depth", static_cast<std::int64_t>(stats.queue_depth));
        v.set("suspects", static_cast<std::int64_t>(stats.suspects));
        v.set("draining", static_cast<std::int64_t>(stats.draining));
        return rpc::StructResult{std::move(v)};
      },
      {.help = "Repair-engine counters and queue state"});

  registry.bind(
      "replica.report",
      [rep](const rpc::CallContext&, const std::string& node_url) {
        rep->report_failure(node_url);
        return true;
      },
      {.help = "Client-side failure report: a redirect target did not "
               "answer; route reads elsewhere",
       .params = {"node_url"}});

  registry.bind(
      "replica.committed",
      [rep](const rpc::CallContext& context, const std::string& path,
            const std::string& node_id, const std::string& md5,
            std::int64_t size) {
        // A storage node authenticates this with a self-minted node
        // ticket; its scope is the committed path, so a leaked ticket
        // for one file cannot rewrite another file's layout truth.
        check_ticket(context, path, /*write=*/false);
        rep->note_commit(path, node_id, md5, size, writer_of(context));
        return true;
      },
      {.help = "Storage-node commit notification: checksum of a "
               "just-landed write",
       .params = {"path", "node_id", "md5", "size"}});
}

}  // namespace clarens::core::bindings
