// Per-service method-binding units.
//
// Each register_* function attaches one service module's methods to the
// registry through the typed binding layer (rpc/binding.hpp): handlers
// declare C++ parameter types, signatures are derived from them, and
// per-method metadata (help, public flag, ACL path) lives next to the
// handler instead of in server-side name lists. ClarensServer calls
// these from its constructor / attach_* hooks and keeps only wiring,
// auth and HTTP handling for itself.
#pragma once

#include <functional>
#include <string>

#include "pki/dn.hpp"
#include "rpc/registry.hpp"

namespace clarens::discovery {
class DiscoveryServer;
}
namespace clarens::federation {
class LayoutTable;
class Replicator;
class Router;
}
namespace clarens::storage {
class SrmService;
}

namespace clarens::core {

class AclManager;
class ClarensServer;
class FileService;
class JobService;
class MessageService;
class ProxyService;
class ShellService;
class TransferService;
class VoManager;

namespace bindings {

/// The authenticated caller as a parsed DN (handlers receive the DN
/// string in the call context; services want the parsed form).
inline pki::DistinguishedName caller_dn(const rpc::CallContext& context) {
  return pki::DistinguishedName::parse(context.identity);
}

/// Ticket-authorized calls (storage nodes) are capabilities for one
/// namespace prefix: every file handler runs the touched path through
/// this before acting. No-op for session-authenticated callers (the ACL
/// chain already decided). Throws AccessError when the ticket's scope
/// does not cover `path`, or when `write` is requested on a read-only
/// ticket.
void check_ticket(const rpc::CallContext& context, const std::string& path,
                  bool write);

// system.* (+ echo.echo) touch server-wide state — sessions, the
// challenge table, config, the registry itself — so they take the server.
void register_system_methods(ClarensServer& server);

void register_vo_methods(VoManager& vo, rpc::Registry& registry);
void register_acl_methods(AclManager& acl, VoManager& vo,
                          rpc::Registry& registry);
/// Called after a ticket-authorized mutation lands bytes on disk; a
/// storage node uses it to send the head its commit notification
/// (replica.committed) so the layout table learns the content hash
/// without the bytes ever crossing the head.
using CommitHook =
    std::function<void(const rpc::CallContext&, const std::string& path)>;

void register_file_methods(FileService& files, rpc::Registry& registry,
                           CommitHook on_commit = {});
void register_shell_methods(ShellService& shell, rpc::Registry& registry);
void register_job_methods(JobService& jobs, rpc::Registry& registry);
void register_proxy_methods(ProxyService& proxy, rpc::Registry& registry);
void register_message_methods(MessageService& messages,
                              rpc::Registry& registry);
void register_transfer_methods(TransferService& transfers,
                               rpc::Registry& registry);
void register_discovery_methods(discovery::DiscoveryServer& discovery,
                                rpc::Registry& registry);
void register_srm_methods(storage::SrmService& srm, rpc::Registry& registry);
/// Head role only: re-binds file.* with redirect/proxy/fan-out variants
/// and adds file.locate. Call after register_file_methods (bind replaces
/// same-name registrations).
void register_federation_methods(ClarensServer& server,
                                 federation::Router& router,
                                 rpc::Registry& registry);

/// Head role only: the replication control plane — file.layout and the
/// replica.* family (list/repair/drain/fsck/status/report/committed)
/// over the layout table and the background repair engine.
void register_replica_methods(ClarensServer& server,
                              federation::Router& router,
                              federation::LayoutTable& layouts,
                              federation::Replicator& replicator,
                              rpc::Registry& registry);

}  // namespace bindings
}  // namespace clarens::core
