// transfer.* — third-party file pulls via delegation (paper §6).
#include "core/bindings/bindings.hpp"

#include "core/transfer_service.hpp"

namespace clarens::core::bindings {

namespace {

rpc::Value transfer_value(const Transfer& t) {
  rpc::Value v = rpc::Value::struct_();
  v.set("id", t.id);
  v.set("source",
        t.source_host + ":" + std::to_string(t.source_port) + t.source_path);
  v.set("dest", t.dest_path);
  v.set("state", std::string(to_string(t.state)));
  v.set("bytes", t.bytes);
  v.set("verified", t.verified);
  if (!t.error.empty()) v.set("error", t.error);
  return v;
}

}  // namespace

void register_transfer_methods(TransferService& transfers,
                               rpc::Registry& registry) {
  TransferService* t = &transfers;

  registry.bind(
      "transfer.start",
      [t](const rpc::CallContext& context, const std::string& source_url,
          const std::string& source_path, const std::string& dest_path,
          const std::string& proxy_password) {
        return t->start(caller_dn(context), source_url, source_path, dest_path,
                        proxy_password);
      },
      {.help = "Pull a file from another Clarens server using the caller's "
               "stored proxy (delegation)",
       .params = {"source_url", "source_path", "dest_path",
                  "proxy_password"}});

  registry.bind(
      "transfer.status",
      [t](const rpc::CallContext& context, const std::string& transfer_id) {
        return rpc::StructResult{
            transfer_value(t->status(transfer_id, caller_dn(context)))};
      },
      {.help = "State, byte count and verification result of a transfer",
       .params = {"transfer_id"}});

  registry.bind(
      "transfer.list",
      [t](const rpc::CallContext& context) {
        rpc::Array out;
        for (const auto& transfer : t->list(caller_dn(context))) {
          out.push_back(transfer_value(transfer));
        }
        return out;
      },
      {.help = "The caller's transfers, newest first"});

  registry.bind(
      "transfer.cancel",
      [t](const rpc::CallContext& context, const std::string& transfer_id) {
        return t->cancel(transfer_id, caller_dn(context));
      },
      {.help = "Cancel a queued transfer", .params = {"transfer_id"}});
}

}  // namespace clarens::core::bindings
