// discovery.* — aggregated service discovery (paper §5).
#include "core/bindings/bindings.hpp"

#include "discovery/discovery_server.hpp"
#include "rpc/fault.hpp"

namespace clarens::core::bindings {

void register_discovery_methods(discovery::DiscoveryServer& discovery,
                                rpc::Registry& registry) {
  discovery::DiscoveryServer* d = &discovery;

  registry.bind(
      "discovery.find_services",
      [d](std::optional<std::string> query) {
        rpc::Array out;
        for (const auto& record : d->find_services(query.value_or(""))) {
          out.push_back(record.to_value());
        }
        return out;
      },
      {.help = "Search aggregated service records by service-name substring",
       .params = {"query"}});

  registry.bind(
      "discovery.find_servers",
      [d] { return d->find_servers(); },
      {.help = "List distinct server endpoints known to discovery"});

  registry.bind(
      "discovery.locate",
      [d](const std::string& service) {
        auto url = d->locate(service);
        if (!url) {
          throw rpc::Fault(rpc::kFaultNotFound, "no live endpoint for service");
        }
        return *url;
      },
      {.help = "Resolve a service name to a live endpoint URL",
       .params = {"service"}});
}

}  // namespace clarens::core::bindings
