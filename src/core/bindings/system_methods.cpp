// system.* — introspection, authentication bootstrap, server status —
// plus echo.echo, the trivial method of the paper's Globus comparison.
#include "core/bindings/bindings.hpp"

#include "core/server.hpp"
#include "crypto/random.hpp"
#include "crypto/rsa.hpp"
#include "rpc/fault.hpp"
#include "rpc/jsonrpc.hpp"
#include "util/clock.hpp"
#include "util/hex.hpp"

namespace clarens::core::bindings {

namespace {

constexpr const char* kChallengeTable = "challenges";

}  // namespace

void register_system_methods(ClarensServer& server) {
  ClarensServer* srv = &server;
  rpc::Registry& registry = server.registry();

  registry.bind(
      "system.list_methods",
      [srv] { return srv->registry().list(); },
      {.help = "List every method registered on this server"});

  registry.bind(
      "system.method_help",
      [srv](const std::string& method) {
        return srv->registry().info(method).help;
      },
      {.help = "One-line description of a method", .params = {"method"}});

  registry.bind(
      "system.method_signature",
      [srv](const std::string& method) {
        return srv->registry().info(method).signature;
      },
      {.help = "Type signature of a method", .params = {"method"}});

  registry.bind(
      "system.ping", [] { return std::string("pong"); },
      {.help = "Liveness probe (no session required)", .is_public = true});

  registry.bind(
      "system.whoami",
      [](const rpc::CallContext& context) {
        rpc::Value v = rpc::Value::struct_();
        v.set("dn", context.identity);
        v.set("via_proxy", context.via_proxy);
        v.set("protocol", context.protocol);
        return rpc::StructResult{std::move(v)};
      },
      {.help = "Authenticated identity of the caller"});

  registry.bind(
      "system.server_info",
      [srv] {
        rpc::Value v = rpc::Value::struct_();
        v.set("framework", std::string("clarens-cpp"));
        v.set("version", std::string("1.0"));
        v.set("methods", static_cast<std::int64_t>(srv->registry().size()));
        v.set("encrypted", srv->config().use_tls);
        v.set("farm", srv->config().farm);
        v.set("node", srv->config().node);
        return rpc::StructResult{std::move(v)};
      },
      {.help = "Server identification and capabilities"});

  registry.bind(
      "system.cluster",
      [srv] {
        rpc::Value v = rpc::Value::struct_();
        v.set("role", std::string(to_string(srv->role())));
        v.set("farm", srv->config().farm);
        v.set("node", srv->config().node);
        rpc::Value nodes = rpc::Value::array();
        if (federation::Router* router = srv->router()) {
          for (const auto& info : router->storage_nodes()) {
            rpc::Value n = rpc::Value::struct_();
            n.set("id", info.id);
            n.set("url", info.url);
            n.set("capacity", info.capacity);
            nodes.push(n);
          }
        }
        v.set("storage_nodes", nodes);
        return rpc::StructResult{std::move(v)};
      },
      {.help = "Federation role and live storage-node membership"});

  registry.bind(
      "system.stats",
      [srv] {
        rpc::Value v = rpc::Value::struct_();
        v.set("requests_served",
              static_cast<std::int64_t>(srv->requests_served()));
        v.set("active_sessions",
              static_cast<std::int64_t>(srv->sessions().active_count()));
        v.set("uptime_seconds", util::unix_now() - srv->started_at());
        v.set("methods", static_cast<std::int64_t>(srv->registry().size()));
        return rpc::StructResult{std::move(v)};
      },
      {.help = "Operational counters (requests, sessions, uptime)"});

  registry.bind(
      "system.challenge",
      [srv] {
        std::string nonce = crypto::random_token(24);
        rpc::Value v = rpc::Value::struct_();
        v.set("expires", util::unix_now() + srv->config().challenge_ttl);
        srv->store().put(kChallengeTable, nonce,
                         rpc::jsonrpc::serialize_value(v));
        return nonce;
      },
      {.help = "Issue a single-use authentication nonce", .is_public = true});

  registry.bind(
      "system.auth",
      [srv](const rpc::CallContext& context,
            const std::optional<std::string>& nonce,
            const std::optional<std::vector<std::string>>& chain_texts,
            const std::optional<std::string>& signature_b64) {
        if (!nonce) {
          // TLS path: the channel already verified the client chain.
          if (context.identity.empty()) {
            throw rpc::Fault(rpc::kFaultAuth,
                             "no certificate presented on this connection");
          }
          return srv->sessions()
              .create(context.identity, context.via_proxy)
              .id;
        }
        // Challenge path (plaintext connections):
        //   params = [nonce, chain (array of certificate strings),
        //             signature (base64 of sig over the nonce)].
        auto challenge = srv->store().get(kChallengeTable, *nonce);
        if (!challenge) throw rpc::Fault(rpc::kFaultAuth, "unknown challenge");
        srv->store().erase(kChallengeTable, *nonce);  // single use
        rpc::Value cv = rpc::jsonrpc::parse_value(*challenge);
        if (cv.at("expires").as_int() < util::unix_now()) {
          throw rpc::Fault(rpc::kFaultAuth, "challenge expired");
        }
        if (!chain_texts || !signature_b64) {
          throw rpc::Fault(rpc::kFaultType,
                           "system.auth needs [nonce, chain, signature]");
        }
        std::vector<pki::Certificate> chain;
        for (const auto& cert_text : *chain_texts) {
          chain.push_back(pki::Certificate::decode(cert_text));
        }
        if (chain.empty()) throw rpc::Fault(rpc::kFaultAuth, "empty chain");
        auto verdict = srv->config().trust.verify(chain, util::unix_now());
        if (!verdict.ok) {
          throw rpc::Fault(rpc::kFaultAuth,
                           "certificate rejected: " + verdict.error);
        }
        std::vector<std::uint8_t> signature =
            util::base64_decode(*signature_b64);
        if (!crypto::rsa_verify(chain.front().public_key(), *nonce,
                                signature)) {
          throw rpc::Fault(rpc::kFaultAuth, "challenge signature invalid");
        }
        return srv->sessions()
            .create(verdict.identity.str(), verdict.via_proxy)
            .id;
      },
      {.help = "Authenticate with a certificate chain; returns a session "
               "token",
       .params = {"nonce", "chain", "signature"},
       .is_public = true});

  registry.bind(
      "system.logout",
      [srv](const rpc::CallContext& context) {
        return srv->sessions().destroy(context.session_id);
      },
      {.help = "Destroy the calling session"});

  registry.bind(
      "echo.echo", [](const rpc::Value& value) { return value; },
      {.help = "Return the first parameter unchanged", .params = {"value"}});
}

}  // namespace clarens::core::bindings
