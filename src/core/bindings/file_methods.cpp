// file.* — remote file access under virtual roots (paper §2.3).
#include "core/bindings/bindings.hpp"

#include "core/file_service.hpp"
#include "federation/node_ticket.hpp"
#include "util/error.hpp"

namespace clarens::core::bindings {

void check_ticket(const rpc::CallContext& context, const std::string& path,
                  bool write) {
  if (!context.via_ticket) return;
  if (write && !context.ticket_write) {
    throw AccessError("node ticket is read-only: " + path);
  }
  if (!federation::NodeTicket::scope_covers(context.ticket_scope, path)) {
    throw AccessError("node ticket does not cover path: " + path);
  }
}

namespace {

rpc::Value stat_value(const FileStat& st) {
  rpc::Value v = rpc::Value::struct_();
  v.set("name", st.name);
  v.set("is_directory", st.is_directory);
  v.set("size", st.size);
  v.set("mtime", rpc::DateTime{st.mtime});
  return v;
}

}  // namespace

void register_file_methods(FileService& files, rpc::Registry& registry,
                           CommitHook on_commit) {
  FileService* f = &files;
  // Fire the commit hook only for ticket-authorized mutations: those are
  // the replicated writes a storage node executes on the head's behalf,
  // and the hook's job is to report the landed bytes back to the head's
  // layout table. Session-authenticated (local/standalone) writes have
  // no layout entry to confirm.
  // Repair-engine copies (context.replication) are excluded: the head's
  // replicator already knows the bytes it is landing, per-chunk
  // notifications would carry partial-content hashes, and a synchronous
  // notify-back can deadlock a single-worker head<->storage pair.
  auto committed = [on_commit](const rpc::CallContext& context,
                               const std::string& path) {
    if (on_commit && context.via_ticket && !context.replication) {
      on_commit(context, path);
    }
  };

  registry.bind(
      "file.read",
      [f](const rpc::CallContext& context, const std::string& path,
          std::int64_t offset, std::int64_t length)
          -> std::vector<std::uint8_t> {
        check_ticket(context, path, /*write=*/false);
        // When the transport can stream a file region zero-copy and the
        // request is large enough to be worth it, hand back the resolved
        // range instead of materializing the bytes; the dispatcher
        // splices it into the response framing with sendfile(2). The
        // empty return value is discarded.
        std::int64_t threshold = f->sendfile_threshold();
        if (context.offer_file_region && threshold >= 0 &&
            length >= threshold) {
          FileService::ResolvedRegion region =
              f->read_region(path, offset, length, caller_dn(context));
          context.file_region = {region.real_path, region.offset,
                                 region.length};
          return {};
        }
        return f->read(path, offset, length, caller_dn(context));
      },
      {.help = "Read a byte range of a remote file",
       .params = {"path", "offset", "length"}});

  registry.bind(
      "file.write",
      [f, committed](const rpc::CallContext& context, const std::string& path,
                     rpc::Blob data) {
        check_ticket(context, path, /*write=*/true);
        f->write(path, data.bytes, caller_dn(context));
        committed(context, path);
        return true;
      },
      {.help = "Create or overwrite a remote file",
       .params = {"path", "data"}});

  registry.bind(
      "file.append",
      [f, committed](const rpc::CallContext& context, const std::string& path,
                     rpc::Blob data) {
        check_ticket(context, path, /*write=*/true);
        f->append(path, data.bytes, caller_dn(context));
        committed(context, path);
        return true;
      },
      {.help = "Append to (creating if needed) a remote file",
       .params = {"path", "data"}});

  registry.bind(
      "file.ls",
      [f](const rpc::CallContext& context, const std::string& path) {
        check_ticket(context, path, /*write=*/false);
        rpc::Array out;
        for (const auto& st : f->ls(path, caller_dn(context))) {
          out.push_back(stat_value(st));
        }
        return out;
      },
      {.help = "Directory listing", .params = {"path"}});

  registry.bind(
      "file.stat",
      [f](const rpc::CallContext& context, const std::string& path) {
        check_ticket(context, path, /*write=*/false);
        return rpc::StructResult{stat_value(f->stat(path, caller_dn(context)))};
      },
      {.help = "File or directory information", .params = {"path"}});

  registry.bind(
      "file.md5",
      [f](const rpc::CallContext& context, const std::string& path) {
        check_ticket(context, path, /*write=*/false);
        return f->md5(path, caller_dn(context));
      },
      {.help = "MD5 integrity hash of a file", .params = {"path"}});

  registry.bind(
      "file.checksum",
      [f](const rpc::CallContext& context, const std::string& path) {
        check_ticket(context, path, /*write=*/false);
        FileService::FileChecksum sum = f->checksum(path, caller_dn(context));
        rpc::Value v = rpc::Value::struct_();
        v.set("md5", sum.md5);
        v.set("size", sum.size);
        return rpc::StructResult{std::move(v)};
      },
      {.help = "MD5 hash and size in one pass (fsck scrub primitive)",
       .params = {"path"}});

  registry.bind(
      "file.size",
      [f](const rpc::CallContext& context, const std::string& path) {
        check_ticket(context, path, /*write=*/false);
        return f->size(path, caller_dn(context));
      },
      {.help = "Size of a file in bytes", .params = {"path"}});

  registry.bind(
      "file.find",
      [f](const rpc::CallContext& context, const std::string& path,
          const std::string& pattern) {
        check_ticket(context, path, /*write=*/false);
        return f->find(path, pattern, caller_dn(context));
      },
      {.help = "Recursive filename search", .params = {"path", "pattern"}});

  registry.bind(
      "file.mkdir",
      [f](const rpc::CallContext& context, const std::string& path) {
        check_ticket(context, path, /*write=*/true);
        f->mkdir(path, caller_dn(context));
        return true;
      },
      {.help = "Create a directory", .params = {"path"}});

  registry.bind(
      "file.rm",
      [f](const rpc::CallContext& context, const std::string& path) {
        check_ticket(context, path, /*write=*/true);
        f->remove(path, caller_dn(context));
        return true;
      },
      {.help = "Remove a file or directory tree", .params = {"path"}});

  registry.bind(
      "file.roots", [f] { return f->roots(); },
      {.help = "Configured virtual root prefixes"});
}

}  // namespace clarens::core::bindings
