// proxy.* — proxy-certificate storage and delegation (§2.6).
#include "core/bindings/bindings.hpp"

#include "core/proxy_service.hpp"
#include "pki/certificate.hpp"

namespace clarens::core::bindings {

void register_proxy_methods(ProxyService& proxy, rpc::Registry& registry) {
  ProxyService* p = &proxy;

  registry.bind(
      "proxy.store",
      [p](const std::string& proxy_credential, const std::string& user_cert,
          const std::string& password) {
        p->store(pki::Credential::decode(proxy_credential),
                 pki::Certificate::decode(user_cert), password);
        return true;
      },
      {.help = "Store a password-protected proxy credential",
       .params = {"proxy_credential", "user_cert", "password"}});

  registry.bind(
      "proxy.retrieve",
      [p](const std::string& dn, const std::string& password) {
        auto stored = p->retrieve(dn, password);
        rpc::Value v = rpc::Value::struct_();
        v.set("proxy", stored.proxy.encode());
        v.set("user_cert", stored.user_cert.encode());
        return rpc::StructResult{std::move(v)};
      },
      {.help = "Retrieve a stored proxy (delegation)",
       .params = {"dn", "password"}});

  registry.bind(
      "proxy.logon",
      [p](const std::string& dn, const std::string& password) {
        return p->logon(dn, password);
      },
      {.help = "Open a session knowing only DN and proxy password",
       .params = {"dn", "password"},
       .is_public = true});

  registry.bind(
      "proxy.attach",
      [p](const rpc::CallContext& context, const std::string& dn,
          const std::string& password) {
        p->attach(context.session_id, dn, password);
        return true;
      },
      {.help = "Attach/renew a stored proxy on the calling session",
       .params = {"dn", "password"}});

  registry.bind(
      "proxy.exists",
      [p](const std::string& dn) { return p->exists(dn); },
      {.help = "Does a stored proxy exist for this DN?", .params = {"dn"}});

  registry.bind(
      "proxy.remove",
      [p](const std::string& dn, const std::string& password) {
        return p->remove(dn, password);
      },
      {.help = "Delete a stored proxy (password required)",
       .params = {"dn", "password"}});
}

}  // namespace clarens::core::bindings
