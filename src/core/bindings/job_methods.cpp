// job.* — asynchronous job submission into the caller's sandbox (§3).
#include "core/bindings/bindings.hpp"

#include "core/job_service.hpp"

namespace clarens::core::bindings {

namespace {

rpc::Value job_value(const Job& job) {
  rpc::Value v = rpc::Value::struct_();
  v.set("id", job.id);
  v.set("command", job.command);
  v.set("state", std::string(to_string(job.state)));
  v.set("exit_code", static_cast<std::int64_t>(job.exit_code));
  v.set("output", job.output);
  v.set("error", job.error);
  v.set("submitted", rpc::DateTime{job.submitted});
  if (job.finished > 0) v.set("finished", rpc::DateTime{job.finished});
  return v;
}

}  // namespace

void register_job_methods(JobService& jobs, rpc::Registry& registry) {
  JobService* j = &jobs;

  registry.bind(
      "job.submit",
      [j](const rpc::CallContext& context, const std::string& command) {
        return j->submit(caller_dn(context), command);
      },
      {.help = "Queue a sandboxed command for asynchronous execution",
       .params = {"command"}});

  registry.bind(
      "job.status",
      [j](const rpc::CallContext& context, const std::string& job_id) {
        return rpc::StructResult{
            job_value(j->status(job_id, caller_dn(context)))};
      },
      {.help = "State, exit code and captured output of a job",
       .params = {"job_id"}});

  registry.bind(
      "job.list",
      [j](const rpc::CallContext& context) {
        rpc::Array out;
        for (const auto& job : j->list(caller_dn(context))) {
          out.push_back(job_value(job));
        }
        return out;
      },
      {.help = "The caller's jobs, newest first"});

  registry.bind(
      "job.cancel",
      [j](const rpc::CallContext& context, const std::string& job_id) {
        return j->cancel(job_id, caller_dn(context));
      },
      {.help = "Cancel a queued job (false if it already started)",
       .params = {"job_id"}});

  registry.bind(
      "job.purge",
      [j](const rpc::CallContext& context, const std::string& job_id) {
        j->purge(job_id, caller_dn(context));
        return true;
      },
      {.help = "Delete a finished job record", .params = {"job_id"}});
}

}  // namespace clarens::core::bindings
