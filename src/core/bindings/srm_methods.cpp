// srm.* — storage-resource-manager staging frontend (paper §7).
#include "core/bindings/bindings.hpp"

#include "storage/srm.hpp"

namespace clarens::core::bindings {

void register_srm_methods(storage::SrmService& srm, rpc::Registry& registry) {
  storage::SrmService* s = &srm;

  registry.bind(
      "srm.prepare_to_get",
      [s](const std::string& logical_path) {
        return s->prepare_to_get(logical_path);
      },
      {.help = "Request staging of a tape file; returns a request token",
       .params = {"logical_path"}});

  registry.bind(
      "srm.status",
      [s](const std::string& token) {
        storage::SrmRequest request = s->status(token);
        rpc::Value v = rpc::Value::struct_();
        v.set("token", request.token);
        v.set("path", request.logical_path);
        v.set("state", std::string(storage::to_string(request.state)));
        if (request.state == storage::SrmState::Ready) {
          // Virtual path of the staged copy (basename inside the cache).
          std::string name = request.cache_file;
          std::size_t slash = name.rfind('/');
          if (slash != std::string::npos) name = name.substr(slash + 1);
          v.set("cache_path", "/srmcache/" + name);
        }
        if (!request.error.empty()) v.set("error", request.error);
        return rpc::StructResult{std::move(v)};
      },
      {.help = "State of a staging request (QUEUED/STAGING/READY/FAILED)",
       .params = {"token"}});

  registry.bind(
      "srm.release",
      [s](const std::string& token) {
        s->release(token);
        return true;
      },
      {.help = "Release (unpin) a READY staging request", .params = {"token"}});

  registry.bind(
      "srm.put",
      [s](const std::string& logical_path, rpc::Blob data) {
        s->put(logical_path, data.view());
        return true;
      },
      {.help = "Write a file through the cache to tape",
       .params = {"logical_path", "data"}});

  registry.bind(
      "srm.ls",
      [s](const std::string& logical_dir) { return s->ls(logical_dir); },
      {.help = "List the tape namespace below a logical directory",
       .params = {"logical_dir"}});

  registry.bind(
      "srm.size",
      [s](const std::string& logical_path) { return s->size(logical_path); },
      {.help = "Size of a tape file in bytes", .params = {"logical_path"}});
}

}  // namespace clarens::core::bindings
