// acl.* — access-control management (paper §2.2). Mutations are
// root-administrator only.
#include "core/bindings/bindings.hpp"

#include "core/acl.hpp"
#include "core/vo.hpp"
#include "rpc/fault.hpp"
#include "rpc/jsonrpc.hpp"
#include "util/error.hpp"

namespace clarens::core::bindings {

namespace {

rpc::Value spec_value(const AclSpec& spec) {
  return rpc::jsonrpc::parse_value(encode_spec(spec));
}

AclSpec spec_from(const rpc::Value& v) {
  return decode_spec(rpc::jsonrpc::serialize_value(v));
}

void require_root(const VoManager& vo, const rpc::CallContext& context) {
  if (!vo.is_root_admin(caller_dn(context))) {
    throw AccessError("ACL management requires root administrator");
  }
}

}  // namespace

void register_acl_methods(AclManager& acl, VoManager& vo,
                          rpc::Registry& registry) {
  AclManager* a = &acl;
  VoManager* v = &vo;

  registry.bind(
      "acl.set_method",
      [a, v](const rpc::CallContext& context, const std::string& path,
             rpc::StructArg spec) {
        require_root(*v, context);
        a->set_method_acl(path, spec_from(spec.value()));
        return true;
      },
      {.help = "Attach an ACL to a method path", .params = {"path", "spec"}});

  registry.bind(
      "acl.get_method",
      [a](const std::string& path) {
        auto spec = a->get_method_acl(path);
        if (!spec) throw rpc::Fault(rpc::kFaultNotFound, "no ACL at this path");
        return rpc::StructResult{spec_value(*spec)};
      },
      {.help = "Fetch the ACL attached to a method path", .params = {"path"}});

  registry.bind(
      "acl.del_method",
      [a, v](const rpc::CallContext& context, const std::string& path) {
        require_root(*v, context);
        a->remove_method_acl(path);
        return true;
      },
      {.help = "Remove the ACL at a method path", .params = {"path"}});

  registry.bind(
      "acl.list",
      [a] {
        rpc::Value out = rpc::Value::struct_();
        rpc::Value methods = rpc::Value::array();
        for (const auto& p : a->list_method_acls()) methods.push(p);
        out.set("methods", std::move(methods));
        rpc::Value files = rpc::Value::array();
        for (const auto& p : a->list_file_acls()) files.push(p);
        out.set("files", std::move(files));
        return rpc::StructResult{std::move(out)};
      },
      {.help = "All paths carrying ACLs"});

  registry.bind(
      "acl.check_method",
      [a](const std::string& method, const std::string& dn) {
        return a->check_method(method, pki::DistinguishedName::parse(dn));
      },
      {.help = "Evaluate method access for a DN", .params = {"method", "dn"}});

  registry.bind(
      "acl.set_file",
      [a, v](const rpc::CallContext& context, const std::string& path,
             rpc::StructArg spec) {
        require_root(*v, context);
        FileAcl facl;
        facl.read = spec_from(spec.at("read"));
        facl.write = spec_from(spec.at("write"));
        a->set_file_acl(path, facl);
        return true;
      },
      {.help = "Attach a read/write ACL to a file path",
       .params = {"path", "spec"}});

  registry.bind(
      "acl.get_file",
      [a](const std::string& path) {
        auto facl = a->get_file_acl(path);
        if (!facl) throw rpc::Fault(rpc::kFaultNotFound, "no ACL at this path");
        rpc::Value out = rpc::Value::struct_();
        out.set("read", spec_value(facl->read));
        out.set("write", spec_value(facl->write));
        return rpc::StructResult{std::move(out)};
      },
      {.help = "Fetch the file ACL at a path", .params = {"path"}});

  registry.bind(
      "acl.del_file",
      [a, v](const rpc::CallContext& context, const std::string& path) {
        require_root(*v, context);
        a->remove_file_acl(path);
        return true;
      },
      {.help = "Remove the file ACL at a path", .params = {"path"}});
}

}  // namespace clarens::core::bindings
