// Message service — the paper's §6 "instant messaging architecture".
//
// Clarens' request/response model is "ill-suited for the asynchronous
// bi-directional communication required for interactions between users
// and the jobs they are running on private networks protected by NAT and
// firewalls". The proposed fix is store-and-forward messaging: since
// jobs can always *initiate* connections outward, they can send messages
// and poll for replies, letting them "act as Clarens servers, or clients
// sending information to monitoring systems or remote debugging tools".
//
// Model: a database-backed mailbox per identity DN, plus named channels
// with per-DN subscriptions (publish fans out to every subscriber's
// mailbox). Polling drains the caller's mailbox in arrival order. All
// state lives in the store, so messages survive server restarts like
// sessions do.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "db/store.hpp"
#include "util/sync.hpp"

namespace clarens::core {

struct Message {
  std::uint64_t id = 0;       // per-mailbox monotonically increasing
  std::string from;           // sender DN
  std::string to;             // recipient DN
  std::string channel;        // "" for direct messages
  std::string subject;
  std::string body;
  std::int64_t sent = 0;      // unix seconds
};

class MessageService {
 public:
  /// `max_mailbox` bounds each mailbox; the oldest message is dropped
  /// when a send would exceed it (monitoring streams must not OOM the
  /// server because one consumer went away).
  explicit MessageService(db::Store& store, std::size_t max_mailbox = 1000);

  /// Direct message to a DN. Returns the assigned message id.
  std::uint64_t send(const std::string& from_dn, const std::string& to_dn,
                     const std::string& subject, const std::string& body);

  /// Channel pub/sub: publish fans out to all current subscribers
  /// (returns how many mailboxes received it).
  void subscribe(const std::string& channel, const std::string& dn);
  void unsubscribe(const std::string& channel, const std::string& dn);
  std::vector<std::string> subscribers(const std::string& channel) const;
  std::size_t publish(const std::string& from_dn, const std::string& channel,
                      const std::string& subject, const std::string& body);

  /// Drain up to `max` messages for `dn`, oldest first (removes them).
  std::vector<Message> poll(const std::string& dn, std::size_t max = 100);

  /// Non-destructive look at the queue.
  std::vector<Message> peek(const std::string& dn, std::size_t max = 100) const;

  std::size_t pending(const std::string& dn) const;

 private:
  std::uint64_t enqueue(Message message);
  static std::string mailbox_key(const std::string& dn, std::uint64_t id);

  db::Store& store_;
  std::size_t max_mailbox_;
  /// Serializes the id-counter read-modify-write and the mailbox trim;
  /// concurrent senders to one mailbox must not mint duplicate ids.
  /// Held across store calls: hierarchy `core.message` -> `db.store.shard`.
  util::Mutex mutex_{util::LockLevel::kCoreMessage};
};

}  // namespace clarens::core
