// Shell service (paper §2.5).
//
// Authorized clients execute commands on the server as a *designated
// local system user*, chosen by a user-map file in the paper's
// .clarens_user_map format:
//
//   joe  /DC=org/DC=doegrids/OU=People/CN=Joe User ; cms.users ;
//
// i.e. tuples of: system user, list of user DNs, list of VO group names,
// and a reserved final list (fields ';'-separated, list items
// ','-separated).
//
// Execution happens in a per-user *sandbox* directory, created on first
// use and re-used for subsequent commands (visible to the file service,
// so clients can upload inputs and fetch outputs via file.*). Commands
// run through a restricted built-in interpreter rather than /bin/sh —
// running as real Unix users needs root and is the unsafe part of the
// original; the DN→user mapping, ACL gating, sandbox confinement and
// file-service interop are what this module reproduces.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pki/dn.hpp"
#include "util/sync.hpp"

namespace clarens::core {

class VoManager;

struct ShellResult {
  int exit_code = 0;
  std::string out;
  std::string err;
};

struct UserMapEntry {
  std::string system_user;
  std::vector<std::string> dns;     // DN prefixes
  std::vector<std::string> groups;  // VO group names
  std::vector<std::string> reserved;
};

/// Parse the .clarens_user_map format. Lines: user; dn,dn; group,group; ...
std::vector<UserMapEntry> parse_user_map(std::string_view text);

class ShellService {
 public:
  /// `sandbox_base`: directory under which per-user sandboxes live.
  ShellService(VoManager& vo, std::string sandbox_base);

  void set_user_map(std::vector<UserMapEntry> entries);
  void load_user_map_file(const std::string& path);

  /// The designated local user for a DN, or nullopt if unmapped.
  std::optional<std::string> map_user(const pki::DistinguishedName& dn) const;

  /// Execute a command line for `dn`. Throws AccessError when the DN maps
  /// to no system user. (Method-level ACLs are enforced by the server
  /// before this is reached.)
  ShellResult execute(const pki::DistinguishedName& dn,
                      const std::string& command_line);

  /// shell.cmd_info: the sandbox top directory for the caller, as a
  /// virtual file-service path ("/sandbox/<user>"), creating it if needed.
  std::string cmd_info(const pki::DistinguishedName& dn);

  /// Real directory of a user's sandbox (for wiring into the file service).
  std::string sandbox_dir(const std::string& system_user) const;
  const std::string& sandbox_base() const { return sandbox_base_; }

  /// Command names the interpreter understands (for shell.commands).
  static std::vector<std::string> supported_commands();

 private:
  ShellResult run_builtin(const std::string& system_user,
                          const std::vector<std::string>& argv);

  VoManager& vo_;
  std::string sandbox_base_;
  /// Guards entries_ and cwd_: the job service workers and RPC threads
  /// execute commands concurrently. Hierarchy level `core.shell` (leaf:
  /// the interpreter only touches the filesystem under it).
  mutable util::Mutex mutex_{util::LockLevel::kCoreShell};
  std::vector<UserMapEntry> entries_ CLARENS_GUARDED_BY(mutex_);
  /// Per-user current working directory (relative to the sandbox root),
  /// persisted across commands like an interactive shell.
  std::map<std::string, std::string> cwd_ CLARENS_GUARDED_BY(mutex_);
};

/// Tokenize a command line with single/double quoting rules.
std::vector<std::string> shell_tokenize(const std::string& line);

}  // namespace clarens::core
