#include "core/transfer_service.hpp"

#include <algorithm>
#include <chrono>

#include "client/client.hpp"
#include "crypto/random.hpp"
#include "rpc/jsonrpc.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace clarens::core {

namespace {

constexpr const char* kTable = "transfers";

TransferState transfer_state_from(const std::string& name) {
  if (name == "QUEUED") return TransferState::Queued;
  if (name == "RUNNING") return TransferState::Running;
  if (name == "DONE") return TransferState::Done;
  if (name == "FAILED") return TransferState::Failed;
  if (name == "CANCELLED") return TransferState::Cancelled;
  throw ParseError("unknown transfer state: '" + name + "'");
}

std::string encode(const Transfer& t) {
  rpc::Value v = rpc::Value::struct_();
  v.set("owner", t.owner);
  v.set("source_host", t.source_host);
  v.set("source_port", static_cast<std::int64_t>(t.source_port));
  v.set("source_tls", t.source_tls);
  v.set("source_path", t.source_path);
  v.set("dest_path", t.dest_path);
  v.set("state", std::string(to_string(t.state)));
  v.set("bytes", t.bytes);
  v.set("verified", t.verified);
  v.set("error", t.error);
  v.set("submitted", t.submitted);
  v.set("finished", t.finished);
  return rpc::jsonrpc::serialize_value(v);
}

Transfer decode(const std::string& id, const std::string& text) {
  rpc::Value v = rpc::jsonrpc::parse_value(text);
  Transfer t;
  t.id = id;
  t.owner = v.at("owner").as_string();
  t.source_host = v.at("source_host").as_string();
  t.source_port = static_cast<std::uint16_t>(v.at("source_port").as_int());
  t.source_tls = v.at("source_tls").as_bool();
  t.source_path = v.at("source_path").as_string();
  t.dest_path = v.at("dest_path").as_string();
  t.state = transfer_state_from(v.at("state").as_string());
  t.bytes = v.at("bytes").as_int();
  t.verified = v.at("verified").as_bool();
  t.error = v.at("error").as_string();
  t.submitted = v.at("submitted").as_int();
  t.finished = v.at("finished").as_int();
  return t;
}

bool is_terminal(TransferState state) {
  return state == TransferState::Done || state == TransferState::Failed ||
         state == TransferState::Cancelled;
}

}  // namespace

const char* to_string(TransferState state) {
  switch (state) {
    case TransferState::Queued: return "QUEUED";
    case TransferState::Running: return "RUNNING";
    case TransferState::Done: return "DONE";
    case TransferState::Failed: return "FAILED";
    case TransferState::Cancelled: return "CANCELLED";
  }
  return "?";
}

void parse_server_url(const std::string& url, std::string& host,
                      std::uint16_t& port, bool& tls) {
  std::string rest;
  if (util::starts_with(url, "https://")) {
    tls = true;
    rest = url.substr(8);
  } else if (util::starts_with(url, "http://")) {
    tls = false;
    rest = url.substr(7);
  } else {
    throw ParseError("server URL must start with http:// or https://");
  }
  // Strip any path component.
  std::size_t slash = rest.find('/');
  if (slash != std::string::npos) rest.resize(slash);
  std::size_t colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
    throw ParseError("server URL must include host:port");
  }
  host = rest.substr(0, colon);
  port = static_cast<std::uint16_t>(util::parse_uint(rest.substr(colon + 1)));
}

TransferService::TransferService(db::Store& store, FileService& files,
                                 ProxyService& proxies,
                                 const pki::TrustStore& trust, int workers)
    : store_(store), files_(files), proxies_(proxies), trust_(trust) {
  // Orphaned transfers from a crash fail cleanly: we no longer hold the
  // delegated credential (passwords are never persisted), so they cannot
  // be resumed silently — the owner must restart them.
  for (const auto& id : store_.keys(kTable)) {
    if (auto text = store_.get(kTable, id)) {
      Transfer t = decode(id, *text);
      if (!is_terminal(t.state)) {
        t.state = TransferState::Failed;
        t.error = "interrupted by server restart; resubmit";
        t.finished = util::unix_now();
        save(t);
      }
    }
  }
  if (workers < 1) workers = 1;
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

TransferService::~TransferService() {
  {
    util::LockGuard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void TransferService::save(const Transfer& t) {
  store_.put(kTable, t.id, encode(t));
}

Transfer TransferService::load(const std::string& transfer_id) const {
  auto text = store_.get(kTable, transfer_id);
  if (!text) throw NotFoundError("no such transfer: " + transfer_id);
  return decode(transfer_id, *text);
}

std::string TransferService::start(const pki::DistinguishedName& owner,
                                   const std::string& source_url,
                                   const std::string& source_path,
                                   const std::string& dest_path,
                                   const std::string& proxy_password) {
  Transfer t;
  parse_server_url(source_url, t.source_host, t.source_port, t.source_tls);
  t.id = crypto::random_token(10);
  t.owner = owner.str();
  t.source_path = source_path;
  t.dest_path = dest_path;
  t.submitted = util::unix_now();

  // Unlock the delegation now; the password itself is dropped.
  ProxyService::StoredProxy credential =
      proxies_.retrieve(owner.str(), proxy_password);

  {
    // lock-order: core.transfer -> db.store.shard
    util::LockGuard lock(mutex_);
    save(t);
    credentials_[t.id] = std::move(credential);
    queue_.push_back(t.id);
  }
  work_available_.notify_one();
  return t.id;
}

void TransferService::worker_loop() {
  for (;;) {
    std::string transfer_id;
    {
      // lock-order: core.transfer -> db.store.shard
      util::UniqueLock lock(mutex_);
      while (!stopping_ && queue_.empty()) work_available_.wait(lock);
      if (stopping_) return;
      transfer_id = queue_.front();
      queue_.pop_front();
      Transfer t;
      try {
        t = load(transfer_id);
      } catch (const NotFoundError&) {
        credentials_.erase(transfer_id);
        continue;
      }
      if (t.state != TransferState::Queued) {
        credentials_.erase(transfer_id);
        continue;  // cancelled while queued
      }
      t.state = TransferState::Running;
      save(t);
    }
    state_changed_.notify_all();
    run_transfer(transfer_id);
    state_changed_.notify_all();
  }
}

void TransferService::run_transfer(const std::string& transfer_id) {
  Transfer t;
  ProxyService::StoredProxy credential;
  {
    // lock-order: core.transfer -> db.store.shard
    util::LockGuard lock(mutex_);
    t = load(transfer_id);
    auto it = credentials_.find(transfer_id);
    if (it == credentials_.end()) {
      t.state = TransferState::Failed;
      t.error = "delegated credential lost";
      t.finished = util::unix_now();
      save(t);
      return;
    }
    credential = it->second;
    credentials_.erase(it);
  }

  std::string error;
  std::int64_t bytes = 0;
  bool verified = false;
  pki::DistinguishedName owner = pki::DistinguishedName::parse(t.owner);
  try {
    // Authenticate to the source as the user (proxy chain).
    client::ClientOptions options;
    options.host = t.source_host;
    options.port = t.source_port;
    options.use_tls = t.source_tls;
    options.credential = credential.proxy;
    options.chain = {credential.user_cert};
    options.trust = &trust_;
    client::ClarensClient source(options);
    source.connect();
    source.authenticate();

    std::string remote_md5 = source.file_md5(t.source_path);

    // Stream block by block; destination writes are ACL-checked as the
    // owner. Start from a fresh destination file.
    std::vector<std::uint8_t> empty;
    files_.write(t.dest_path, empty, owner);
    for (;;) {
      auto block = source.file_read(t.source_path, bytes, kBlockSize);
      if (block.empty()) break;
      files_.append(t.dest_path, block, owner);
      bytes += static_cast<std::int64_t>(block.size());
    }
    verified = files_.md5(t.dest_path, owner) == remote_md5;
    if (!verified) error = "md5 mismatch after transfer";
  } catch (const std::exception& e) {
    error = e.what();
  }

  // lock-order: core.transfer -> db.store.shard
  util::LockGuard lock(mutex_);
  t = load(transfer_id);
  t.bytes = bytes;
  t.verified = verified;
  t.error = error;
  t.state = (error.empty() && verified) ? TransferState::Done
                                        : TransferState::Failed;
  t.finished = util::unix_now();
  save(t);
}

Transfer TransferService::status(const std::string& transfer_id,
                                 const pki::DistinguishedName& who) const {
  // lock-order: core.transfer -> db.store.shard
  util::LockGuard lock(mutex_);
  Transfer t = load(transfer_id);
  if (t.owner != who.str()) {
    throw AccessError("transfer belongs to a different identity");
  }
  return t;
}

std::vector<Transfer> TransferService::list(
    const pki::DistinguishedName& owner) const {
  // lock-order: core.transfer -> db.store.shard
  util::LockGuard lock(mutex_);
  std::vector<Transfer> out;
  for (const auto& id : store_.keys(kTable)) {
    if (auto text = store_.get(kTable, id)) {
      Transfer t = decode(id, *text);
      if (t.owner == owner.str()) out.push_back(std::move(t));
    }
  }
  std::sort(out.begin(), out.end(), [](const Transfer& a, const Transfer& b) {
    return a.submitted > b.submitted;
  });
  return out;
}

bool TransferService::cancel(const std::string& transfer_id,
                             const pki::DistinguishedName& who) {
  // lock-order: core.transfer -> db.store.shard
  util::LockGuard lock(mutex_);
  Transfer t = load(transfer_id);
  if (t.owner != who.str()) {
    throw AccessError("transfer belongs to a different identity");
  }
  if (t.state != TransferState::Queued) return false;
  t.state = TransferState::Cancelled;
  t.finished = util::unix_now();
  save(t);
  credentials_.erase(transfer_id);
  state_changed_.notify_all();
  return true;
}

Transfer TransferService::wait(const std::string& transfer_id,
                               const pki::DistinguishedName& who,
                               int timeout_ms) {
  // lock-order: core.transfer -> db.store.shard
  util::UniqueLock lock(mutex_);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  Transfer t = load(transfer_id);
  while (!is_terminal(t.state)) {
    bool timed_out =
        state_changed_.wait_until(lock, deadline) == std::cv_status::timeout;
    t = load(transfer_id);
    if (is_terminal(t.state)) break;
    if (timed_out) throw SystemError("transfer did not finish in time");
  }
  if (t.owner != who.str()) {
    throw AccessError("transfer belongs to a different identity");
  }
  return t;
}

}  // namespace clarens::core
