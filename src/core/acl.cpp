#include "core/acl.hpp"

#include "core/vo.hpp"
#include "rpc/jsonrpc.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace clarens::core {

namespace {

constexpr const char* kMethodTable = "acl_methods";
constexpr const char* kFileTable = "acl_files";

rpc::Value strings_to_value(const std::vector<std::string>& list) {
  rpc::Value v = rpc::Value::array();
  for (const auto& s : list) v.push(s);
  return v;
}

std::vector<std::string> value_to_strings(const rpc::Value& v) {
  std::vector<std::string> out;
  for (const auto& s : v.as_array()) out.push_back(s.as_string());
  return out;
}

rpc::Value spec_to_value(const AclSpec& spec) {
  rpc::Value v = rpc::Value::struct_();
  v.set("order", spec.order == AclSpec::Order::AllowDeny
                     ? std::string("allow,deny")
                     : std::string("deny,allow"));
  v.set("allow_dns", strings_to_value(spec.allow_dns));
  v.set("allow_groups", strings_to_value(spec.allow_groups));
  v.set("deny_dns", strings_to_value(spec.deny_dns));
  v.set("deny_groups", strings_to_value(spec.deny_groups));
  return v;
}

AclSpec value_to_spec(const rpc::Value& v) {
  AclSpec spec;
  std::string order = v.at("order").as_string();
  if (order == "allow,deny") {
    spec.order = AclSpec::Order::AllowDeny;
  } else if (order == "deny,allow") {
    spec.order = AclSpec::Order::DenyAllow;
  } else {
    throw ParseError("invalid ACL order: '" + order + "'");
  }
  spec.allow_dns = value_to_strings(v.at("allow_dns"));
  spec.allow_groups = value_to_strings(v.at("allow_groups"));
  spec.deny_dns = value_to_strings(v.at("deny_dns"));
  spec.deny_groups = value_to_strings(v.at("deny_groups"));
  return spec;
}

bool dn_matches(const std::vector<std::string>& prefixes,
                const pki::DistinguishedName& dn) {
  for (const auto& prefix : prefixes) {
    if (prefix == AclSpec::kAnyone) return true;
    try {
      if (pki::DistinguishedName::parse(prefix).is_prefix_of(dn)) return true;
    } catch (const ParseError&) {
    }
  }
  return false;
}

bool group_matches(const std::vector<std::string>& groups,
                   const pki::DistinguishedName& dn, const VoManager& vo) {
  for (const auto& group : groups) {
    if (vo.is_member(group, dn)) return true;
  }
  return false;
}

bool compiled_dn_matches(bool anyone,
                         const std::vector<pki::DistinguishedName>& prefixes,
                         const pki::DistinguishedName& dn) {
  if (anyone) return true;
  for (const auto& prefix : prefixes) {
    if (prefix.is_prefix_of(dn)) return true;
  }
  return false;
}

}  // namespace

CompiledAclSpec compile_spec(const AclSpec& spec) {
  CompiledAclSpec out;
  out.order = spec.order;
  for (const auto& prefix : spec.allow_dns) {
    if (prefix == AclSpec::kAnyone) {
      out.allow_anyone = true;
      continue;
    }
    try {
      out.allow_dns.push_back(pki::DistinguishedName::parse(prefix));
    } catch (const ParseError&) {
      // A malformed prefix can never match; dropping it preserves the
      // interpreted semantics of dn_matches above.
    }
  }
  for (const auto& prefix : spec.deny_dns) {
    if (prefix == AclSpec::kAnyone) {
      out.deny_anyone = true;
      continue;
    }
    try {
      out.deny_dns.push_back(pki::DistinguishedName::parse(prefix));
    } catch (const ParseError&) {
    }
  }
  out.allow_groups = spec.allow_groups;
  out.deny_groups = spec.deny_groups;
  return out;
}

AclDecision evaluate_compiled(const CompiledAclSpec& spec,
                              const pki::DistinguishedName& dn,
                              const VoManager& vo) {
  bool allowed = compiled_dn_matches(spec.allow_anyone, spec.allow_dns, dn) ||
                 group_matches(spec.allow_groups, dn, vo);
  bool denied = compiled_dn_matches(spec.deny_anyone, spec.deny_dns, dn) ||
                group_matches(spec.deny_groups, dn, vo);
  if (spec.order == AclSpec::Order::AllowDeny) {
    if (denied) return AclDecision::Deny;
    if (allowed) return AclDecision::Allow;
  } else {
    if (allowed) return AclDecision::Allow;
    if (denied) return AclDecision::Deny;
  }
  return AclDecision::Unspecified;
}

AclDecision evaluate_spec(const AclSpec& spec, const pki::DistinguishedName& dn,
                          const VoManager& vo) {
  bool allowed = dn_matches(spec.allow_dns, dn) ||
                 group_matches(spec.allow_groups, dn, vo);
  bool denied = dn_matches(spec.deny_dns, dn) ||
                group_matches(spec.deny_groups, dn, vo);
  if (spec.order == AclSpec::Order::AllowDeny) {
    // Deny list is evaluated last and overrides.
    if (denied) return AclDecision::Deny;
    if (allowed) return AclDecision::Allow;
  } else {
    // Allow list is evaluated last and overrides.
    if (allowed) return AclDecision::Allow;
    if (denied) return AclDecision::Deny;
  }
  return AclDecision::Unspecified;
}

std::string encode_spec(const AclSpec& spec) {
  return rpc::jsonrpc::serialize_value(spec_to_value(spec));
}

AclSpec decode_spec(const std::string& text) {
  return value_to_spec(rpc::jsonrpc::parse_value(text));
}

AclManager::AclManager(db::Store& store, VoManager& vo, bool default_allow)
    : store_(store), vo_(vo), default_allow_(default_allow) {}

std::vector<std::string> AclManager::method_chain(const std::string& method) {
  // "a.b.c" -> {"a.b.c", "a.b", "a"}: lowest applicable level first.
  std::vector<std::string> out;
  std::string current = method;
  for (;;) {
    out.push_back(current);
    std::size_t dot = current.rfind('.');
    if (dot == std::string::npos) break;
    current.resize(dot);
  }
  return out;
}

std::vector<std::string> AclManager::path_chain(const std::string& path) {
  // "/a/b/c" -> {"/a/b/c", "/a/b", "/a", "/"}.
  std::vector<std::string> out;
  std::string current = path;
  if (current.empty()) current = "/";
  for (;;) {
    out.push_back(current);
    if (current == "/") break;
    std::size_t slash = current.rfind('/');
    if (slash == std::string::npos) break;
    current = slash == 0 ? "/" : current.substr(0, slash);
  }
  return out;
}

void AclManager::set_method_acl(const std::string& method_path,
                                const AclSpec& spec) {
  store_.put(kMethodTable, method_path, encode_spec(spec));
  // Invalidate after the store holds the new spec: any check that starts
  // once this returns observes the bumped generation and re-reads.
  generation_.fetch_add(1, std::memory_order_release);
}

std::optional<AclSpec> AclManager::get_method_acl(
    const std::string& method_path) const {
  auto text = store_.get(kMethodTable, method_path);
  if (!text) return std::nullopt;
  return decode_spec(*text);
}

void AclManager::remove_method_acl(const std::string& method_path) {
  store_.erase(kMethodTable, method_path);
  generation_.fetch_add(1, std::memory_order_release);
}

std::vector<std::string> AclManager::list_method_acls() const {
  return store_.keys(kMethodTable);
}

std::shared_ptr<const CompiledAclSpec> AclManager::compiled_level(
    const std::string& level) const {
  std::uint64_t gen = generation_.load(std::memory_order_acquire);
  Shard& shard = shards_[std::hash<std::string>{}(level) % kShards];
  // lock-order: core.acl.shard -> db.store.shard
  util::LockGuard lock(shard.mutex);
  if (shard.stamp != gen) {
    shard.entries.clear();
    shard.stamp = gen;
  }
  auto it = shard.entries.find(level);
  if (it != shard.entries.end()) return it->second;
  auto text = store_.get(kMethodTable, level);
  std::shared_ptr<const CompiledAclSpec> compiled;
  if (text) {
    compiled =
        std::make_shared<const CompiledAclSpec>(compile_spec(decode_spec(*text)));
  }
  // A mutation may have raced our store read; the entry is then stamped
  // with the older generation and swept on the next lookup.
  shard.entries.emplace(level, compiled);
  return compiled;
}

bool AclManager::check_method(const std::string& method,
                              const pki::DistinguishedName& dn) const {
  // Walk "a.b.c" -> "a.b" -> "a" in place (no per-call chain vector).
  std::string level = method;
  for (;;) {
    if (auto spec = compiled_level(level)) {
      switch (evaluate_compiled(*spec, dn, vo_)) {
        case AclDecision::Allow: return true;
        case AclDecision::Deny: return false;
        case AclDecision::Unspecified: break;
      }
    }
    std::size_t dot = level.rfind('.');
    if (dot == std::string::npos) break;
    level.resize(dot);
  }
  return default_allow_;
}

void AclManager::set_file_acl(const std::string& path, const FileAcl& acl) {
  rpc::Value v = rpc::Value::struct_();
  v.set("read", spec_to_value(acl.read));
  v.set("write", spec_to_value(acl.write));
  store_.put(kFileTable, path, rpc::jsonrpc::serialize_value(v));
}

std::optional<FileAcl> AclManager::get_file_acl(const std::string& path) const {
  auto text = store_.get(kFileTable, path);
  if (!text) return std::nullopt;
  rpc::Value v = rpc::jsonrpc::parse_value(*text);
  FileAcl acl;
  acl.read = value_to_spec(v.at("read"));
  acl.write = value_to_spec(v.at("write"));
  return acl;
}

void AclManager::remove_file_acl(const std::string& path) {
  store_.erase(kFileTable, path);
}

std::vector<std::string> AclManager::list_file_acls() const {
  return store_.keys(kFileTable);
}

bool AclManager::check_file(const std::string& path,
                            const pki::DistinguishedName& dn, bool write) const {
  for (const auto& level : path_chain(path)) {
    auto acl = get_file_acl(level);
    if (!acl) continue;
    const AclSpec& spec = write ? acl->write : acl->read;
    switch (evaluate_spec(spec, dn, vo_)) {
      case AclDecision::Allow: return true;
      case AclDecision::Deny: return false;
      case AclDecision::Unspecified: break;
    }
  }
  return default_allow_;
}

bool AclManager::check_file_read(const std::string& path,
                                 const pki::DistinguishedName& dn) const {
  return check_file(path, dn, /*write=*/false);
}

bool AclManager::check_file_write(const std::string& path,
                                  const pki::DistinguishedName& dn) const {
  return check_file(path, dn, /*write=*/true);
}

}  // namespace clarens::core
