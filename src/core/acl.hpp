// Hierarchical Access Control Lists (paper §2.2, §2.3).
//
// An ACL consists of an evaluation-order specification (allow,deny or
// deny,allow — Apache .htaccess semantics) followed by DNs allowed,
// groups allowed, DNs denied and groups denied. ACLs attach to
// hierarchical names: method paths (module.method, any depth) and file
// paths (/a/b/c); file ACLs carry two independent specs, read and write.
//
// Evaluation walks from the lowest (most specific) applicable level to
// the highest: access granted at a higher level applies to lower levels
// unless specifically denied there. Each level yields Allow, Deny, or
// Unspecified; the first decisive level wins. If no level decides, the
// manager's default policy applies.
//
// Method ACLs are the second per-request access check, so check_method
// runs off a sharded cache of *compiled* specs: the stored JSON is
// decoded once and its DN prefixes pre-parsed, keyed by hierarchy level
// (absent levels cache as negative entries). A single generation counter
// bumped by every method-ACL mutation invalidates the whole cache —
// mutations are administrative and rare, so correctness is bought with
// one atomic increment and there is no per-entry staleness to reason
// about. File ACLs are not on the RPC hot path and stay uncached.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/store.hpp"
#include "pki/dn.hpp"
#include "util/sync.hpp"

namespace clarens::core {

class VoManager;

/// One evaluation-order + four lists, per the paper.
struct AclSpec {
  enum class Order { AllowDeny, DenyAllow };
  Order order = Order::AllowDeny;
  std::vector<std::string> allow_dns;     // DN prefixes
  std::vector<std::string> allow_groups;  // VO group names
  std::vector<std::string> deny_dns;
  std::vector<std::string> deny_groups;

  /// Wildcard convenience: "*" in allow_dns matches every identity.
  static constexpr const char* kAnyone = "*";
};

enum class AclDecision { Allow, Deny, Unspecified };

/// Evaluate one spec against an identity (group membership resolved via
/// `vo`). Implements Apache order semantics:
///   allow,deny: a matching deny wins over a matching allow;
///   deny,allow: a matching allow wins over a matching deny.
AclDecision evaluate_spec(const AclSpec& spec, const pki::DistinguishedName& dn,
                          const VoManager& vo);

/// An AclSpec decoded for repeated evaluation: DN prefixes parsed once
/// (malformed entries dropped — they can never match) and the anyone
/// wildcard lifted out.
struct CompiledAclSpec {
  AclSpec::Order order = AclSpec::Order::AllowDeny;
  bool allow_anyone = false;
  bool deny_anyone = false;
  std::vector<pki::DistinguishedName> allow_dns;
  std::vector<pki::DistinguishedName> deny_dns;
  std::vector<std::string> allow_groups;
  std::vector<std::string> deny_groups;
};

CompiledAclSpec compile_spec(const AclSpec& spec);
AclDecision evaluate_compiled(const CompiledAclSpec& spec,
                              const pki::DistinguishedName& dn,
                              const VoManager& vo);

struct FileAcl {
  AclSpec read;
  AclSpec write;
};

class AclManager {
 public:
  /// `default_allow`: the decision when no ACL on the chain decides.
  /// Production servers run closed (false); the paper's benchmark setup
  /// grants authenticated users access to the system module via explicit
  /// ACLs instead.
  AclManager(db::Store& store, VoManager& vo, bool default_allow = false);

  // --- method ACLs ---------------------------------------------------
  void set_method_acl(const std::string& method_path, const AclSpec& spec);
  std::optional<AclSpec> get_method_acl(const std::string& method_path) const;
  void remove_method_acl(const std::string& method_path);
  std::vector<std::string> list_method_acls() const;

  /// The per-request check: walks "a.b.c" -> "a.b" -> "a" (lowest first).
  bool check_method(const std::string& method,
                    const pki::DistinguishedName& dn) const;

  // --- file ACLs -------------------------------------------------------
  void set_file_acl(const std::string& path, const FileAcl& acl);
  std::optional<FileAcl> get_file_acl(const std::string& path) const;
  void remove_file_acl(const std::string& path);
  std::vector<std::string> list_file_acls() const;

  /// Walks "/a/b/c" -> "/a/b" -> "/a" -> "/".
  bool check_file_read(const std::string& path,
                       const pki::DistinguishedName& dn) const;
  bool check_file_write(const std::string& path,
                        const pki::DistinguishedName& dn) const;

  bool default_allow() const { return default_allow_; }

 private:
  static constexpr std::size_t kShards = 8;

  /// nullptr value = negative entry (no ACL stored at that level).
  /// compiled_level() reads the store while holding the shard lock, so
  /// the hierarchy is `core.acl.shard` -> `db.store.shard`.
  struct Shard {
    mutable util::Mutex mutex{util::LockLevel::kCoreAclShard};
    /// Generation the contents belong to.
    std::uint64_t stamp CLARENS_GUARDED_BY(mutex) = 0;
    std::unordered_map<std::string, std::shared_ptr<const CompiledAclSpec>>
        entries CLARENS_GUARDED_BY(mutex);
  };

  bool check_file(const std::string& path, const pki::DistinguishedName& dn,
                  bool write) const;
  static std::vector<std::string> method_chain(const std::string& method);
  static std::vector<std::string> path_chain(const std::string& path);

  /// Cached compiled spec for one hierarchy level (nullptr when none).
  std::shared_ptr<const CompiledAclSpec> compiled_level(
      const std::string& level) const;

  db::Store& store_;
  VoManager& vo_;
  bool default_allow_;
  // Bumped after every method-ACL mutation reaches the store, so by the
  // time a setter returns no check can serve the previous spec.
  std::atomic<std::uint64_t> generation_{1};
  mutable Shard shards_[kShards];
};

/// Serialization (DB storage format + RPC surface).
std::string encode_spec(const AclSpec& spec);
AclSpec decode_spec(const std::string& text);

}  // namespace clarens::core
