// ClarensServer: the assembled Web Service framework of the paper.
//
// Wires together the HTTP server (Apache analogue), the RPC protocol
// layer (XML-RPC / SOAP / JSON-RPC on one endpoint), the database-backed
// session manager, VO and ACL management, the file / shell / proxy
// services, the discovery publisher, and the browser portal page.
//
// Every RPC passes through the two access-control checks the paper's
// performance section describes — session validity and method ACL — each
// a database lookup, with no per-request caching.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "client/peer_pool.hpp"
#include "core/acl.hpp"
#include "core/file_service.hpp"
#include "core/job_service.hpp"
#include "core/message_service.hpp"
#include "core/proxy_service.hpp"
#include "core/session.hpp"
#include "core/transfer_service.hpp"
#include "core/shell_service.hpp"
#include "core/vo.hpp"
#include "db/store.hpp"
#include "discovery/discovery_server.hpp"
#include "discovery/publisher.hpp"
#include "federation/layout.hpp"
#include "federation/node_ticket.hpp"
#include "federation/replicator.hpp"
#include "federation/router.hpp"
#include "http/server.hpp"
#include "pki/certificate.hpp"
#include "pki/verify.hpp"
#include "rpc/registry.hpp"
#include "storage/srm.hpp"
#include "util/sync.hpp"

namespace clarens::core {

/// Federation role of one server (ISSUE 8, the EOS mgm/fst split):
///  * Standalone — the pre-federation single-server deployment; owns
///    everything, redirects nothing.
///  * Head — owns sessions/auth/VO/ACL and the namespace; answers file
///    I/O with redirect envelopes to storage nodes and mints the node
///    tickets that authorize the hop.
///  * Storage — owns file/sandbox bytes; trusts head-minted node tickets
///    (X-Clarens-Node-Ticket) in place of a full session handshake.
enum class NodeRole { Standalone, Head, Storage };

const char* to_string(NodeRole role);

struct ClarensConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral

  /// Persistent state directory; empty = in-memory database (sessions
  /// then do NOT survive restarts — fine for tests and benchmarks).
  std::string data_dir;

  /// Storage-engine tuning (persistent stores only; see db::StoreOptions).
  std::size_t store_shards = 16;
  bool store_group_commit = true;
  std::int64_t store_commit_interval_us = 200;
  std::size_t store_commit_batch_max = 256;
  std::int64_t store_compact_threshold = 8 * 1024 * 1024;
  /// Durable session mutations: session create/destroy ack only after
  /// their journal group is fdatasync'ed (group commit amortizes the
  /// fsync across concurrent logins). Off = async journaling, the
  /// paper's restart-survival is best-effort within the commit interval.
  bool session_durable_writes = false;

  /// Root administrator DNs (populate the admins group at startup).
  std::vector<std::string> admins;

  /// ACL default when no ACL decides. Keep false in production.
  bool default_allow = false;

  /// Seed method ACLs applied at startup (path -> spec). The benchmark
  /// setup grants "system" and "echo" to every authenticated identity.
  std::vector<std::pair<std::string, AclSpec>> initial_method_acls;
  std::vector<std::pair<std::string, FileAcl>> initial_file_acls;

  /// Server credential and trust anchors. The credential is required
  /// when TLS is on; the trust store is always required (plaintext
  /// authentication also verifies certificate chains).
  std::optional<pki::Credential> credential;
  std::vector<pki::Certificate> chain;
  pki::TrustStore trust;

  bool use_tls = false;
  bool require_client_cert = false;

  /// Virtual file roots: virtual prefix -> server directory.
  std::map<std::string, std::string> file_roots;

  /// Shell sandbox base directory ("" disables the shell and job
  /// services).
  std::string sandbox_base;
  std::vector<UserMapEntry> user_map;
  /// Concurrent job-execution workers.
  int job_workers = 2;
  /// Concurrent third-party transfer streams; 0 disables transfer.*.
  int transfer_workers = 2;

  std::int64_t session_ttl = 24 * 3600;
  std::int64_t challenge_ttl = 300;
  /// Largest file.read chunk a client may request in one call. The
  /// wire-supplied length sizes a server buffer, so it is clamped.
  std::int64_t max_read_chunk = 8 * 1024 * 1024;

  /// Adaptive inline dispatch: run measured-cheap system.* / echo.* RPCs
  /// directly on the reactor thread, skipping the worker handoff (the
  /// paper's Fig. 4 hot path). Off = every request takes a worker.
  bool inline_dispatch = true;
  /// file.read responses of at least this many bytes bypass the
  /// serialization arena and stream zero-copy from the file (sendfile(2)
  /// on plaintext connections; binary protocol only). < 0 disables.
  std::int64_t sendfile_threshold = 64 * 1024;
  /// Expired-session sweep period; <= 0 disables the reaper thread.
  int session_reap_interval_s = 300;

  /// Browser portal (§3): directory of static pages served on GET /
  /// and /portal/* without authentication (they contain no data, only
  /// the JavaScript UI that makes authenticated web-service calls).
  /// Empty = serve a built-in placeholder page on "/".
  std::string portal_dir;

  /// Discovery: publish to this station server when set.
  std::optional<std::pair<std::string, std::uint16_t>> station;
  std::string farm = "local";
  std::string node = "clarens";
  int publish_interval_ms = 2000;

  // --- Federation (ISSUE 8) -------------------------------------------
  /// Role in a federated deployment; Standalone keeps every pre-existing
  /// behaviour byte-for-byte.
  NodeRole node_role = NodeRole::Standalone;
  /// Storage nodes: RPC URL of the head (http(s)://host:port[/clarens]).
  std::string head_url;
  /// Shared cluster secret that signs node tickets. Required (>= 16
  /// chars) for head and storage roles.
  std::string node_ticket_secret;
  /// Distinct storage nodes a namespace prefix is placed on.
  int placement_replicas = 1;
  /// This node's placement-ring weight as advertised via discovery.
  double node_capacity = 1.0;
  /// Head: minimum interval between placement-ring rebuilds from
  /// discovery records.
  int federation_refresh_ms = 1000;
  /// Lifetime of head-minted node tickets.
  int node_ticket_ttl_s = 300;
  /// Path components per placement prefix ("/data/run1/x" -> "/data/run1"
  /// at depth 2).
  int placement_prefix_depth = 2;

  // --- Replication / self-healing (ISSUE 10) --------------------------
  /// Head: how long a storage node may be absent from discovery before
  /// its replicas are declared missing and re-replication starts.
  int replication_grace_ms = 5000;
  /// Bounded retry of queued replication work: attempts per task, first
  /// delay, and the cap the exponential backoff saturates at.
  int replication_retry_max = 8;
  int replication_retry_base_ms = 100;
  int replication_retry_max_ms = 5000;
  /// Bytes per hop when the repair engine copies a replica between
  /// storage nodes; clamped to max_read_chunk at validation time.
  std::int64_t replication_chunk = 1 * 1024 * 1024;
  /// Periodic fsck scrub cadence on the head; 0 = on demand only
  /// (replica.fsck).
  int fsck_interval_ms = 0;
  /// How long a client-reported unreachable node is skipped for reads.
  int replica_suspect_ttl_ms = 3000;

  std::size_t max_connections = 1024;
};

class ClarensServer {
 public:
  explicit ClarensServer(ClarensConfig config);
  ~ClarensServer();

  ClarensServer(const ClarensServer&) = delete;
  ClarensServer& operator=(const ClarensServer&) = delete;

  void start();
  void stop();

  std::uint16_t port() const;
  std::string url() const;
  bool encrypted() const { return config_.use_tls; }

  /// Attach a discovery server: registers the discovery.* service
  /// methods backed by it. Must outlive this server.
  void attach_discovery(discovery::DiscoveryServer& discovery);

  /// Attach an SRM storage manager: registers the srm.* methods and maps
  /// the manager's disk cache as the "/srmcache" virtual file root so
  /// staged files are readable via file.read / HTTP GET. Must outlive
  /// this server.
  void attach_storage(storage::SrmService& srm);

  // Component access (embedding, tests, examples).
  rpc::Registry& registry() { return registry_; }
  SessionManager& sessions() { return *sessions_; }
  VoManager& vo() { return *vo_; }
  AclManager& acl() { return *acl_; }
  FileService& files() { return *files_; }
  MessageService& messages() { return *messages_; }
  JobService& jobs() { return *jobs_; }
  TransferService& transfers() { return *transfers_; }
  ShellService& shell() { return *shell_; }
  ProxyService& proxy() { return *proxy_; }
  db::Store& store() { return *store_; }
  const ClarensConfig& config() const { return config_; }
  NodeRole role() const { return config_.node_role; }
  /// Head-side placement router; null on standalone/storage roles and on
  /// heads with no discovery attached.
  federation::Router* router() { return router_.get(); }
  /// Head-side layout table / repair engine; null unless this is a head
  /// with discovery attached.
  federation::LayoutTable* layouts() { return layouts_.get(); }
  federation::Replicator* replicator() { return replicator_.get(); }

  std::uint64_t requests_served() const {
    return http_ ? http_->requests_served() : 0;
  }

  /// Requests dispatched inline on the reactor (adaptive dispatch).
  std::uint64_t requests_inlined() const {
    return http_ ? http_->requests_inlined() : 0;
  }

  /// Unix time start() completed; 0 before the first start().
  std::int64_t started_at() const { return started_at_; }

  /// Test/bench backdoor: mint a session without the wire handshake.
  Session direct_login(const std::string& identity_dn);

 private:
  http::Response handle(const http::Request& request, const http::Peer& peer);
  http::Response handle_rpc(const http::Request& request,
                            const http::Peer& peer);
  http::Response handle_get(const http::Request& request,
                            const http::Peer& peer);
  http::Response serve_portal(const std::string& path) const;
  void register_core_methods();
  void start_publisher();

  /// The paper's two per-request checks. Both are served from the
  /// session / compiled-ACL caches when warm — no store access.
  std::shared_ptr<const Session> check_session(
      const std::string& session_id) const;
  void check_acl(const std::string& method,
                 const pki::DistinguishedName& dn) const;
  /// Verify a presented node ticket against the cluster secret. Throws
  /// AuthError on a bad/expired token or when this server takes none.
  federation::NodeTicket check_node_ticket(const std::string& token) const;
  /// Storage role: after a ticket-authorized write/append lands, report
  /// the resulting checksum to the head (replica.committed). Best
  /// effort — the head's fsck scrub covers a lost notification.
  void notify_commit(const rpc::CallContext& context, const std::string& path);

  ClarensConfig config_;
  std::unique_ptr<db::Store> store_;
  rpc::Registry registry_;
  std::unique_ptr<SessionManager> sessions_;
  std::unique_ptr<VoManager> vo_;
  std::unique_ptr<AclManager> acl_;
  std::unique_ptr<FileService> files_;
  std::unique_ptr<MessageService> messages_;
  std::unique_ptr<JobService> jobs_;
  std::unique_ptr<TransferService> transfers_;
  std::unique_ptr<ShellService> shell_;
  std::unique_ptr<ProxyService> proxy_;
  std::unique_ptr<http::Server> http_;
  std::unique_ptr<discovery::Publisher> publisher_;
  std::unique_ptr<federation::Router> router_;
  std::unique_ptr<federation::LayoutTable> layouts_;
  std::unique_ptr<federation::Replicator> replicator_;
  /// Storage role: keep-alive pool to the head for commit notifications.
  std::unique_ptr<client::PeerPool> head_pool_;
  discovery::DiscoveryServer* discovery_ = nullptr;
  storage::SrmService* srm_ = nullptr;

  // Lazy housekeeping: a reaper thread sweeps expired sessions so the
  // session table stays bounded even when clients never log out.
  util::Thread reaper_;
  util::Mutex reaper_mutex_{util::LockLevel::kCoreServerReaper};
  util::CondVar reaper_stop_;
  bool reaper_stopping_ CLARENS_GUARDED_BY(reaper_mutex_) = false;
  std::int64_t started_at_ = 0;
};

}  // namespace clarens::core
