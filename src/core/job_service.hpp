// Job submission service (paper §3 lists job submission among the portal
// functionality; Clarens hosted the RunJob / Monte-Carlo Processing
// Service workflows).
//
// Jobs are shell-service command lines executed asynchronously in the
// submitter's sandbox by a small worker pool. Job records (state, exit
// code, captured output) live in the database, so a submitter can
// disconnect and query results later — the same survive-restart property
// sessions have. States: QUEUED -> RUNNING -> DONE | FAILED; CANCELLED
// is reachable from QUEUED only (the restricted interpreter runs
// commands to completion).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/shell_service.hpp"
#include "db/store.hpp"
#include "pki/dn.hpp"
#include "util/sync.hpp"

namespace clarens::core {

enum class JobState { Queued, Running, Done, Failed, Cancelled };

const char* to_string(JobState state);

struct Job {
  std::string id;
  std::string owner;  // DN string
  std::string command;
  JobState state = JobState::Queued;
  int exit_code = 0;
  std::string output;        // stdout
  std::string error;         // stderr
  std::int64_t submitted = 0;
  std::int64_t finished = 0;  // 0 while not terminal
};

class JobService {
 public:
  JobService(db::Store& store, ShellService& shell, int workers = 2);
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  /// Submit a command for `owner`; returns the job id immediately.
  /// Throws AccessError if the owner maps to no system user.
  std::string submit(const pki::DistinguishedName& owner,
                     const std::string& command);

  /// Job record; only the owner may query it (AccessError otherwise).
  Job status(const std::string& job_id,
             const pki::DistinguishedName& who) const;

  /// All job ids of an owner, newest first.
  std::vector<Job> list(const pki::DistinguishedName& owner) const;

  /// Cancel a queued job; returns false when it already started.
  bool cancel(const std::string& job_id, const pki::DistinguishedName& who);

  /// Remove a terminal job record.
  void purge(const std::string& job_id, const pki::DistinguishedName& who);

  /// Block until the job reaches a terminal state (test convenience).
  Job wait(const std::string& job_id, const pki::DistinguishedName& who,
           int timeout_ms = 10000);

 private:
  void worker_loop();
  void save(const Job& job);
  Job load(const std::string& job_id) const;  // throws NotFoundError

  db::Store& store_;
  ShellService& shell_;
  /// Held across store reads/writes of job records (atomic state
  /// transitions): hierarchy `core.job` -> `db.store.shard`.
  mutable util::Mutex mutex_{util::LockLevel::kCoreJob};
  util::CondVar work_available_;
  util::CondVar state_changed_;
  std::deque<std::string> queue_ CLARENS_GUARDED_BY(mutex_);
  bool stopping_ CLARENS_GUARDED_BY(mutex_) = false;
  std::vector<util::Thread> workers_;  // written once in the constructor
};

}  // namespace clarens::core
