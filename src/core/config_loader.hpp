// Build a ClarensConfig from a configuration file — the paper's server
// is driven by the web-server configuration (admin DNs, virtual roots,
// user maps), and a standalone deployment needs the same.
//
// File format (util::Config: "key value", '#' comments, repeated keys):
//
//   host 0.0.0.0
//   port 8443
//   data_dir /var/lib/clarens
//   admin /O=grid.org/OU=People/CN=Site Admin
//   admin /O=grid.org/OU=People/CN=Backup Admin
//   credential_file /etc/clarens/server.cred
//   trust_file /etc/clarens/ca.cert
//   use_tls true
//   require_client_cert false
//   file_root /data /srv/clarens/data
//   sandbox_base /var/lib/clarens/sandbox
//   user_map_file /etc/clarens/.clarens_user_map
//   session_ttl 86400
//   allow system *
//   allow file /O=grid.org/OU=People
//   allow analysis group:cms.users
//   file_allow /data /O=grid.org/OU=People
//   station 127.0.0.1:9999
//   farm caltech-tier2
//   node clarens01
#pragma once

#include <string>

#include "core/server.hpp"
#include "util/config.hpp"

namespace clarens::core {

/// Interpret a parsed Config. Credential/trust/user-map files referenced
/// by it are loaded from disk. Throws clarens::ParseError/SystemError.
ClarensConfig config_from(const util::Config& config);

/// Load + interpret a file.
ClarensConfig load_config_file(const std::string& path);

}  // namespace clarens::core
