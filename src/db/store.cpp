#include "db/store.hpp"

#include <sys/stat.h>

#include <cstring>
#include <filesystem>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace clarens::db {

namespace {

// Journal record layout:
//   u8 op ('P' put / 'E' erase) | u32 tlen | u32 klen | u32 vlen |
//   table | key | value | u32 fnv1a(checksum over everything before it)
// Fixed-width little-endian lengths; the checksum detects torn tails.

std::uint32_t fnv1a(const void* data, std::size_t len, std::uint32_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 16777619u;
  }
  return h;
}

constexpr std::uint32_t kFnvBasis = 2166136261u;

void put_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

bool read_exact(std::FILE* f, void* out, std::size_t len) {
  return std::fread(out, 1, len, f) == len;
}

}  // namespace

Store::Store() = default;

Store::Store(const std::string& directory) : directory_(directory) {
  std::filesystem::create_directories(directory_);
  util::LockGuard lock(mutex_);
  load_locked();
}

Store::~Store() {
  util::LockGuard lock(mutex_);
  if (journal_) std::fclose(journal_);
}

void Store::append_journal(char op, const std::string& table,
                           const std::string& key, const std::string& value) {
  if (!journal_) return;
  std::string record;
  record.reserve(17 + table.size() + key.size() + value.size());
  record.push_back(op);
  put_u32(record, static_cast<std::uint32_t>(table.size()));
  put_u32(record, static_cast<std::uint32_t>(key.size()));
  put_u32(record, static_cast<std::uint32_t>(value.size()));
  record.append(table);
  record.append(key);
  record.append(value);
  put_u32(record, fnv1a(record.data(), record.size(), kFnvBasis));
  std::fwrite(record.data(), 1, record.size(), journal_);
  std::fflush(journal_);
  journal_bytes_ += record.size();
  if (journal_bytes_ >= compact_threshold_) {
    write_snapshot_locked();
  }
}

void Store::replay_file(std::FILE* f, bool tolerate_tear) {
  for (;;) {
    unsigned char header[13];
    std::size_t got = std::fread(header, 1, sizeof(header), f);
    if (got == 0) return;  // clean EOF
    if (got < sizeof(header)) {
      if (tolerate_tear) return;
      throw SystemError("corrupt store: truncated record header");
    }
    char op = static_cast<char>(header[0]);
    std::uint32_t tlen, klen, vlen;
    std::memcpy(&tlen, header + 1, 4);
    std::memcpy(&klen, header + 5, 4);
    std::memcpy(&vlen, header + 9, 4);
    // Guard against absurd lengths from corruption.
    if (tlen > (1u << 20) || klen > (1u << 24) || vlen > (1u << 28)) {
      if (tolerate_tear) return;
      throw SystemError("corrupt store: implausible record length");
    }
    std::string table(tlen, '\0'), key(klen, '\0'), value(vlen, '\0');
    std::uint32_t checksum = 0;
    if (!read_exact(f, table.data(), tlen) || !read_exact(f, key.data(), klen) ||
        !read_exact(f, value.data(), vlen) ||
        !read_exact(f, &checksum, sizeof(checksum))) {
      if (tolerate_tear) return;
      throw SystemError("corrupt store: truncated record body");
    }
    std::uint32_t h = fnv1a(header, sizeof(header), kFnvBasis);
    h = fnv1a(table.data(), tlen, h);
    h = fnv1a(key.data(), klen, h);
    h = fnv1a(value.data(), vlen, h);
    if (h != checksum) {
      if (tolerate_tear) return;
      throw SystemError("corrupt store: checksum mismatch");
    }
    if (op == 'P') {
      tables_[table][key] = value;
    } else if (op == 'E') {
      auto it = tables_.find(table);
      if (it != tables_.end()) {
        it->second.erase(key);
        if (it->second.empty()) tables_.erase(it);
      }
    } else {
      if (tolerate_tear) return;
      throw SystemError("corrupt store: unknown op");
    }
  }
}

void Store::load_locked() {
  tables_.clear();
  std::string snapshot_path = directory_ + "/snapshot.db";
  std::string journal_path = directory_ + "/journal.log";

  if (std::FILE* f = std::fopen(snapshot_path.c_str(), "rb")) {
    // Snapshots are written atomically, so corruption is a hard error.
    replay_file(f, /*tolerate_tear=*/false);
    std::fclose(f);
  }
  if (std::FILE* f = std::fopen(journal_path.c_str(), "rb")) {
    // The journal's final record may be torn by a crash; discard it.
    replay_file(f, /*tolerate_tear=*/true);
    std::fclose(f);
  }
  journal_ = std::fopen(journal_path.c_str(), "ab");
  if (!journal_) throw SystemError("cannot open journal: " + journal_path);
  long pos = std::ftell(journal_);
  journal_bytes_ = pos > 0 ? static_cast<std::size_t>(pos) : 0;
}

void Store::write_snapshot_locked() {
  if (directory_.empty()) return;
  std::string tmp_path = directory_ + "/snapshot.tmp";
  std::string snapshot_path = directory_ + "/snapshot.db";
  std::string journal_path = directory_ + "/journal.log";

  {
    std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
    if (!f) throw SystemError("cannot write snapshot: " + tmp_path);
    for (const auto& [table, rows] : tables_) {
      for (const auto& [key, value] : rows) {
        std::string record;
        record.push_back('P');
        put_u32(record, static_cast<std::uint32_t>(table.size()));
        put_u32(record, static_cast<std::uint32_t>(key.size()));
        put_u32(record, static_cast<std::uint32_t>(value.size()));
        record.append(table);
        record.append(key);
        record.append(value);
        put_u32(record, fnv1a(record.data(), record.size(), kFnvBasis));
        std::fwrite(record.data(), 1, record.size(), f);
      }
    }
    std::fflush(f);
    std::fclose(f);
  }
  std::filesystem::rename(tmp_path, snapshot_path);

  if (journal_) std::fclose(journal_);
  journal_ = std::fopen(journal_path.c_str(), "wb");
  if (!journal_) throw SystemError("cannot truncate journal: " + journal_path);
  journal_bytes_ = 0;
}

void Store::put(const std::string& table, const std::string& key,
                const std::string& value) {
  ops_.fetch_add(1, std::memory_order_relaxed);
  util::LockGuard lock(mutex_);
  tables_[table][key] = value;
  append_journal('P', table, key, value);
}

std::optional<std::string> Store::get(const std::string& table,
                                      const std::string& key) const {
  ops_.fetch_add(1, std::memory_order_relaxed);
  util::LockGuard lock(mutex_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return std::nullopt;
  auto kit = it->second.find(key);
  if (kit == it->second.end()) return std::nullopt;
  return kit->second;
}

bool Store::erase(const std::string& table, const std::string& key) {
  ops_.fetch_add(1, std::memory_order_relaxed);
  util::LockGuard lock(mutex_);
  auto it = tables_.find(table);
  if (it == tables_.end() || it->second.erase(key) == 0) return false;
  if (it->second.empty()) tables_.erase(it);
  append_journal('E', table, key, "");
  return true;
}

bool Store::contains(const std::string& table, const std::string& key) const {
  ops_.fetch_add(1, std::memory_order_relaxed);
  util::LockGuard lock(mutex_);
  auto it = tables_.find(table);
  return it != tables_.end() && it->second.count(key) != 0;
}

std::vector<std::string> Store::keys(const std::string& table) const {
  ops_.fetch_add(1, std::memory_order_relaxed);
  util::LockGuard lock(mutex_);
  std::vector<std::string> out;
  auto it = tables_.find(table);
  if (it == tables_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [key, _] : it->second) out.push_back(key);
  return out;
}

std::vector<std::pair<std::string, std::string>> Store::scan_prefix(
    const std::string& table, const std::string& prefix) const {
  ops_.fetch_add(1, std::memory_order_relaxed);
  util::LockGuard lock(mutex_);
  std::vector<std::pair<std::string, std::string>> out;
  auto it = tables_.find(table);
  if (it == tables_.end()) return out;
  for (auto kit = it->second.lower_bound(prefix); kit != it->second.end();
       ++kit) {
    if (kit->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(kit->first, kit->second);
  }
  return out;
}

std::size_t Store::drop_table(const std::string& table) {
  ops_.fetch_add(1, std::memory_order_relaxed);
  util::LockGuard lock(mutex_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return 0;
  std::size_t n = it->second.size();
  // Journal each erase so replay reproduces the drop.
  for (const auto& [key, _] : it->second) append_journal('E', table, key, "");
  tables_.erase(it);
  return n;
}

std::vector<std::string> Store::tables() const {
  ops_.fetch_add(1, std::memory_order_relaxed);
  util::LockGuard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

std::size_t Store::size(const std::string& table) const {
  ops_.fetch_add(1, std::memory_order_relaxed);
  util::LockGuard lock(mutex_);
  auto it = tables_.find(table);
  return it == tables_.end() ? 0 : it->second.size();
}

void Store::compact() {
  util::LockGuard lock(mutex_);
  write_snapshot_locked();
}

void Store::sync() {
  util::LockGuard lock(mutex_);
  if (journal_) std::fflush(journal_);
}

}  // namespace clarens::db
