#include "db/store.hpp"

#include <fcntl.h>
#include <limits.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <functional>
#include <set>
#include <system_error>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace clarens::db {

namespace {

// Journal record layout:
//   u8 op ('P' put / 'E' erase) | u32 tlen | u32 klen | u32 vlen |
//   table | key | value | u32 fnv1a(checksum over everything before it)
// Fixed-width little-endian lengths; the checksum detects torn tails.
// Snapshots are the same record stream (all 'P'), written to a temp file
// and renamed into place, so one replay routine reads both.

std::uint32_t fnv1a(const void* data, std::size_t len, std::uint32_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 16777619u;
  }
  return h;
}

constexpr std::uint32_t kFnvBasis = 2166136261u;

// Queue depth at which async writers start waiting for the journal
// thread to drain — bounds memory when writers outrun the disk.
constexpr std::size_t kMaxPendingRecords = 4096;

void put_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

std::string encode_record(char op, const std::string& table,
                          const std::string& key, const std::string& value) {
  std::string record;
  record.reserve(17 + table.size() + key.size() + value.size());
  record.push_back(op);
  put_u32(record, static_cast<std::uint32_t>(table.size()));
  put_u32(record, static_cast<std::uint32_t>(key.size()));
  put_u32(record, static_cast<std::uint32_t>(value.size()));
  record.append(table);
  record.append(key);
  record.append(value);
  put_u32(record, fnv1a(record.data(), record.size(), kFnvBasis));
  return record;
}

bool read_exact(std::FILE* f, void* out, std::size_t len) {
  return std::fread(out, 1, len, f) == len;
}

std::string errno_message(const std::string& what) {
  return what + ": " + std::error_code(errno, std::generic_category()).message();
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

// --------------------------------------------------------------------------
// Construction / destruction

Store::Store() {
  shards_.push_back(std::make_unique<Shard>());
  std::size_t n = round_up_pow2(std::clamp<std::size_t>(options_.shards, 1, 1024));
  while (shards_.size() < n) shards_.push_back(std::make_unique<Shard>());
  shard_mask_ = shards_.size() - 1;
}

Store::Store(const std::string& directory, StoreOptions options)
    : options_(options), directory_(directory) {
  options_.shards = round_up_pow2(std::clamp<std::size_t>(options_.shards, 1, 1024));
  options_.commit_batch_max = std::clamp<std::size_t>(
      options_.commit_batch_max, 1, static_cast<std::size_t>(IOV_MAX));
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_mask_ = shards_.size() - 1;
  load();
  journal_thread_ = util::Thread([this] { journal_main(); });
}

Store::~Store() {
  if (journal_thread_.joinable()) {
    {
      util::UniqueLock lock(journal_mutex_);
      stop_ = true;
      work_cv_.notify_one();
    }
    // The journal thread drains every queued record before exiting.
    journal_thread_.join();
  }
  if (journal_fd_ >= 0) {
    ::fdatasync(journal_fd_);  // best-effort: clean shutdowns leave disk hot
    ::close(journal_fd_);
  }
}

// --------------------------------------------------------------------------
// Memtable

Store::Shard& Store::shard_of(const std::string& table,
                              const std::string& key) const {
  std::size_t h = std::hash<std::string>{}(table);
  h ^= std::hash<std::string>{}(key) + 0x9e3779b97f4a7c15ULL + (h << 6) +
       (h >> 2);
  return *shards_[h & shard_mask_];
}

std::uint64_t Store::enqueue(std::string&& record) {
  // Called under the owning shard's write lock: the shard lock is what
  // guarantees journal order == memtable order per key.
  util::UniqueLock lock(journal_mutex_);
  std::uint64_t seq = ++enqueued_seq_;
  bool was_empty = pending_.empty();
  pending_.push_back(Pending{std::move(record), seq});
  pending_count_.store(pending_.size(), std::memory_order_relaxed);
  // The journal thread only sleeps when the queue is empty (or inside a
  // batching window that a full batch ends), so waking it on every
  // record would just burn futex calls under load.
  if (was_empty || pending_.size() == options_.commit_batch_max) {
    work_cv_.notify_one();
  }
  return seq;
}

void Store::wait_commit(std::uint64_t seq, bool durable) {
  util::UniqueLock lock(journal_mutex_);
  if (durable && seq > sync_target_) {
    sync_target_ = seq;
    work_cv_.notify_one();
  }
  const std::uint64_t& watermark = durable ? durable_seq_ : written_seq_;
  while (!failed_.load(std::memory_order_acquire) && watermark < seq) {
    progress_cv_.wait(lock);
  }
  if (failed_.load(std::memory_order_acquire)) {
    throw SystemError("store unavailable: " + error_);
  }
}

void Store::check_available() const {
  if (!failed_.load(std::memory_order_acquire)) return;
  std::string message;
  {
    util::LockGuard lock(journal_mutex_);
    message = error_;
  }
  throw SystemError("store unavailable: " + message);
}

void Store::fail(const std::string& what) {
  util::UniqueLock lock(journal_mutex_);
  if (!failed_.load(std::memory_order_acquire)) {
    error_ = what;
    failed_.store(true, std::memory_order_release);
    CLARENS_LOG(Error) << "db: journal failed: " << what;
  }
  pending_.clear();
  pending_count_.store(0, std::memory_order_relaxed);
  progress_cv_.notify_all();
}

void Store::put_impl(const std::string& table, const std::string& key,
                     std::string&& value, bool durable) {
  ops_.fetch_add(1, std::memory_order_relaxed);
  check_available();
  std::string record;
  if (persistent()) {
    record = encode_record('P', table, key, value);
    if (options_.group_commit &&
        pending_count_.load(std::memory_order_relaxed) >= kMaxPendingRecords) {
      // Backpressure: never taken with a shard lock held, so readers are
      // unaffected while this writer waits for the queue to drain.
      util::UniqueLock lock(journal_mutex_);
      while (!failed_.load(std::memory_order_acquire) &&
             pending_.size() >= kMaxPendingRecords) {
        progress_cv_.wait(lock);
      }
    }
    check_available();
  }
  auto shared = std::make_shared<const std::string>(std::move(value));
  Shard& shard = shard_of(table, key);
  std::uint64_t seq = 0;
  {
    util::WriteLock lock(shard.mutex);
    shard.tables[table][key] = std::move(shared);
    if (persistent()) {
      // lock-order: db.store.shard -> db.store.journal
      seq = enqueue(std::move(record));
    }
  }
  if (persistent() && (durable || !options_.group_commit)) {
    wait_commit(seq, durable);
  }
}

void Store::put(const std::string& table, const std::string& key,
                const std::string& value) {
  put_impl(table, key, std::string(value), /*durable=*/false);
}

void Store::put(const std::string& table, const std::string& key,
                std::string&& value) {
  put_impl(table, key, std::move(value), /*durable=*/false);
}

void Store::put_durable(const std::string& table, const std::string& key,
                        std::string value) {
  put_impl(table, key, std::move(value), /*durable=*/true);
}

bool Store::erase_impl(const std::string& table, const std::string& key,
                       bool durable) {
  ops_.fetch_add(1, std::memory_order_relaxed);
  check_available();
  std::string record;
  if (persistent()) record = encode_record('E', table, key, "");
  Shard& shard = shard_of(table, key);
  std::uint64_t seq = 0;
  bool existed = false;
  {
    util::WriteLock lock(shard.mutex);
    auto it = shard.tables.find(table);
    if (it != shard.tables.end() && it->second.erase(key) != 0) {
      existed = true;
      if (it->second.empty()) shard.tables.erase(it);
      if (persistent()) {
        // lock-order: db.store.shard -> db.store.journal
        seq = enqueue(std::move(record));
      }
    }
  }
  if (existed && persistent() && (durable || !options_.group_commit)) {
    wait_commit(seq, durable);
  }
  return existed;
}

bool Store::erase(const std::string& table, const std::string& key) {
  return erase_impl(table, key, /*durable=*/false);
}

bool Store::erase_durable(const std::string& table, const std::string& key) {
  return erase_impl(table, key, /*durable=*/true);
}

std::optional<std::string> Store::get(const std::string& table,
                                      const std::string& key) const {
  std::shared_ptr<const std::string> value = get_shared(table, key);
  if (!value) return std::nullopt;
  return *value;  // copied outside any lock
}

std::shared_ptr<const std::string> Store::get_shared(
    const std::string& table, const std::string& key) const {
  ops_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shard_of(table, key);
  util::ReadLock lock(shard.mutex);
  auto it = shard.tables.find(table);
  if (it == shard.tables.end()) return nullptr;
  auto kit = it->second.find(key);
  if (kit == it->second.end()) return nullptr;
  return kit->second;
}

bool Store::contains(const std::string& table, const std::string& key) const {
  ops_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shard_of(table, key);
  util::ReadLock lock(shard.mutex);
  auto it = shard.tables.find(table);
  return it != shard.tables.end() && it->second.count(key) != 0;
}

std::vector<std::string> Store::keys(const std::string& table) const {
  ops_.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::string> out;
  for (const auto& shard : shards_) {
    util::ReadLock lock(shard->mutex);
    auto it = shard->tables.find(table);
    if (it == shard->tables.end()) continue;
    for (const auto& [key, _] : it->second) out.push_back(key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, std::string>> Store::scan_prefix(
    const std::string& table, const std::string& prefix) const {
  ops_.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& shard : shards_) {
    util::ReadLock lock(shard->mutex);
    auto it = shard->tables.find(table);
    if (it == shard->tables.end()) continue;
    for (auto kit = it->second.lower_bound(prefix); kit != it->second.end();
         ++kit) {
      if (kit->first.compare(0, prefix.size(), prefix) != 0) break;
      out.emplace_back(kit->first, *kit->second);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::size_t Store::drop_table(const std::string& table) {
  ops_.fetch_add(1, std::memory_order_relaxed);
  check_available();
  std::size_t dropped = 0;
  for (const auto& shard : shards_) {
    util::WriteLock lock(shard->mutex);
    auto it = shard->tables.find(table);
    if (it == shard->tables.end()) continue;
    dropped += it->second.size();
    if (persistent()) {
      // Journal each erase (under the shard lock, so a concurrent re-put
      // of a dropped key cannot land between our memtable erase and our
      // journal record) so replay reproduces the drop.
      // lock-order: db.store.shard -> db.store.journal
      for (const auto& [key, _] : it->second) {
        enqueue(encode_record('E', table, key, ""));
      }
    }
    shard->tables.erase(it);
  }
  return dropped;
}

std::vector<std::string> Store::tables() const {
  ops_.fetch_add(1, std::memory_order_relaxed);
  std::set<std::string> names;
  for (const auto& shard : shards_) {
    util::ReadLock lock(shard->mutex);
    for (const auto& [name, _] : shard->tables) names.insert(name);
  }
  return {names.begin(), names.end()};
}

std::size_t Store::size(const std::string& table) const {
  ops_.fetch_add(1, std::memory_order_relaxed);
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    util::ReadLock lock(shard->mutex);
    auto it = shard->tables.find(table);
    if (it != shard->tables.end()) total += it->second.size();
  }
  return total;
}

// --------------------------------------------------------------------------
// Durability barriers

void Store::sync() {
  if (!persistent()) return;
  util::UniqueLock lock(journal_mutex_);
  std::uint64_t target = enqueued_seq_;
  if (target > sync_target_) sync_target_ = target;
  work_cv_.notify_one();
  while (!failed_.load(std::memory_order_acquire) && durable_seq_ < target) {
    progress_cv_.wait(lock);
  }
  if (failed_.load(std::memory_order_acquire)) {
    throw SystemError("store unavailable: " + error_);
  }
}

void Store::compact() {
  if (!persistent()) return;
  util::UniqueLock lock(journal_mutex_);
  // Wait for a checkpoint that *starts* after this request, so records
  // already enqueued are folded (the journal thread drains the queue
  // before checkpointing).
  std::uint64_t target = ++compact_requests_;
  work_cv_.notify_one();
  while (!failed_.load(std::memory_order_acquire) &&
         compacted_through_ < target) {
    progress_cv_.wait(lock);
  }
  if (failed_.load(std::memory_order_acquire)) {
    throw SystemError("store unavailable: " + error_);
  }
}

// --------------------------------------------------------------------------
// Journal thread: group commit + background checkpoint

bool Store::write_group(int fd, std::vector<Pending>& group,
                        std::size_t* bytes_written) {
  std::vector<iovec> iov(group.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    iov[i].iov_base = group[i].bytes.data();
    iov[i].iov_len = group[i].bytes.size();
    total += group[i].bytes.size();
  }
  std::size_t idx = 0;
  while (idx < iov.size()) {
    int count = static_cast<int>(
        std::min<std::size_t>(iov.size() - idx, static_cast<std::size_t>(IOV_MAX)));
    ssize_t wrote = ::writev(fd, &iov[idx], count);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      fail(errno_message("journal writev"));
      return false;
    }
    // Short write (disk full mid-group, signals): advance the iovec
    // cursor and keep going; a hard error surfaces on the next call.
    std::size_t n = static_cast<std::size_t>(wrote);
    while (n > 0 && idx < iov.size()) {
      if (n >= iov[idx].iov_len) {
        n -= iov[idx].iov_len;
        ++idx;
      } else {
        iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + n;
        iov[idx].iov_len -= n;
        n = 0;
      }
    }
  }
  *bytes_written = total;
  return true;
}

void Store::journal_main() {
  for (;;) {
    std::vector<Pending> group;
    bool need_sync = false;
    bool barrier_sync = false;
    bool do_checkpoint = false;
    std::uint64_t checkpoint_target = 0;
    {
      util::UniqueLock lock(journal_mutex_);
      for (;;) {
        if (failed_.load(std::memory_order_acquire)) return;
        if (!pending_.empty()) break;
        if (sync_target_ > durable_seq_) {
          barrier_sync = true;
          break;
        }
        if (journal_bytes_ >= options_.compact_threshold &&
            compact_requests_ == compacted_through_) {
          ++compact_requests_;  // self-request a background checkpoint
        }
        if (compact_requests_ > compacted_through_) {
          do_checkpoint = true;
          checkpoint_target = compact_requests_;
          break;
        }
        if (stop_) return;  // queue drained, barriers served: clean exit
        work_cv_.wait(lock);
      }
      if (!barrier_sync && !do_checkpoint) {
        if (options_.group_commit && options_.commit_interval_us > 0 &&
            !stop_ && pending_.size() < options_.commit_batch_max &&
            sync_target_ <= durable_seq_) {
          // Batching window: let concurrent writers pile onto this group
          // before paying the fdatasync. A durable waiter arriving
          // (sync_target_ bump) or a full batch ends the window early.
          auto deadline =
              std::chrono::steady_clock::now() +
              std::chrono::microseconds(options_.commit_interval_us);
          while (!stop_ && !failed_.load(std::memory_order_acquire) &&
                 pending_.size() < options_.commit_batch_max &&
                 sync_target_ <= durable_seq_ &&
                 work_cv_.wait_until(lock, deadline) !=
                     std::cv_status::timeout) {
          }
        }
        std::size_t take = options_.group_commit
                               ? std::min(pending_.size(),
                                          options_.commit_batch_max)
                               : 1;
        group.reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
          group.push_back(std::move(pending_.front()));
          pending_.pop_front();
        }
        pending_count_.store(pending_.size(), std::memory_order_relaxed);
        // fdatasync only when a durable waiter / sync() barrier needs
        // it: async puts promise enqueue-order journaling, not
        // power-loss durability. A waiter whose record rides this group
        // without being covered here is served by the barrier branch on
        // the next loop iteration.
        need_sync = sync_target_ > durable_seq_;
      }
    }

    if (barrier_sync) {
      // sync() barrier with an already-drained queue (per-op mode, or a
      // durable waiter racing the group that carried its record).
      if (journal_fd_ >= 0 && ::fdatasync(journal_fd_) != 0) {
        fail(errno_message("journal fdatasync"));
        return;
      }
      util::UniqueLock lock(journal_mutex_);
      durable_seq_ = written_seq_;
      progress_cv_.notify_all();
      continue;
    }

    if (do_checkpoint) {
      if (!checkpoint()) return;  // fail() already recorded the cause
      util::UniqueLock lock(journal_mutex_);
      compacted_through_ = checkpoint_target;
      progress_cv_.notify_all();
      continue;
    }

    // Commit the group: one writev, one fdatasync, one broadcast.
    std::size_t bytes = 0;
    if (!write_group(journal_fd_, group, &bytes)) return;
    if (need_sync && ::fdatasync(journal_fd_) != 0) {
      fail(errno_message("journal fdatasync"));
      return;
    }
    journal_bytes_ += bytes;
    {
      util::UniqueLock lock(journal_mutex_);
      written_seq_ = group.back().seq;
      if (need_sync) durable_seq_ = written_seq_;
      progress_cv_.notify_all();
    }
  }
}

bool Store::fsync_directory() {
  int fd = ::open(directory_.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    fail(errno_message("open store directory"));
    return false;
  }
  bool ok = ::fsync(fd) == 0;
  if (!ok) fail(errno_message("fsync store directory"));
  ::close(fd);
  return ok;
}

bool Store::write_snapshot() {
  std::string tmp_path = directory_ + "/snapshot.tmp";
  std::string snapshot_path = directory_ + "/snapshot.db";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (!f) {
    fail(errno_message("create " + tmp_path));
    return false;
  }
  // Stream one shard at a time: each copy is a consistent freeze of that
  // shard (value pointers, not bytes), taken under a shared lock so the
  // shard's writers stall only for the pointer copy, never for the I/O.
  // Writers that slip in after a shard was copied are still correct:
  // their records are in the commit queue and will be journaled after
  // the checkpoint, and replay-over-snapshot is idempotent.
  for (const auto& shard : shards_) {
    std::map<std::string, Table> frozen;
    {
      util::ReadLock lock(shard->mutex);
      frozen = shard->tables;
    }
    for (const auto& [table, rows] : frozen) {
      for (const auto& [key, value] : rows) {
        std::string record = encode_record('P', table, key, *value);
        if (std::fwrite(record.data(), 1, record.size(), f) != record.size()) {
          fail(errno_message("write " + tmp_path));
          std::fclose(f);
          ::unlink(tmp_path.c_str());
          return false;
        }
      }
    }
  }
  bool ok = std::fflush(f) == 0 && ::fdatasync(fileno(f)) == 0;
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    fail(errno_message("flush " + tmp_path));
    ::unlink(tmp_path.c_str());
    return false;
  }
  if (::rename(tmp_path.c_str(), snapshot_path.c_str()) != 0) {
    fail(errno_message("rename snapshot"));
    return false;
  }
  return fsync_directory();
}

bool Store::checkpoint() {
  std::string journal_path = directory_ + "/journal.log";
  std::string old_path = directory_ + "/journal.old";

  // 1. Rotate: the current journal becomes journal.old and new groups go
  //    to a fresh journal.log. Recovery replays snapshot, then .old,
  //    then .log, so every crash point between here and the unlink below
  //    reconstructs exactly the durable state.
  if (journal_fd_ >= 0) {
    ::close(journal_fd_);
    journal_fd_ = -1;
  }
  if (::rename(journal_path.c_str(), old_path.c_str()) != 0) {
    fail(errno_message("rotate journal"));
    return false;
  }
  journal_fd_ = ::open(journal_path.c_str(),
                       O_CREAT | O_WRONLY | O_APPEND | O_TRUNC, 0644);
  if (journal_fd_ < 0) {
    fail(errno_message("reopen journal"));
    return false;
  }
  if (!fsync_directory()) return false;

  // 2. Dump the memtable (per-shard freeze) and publish it atomically.
  if (!write_snapshot()) return false;

  // 3. The rotated journal is folded into the snapshot; drop it.
  ::unlink(old_path.c_str());
  if (!fsync_directory()) return false;
  journal_bytes_ = 0;
  return true;
}

// --------------------------------------------------------------------------
// Recovery

void Store::apply_replayed(char op, std::string&& table, std::string&& key,
                           std::string&& value) {
  Shard& shard = shard_of(table, key);
  util::WriteLock lock(shard.mutex);
  if (op == 'P') {
    shard.tables[std::move(table)][std::move(key)] =
        std::make_shared<const std::string>(std::move(value));
  } else {
    auto it = shard.tables.find(table);
    if (it != shard.tables.end()) {
      it->second.erase(key);
      if (it->second.empty()) shard.tables.erase(it);
    }
  }
}

std::size_t Store::replay_file(std::FILE* f, bool tolerate_tear, bool* tore) {
  std::size_t good = 0;
  for (;;) {
    unsigned char header[13];
    std::size_t got = std::fread(header, 1, sizeof(header), f);
    if (got == 0) return good;  // clean EOF
    if (got < sizeof(header)) {
      if (tolerate_tear) {
        if (tore) *tore = true;
        return good;
      }
      throw SystemError("corrupt store: truncated record header");
    }
    char op = static_cast<char>(header[0]);
    std::uint32_t tlen, klen, vlen;
    std::memcpy(&tlen, header + 1, 4);
    std::memcpy(&klen, header + 5, 4);
    std::memcpy(&vlen, header + 9, 4);
    // Guard against absurd lengths from corruption.
    bool plausible = (op == 'P' || op == 'E') && tlen <= (1u << 20) &&
                     klen <= (1u << 24) && vlen <= (1u << 28);
    if (!plausible) {
      if (tolerate_tear) {
        if (tore) *tore = true;
        return good;
      }
      throw SystemError("corrupt store: implausible record");
    }
    std::string table(tlen, '\0'), key(klen, '\0'), value(vlen, '\0');
    std::uint32_t checksum = 0;
    if (!read_exact(f, table.data(), tlen) || !read_exact(f, key.data(), klen) ||
        !read_exact(f, value.data(), vlen) ||
        !read_exact(f, &checksum, sizeof(checksum))) {
      if (tolerate_tear) {
        if (tore) *tore = true;
        return good;
      }
      throw SystemError("corrupt store: truncated record body");
    }
    std::uint32_t h = fnv1a(header, sizeof(header), kFnvBasis);
    h = fnv1a(table.data(), tlen, h);
    h = fnv1a(key.data(), klen, h);
    h = fnv1a(value.data(), vlen, h);
    if (h != checksum) {
      if (tolerate_tear) {
        if (tore) *tore = true;
        return good;
      }
      throw SystemError("corrupt store: checksum mismatch");
    }
    apply_replayed(op, std::move(table), std::move(key), std::move(value));
    good += sizeof(header) + tlen + klen + vlen + sizeof(checksum);
  }
}

void Store::load() {
  std::filesystem::create_directories(directory_);
  std::string snapshot_path = directory_ + "/snapshot.db";
  std::string old_path = directory_ + "/journal.old";
  std::string journal_path = directory_ + "/journal.log";

  // A snapshot.tmp is a checkpoint that never reached its rename; the
  // previous snapshot + journals are still authoritative.
  ::unlink((directory_ + "/snapshot.tmp").c_str());

  if (std::FILE* f = std::fopen(snapshot_path.c_str(), "rb")) {
    // Snapshots are written atomically, so corruption is a hard error.
    replay_file(f, /*tolerate_tear=*/false, nullptr);
    std::fclose(f);
  }
  // journal.old exists only when a checkpoint died between its snapshot
  // rename and the unlink; its records are ordered before journal.log's.
  bool fold = false;
  if (std::FILE* f = std::fopen(old_path.c_str(), "rb")) {
    fold = true;
    replay_file(f, /*tolerate_tear=*/true, nullptr);
    std::fclose(f);
  }
  bool tore = false;
  std::size_t good_bytes = 0;
  if (std::FILE* f = std::fopen(journal_path.c_str(), "rb")) {
    // The journal's final record may be torn by a crash; discard it.
    good_bytes = replay_file(f, /*tolerate_tear=*/true, &tore);
    std::fclose(f);
  }

  if (fold || tore) {
    // Fold everything recovered into a fresh snapshot before accepting
    // writes: a torn journal must never be appended to (records after
    // the tear would be unreachable on the next replay), and journal.old
    // must not survive into a second crash.
    if (!write_snapshot()) {
      throw SystemError("store recovery failed: " + error_);
    }
    ::unlink(old_path.c_str());
    journal_fd_ = ::open(journal_path.c_str(),
                         O_CREAT | O_WRONLY | O_APPEND | O_TRUNC, 0644);
    good_bytes = 0;
  } else {
    journal_fd_ =
        ::open(journal_path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  }
  if (journal_fd_ < 0) {
    throw SystemError(errno_message("cannot open journal " + journal_path));
  }
  journal_bytes_ = good_bytes;
}

}  // namespace clarens::db
