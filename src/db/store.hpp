// Embedded persistent table store — a concurrent, group-commit storage
// engine.
//
// The paper stores VO membership, ACLs and session state in a server-side
// database: every request performs (uncached) session and ACL lookups
// against it, and sessions survive server restarts because they live here
// rather than in process memory. This module is that database: named
// tables of string key → string value, durable via an append-only journal
// plus snapshot compaction, recoverable after a crash that tears the
// final journal record.
//
// Engine layout (DESIGN.md "Storage engine"):
//
//   * Sharded memtable. Entries are striped over N lock-striped shards
//     keyed by hash(table, key); each shard holds its own
//     util::SharedMutex, so writers on different shards never contend
//     and readers of one shard never wait for writers of another.
//     keys()/scan_prefix()/tables() merge the per-shard sorted views.
//   * Snapshot reads. Values are immutable, shared
//     (std::shared_ptr<const std::string>): get()/get_shared() take only
//     a shard shared-lock for a pointer grab and never block behind the
//     journal — a writer holds a shard lock only for the in-memory apply
//     and the commit-queue push, never across file I/O.
//   * WAL group commit. Mutators append encoded records to an in-memory
//     commit queue; a dedicated journal thread batches queued records
//     into one writev(2) + one fdatasync(2) per group
//     (StoreOptions::commit_interval_us / commit_batch_max). put() acks
//     after the memtable apply + enqueue (async durability, the paper's
//     default); put_durable()/erase_durable() return only after the
//     record's group reached disk; sync() is a full durability barrier.
//   * Background checkpoint. Compaction runs on the journal thread from
//     a consistent per-shard freeze (journal rotation first, then
//     per-shard copies, then an atomic snapshot rename), so writers are
//     never stalled behind a snapshot write.
//
// Crash semantics: recovery replays snapshot.db, then journal.old (a
// compaction interrupted between snapshot rename and journal unlink),
// then journal.log, discarding a torn trailing record; any tear or
// leftover journal.old is folded into a fresh snapshot before the store
// accepts writes, so new records never land after torn bytes. Journal
// write/fsync failures (disk full) mark the store unavailable: durable
// writers get the error synchronously and later mutations throw instead
// of acking writes that can no longer be journaled
// (tests/db_crash_test.cpp proves both with SIGKILL and RLIMIT_FSIZE).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/sync.hpp"

namespace clarens::db {

/// Engine tuning. The defaults serve the server; benchmarks and tests
/// override them to ablate one mechanism at a time.
struct StoreOptions {
  /// Lock stripes for the memtable (rounded up to a power of two,
  /// clamped to [1, 1024]).
  std::size_t shards = 16;
  /// Batched journal commits. false = every record is written (and, for
  /// durable ops, fsynced) individually in queue order — the per-op
  /// commit behaviour of the old single-mutex store, kept as the
  /// `group_commit_off` ablation.
  bool group_commit = true;
  /// How long the journal thread waits for more writers to join a group
  /// before paying the fdatasync, when no durable writer is already
  /// waiting. 0 = commit whatever is queued immediately.
  std::uint32_t commit_interval_us = 200;
  /// Largest record count per writev/fdatasync group.
  std::size_t commit_batch_max = 256;
  /// Journal size that triggers a background checkpoint.
  std::size_t compact_threshold = 8 * 1024 * 1024;
};

class Store {
 public:
  /// In-memory store (no persistence; durable variants degrade to their
  /// plain forms).
  Store();

  /// Persistent store rooted at `directory` (created if absent). Loads
  /// the snapshot and replays the journal; a torn final record is
  /// discarded, matching crash semantics.
  explicit Store(const std::string& directory, StoreOptions options = {});

  ~Store();

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  /// Ack after the memtable apply + journal enqueue (async durability).
  void put(const std::string& table, const std::string& key,
           const std::string& value);
  void put(const std::string& table, const std::string& key,
           std::string&& value);

  /// Ack only after the record's commit group has been fdatasync'ed.
  /// Concurrent durable writers share one fsync (group commit).
  void put_durable(const std::string& table, const std::string& key,
                   std::string value);

  std::optional<std::string> get(const std::string& table,
                                 const std::string& key) const;

  /// Zero-copy snapshot read: the returned record is immutable and
  /// stays valid after any later overwrite/erase. nullptr = absent.
  std::shared_ptr<const std::string> get_shared(const std::string& table,
                                                const std::string& key) const;

  /// Returns true if the key existed.
  bool erase(const std::string& table, const std::string& key);

  /// erase() with put_durable()'s ack semantics.
  bool erase_durable(const std::string& table, const std::string& key);

  bool contains(const std::string& table, const std::string& key) const;

  /// All keys in a table, sorted (merged across shards).
  std::vector<std::string> keys(const std::string& table) const;

  /// Key/value pairs whose key starts with `prefix`, sorted by key.
  std::vector<std::pair<std::string, std::string>> scan_prefix(
      const std::string& table, const std::string& prefix) const;

  /// Remove an entire table. Returns number of keys dropped.
  std::size_t drop_table(const std::string& table);

  std::vector<std::string> tables() const;

  std::size_t size(const std::string& table) const;

  /// Fold the journal into a fresh snapshot. Requests a checkpoint from
  /// the journal thread and waits for one that starts after this call
  /// (so everything already enqueued is folded). Also triggered
  /// automatically when the journal exceeds compact_threshold.
  void compact();

  /// Durability barrier: returns once every record enqueued before the
  /// call has been written *and* fdatasync'ed. Throws if the journal
  /// has failed.
  void sync();

  bool persistent() const { return !directory_.empty(); }

  /// Total store operations since construction (every public accessor or
  /// mutator counts one). Lets tests and benchmarks assert that cached
  /// hot paths really bypass the store — the warm authenticated RPC path
  /// must leave this counter untouched.
  std::uint64_t operations() const {
    return ops_.load(std::memory_order_relaxed);
  }

 private:
  using Table = std::map<std::string, std::shared_ptr<const std::string>>;

  /// One lock stripe of the memtable. Shard locks are innermost among
  /// service-visible locks (hierarchy level `db.store.shard`); the only
  /// lock ever taken under one is the commit-queue lock
  /// (`db.store.journal`).
  struct Shard {
    mutable util::SharedMutex mutex{util::LockLevel::kDbStoreShard};
    std::map<std::string, Table> tables CLARENS_GUARDED_BY(mutex);
  };

  /// One encoded journal record waiting for the journal thread.
  struct Pending {
    std::string bytes;
    std::uint64_t seq = 0;
  };

  Shard& shard_of(const std::string& table, const std::string& key) const;
  void put_impl(const std::string& table, const std::string& key,
                std::string&& value, bool durable);
  bool erase_impl(const std::string& table, const std::string& key,
                  bool durable);
  /// Push an encoded record onto the commit queue. Must be called with
  /// the owning shard's write lock held so that per-key journal order
  /// matches per-key memtable order. Returns the record's commit seq.
  std::uint64_t enqueue(std::string&& record) CLARENS_EXCLUDES(journal_mutex_);
  /// Park until `seq` is written (written=false also fsynced). Must be
  /// called with no shard lock held.
  void wait_commit(std::uint64_t seq, bool durable)
      CLARENS_EXCLUDES(journal_mutex_);
  /// Throw SystemError when the journal has failed (mutators call this
  /// first so a broken store never acks new writes).
  void check_available() const CLARENS_EXCLUDES(journal_mutex_);
  void fail(const std::string& what) CLARENS_EXCLUDES(journal_mutex_);

  // --- journal thread ------------------------------------------------
  void journal_main();
  /// writev the group (handling partial writes); returns false on error.
  bool write_group(int fd, std::vector<Pending>& group,
                   std::size_t* bytes_written);
  /// Checkpoint: rotate the journal, dump a per-shard-consistent
  /// snapshot, drop the folded journal. Journal-thread only (or the
  /// constructor, pre-thread). Returns false after fail().
  bool checkpoint();
  bool write_snapshot();
  bool fsync_directory();

  // --- recovery (constructor only, single-threaded) -------------------
  void load();
  /// Replays a record stream into the shards. Returns the byte offset
  /// after the last complete, checksummed record; sets *tore when a
  /// trailing record had to be discarded (tolerated only for journals).
  std::size_t replay_file(std::FILE* f, bool tolerate_tear, bool* tore);
  void apply_replayed(char op, std::string&& table, std::string&& key,
                      std::string&& value);

  StoreOptions options_;
  std::string directory_;
  mutable std::atomic<std::uint64_t> ops_{0};

  // Sharded memtable. unique_ptr because SharedMutex is not movable.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shard_mask_ = 0;

  // Commit queue + group-commit bookkeeping (persistent stores only).
  // `db.store.journal` is the innermost lock in the tree: it is taken
  // under a shard write lock (enqueue) and under service locks that
  // wrap store calls, and nothing is ever acquired under it.
  mutable util::Mutex journal_mutex_{util::LockLevel::kDbStoreJournal};
  util::CondVar work_cv_;      // journal thread waits for work
  util::CondVar progress_cv_;  // writers/sync/compact waiters park here
  std::deque<Pending> pending_ CLARENS_GUARDED_BY(journal_mutex_);
  std::uint64_t enqueued_seq_ CLARENS_GUARDED_BY(journal_mutex_) = 0;
  std::uint64_t written_seq_ CLARENS_GUARDED_BY(journal_mutex_) = 0;
  std::uint64_t durable_seq_ CLARENS_GUARDED_BY(journal_mutex_) = 0;
  /// Highest seq some waiter needs fsynced (put_durable / sync).
  std::uint64_t sync_target_ CLARENS_GUARDED_BY(journal_mutex_) = 0;
  std::uint64_t compact_requests_ CLARENS_GUARDED_BY(journal_mutex_) = 0;
  std::uint64_t compacted_through_ CLARENS_GUARDED_BY(journal_mutex_) = 0;
  bool stop_ CLARENS_GUARDED_BY(journal_mutex_) = false;
  std::string error_ CLARENS_GUARDED_BY(journal_mutex_);
  /// Approximate queue depth for lock-free backpressure checks.
  std::atomic<std::size_t> pending_count_{0};
  /// Set on journal write/fsync failure; mutators refuse afterwards.
  std::atomic<bool> failed_{false};

  // Journal file state. Owned by the journal thread once it starts (the
  // constructor and destructor touch it only while the thread does not
  // exist), so it needs no lock.
  int journal_fd_ = -1;
  std::size_t journal_bytes_ = 0;

  util::Thread journal_thread_;
};

}  // namespace clarens::db
