// Embedded persistent table store.
//
// The paper stores VO membership, ACLs and session state in a server-side
// database: every request performs (uncached) session and ACL lookups
// against it, and sessions survive server restarts because they live here
// rather than in process memory. This module is that database: named
// tables of string key → string value, durable via an append-only journal
// plus periodic snapshot compaction, recoverable after a crash that tears
// the final journal record.
//
// Concurrency: a single mutex guards the maps and the journal. Lookups
// are microseconds; the paper's 1450 req/s workload does two lookups per
// request, far below contention range (bench_acl_session_cost measures it).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/sync.hpp"

namespace clarens::db {

class Store {
 public:
  /// In-memory store (no persistence).
  Store();

  /// Persistent store rooted at `directory` (created if absent). Loads
  /// the snapshot and replays the journal; a torn final record is
  /// discarded, matching crash semantics.
  explicit Store(const std::string& directory);

  ~Store();

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  void put(const std::string& table, const std::string& key,
           const std::string& value);

  std::optional<std::string> get(const std::string& table,
                                 const std::string& key) const;

  /// Returns true if the key existed.
  bool erase(const std::string& table, const std::string& key);

  bool contains(const std::string& table, const std::string& key) const;

  /// All keys in a table, sorted.
  std::vector<std::string> keys(const std::string& table) const;

  /// Key/value pairs whose key starts with `prefix`, sorted by key.
  std::vector<std::pair<std::string, std::string>> scan_prefix(
      const std::string& table, const std::string& prefix) const;

  /// Remove an entire table. Returns number of keys dropped.
  std::size_t drop_table(const std::string& table);

  std::vector<std::string> tables() const;

  std::size_t size(const std::string& table) const;

  /// Fold the journal into a fresh snapshot and truncate it. Called
  /// automatically when the journal exceeds a threshold.
  void compact();

  /// Flush OS buffers (fsync). Durability beyond process crash is opt-in;
  /// the paper's benchmark explicitly runs without per-request caching
  /// or sync overhead.
  void sync();

  bool persistent() const { return !directory_.empty(); }

  /// Total store operations since construction (every public accessor or
  /// mutator counts one). Lets tests and benchmarks assert that cached
  /// hot paths really bypass the store — the warm authenticated RPC path
  /// must leave this counter untouched.
  std::uint64_t operations() const {
    return ops_.load(std::memory_order_relaxed);
  }

 private:
  using Table = std::map<std::string, std::string>;

  void append_journal(char op, const std::string& table,
                      const std::string& key, const std::string& value)
      CLARENS_REQUIRES(mutex_);
  void load_locked() CLARENS_REQUIRES(mutex_);
  void write_snapshot_locked() CLARENS_REQUIRES(mutex_);
  void replay_file(std::FILE* f, bool tolerate_tear) CLARENS_REQUIRES(mutex_);

  // The store mutex is the innermost lock in the server: services hold
  // their own locks while calling in here, never the other way round
  // (docs/CONCURRENCY.md hierarchy level `db.store`).
  mutable util::Mutex mutex_;
  mutable std::atomic<std::uint64_t> ops_{0};
  std::map<std::string, Table> tables_ CLARENS_GUARDED_BY(mutex_);
  std::string directory_;
  std::FILE* journal_ CLARENS_GUARDED_BY(mutex_) = nullptr;
  std::size_t journal_bytes_ CLARENS_GUARDED_BY(mutex_) = 0;
  std::size_t compact_threshold_ = 8 * 1024 * 1024;
};

}  // namespace clarens::db
