// TLS-like secure channel (the SSL/TLS + X.509 substitution).
//
// Implements the properties the paper relies on, with this repository's
// own primitives instead of OpenSSL:
//   * server (and optionally client) certificate authentication against a
//     trust store, including proxy-certificate chains;
//   * an RSA key transport handshake establishing per-session keys;
//   * an encrypted + MACed record layer (ChaCha20 + HMAC-SHA256) whose
//     per-record cost reproduces the paper's "SSL reduces throughput by
//     up to 50%" observation (bench_ssl_overhead measures it).
//
// Wire format. Records: u8 type | u32 length | payload.
//   type 1 handshake (plaintext during negotiation)
//   type 2 application data: ChaCha20(payload) || HMAC(seq | type | payload)
//   type 3 alert (plaintext reason, connection terminates)
// Handshake flow:
//   C->S ClientHello   { client_random, client chain (may be empty) }
//   S->C ServerHello   { server_random, server chain }
//   C->S KeyExchange   { RSA_enc(server_pub, pre_master),
//                        sig(client_key, transcript) if chain sent }
//   C->S Finished      { HMAC(master, "client finished" | transcript) }
//   S->C Finished      { HMAC(master, "server finished" | transcript) }
// Keys: HKDF(master, direction label) -> 32-byte cipher key + 32-byte MAC
// key per direction; record nonce = first 12 bytes of HMAC(mac_key, seq).
//
// The protocol itself lives in tls::Engine (engine.hpp), a sans-IO state
// machine the HTTP server drives from its epoll reactor. SecureChannel is
// the blocking convenience wrapper over a transport stream, used by
// clients and anywhere a dedicated thread owns the connection.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/socket.hpp"
#include "pki/certificate.hpp"
#include "pki/verify.hpp"
#include "tls/engine.hpp"
#include "util/buffer.hpp"

namespace clarens::tls {

struct TlsConfig {
  /// Local credential. Required for servers; optional for clients
  /// (anonymous client, like a browser without a client certificate).
  std::optional<pki::Credential> credential;
  /// Extra chain certificates (the user certificate when `credential`
  /// holds a proxy).
  std::vector<pki::Certificate> chain;
  /// Trust anchors for verifying the peer. Required.
  const pki::TrustStore* trust = nullptr;
  /// Servers: refuse clients that present no certificate.
  bool require_peer_certificate = false;
};

/// An established encrypted channel. Implements net::Stream so HTTP can
/// run over it unchanged.
class SecureChannel : public net::Stream {
 public:
  /// Client side of the handshake over `transport`. Throws
  /// clarens::AuthError / SystemError on failure.
  static std::unique_ptr<SecureChannel> connect(
      std::unique_ptr<net::Stream> transport, const TlsConfig& config);

  /// Server side of the handshake.
  static std::unique_ptr<SecureChannel> accept(
      std::unique_ptr<net::Stream> transport, const TlsConfig& config);

  std::size_t read(std::span<std::uint8_t> out) override;
  void write_all(std::span<const std::uint8_t> data) override;
  using net::Stream::write_all;
  /// Coalesces the chunks into shared records (one for a typical header +
  /// body pair) instead of one record per chunk.
  void write_vec(std::span<const std::string_view> chunks) override;
  void close() override;

  /// Verified peer identity; nullopt when the peer was anonymous.
  const std::optional<pki::TrustStore::Result>& peer() const {
    return engine_.peer();
  }

  /// Peer certificate chain as presented (leaf first); empty if anonymous.
  const std::vector<pki::Certificate>& peer_chain() const {
    return engine_.peer_chain();
  }

 private:
  SecureChannel(std::unique_ptr<net::Stream> transport, Engine::Role role,
                const TlsConfig& config);

  /// Pump the blocking transport until the engine's handshake completes.
  void run_handshake();
  void flush(util::Buffer& buf);

  std::unique_ptr<net::Stream> transport_;
  /// Owned copy: the engine references it, and callers' configs are often
  /// stack temporaries that die right after connect()/accept().
  TlsConfig config_;
  Engine engine_;
  util::Buffer out_;  // staging for encrypted records before one write
};

}  // namespace clarens::tls
