// TLS-like secure channel (the SSL/TLS + X.509 substitution).
//
// Implements the properties the paper relies on, with this repository's
// own primitives instead of OpenSSL:
//   * server (and optionally client) certificate authentication against a
//     trust store, including proxy-certificate chains;
//   * an RSA key transport handshake establishing per-session keys;
//   * an encrypted + MACed record layer (ChaCha20 + HMAC-SHA256) whose
//     per-record cost reproduces the paper's "SSL reduces throughput by
//     up to 50%" observation (bench_ssl_overhead measures it).
//
// Wire format. Records: u8 type | u32 length | payload.
//   type 1 handshake (plaintext during negotiation)
//   type 2 application data: ChaCha20(payload) || HMAC(seq | type | payload)
//   type 3 alert (plaintext reason, connection terminates)
// Handshake flow:
//   C->S ClientHello   { client_random, client chain (may be empty) }
//   S->C ServerHello   { server_random, server chain }
//   C->S KeyExchange   { RSA_enc(server_pub, pre_master),
//                        sig(client_key, transcript) if chain sent }
//   C->S Finished      { HMAC(master, "client finished" | transcript) }
//   S->C Finished      { HMAC(master, "server finished" | transcript) }
// Keys: HKDF(master, direction label) -> 32-byte cipher key + 32-byte MAC
// key per direction; record nonce = first 12 bytes of HMAC(mac_key, seq).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/socket.hpp"
#include "pki/certificate.hpp"
#include "pki/verify.hpp"
#include "util/buffer.hpp"

namespace clarens::tls {

struct TlsConfig {
  /// Local credential. Required for servers; optional for clients
  /// (anonymous client, like a browser without a client certificate).
  std::optional<pki::Credential> credential;
  /// Extra chain certificates (the user certificate when `credential`
  /// holds a proxy).
  std::vector<pki::Certificate> chain;
  /// Trust anchors for verifying the peer. Required.
  const pki::TrustStore* trust = nullptr;
  /// Servers: refuse clients that present no certificate.
  bool require_peer_certificate = false;
};

/// An established encrypted channel. Implements net::Stream so HTTP can
/// run over it unchanged.
class SecureChannel : public net::Stream {
 public:
  /// Client side of the handshake over `transport`. Throws
  /// clarens::AuthError / SystemError on failure.
  static std::unique_ptr<SecureChannel> connect(
      std::unique_ptr<net::Stream> transport, const TlsConfig& config);

  /// Server side of the handshake.
  static std::unique_ptr<SecureChannel> accept(
      std::unique_ptr<net::Stream> transport, const TlsConfig& config);

  std::size_t read(std::span<std::uint8_t> out) override;
  void write_all(std::span<const std::uint8_t> data) override;
  using net::Stream::write_all;
  void close() override;

  /// Verified peer identity; nullopt when the peer was anonymous.
  const std::optional<pki::TrustStore::Result>& peer() const { return peer_; }

  /// Peer certificate chain as presented (leaf first); empty if anonymous.
  const std::vector<pki::Certificate>& peer_chain() const { return peer_chain_; }

 private:
  SecureChannel(std::unique_ptr<net::Stream> transport, bool is_server);

  struct Keys {
    std::vector<std::uint8_t> cipher_key;
    std::vector<std::uint8_t> mac_key;
  };

  void send_record(std::uint8_t type, std::span<const std::uint8_t> payload);
  /// Reads one full record; returns {type, payload}.
  std::pair<std::uint8_t, std::vector<std::uint8_t>> recv_record();

  void send_encrypted(std::span<const std::uint8_t> data);
  std::vector<std::uint8_t> recv_encrypted();

  void derive_keys(std::span<const std::uint8_t> master);

  std::unique_ptr<net::Stream> transport_;
  bool is_server_;
  Keys send_keys_;
  Keys recv_keys_;
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
  std::optional<pki::TrustStore::Result> peer_;
  std::vector<pki::Certificate> peer_chain_;
  util::Buffer plain_in_;  // decrypted bytes not yet read by the caller
};

}  // namespace clarens::tls
