#include "tls/engine.hpp"

#include <array>
#include <cstring>

#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/random.hpp"
#include "tls/channel.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace clarens::tls {

namespace {

constexpr std::uint8_t kRecordHandshake = 1;
constexpr std::uint8_t kRecordData = 2;
constexpr std::uint8_t kRecordAlert = 3;

constexpr std::size_t kRecordHeader = 5;  // u8 type | u32 length
constexpr std::size_t kRandomSize = 32;
constexpr std::size_t kPreMasterSize = 48;
constexpr std::size_t kMaxRecord = 1 << 24;
constexpr std::size_t kMaxPlainChunk = 16 * 1024;  // like real TLS records

void put_blob(util::Buffer& buf, std::span<const std::uint8_t> data) {
  buf.write_u32(static_cast<std::uint32_t>(data.size()));
  buf.write(data);
}

void put_blob(util::Buffer& buf, const std::string& s) {
  buf.write_u32(static_cast<std::uint32_t>(s.size()));
  buf.write(s);
}

std::vector<std::uint8_t> get_blob(util::Buffer& buf) {
  std::uint32_t len = buf.read_u32();
  if (len > kMaxRecord) throw ParseError("handshake blob too large");
  return buf.read(len);
}

std::string get_blob_string(util::Buffer& buf) {
  std::uint32_t len = buf.read_u32();
  if (len > kMaxRecord) throw ParseError("handshake blob too large");
  return buf.read_string(len);
}

void put_chain(util::Buffer& buf, const std::optional<pki::Credential>& cred,
               const std::vector<pki::Certificate>& extra) {
  std::vector<std::string> encoded;
  if (cred) {
    encoded.push_back(cred->certificate.encode());
    for (const auto& cert : extra) encoded.push_back(cert.encode());
  }
  buf.write_u32(static_cast<std::uint32_t>(encoded.size()));
  for (const auto& e : encoded) put_blob(buf, e);
}

std::vector<pki::Certificate> get_chain(util::Buffer& buf) {
  std::uint32_t count = buf.read_u32();
  if (count > 8) throw ParseError("certificate chain too long");
  std::vector<pki::Certificate> chain;
  chain.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    chain.push_back(pki::Certificate::decode(get_blob_string(buf)));
  }
  return chain;
}

std::vector<std::uint8_t> concat(std::span<const std::uint8_t> a,
                                 std::span<const std::uint8_t> b) {
  std::vector<std::uint8_t> out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

crypto::Sha256::Digest finished_mac(std::span<const std::uint8_t> master,
                                    std::span<const std::uint8_t> transcript,
                                    std::string_view label) {
  std::vector<std::uint8_t> input(transcript.begin(), transcript.end());
  input.insert(input.end(),
               reinterpret_cast<const std::uint8_t*>(label.data()),
               reinterpret_cast<const std::uint8_t*>(label.data()) +
                   label.size());
  return crypto::hmac_sha256(master, input);
}

void write_record_header(util::Buffer& out, std::uint8_t type,
                         std::size_t length) {
  out.write_u8(type);
  out.write_u32(static_cast<std::uint32_t>(length));
}

}  // namespace

Engine::Engine(Role role, const TlsConfig& config)
    : role_(role),
      config_(config),
      state_(role == Role::Server ? State::ExpectClientHello
                                  : State::StartPending) {
  if (!config.trust) throw Error("TLS config requires a trust store");
  if (role == Role::Server && !config.credential) {
    throw Error("TLS server requires a credential");
  }
}

void Engine::start(util::Buffer& out) {
  if (role_ != Role::Client || state_ != State::StartPending) {
    throw Error("Engine::start: not a fresh client engine");
  }
  client_random_ = crypto::random_bytes(kRandomSize);
  util::Buffer hello;
  put_blob(hello, client_random_);
  put_chain(hello, config_.credential, config_.chain);
  write_record_header(out, kRecordHandshake, hello.readable());
  out.write(hello.peek());
  state_ = State::ExpectServerHello;
}

void Engine::send_alert(std::string_view reason, util::Buffer& out) {
  alert_sent_ = true;
  write_record_header(out, kRecordAlert, reason.size());
  out.write(reason);
}

void Engine::feed(std::span<const std::uint8_t> data, util::Buffer& out) {
  if (state_ == State::Failed) throw ParseError("TLS engine already failed");
  in_.write(data);
  // Remembered across the loop so the failure path knows whether the
  // record that killed us was itself an alert (never answer an alert
  // with an alert — that would ping-pong).
  std::uint8_t current_type = kRecordHandshake;
  try {
    // Consume every complete record buffered so far; partial records wait
    // for the next feed (this is what makes byte-at-a-time delivery work).
    for (;;) {
      if (in_.readable() < kRecordHeader) break;
      std::span<const std::uint8_t> raw = in_.peek();
      std::uint8_t type = raw[0];
      current_type = type;
      std::uint32_t len = (static_cast<std::uint32_t>(raw[1]) << 24) |
                          (static_cast<std::uint32_t>(raw[2]) << 16) |
                          (static_cast<std::uint32_t>(raw[3]) << 8) | raw[4];
      if (len > kMaxRecord) throw ParseError("TLS record too large");
      if (in_.readable() < kRecordHeader + len) break;
      // The payload view stays valid until the next in_ mutation; consume
      // happens after handle_record returns.
      std::span<const std::uint8_t> payload = raw.subspan(kRecordHeader, len);
      handle_record(type, payload, out);
      in_.consume(kRecordHeader + len);
      if (in_.empty()) in_.compact();
    }
  } catch (...) {
    state_ = State::Failed;
    // Honor the header contract: the alert owed to the peer is in `out`
    // before the throw, unless a handler already produced a specific one.
    if (!alert_sent_ && current_type != kRecordAlert) {
      send_alert("protocol failure", out);
    }
    throw;
  }
}

void Engine::handle_record(std::uint8_t type,
                           std::span<const std::uint8_t> payload,
                           util::Buffer& out) {
  if (type == kRecordAlert) {
    throw AuthError("TLS alert from peer: " +
                    std::string(payload.begin(), payload.end()));
  }
  if (state_ == State::Established) {
    if (type != kRecordData) throw ParseError("expected TLS data record");
    decrypt_record(payload);
    return;
  }
  if (type != kRecordHandshake) {
    throw ParseError("expected TLS handshake record");
  }
  switch (state_) {
    case State::ExpectClientHello: on_client_hello(payload, out); break;
    case State::ExpectKeyExchange: on_key_exchange(payload); break;
    case State::ExpectClientFinished: on_client_finished(payload, out); break;
    case State::ExpectServerHello: on_server_hello(payload, out); break;
    case State::ExpectServerFinished: on_server_finished(payload); break;
    default: throw ParseError("unexpected TLS handshake record");
  }
}

// ---------------------------------------------------------------------------
// Server-side handshake.

void Engine::on_client_hello(std::span<const std::uint8_t> payload,
                             util::Buffer& out) {
  util::Buffer hello;
  hello.write(payload);
  client_random_ = get_blob(hello);
  if (client_random_.size() != kRandomSize) {
    throw ParseError("bad client random");
  }
  std::vector<pki::Certificate> client_chain = get_chain(hello);

  if (client_chain.empty() && config_.require_peer_certificate) {
    send_alert("certificate required", out);
    throw AuthError("client presented no certificate");
  }
  if (!client_chain.empty()) {
    pki::TrustStore::Result client_identity =
        config_.trust->verify(client_chain, util::unix_now());
    if (!client_identity.ok) {
      send_alert("bad certificate", out);
      throw AuthError("client certificate rejected: " + client_identity.error);
    }
    peer_ = client_identity;
    peer_chain_ = client_chain;
  }

  server_random_ = crypto::random_bytes(kRandomSize);
  util::Buffer server_hello;
  put_blob(server_hello, server_random_);
  put_chain(server_hello, config_.credential, config_.chain);
  write_record_header(out, kRecordHandshake, server_hello.readable());
  out.write(server_hello.peek());
  state_ = State::ExpectKeyExchange;
}

void Engine::on_key_exchange(std::span<const std::uint8_t> payload) {
  util::Buffer kx;
  kx.write(payload);
  std::vector<std::uint8_t> encrypted = get_blob(kx);
  std::vector<std::uint8_t> sig = get_blob(kx);
  auto pre_master =
      crypto::rsa_decrypt(config_.credential->private_key, encrypted);
  if (!pre_master || pre_master->size() != kPreMasterSize) {
    throw AuthError("key exchange decryption failed");
  }
  std::vector<std::uint8_t> transcript = concat(client_random_, server_random_);
  if (!peer_chain_.empty()) {
    if (sig.empty() ||
        !crypto::rsa_verify(peer_chain_.front().public_key(),
                            std::span<const std::uint8_t>(transcript), sig)) {
      throw AuthError("client key-possession proof failed");
    }
  }
  std::vector<std::uint8_t> ikm = *pre_master;
  ikm.insert(ikm.end(), transcript.begin(), transcript.end());
  master_ = crypto::derive_key(ikm, "master", 48);
  derive_keys(master_);
  state_ = State::ExpectClientFinished;
}

void Engine::on_client_finished(std::span<const std::uint8_t> payload,
                                util::Buffer& out) {
  std::vector<std::uint8_t> transcript = concat(client_random_, server_random_);
  auto expected = finished_mac(master_, transcript, "client finished");
  if (!crypto::constant_time_equal(payload, expected)) {
    throw AuthError("client Finished verification failed");
  }
  auto server_finished = finished_mac(master_, transcript, "server finished");
  write_record_header(out, kRecordHandshake, server_finished.size());
  out.write(std::span<const std::uint8_t>(server_finished));
  master_.assign(master_.size(), 0);
  master_.clear();
  state_ = State::Established;
}

// ---------------------------------------------------------------------------
// Client-side handshake.

void Engine::on_server_hello(std::span<const std::uint8_t> payload,
                             util::Buffer& out) {
  util::Buffer server_hello;
  server_hello.write(payload);
  server_random_ = get_blob(server_hello);
  if (server_random_.size() != kRandomSize) {
    throw ParseError("bad server random");
  }
  std::vector<pki::Certificate> server_chain = get_chain(server_hello);
  if (server_chain.empty()) throw AuthError("server presented no certificate");

  pki::TrustStore::Result server_identity =
      config_.trust->verify(server_chain, util::unix_now());
  if (!server_identity.ok) {
    throw AuthError("server certificate rejected: " + server_identity.error);
  }
  peer_ = server_identity;
  peer_chain_ = server_chain;

  std::vector<std::uint8_t> transcript = concat(client_random_, server_random_);

  // KeyExchange.
  std::vector<std::uint8_t> pre_master = crypto::random_bytes(kPreMasterSize);
  std::vector<std::uint8_t> encrypted = crypto::rsa_encrypt(
      server_chain.front().public_key(), pre_master, crypto::system_drbg());
  util::Buffer kx;
  put_blob(kx, encrypted);
  if (config_.credential) {
    std::vector<std::uint8_t> sig =
        crypto::rsa_sign(config_.credential->private_key,
                         std::span<const std::uint8_t>(transcript));
    put_blob(kx, sig);
  } else {
    kx.write_u32(0);
  }
  write_record_header(out, kRecordHandshake, kx.readable());
  out.write(kx.peek());

  std::vector<std::uint8_t> ikm = pre_master;
  ikm.insert(ikm.end(), transcript.begin(), transcript.end());
  master_ = crypto::derive_key(ikm, "master", 48);
  derive_keys(master_);

  auto client_finished = finished_mac(master_, transcript, "client finished");
  write_record_header(out, kRecordHandshake, client_finished.size());
  out.write(std::span<const std::uint8_t>(client_finished));
  state_ = State::ExpectServerFinished;
}

void Engine::on_server_finished(std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> transcript = concat(client_random_, server_random_);
  auto expected = finished_mac(master_, transcript, "server finished");
  if (!crypto::constant_time_equal(payload, expected)) {
    throw AuthError("server Finished verification failed");
  }
  master_.assign(master_.size(), 0);
  master_.clear();
  state_ = State::Established;
}

void Engine::derive_keys(std::span<const std::uint8_t> master) {
  auto make = [&](const char* label) {
    Keys keys;
    std::vector<std::uint8_t> material = crypto::derive_key(master, label, 64);
    keys.cipher_key.assign(material.begin(), material.begin() + 32);
    keys.mac_key.assign(material.begin() + 32, material.end());
    return keys;
  };
  Keys client = make("client write");
  Keys server = make("server write");
  if (role_ == Role::Server) {
    send_keys_ = std::move(server);
    recv_keys_ = std::move(client);
  } else {
    send_keys_ = std::move(client);
    recv_keys_ = std::move(server);
  }
}

// ---------------------------------------------------------------------------
// Record layer.

void Engine::encrypt_record(std::span<const std::uint8_t> plain,
                            util::Buffer& out) {
  std::array<std::uint8_t, 8> seq_bytes;
  for (int i = 0; i < 8; ++i) {
    seq_bytes[i] = static_cast<std::uint8_t>(send_seq_ >> (8 * (7 - i)));
  }
  std::vector<std::uint8_t> mac_input;
  mac_input.reserve(9 + plain.size());
  mac_input.insert(mac_input.end(), seq_bytes.begin(), seq_bytes.end());
  mac_input.push_back(kRecordData);
  mac_input.insert(mac_input.end(), plain.begin(), plain.end());
  auto mac = crypto::hmac_sha256(send_keys_.mac_key, mac_input);

  std::vector<std::uint8_t> payload(plain.begin(), plain.end());
  payload.insert(payload.end(), mac.begin(), mac.end());

  auto nonce_full = crypto::hmac_sha256(send_keys_.mac_key, seq_bytes);
  crypto::ChaCha20 cipher(send_keys_.cipher_key,
                          std::span<const std::uint8_t>(nonce_full.data(), 12));
  cipher.crypt(payload);

  write_record_header(out, kRecordData, payload.size());
  out.write(std::span<const std::uint8_t>(payload));
  ++send_seq_;
}

void Engine::decrypt_record(std::span<const std::uint8_t> payload_in) {
  if (payload_in.size() < 32) throw ParseError("TLS record shorter than MAC");
  std::vector<std::uint8_t> payload(payload_in.begin(), payload_in.end());

  std::array<std::uint8_t, 8> seq_bytes;
  for (int i = 0; i < 8; ++i) {
    seq_bytes[i] = static_cast<std::uint8_t>(recv_seq_ >> (8 * (7 - i)));
  }
  auto nonce_full = crypto::hmac_sha256(recv_keys_.mac_key, seq_bytes);
  crypto::ChaCha20 cipher(recv_keys_.cipher_key,
                          std::span<const std::uint8_t>(nonce_full.data(), 12));
  cipher.crypt(payload);

  std::size_t data_len = payload.size() - 32;
  std::vector<std::uint8_t> mac_input;
  mac_input.reserve(9 + data_len);
  mac_input.insert(mac_input.end(), seq_bytes.begin(), seq_bytes.end());
  mac_input.push_back(kRecordData);
  mac_input.insert(mac_input.end(), payload.begin(),
                   payload.begin() + static_cast<long>(data_len));
  auto expected = crypto::hmac_sha256(recv_keys_.mac_key, mac_input);
  if (!crypto::constant_time_equal(
          std::span<const std::uint8_t>(payload.data() + data_len, 32),
          expected)) {
    throw AuthError("TLS record MAC mismatch");
  }
  ++recv_seq_;
  plain_in_.write(std::span<const std::uint8_t>(payload.data(), data_len));
}

std::size_t Engine::read_plain(std::span<std::uint8_t> out) {
  std::size_t take = std::min(out.size(), plain_in_.readable());
  std::memcpy(out.data(), plain_in_.peek().data(), take);
  plain_in_.consume(take);
  if (plain_in_.empty()) plain_in_.compact();
  return take;
}

void Engine::encrypt(std::span<const std::uint8_t> data, util::Buffer& out) {
  if (!handshake_done()) throw Error("TLS engine: handshake not complete");
  std::size_t off = 0;
  while (off < data.size()) {
    std::size_t take = std::min(kMaxPlainChunk, data.size() - off);
    encrypt_record(data.subspan(off, take), out);
    off += take;
  }
  if (data.empty()) encrypt_record(data, out);
}

void Engine::encrypt(std::span<const std::string_view> chunks,
                     util::Buffer& out) {
  if (!handshake_done()) throw Error("TLS engine: handshake not complete");
  // Coalesce adjacent chunks into shared records: a response's header +
  // body leave as one record instead of one per chunk (each record costs
  // an HMAC + header on the wire).
  std::vector<std::uint8_t> staged;
  std::size_t total = 0;
  for (std::string_view chunk : chunks) total += chunk.size();
  staged.reserve(std::min(total, kMaxPlainChunk));
  for (std::string_view chunk : chunks) {
    std::size_t off = 0;
    while (off < chunk.size()) {
      std::size_t room = kMaxPlainChunk - staged.size();
      if (room == 0) {
        encrypt_record(staged, out);
        staged.clear();
        room = kMaxPlainChunk;
      }
      std::size_t take = std::min(room, chunk.size() - off);
      const auto* p = reinterpret_cast<const std::uint8_t*>(chunk.data()) + off;
      staged.insert(staged.end(), p, p + take);
      off += take;
    }
  }
  if (!staged.empty() || total == 0) encrypt_record(staged, out);
}

}  // namespace clarens::tls
