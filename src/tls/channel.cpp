#include "tls/channel.hpp"

#include <cstring>

#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/random.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace clarens::tls {

namespace {

constexpr std::uint8_t kRecordHandshake = 1;
constexpr std::uint8_t kRecordData = 2;
constexpr std::uint8_t kRecordAlert = 3;

constexpr std::size_t kRandomSize = 32;
constexpr std::size_t kPreMasterSize = 48;
constexpr std::size_t kMaxRecord = 1 << 24;

// Length-prefixed string list helpers for handshake payloads.
void put_blob(util::Buffer& buf, std::span<const std::uint8_t> data) {
  buf.write_u32(static_cast<std::uint32_t>(data.size()));
  buf.write(data);
}

void put_blob(util::Buffer& buf, const std::string& s) {
  buf.write_u32(static_cast<std::uint32_t>(s.size()));
  buf.write(s);
}

std::vector<std::uint8_t> get_blob(util::Buffer& buf) {
  std::uint32_t len = buf.read_u32();
  if (len > kMaxRecord) throw ParseError("handshake blob too large");
  return buf.read(len);
}

std::string get_blob_string(util::Buffer& buf) {
  std::uint32_t len = buf.read_u32();
  if (len > kMaxRecord) throw ParseError("handshake blob too large");
  return buf.read_string(len);
}

void put_chain(util::Buffer& buf, const std::optional<pki::Credential>& cred,
               const std::vector<pki::Certificate>& extra) {
  std::vector<std::string> encoded;
  if (cred) {
    encoded.push_back(cred->certificate.encode());
    for (const auto& cert : extra) encoded.push_back(cert.encode());
  }
  buf.write_u32(static_cast<std::uint32_t>(encoded.size()));
  for (const auto& e : encoded) put_blob(buf, e);
}

std::vector<pki::Certificate> get_chain(util::Buffer& buf) {
  std::uint32_t count = buf.read_u32();
  if (count > 8) throw ParseError("certificate chain too long");
  std::vector<pki::Certificate> chain;
  chain.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    chain.push_back(pki::Certificate::decode(get_blob_string(buf)));
  }
  return chain;
}

std::vector<std::uint8_t> concat(std::span<const std::uint8_t> a,
                                 std::span<const std::uint8_t> b) {
  std::vector<std::uint8_t> out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace

SecureChannel::SecureChannel(std::unique_ptr<net::Stream> transport,
                             bool is_server)
    : transport_(std::move(transport)), is_server_(is_server) {}

void SecureChannel::send_record(std::uint8_t type,
                                std::span<const std::uint8_t> payload) {
  util::Buffer buf;
  buf.write_u8(type);
  buf.write_u32(static_cast<std::uint32_t>(payload.size()));
  buf.write(payload);
  transport_->write_all(buf.peek());
}

std::pair<std::uint8_t, std::vector<std::uint8_t>> SecureChannel::recv_record() {
  std::uint8_t header[5];
  std::size_t got = 0;
  while (got < sizeof(header)) {
    std::size_t n = transport_->read(
        std::span<std::uint8_t>(header + got, sizeof(header) - got));
    if (n == 0) throw SystemError("connection closed during TLS record");
    got += n;
  }
  std::uint8_t type = header[0];
  std::uint32_t len = (static_cast<std::uint32_t>(header[1]) << 24) |
                      (static_cast<std::uint32_t>(header[2]) << 16) |
                      (static_cast<std::uint32_t>(header[3]) << 8) |
                      header[4];
  if (len > kMaxRecord) throw ParseError("TLS record too large");
  std::vector<std::uint8_t> payload(len);
  std::size_t off = 0;
  while (off < len) {
    std::size_t n = transport_->read(
        std::span<std::uint8_t>(payload.data() + off, len - off));
    if (n == 0) throw SystemError("connection closed inside TLS record");
    off += n;
  }
  if (type == kRecordAlert) {
    throw AuthError("TLS alert from peer: " +
                    std::string(payload.begin(), payload.end()));
  }
  return {type, std::move(payload)};
}

void SecureChannel::derive_keys(std::span<const std::uint8_t> master) {
  auto make = [&](const char* label) {
    Keys keys;
    std::vector<std::uint8_t> material =
        crypto::derive_key(master, label, 64);
    keys.cipher_key.assign(material.begin(), material.begin() + 32);
    keys.mac_key.assign(material.begin() + 32, material.end());
    return keys;
  };
  Keys client = make("client write");
  Keys server = make("server write");
  if (is_server_) {
    send_keys_ = std::move(server);
    recv_keys_ = std::move(client);
  } else {
    send_keys_ = std::move(client);
    recv_keys_ = std::move(server);
  }
}

void SecureChannel::send_encrypted(std::span<const std::uint8_t> data) {
  // MAC covers seq | type | plaintext; nonce is derived from the MAC key
  // and sequence number so both sides compute it without transmission.
  std::array<std::uint8_t, 8> seq_bytes;
  for (int i = 0; i < 8; ++i) {
    seq_bytes[i] = static_cast<std::uint8_t>(send_seq_ >> (8 * (7 - i)));
  }
  std::vector<std::uint8_t> mac_input;
  mac_input.reserve(9 + data.size());
  mac_input.insert(mac_input.end(), seq_bytes.begin(), seq_bytes.end());
  mac_input.push_back(kRecordData);
  mac_input.insert(mac_input.end(), data.begin(), data.end());
  auto mac = crypto::hmac_sha256(send_keys_.mac_key, mac_input);

  std::vector<std::uint8_t> payload(data.begin(), data.end());
  payload.insert(payload.end(), mac.begin(), mac.end());

  auto nonce_full = crypto::hmac_sha256(send_keys_.mac_key, seq_bytes);
  crypto::ChaCha20 cipher(send_keys_.cipher_key,
                          std::span<const std::uint8_t>(nonce_full.data(), 12));
  cipher.crypt(payload);

  send_record(kRecordData, payload);
  ++send_seq_;
}

std::vector<std::uint8_t> SecureChannel::recv_encrypted() {
  auto [type, payload] = recv_record();
  if (type != kRecordData) throw ParseError("expected TLS data record");
  if (payload.size() < 32) throw ParseError("TLS record shorter than MAC");

  std::array<std::uint8_t, 8> seq_bytes;
  for (int i = 0; i < 8; ++i) {
    seq_bytes[i] = static_cast<std::uint8_t>(recv_seq_ >> (8 * (7 - i)));
  }
  auto nonce_full = crypto::hmac_sha256(recv_keys_.mac_key, seq_bytes);
  crypto::ChaCha20 cipher(recv_keys_.cipher_key,
                          std::span<const std::uint8_t>(nonce_full.data(), 12));
  cipher.crypt(payload);

  std::size_t data_len = payload.size() - 32;
  std::vector<std::uint8_t> mac_input;
  mac_input.reserve(9 + data_len);
  mac_input.insert(mac_input.end(), seq_bytes.begin(), seq_bytes.end());
  mac_input.push_back(kRecordData);
  mac_input.insert(mac_input.end(), payload.begin(),
                   payload.begin() + static_cast<long>(data_len));
  auto expected = crypto::hmac_sha256(recv_keys_.mac_key, mac_input);
  if (!crypto::constant_time_equal(
          std::span<const std::uint8_t>(payload.data() + data_len, 32),
          expected)) {
    throw AuthError("TLS record MAC mismatch");
  }
  ++recv_seq_;
  payload.resize(data_len);
  return payload;
}

std::unique_ptr<SecureChannel> SecureChannel::connect(
    std::unique_ptr<net::Stream> transport, const TlsConfig& config) {
  if (!config.trust) throw Error("TLS config requires a trust store");
  auto chan = std::unique_ptr<SecureChannel>(
      // clarens-lint: allow(raw-new): private constructor, unreachable by make_unique; ownership taken on this line.
      new SecureChannel(std::move(transport), /*is_server=*/false));

  // ClientHello
  std::vector<std::uint8_t> client_random = crypto::random_bytes(kRandomSize);
  util::Buffer hello;
  put_blob(hello, client_random);
  put_chain(hello, config.credential, config.chain);
  chan->send_record(kRecordHandshake, hello.peek());

  // ServerHello
  auto [type, payload] = chan->recv_record();
  if (type != kRecordHandshake) throw ParseError("expected ServerHello");
  util::Buffer server_hello;
  server_hello.write(std::span<const std::uint8_t>(payload));
  std::vector<std::uint8_t> server_random = get_blob(server_hello);
  if (server_random.size() != kRandomSize) throw ParseError("bad server random");
  std::vector<pki::Certificate> server_chain = get_chain(server_hello);
  if (server_chain.empty()) throw AuthError("server presented no certificate");

  pki::TrustStore::Result server_identity =
      config.trust->verify(server_chain, util::unix_now());
  if (!server_identity.ok) {
    throw AuthError("server certificate rejected: " + server_identity.error);
  }
  chan->peer_ = server_identity;
  chan->peer_chain_ = server_chain;

  // Transcript binds the randoms (and thus both hellos).
  std::vector<std::uint8_t> transcript = concat(client_random, server_random);

  // KeyExchange
  std::vector<std::uint8_t> pre_master = crypto::random_bytes(kPreMasterSize);
  std::vector<std::uint8_t> encrypted = crypto::rsa_encrypt(
      server_chain.front().public_key(), pre_master, crypto::system_drbg());
  util::Buffer kx;
  put_blob(kx, encrypted);
  if (config.credential) {
    // Prove possession of the presented certificate's key.
    std::vector<std::uint8_t> sig =
        crypto::rsa_sign(config.credential->private_key,
                         std::span<const std::uint8_t>(transcript));
    put_blob(kx, sig);
  } else {
    kx.write_u32(0);
  }
  chan->send_record(kRecordHandshake, kx.peek());

  // Key derivation: master = HKDF(pre_master, "master" | transcript).
  std::vector<std::uint8_t> ikm = pre_master;
  ikm.insert(ikm.end(), transcript.begin(), transcript.end());
  std::vector<std::uint8_t> master = crypto::derive_key(ikm, "master", 48);
  chan->derive_keys(master);

  // Client Finished.
  std::vector<std::uint8_t> cf_input = concat(
      std::span<const std::uint8_t>(transcript),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>("client finished"), 15));
  auto client_finished = crypto::hmac_sha256(master, cf_input);
  chan->send_record(kRecordHandshake, client_finished);

  // Server Finished.
  auto [ftype, fpayload] = chan->recv_record();
  if (ftype != kRecordHandshake) throw ParseError("expected server Finished");
  std::vector<std::uint8_t> sf_input = concat(
      std::span<const std::uint8_t>(transcript),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>("server finished"), 15));
  auto expected_sf = crypto::hmac_sha256(master, sf_input);
  if (!crypto::constant_time_equal(fpayload, expected_sf)) {
    throw AuthError("server Finished verification failed");
  }
  return chan;
}

std::unique_ptr<SecureChannel> SecureChannel::accept(
    std::unique_ptr<net::Stream> transport, const TlsConfig& config) {
  if (!config.trust) throw Error("TLS config requires a trust store");
  if (!config.credential) throw Error("TLS server requires a credential");
  auto chan = std::unique_ptr<SecureChannel>(
      // clarens-lint: allow(raw-new): private constructor, unreachable by make_unique; ownership taken on this line.
      new SecureChannel(std::move(transport), /*is_server=*/true));

  // ClientHello
  auto [type, payload] = chan->recv_record();
  if (type != kRecordHandshake) throw ParseError("expected ClientHello");
  util::Buffer hello;
  hello.write(std::span<const std::uint8_t>(payload));
  std::vector<std::uint8_t> client_random = get_blob(hello);
  if (client_random.size() != kRandomSize) throw ParseError("bad client random");
  std::vector<pki::Certificate> client_chain = get_chain(hello);

  if (client_chain.empty() && config.require_peer_certificate) {
    chan->send_record(kRecordAlert,
                      std::span<const std::uint8_t>(
                          reinterpret_cast<const std::uint8_t*>("certificate required"), 20));
    throw AuthError("client presented no certificate");
  }
  if (!client_chain.empty()) {
    pki::TrustStore::Result client_identity =
        config.trust->verify(client_chain, util::unix_now());
    if (!client_identity.ok) {
      chan->send_record(kRecordAlert,
                        std::span<const std::uint8_t>(
                            reinterpret_cast<const std::uint8_t*>("bad certificate"), 15));
      throw AuthError("client certificate rejected: " + client_identity.error);
    }
    chan->peer_ = client_identity;
    chan->peer_chain_ = client_chain;
  }

  // ServerHello
  std::vector<std::uint8_t> server_random = crypto::random_bytes(kRandomSize);
  util::Buffer server_hello;
  put_blob(server_hello, server_random);
  put_chain(server_hello, config.credential, config.chain);
  chan->send_record(kRecordHandshake, server_hello.peek());

  std::vector<std::uint8_t> transcript = concat(client_random, server_random);

  // KeyExchange
  auto [kx_type, kx_payload] = chan->recv_record();
  if (kx_type != kRecordHandshake) throw ParseError("expected KeyExchange");
  util::Buffer kx;
  kx.write(std::span<const std::uint8_t>(kx_payload));
  std::vector<std::uint8_t> encrypted = get_blob(kx);
  std::vector<std::uint8_t> sig = get_blob(kx);
  auto pre_master = crypto::rsa_decrypt(config.credential->private_key, encrypted);
  if (!pre_master || pre_master->size() != kPreMasterSize) {
    throw AuthError("key exchange decryption failed");
  }
  if (!client_chain.empty()) {
    if (sig.empty() ||
        !crypto::rsa_verify(client_chain.front().public_key(),
                            std::span<const std::uint8_t>(transcript), sig)) {
      throw AuthError("client key-possession proof failed");
    }
  }

  std::vector<std::uint8_t> ikm = *pre_master;
  ikm.insert(ikm.end(), transcript.begin(), transcript.end());
  std::vector<std::uint8_t> master = crypto::derive_key(ikm, "master", 48);
  chan->derive_keys(master);

  // Client Finished.
  auto [cf_type, cf_payload] = chan->recv_record();
  if (cf_type != kRecordHandshake) throw ParseError("expected client Finished");
  std::vector<std::uint8_t> cf_input = concat(
      std::span<const std::uint8_t>(transcript),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>("client finished"), 15));
  auto expected_cf = crypto::hmac_sha256(master, cf_input);
  if (!crypto::constant_time_equal(cf_payload, expected_cf)) {
    throw AuthError("client Finished verification failed");
  }

  // Server Finished.
  std::vector<std::uint8_t> sf_input = concat(
      std::span<const std::uint8_t>(transcript),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>("server finished"), 15));
  auto server_finished = crypto::hmac_sha256(master, sf_input);
  chan->send_record(kRecordHandshake, server_finished);
  return chan;
}

std::size_t SecureChannel::read(std::span<std::uint8_t> out) {
  if (plain_in_.empty()) {
    std::vector<std::uint8_t> data;
    try {
      data = recv_encrypted();
    } catch (const SystemError&) {
      return 0;  // orderly close of the transport == EOF
    }
    plain_in_.write(std::span<const std::uint8_t>(data));
  }
  std::size_t take = std::min(out.size(), plain_in_.readable());
  std::memcpy(out.data(), plain_in_.peek().data(), take);
  plain_in_.consume(take);
  return take;
}

void SecureChannel::write_all(std::span<const std::uint8_t> data) {
  // Bound record size so MAC/cipher work streams (16 KiB like real TLS).
  constexpr std::size_t kChunk = 16 * 1024;
  std::size_t off = 0;
  while (off < data.size()) {
    std::size_t take = std::min(kChunk, data.size() - off);
    send_encrypted(data.subspan(off, take));
    off += take;
  }
  if (data.empty()) send_encrypted(data);
}

void SecureChannel::close() { transport_->close(); }

}  // namespace clarens::tls
