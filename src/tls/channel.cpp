#include "tls/channel.hpp"

#include <array>

#include "util/error.hpp"

namespace clarens::tls {

SecureChannel::SecureChannel(std::unique_ptr<net::Stream> transport,
                             Engine::Role role, const TlsConfig& config)
    : transport_(std::move(transport)),
      config_(config),
      engine_(role, config_) {}

void SecureChannel::flush(util::Buffer& buf) {
  if (buf.empty()) return;
  transport_->write_all(buf.peek());
  buf.clear();
}

void SecureChannel::run_handshake() {
  util::Buffer out;
  std::array<std::uint8_t, 8 * 1024> chunk;
  while (!engine_.handshake_done()) {
    std::size_t n = transport_->read(chunk);
    if (n == 0) throw SystemError("connection closed during TLS handshake");
    try {
      engine_.feed(std::span<const std::uint8_t>(chunk.data(), n), out);
    } catch (...) {
      // Deliver any alert the engine owed the peer, then fail.
      try {
        flush(out);
      } catch (const SystemError&) {
      }
      throw;
    }
    flush(out);
  }
}

std::unique_ptr<SecureChannel> SecureChannel::connect(
    std::unique_ptr<net::Stream> transport, const TlsConfig& config) {
  auto chan = std::unique_ptr<SecureChannel>(
      // clarens-lint: allow(raw-new): private constructor, unreachable by make_unique; ownership taken on this line.
      new SecureChannel(std::move(transport), Engine::Role::Client, config));
  util::Buffer hello;
  chan->engine_.start(hello);
  chan->flush(hello);
  chan->run_handshake();
  return chan;
}

std::unique_ptr<SecureChannel> SecureChannel::accept(
    std::unique_ptr<net::Stream> transport, const TlsConfig& config) {
  auto chan = std::unique_ptr<SecureChannel>(
      // clarens-lint: allow(raw-new): private constructor, unreachable by make_unique; ownership taken on this line.
      new SecureChannel(std::move(transport), Engine::Role::Server, config));
  chan->run_handshake();
  return chan;
}

std::size_t SecureChannel::read(std::span<std::uint8_t> out) {
  std::array<std::uint8_t, 16 * 1024> chunk;
  while (engine_.plain_available() == 0) {
    std::size_t n;
    try {
      n = transport_->read(chunk);
    } catch (const SystemError&) {
      return 0;  // orderly close of the transport == EOF
    }
    if (n == 0) return 0;
    util::Buffer unused;  // established engines emit nothing on feed
    engine_.feed(std::span<const std::uint8_t>(chunk.data(), n), unused);
  }
  return engine_.read_plain(out);
}

void SecureChannel::write_all(std::span<const std::uint8_t> data) {
  out_.clear();
  engine_.encrypt(data, out_);
  flush(out_);
}

void SecureChannel::write_vec(std::span<const std::string_view> chunks) {
  out_.clear();
  engine_.encrypt(chunks, out_);
  flush(out_);
}

void SecureChannel::close() { transport_->close(); }

}  // namespace clarens::tls
