// Sans-IO TLS-like protocol engine.
//
// The handshake and record layer of tls::SecureChannel, recast as a pure
// state machine with no sockets: callers feed ciphertext bytes in as they
// arrive off the wire (in any fragmentation — one byte at a time or whole
// flights coalesced) and the engine emits outgoing handshake/alert bytes
// into a caller-owned buffer. This is what lets TLS connections live on
// the epoll reactor next to plaintext ones: the reactor pumps readable
// bytes through feed() and writes whatever the engine produced, never
// blocking for a peer's next flight.
//
// Wire format and handshake flow are identical to the blocking channel
// (see channel.hpp): records are u8 type | u32 length | payload; the
// handshake is ClientHello / ServerHello / KeyExchange / client Finished /
// server Finished with RSA key transport; the record layer is ChaCha20 +
// HMAC-SHA256 with per-direction keys.
//
// Threading: the engine itself is not synchronized, but after the
// handshake completes the read side (feed / read_plain, receive keys) and
// the write side (encrypt, send keys) touch disjoint state, so a reactor
// thread may decrypt incoming records while a worker thread encrypts a
// response — the HTTP server's per-connection ownership discipline
// (docs/CONCURRENCY.md) serializes each side.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "pki/certificate.hpp"
#include "pki/verify.hpp"
#include "util/buffer.hpp"

namespace clarens::tls {

struct TlsConfig;  // channel.hpp

class Engine {
 public:
  enum class Role { Client, Server };

  /// `config` must outlive the engine (it holds the trust-store pointer
  /// and credential by reference).
  Engine(Role role, const TlsConfig& config);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Client only: emit the ClientHello into `out`. Call once, before any
  /// feed(). Servers produce their first flight from feed().
  void start(util::Buffer& out);

  /// Feed ciphertext received from the wire, in any fragmentation.
  /// Complete records are consumed as they form: handshake flights append
  /// their responses to `out` (to be written to the peer), application
  /// records decrypt into the internal plaintext queue (read_plain).
  /// Throws AuthError / ParseError on protocol violations; any alert owed
  /// to the peer is appended to `out` before the throw, so callers can
  /// flush best-effort and close.
  void feed(std::span<const std::uint8_t> data, util::Buffer& out);

  bool handshake_done() const { return state_ == State::Established; }

  /// Decrypted application bytes waiting to be read.
  std::size_t plain_available() const { return plain_in_.readable(); }
  std::size_t read_plain(std::span<std::uint8_t> out);

  /// Encrypt application data into `out` as data records. Adjacent chunks
  /// are coalesced into shared records of up to 16 KiB, so a vectored
  /// response (header + body) costs one record, not one per chunk.
  void encrypt(std::span<const std::string_view> chunks, util::Buffer& out);
  void encrypt(std::span<const std::uint8_t> data, util::Buffer& out);

  /// Verified peer identity / chain; set once the peer's certificate
  /// flight has been validated (before handshake_done()).
  const std::optional<pki::TrustStore::Result>& peer() const { return peer_; }
  const std::vector<pki::Certificate>& peer_chain() const {
    return peer_chain_;
  }

 private:
  enum class State {
    // Server states (in order).
    ExpectClientHello,
    ExpectKeyExchange,
    ExpectClientFinished,
    // Client states.
    StartPending,  // before start()
    ExpectServerHello,
    ExpectServerFinished,
    Established,
    Failed,
  };

  struct Keys {
    std::vector<std::uint8_t> cipher_key;
    std::vector<std::uint8_t> mac_key;
  };

  void handle_record(std::uint8_t type, std::span<const std::uint8_t> payload,
                     util::Buffer& out);
  void on_client_hello(std::span<const std::uint8_t> payload, util::Buffer& out);
  void on_key_exchange(std::span<const std::uint8_t> payload);
  void on_client_finished(std::span<const std::uint8_t> payload,
                          util::Buffer& out);
  void on_server_hello(std::span<const std::uint8_t> payload, util::Buffer& out);
  void on_server_finished(std::span<const std::uint8_t> payload);
  void derive_keys(std::span<const std::uint8_t> master);
  void send_alert(std::string_view reason, util::Buffer& out);
  void encrypt_record(std::span<const std::uint8_t> plain, util::Buffer& out);
  void decrypt_record(std::span<const std::uint8_t> payload);

  Role role_;
  const TlsConfig& config_;
  State state_;

  // Handshake transcript state.
  std::vector<std::uint8_t> client_random_;
  std::vector<std::uint8_t> server_random_;
  std::vector<std::uint8_t> master_;

  // Record layer. Post-handshake, recv_* and in_/plain_in_ belong to the
  // read side; send_* to the write side.
  Keys send_keys_;
  Keys recv_keys_;
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
  util::Buffer in_;        // raw wire bytes not yet forming a full record
  util::Buffer plain_in_;  // decrypted bytes not yet read by the caller

  std::optional<pki::TrustStore::Result> peer_;
  std::vector<pki::Certificate> peer_chain_;
  bool alert_sent_ = false;  // one alert per connection, ever
};

}  // namespace clarens::tls
