// Clarens portal client: JSON-RPC over POST /clarens, session token in
// the X-Clarens-Session header — the same wire contract every other
// client uses (paper §3: the portal is "static web pages that embed
// JavaScript scripts to handle communication and web service calls").
'use strict';

const portal = {
  session: '',
  nextId: 1,

  async call(method, params) {
    const response = await fetch('/clarens', {
      method: 'POST',
      headers: {
        'Content-Type': 'application/json',
        'X-Clarens-Session': this.session,
      },
      body: JSON.stringify({method, params: params || [], id: this.nextId++}),
    });
    const body = await response.json();
    if (body.error) {
      throw new Error(`fault ${body.error.code}: ${body.error.message}`);
    }
    return body.result;
  },

  setList(id, items, render) {
    const list = document.getElementById(id);
    list.innerHTML = '';
    for (const item of items) {
      const li = document.createElement('li');
      li.textContent = render ? render(item) : String(item);
      list.appendChild(li);
    }
  },

  async init() {
    try {
      const info = await this.call('system.server_info');
      document.getElementById('server-info').textContent =
          `${info.framework} ${info.version} — farm ${info.farm}, ` +
          `node ${info.node}, ${info.methods} methods, ` +
          (info.encrypted ? 'TLS' : 'plaintext');
    } catch (e) {
      document.getElementById('server-info').textContent = String(e);
    }
  },

  async useSession() {
    this.session = document.getElementById('session-token').value.trim();
    try {
      const who = await this.call('system.whoami');
      document.getElementById('whoami').textContent =
          `${who.dn}${who.via_proxy ? ' (via proxy)' : ''}`;
    } catch (e) {
      document.getElementById('whoami').textContent = String(e);
    }
  },

  async listMethods() {
    this.setList('method-list', await this.call('system.list_methods'));
  },

  async browse() {
    const path = document.getElementById('file-path').value;
    const entries = await this.call('file.ls', [path]);
    this.setList('file-list', entries, (e) =>
        `${e.name}${e.is_directory ? '/' : ` (${e.size} bytes)`}`);
  },

  async findServices() {
    const query = document.getElementById('discovery-query').value;
    const records = await this.call('discovery.find_services', [query]);
    this.setList('service-list', records, (r) =>
        `${r.farm}/${r.node} ${r.service} -> ${r.url}`);
  },

  async submitJob() {
    const command = document.getElementById('job-command').value;
    await this.call('job.submit', [command]);
    const jobs = await this.call('job.list');
    this.setList('job-list', jobs, (j) =>
        `${j.id} [${j.state}] ${j.command}`);
  },
};

document.addEventListener('DOMContentLoaded', () => portal.init());
