// Proxy certificates and delegation (§2.6), over TLS:
//  1. Alice creates a short-lived proxy from her long-term credential
//     and stores it on the server under a password;
//  2. later she logs in from anywhere with just DN + password
//     (proxy.logon) — no long-term key needed;
//  3. a batch job she delegated to retrieves the proxy and authenticates
//     *as Alice* over mutual TLS with the proxy chain;
//  4. a browser-style session (CA cert, no proxy) attaches the stored
//     proxy to gain delegation and renew itself.
#include <cstdio>

#include "client/client.hpp"
#include "rpc/fault.hpp"
#include "core/server.hpp"
#include "pki/authority.hpp"

using namespace clarens;

int main() {
  auto ca = pki::CertificateAuthority::create(
      pki::DistinguishedName::parse("/O=grid.org/CN=Grid CA"));
  pki::Credential server_cred = ca.issue_server(
      pki::DistinguishedName::parse("/O=grid.org/OU=Services/CN=host/gw.grid.org"));
  pki::Credential alice = ca.issue_user(
      pki::DistinguishedName::parse("/O=grid.org/OU=People/CN=Alice Analyst"));
  pki::TrustStore trust;
  trust.add_authority(ca.certificate());

  core::ClarensConfig config;
  config.trust = trust;
  config.use_tls = true;
  config.credential = server_cred;
  core::AclSpec anyone;
  anyone.allow_dns = {core::AclSpec::kAnyone};
  config.initial_method_acls = {{"system", anyone}, {"proxy", anyone}};
  core::ClarensServer server(std::move(config));
  server.start();
  std::printf("TLS server at %s\n", server.url().c_str());

  std::printf("\n[1] Alice issues a 12-hour proxy and stores it:\n");
  pki::Credential proxy = pki::issue_proxy(alice, 12 * 3600);
  std::printf("    proxy subject: %s\n",
              proxy.certificate.subject().str().c_str());
  {
    client::ClientOptions options;
    options.port = server.port();
    options.use_tls = true;
    options.credential = alice;
    options.trust = &trust;
    client::ClarensClient session(options);
    session.connect();
    session.authenticate();
    session.call("proxy.store",
                 {rpc::Value(proxy.encode()),
                  rpc::Value(alice.certificate.encode()),
                  rpc::Value("correct horse battery")});
    std::printf("    stored under password protection\n");
  }

  std::printf("\n[2] proxy.logon: DN + password only (no private key):\n");
  {
    client::ClientOptions options;
    options.port = server.port();
    options.use_tls = true;  // anonymous TLS client
    options.trust = &trust;
    client::ClarensClient anywhere(options);
    anywhere.connect();
    anywhere.proxy_logon(alice.dn().str(), "correct horse battery");
    rpc::Value who = anywhere.call("system.whoami");
    std::printf("    logged in as %s (via_proxy=%s)\n",
                who.at("dn").as_string().c_str(),
                who.at("via_proxy").as_bool() ? "true" : "false");
  }

  std::printf("\n[3] a delegated job authenticates with the proxy chain:\n");
  {
    // The job retrieved the proxy (it knows the password Alice gave it).
    client::ClientOptions fetch_options;
    fetch_options.port = server.port();
    fetch_options.use_tls = true;
    fetch_options.trust = &trust;
    client::ClarensClient fetcher(fetch_options);
    fetcher.connect();
    fetcher.proxy_logon(alice.dn().str(), "correct horse battery");
    rpc::Value stored = fetcher.call(
        "proxy.retrieve",
        {rpc::Value(alice.dn().str()), rpc::Value("correct horse battery")});
    pki::Credential job_proxy =
        pki::Credential::decode(stored.at("proxy").as_string());
    pki::Certificate user_cert =
        pki::Certificate::decode(stored.at("user_cert").as_string());

    // Mutual TLS with [proxy, user-cert]: the server sees *Alice*.
    client::ClientOptions job_options;
    job_options.port = server.port();
    job_options.use_tls = true;
    job_options.credential = job_proxy;
    job_options.chain = {user_cert};
    job_options.trust = &trust;
    client::ClarensClient job(job_options);
    job.connect();
    job.authenticate();
    rpc::Value who = job.call("system.whoami");
    std::printf("    job runs as %s (delegation)\n",
                who.at("dn").as_string().c_str());
  }

  std::printf("\n[4] attach the proxy to an existing (non-proxy) session:\n");
  {
    client::ClientOptions options;
    options.port = server.port();
    options.use_tls = true;
    options.credential = alice;  // CA-issued cert, like a browser
    options.trust = &trust;
    client::ClarensClient browser(options);
    browser.connect();
    browser.authenticate();
    rpc::Value before = browser.call("system.whoami");
    browser.call("proxy.attach", {rpc::Value(alice.dn().str()),
                                  rpc::Value("correct horse battery")});
    rpc::Value after = browser.call("system.whoami");
    std::printf("    via_proxy before=%s after=%s (session renewed to proxy "
                "lifetime)\n",
                before.at("via_proxy").as_bool() ? "true" : "false",
                after.at("via_proxy").as_bool() ? "true" : "false");
  }

  std::printf("\n[5] a wrong password is useless:\n");
  {
    client::ClientOptions options;
    options.port = server.port();
    options.use_tls = true;
    options.trust = &trust;
    client::ClarensClient thief(options);
    thief.connect();
    try {
      thief.proxy_logon(alice.dn().str(), "guess");
    } catch (const rpc::Fault& fault) {
      std::printf("    %s\n", fault.what());
    }
  }

  server.stop();
  return 0;
}
