// Mass-storage / SRM walkthrough (paper §6 future work: "an SRM service
// interface to dCache such that Clarens can support robust file transfer
// between different mass storage facilities").
//
// A site keeps event data on simulated tape behind a small disk cache.
// A client: browses the tape namespace, requests staging, polls the
// request to READY, reads the staged copy through the ordinary Clarens
// file service, and releases the pin. A second request for the same file
// is a cache hit (no tape latency).
#include <cstdio>
#include <filesystem>
#include <thread>

#include "client/client.hpp"
#include "core/server.hpp"
#include "pki/authority.hpp"
#include "rpc/fault.hpp"
#include "storage/srm.hpp"
#include "util/clock.hpp"

using namespace clarens;

int main() {
  auto ca = pki::CertificateAuthority::create(
      pki::DistinguishedName::parse("/O=grid.org/CN=Grid CA"));
  pki::Credential user = ca.issue_user(
      pki::DistinguishedName::parse("/O=grid.org/OU=People/CN=Data Mover"));
  pki::TrustStore trust;
  trust.add_authority(ca.certificate());

  // --- the mass storage facility ----------------------------------------
  std::string base = "/tmp/clarens_example_srm";
  std::filesystem::remove_all(base);
  // 2 MB/s simulated tape drive, 64 MiB disk cache.
  storage::MassStorage mss(base + "/tape", base + "/cache", 64 << 20,
                           2 << 20);
  storage::SrmService srm(mss, /*workers=*/2);
  srm.put("/cms/run2005A/muons.evt", std::string(1 << 20, 'M'));  // 1 MiB
  srm.put("/cms/run2005A/electrons.evt", std::string(512 << 10, 'E'));

  core::ClarensConfig config;
  config.trust = trust;
  core::AclSpec anyone;
  anyone.allow_dns = {core::AclSpec::kAnyone};
  config.initial_method_acls = {{"system", anyone}, {"srm", anyone},
                                {"file", anyone}};
  core::FileAcl cache_acl;
  cache_acl.read = anyone;
  config.initial_file_acls = {{"/srmcache", cache_acl}};
  core::ClarensServer server(std::move(config));
  server.attach_storage(srm);
  server.start();

  client::ClientOptions options;
  options.port = server.port();
  options.credential = user;
  options.trust = &trust;
  client::ClarensClient client(options);
  client.connect();
  client.authenticate();

  std::printf("[1] browse the tape namespace:\n");
  rpc::Value listing = client.call("srm.ls", {rpc::Value("/cms")});
  for (const auto& f : listing.as_array()) {
    std::printf("    %s (%lld bytes)\n", f.as_string().c_str(),
                static_cast<long long>(
                    client.call("srm.size", {f}).as_int()));
  }

  std::printf("\n[2] request staging of the muon dataset:\n");
  std::string token =
      client.call("srm.prepare_to_get", {rpc::Value("/cms/run2005A/muons.evt")})
          .as_string();
  util::Stopwatch stage_timer;
  rpc::Value status;
  for (;;) {
    status = client.call("srm.status", {rpc::Value(token)});
    std::string state = status.at("state").as_string();
    std::printf("    %s (t=%.2fs)\n", state.c_str(), stage_timer.seconds());
    if (state == "READY" || state == "FAILED") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (status.at("state").as_string() != "READY") {
    std::printf("staging failed\n");
    return 1;
  }
  std::printf("    staged after %.2fs (simulated 2 MB/s tape drive)\n",
              stage_timer.seconds());

  std::printf("\n[3] read the staged copy through the file service:\n");
  std::string cache_path = status.at("cache_path").as_string();
  auto head = client.file_read(cache_path, 0, 16);
  std::printf("    %s -> first bytes: %.16s...\n", cache_path.c_str(),
              std::string(head.begin(), head.end()).c_str());

  std::printf("\n[4] release the pin:\n");
  client.call("srm.release", {rpc::Value(token)});
  std::printf("    released (copy stays cached until evicted)\n");

  std::printf("\n[5] a second request is a cache hit (no tape latency):\n");
  util::Stopwatch hit_timer;
  std::string token2 =
      client.call("srm.prepare_to_get", {rpc::Value("/cms/run2005A/muons.evt")})
          .as_string();
  for (;;) {
    rpc::Value s = client.call("srm.status", {rpc::Value(token2)});
    if (s.at("state").as_string() == "READY") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::printf("    READY after %.3fs\n", hit_timer.seconds());
  client.call("srm.release", {rpc::Value(token2)});

  server.stop();
  std::filesystem::remove_all(base);
  return 0;
}
