// Grid-wide service discovery — the Figure-3 architecture end to end.
//
// Three Clarens servers at two "farms" publish their service information
// over UDP to station servers (the MonALISA analogue). A discovery
// server subscribes to both stations, aggregates everything into its
// local database, and a client then makes a *location-independent* call:
// it asks discovery where the "echo" service lives, binds to the
// returned URL at run time, and invokes it.
#include <cstdio>
#include <memory>
#include <thread>

#include "client/client.hpp"
#include "core/server.hpp"
#include "db/store.hpp"
#include "discovery/discovery_server.hpp"
#include "discovery/station.hpp"
#include "pki/authority.hpp"

using namespace clarens;

int main() {
  auto ca = pki::CertificateAuthority::create(
      pki::DistinguishedName::parse("/O=grid.org/CN=Grid CA"));
  pki::Credential user = ca.issue_user(
      pki::DistinguishedName::parse("/O=grid.org/OU=People/CN=Grid User"));
  pki::TrustStore trust;
  trust.add_authority(ca.certificate());

  // --- station servers (MonALISA network) -------------------------------
  discovery::StationServer station_west;
  discovery::StationServer station_east;
  std::printf("station servers on udp:%u and udp:%u\n", station_west.port(),
              station_east.port());

  // --- discovery server aggregating both stations ----------------------
  db::Store discovery_db;
  discovery::DiscoveryServer finder(discovery_db);
  finder.subscribe("127.0.0.1", station_west.port());
  finder.subscribe("127.0.0.1", station_east.port());

  // --- three Clarens servers publishing to their local station ---------
  auto make_server = [&](const std::string& farm, const std::string& node,
                         std::uint16_t station_port) {
    core::ClarensConfig config;
    config.trust = trust;
    core::AclSpec anyone;
    anyone.allow_dns = {core::AclSpec::kAnyone};
    config.initial_method_acls = {{"system", anyone}, {"echo", anyone},
                                  {"discovery", anyone}};
    config.farm = farm;
    config.node = node;
    config.station = {{"127.0.0.1", station_port}};
    config.publish_interval_ms = 200;
    auto server = std::make_unique<core::ClarensServer>(std::move(config));
    server->start();
    return server;
  };
  auto caltech1 = make_server("caltech-tier2", "clarens01", station_west.port());
  auto caltech2 = make_server("caltech-tier2", "clarens02", station_west.port());
  auto cern1 = make_server("cern-tier0", "lxclarens01", station_east.port());
  // One server also answers discovery.* RPCs, backed by the aggregator.
  caltech1->attach_discovery(finder);

  std::printf("servers: %s, %s, %s\n", caltech1->url().c_str(),
              caltech2->url().c_str(), cern1->url().c_str());

  // Wait for publishes to propagate (station -> discovery ingestion).
  std::size_t want = 3 * 7;  // 3 nodes x ~7 modules each
  for (int i = 0; i < 200 && finder.record_count() < want; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  std::printf("discovery aggregated %zu service records\n",
              finder.record_count());

  // --- a client uses discovery to bind at run time ---------------------
  client::ClientOptions options;
  options.port = caltech1->port();
  options.credential = user;
  options.trust = &trust;
  client::ClarensClient client(options);
  client.connect();
  client.authenticate();

  std::printf("\nservers known to discovery:\n");
  rpc::Value servers = client.call("discovery.find_servers");
  for (const auto& url : servers.as_array()) {
    std::printf("    %s\n", url.as_string().c_str());
  }

  std::printf("\nservices matching 'file':\n");
  rpc::Value records = client.call("discovery.find_services",
                                   {rpc::Value("file")});
  for (const auto& record : records.as_array()) {
    std::printf("    %s/%s -> %s\n", record.at("farm").as_string().c_str(),
                record.at("node").as_string().c_str(),
                record.at("url").as_string().c_str());
  }

  // Location-independent call: resolve "echo", then invoke at the
  // returned endpoint (paper: "binding to a location can occur in real
  // time").
  std::string url = client.call("discovery.locate", {rpc::Value("echo")})
                        .as_string();
  std::printf("\n'echo' service resolved to %s\n", url.c_str());
  std::size_t colon = url.rfind(':');
  std::size_t slash = url.find('/', colon);
  auto port = static_cast<std::uint16_t>(
      std::stoi(url.substr(colon + 1, slash - colon - 1)));
  client::ClientOptions bound_options = options;
  bound_options.port = port;
  client::ClarensClient bound(bound_options);
  bound.connect();
  bound.authenticate();
  rpc::Value reply = bound.call("echo.echo", {rpc::Value("routed via discovery")});
  std::printf("call through discovered endpoint: %s\n",
              reply.as_string().c_str());

  // Servers that vanish stop being offered once their records expire
  // (TTL-based liveness) — here we just show the slow-path agreement.
  auto walked = finder.query_stations("echo");
  std::printf("\nstation walk (slow path) sees %zu echo records; local DB "
              "sees %zu\n", walked.size(), finder.find_services("echo").size());

  caltech1->stop();
  caltech2->stop();
  cern1->stop();
  return 0;
}
